"""Serve daemon benchmarks: warm-daemon vs cold-CLI repeated checks.

The daemon's reason to exist is amortisation: a long-lived process
keeps the interpreter, the built model suite, the forked worker pool
and the result cache warm, so the Nth identical submission costs a
socket round-trip instead of a full process start.  This benchmark
measures exactly that — ``repro submit`` against a warm daemon vs a
fresh ``python -m repro bmc`` subprocess per check — and guards the
headline claim: **warm repeated submissions are at least 5x faster
than cold CLI runs.**

Two latency classes are reported:

* ``warm_first`` — the first submission: the daemon still has to
  solve, but suite build + fork cost were already paid at boot.
* ``warm_repeat`` — repeated identical submissions: answered from the
  result cache via the dedup key, never touching a worker.
"""

import os
import statistics
import subprocess
import sys
import tempfile
import threading
import time

from repro.serve import ServeClient, ServeDaemon

FAMILY, K, METHOD = "counter", 9, "jsat"
REPEATS = 5
SPEEDUP_GUARD = 5.0

_SRC = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, "src"))


def _cold_once() -> float:
    """One full ``python -m repro bmc`` subprocess, wall seconds."""
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    start = time.perf_counter()
    subprocess.run(
        [sys.executable, "-m", "repro", "bmc", FAMILY, "-k", str(K),
         "--method", METHOD],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        check=True)
    return time.perf_counter() - start


def _measure():
    cold = [_cold_once() for _ in range(REPEATS)]

    with tempfile.TemporaryDirectory() as tmp:
        sock = os.path.join(tmp, "repro.sock")
        daemon = ServeDaemon(socket_path=sock, jobs=1)
        thread = threading.Thread(target=daemon.run, daemon=True)
        thread.start()
        deadline = time.time() + 10
        while not os.path.exists(sock):
            assert time.time() < deadline, "daemon never bound"
            time.sleep(0.02)
        try:
            with ServeClient(socket_path=sock) as client:
                start = time.perf_counter()
                first = client.run(FAMILY, K, method=METHOD)
                warm_first = time.perf_counter() - start
                assert first["result"]["status"] == "SAT"
                warm = []
                for _ in range(REPEATS):
                    start = time.perf_counter()
                    done = client.run(FAMILY, K, method=METHOD)
                    warm.append(time.perf_counter() - start)
                    assert done["result"]["status"] == "SAT"
                    assert done.get("cached"), \
                        "repeat submission missed the result cache"
                client.shutdown()
        finally:
            thread.join(timeout=20)
    return cold, warm_first, warm


def bench_serve_warm_vs_cold(benchmark):
    """Warm repeated submissions beat cold CLI runs by >= 5x."""
    cold, warm_first, warm = benchmark.pedantic(
        _measure, rounds=1, iterations=1)
    cold_mean = statistics.mean(cold)
    warm_mean = statistics.mean(warm)
    speedup = cold_mean / warm_mean if warm_mean > 0 else float("inf")
    print()
    print(f"{FAMILY} k={K} {METHOD}, {REPEATS} repetitions:")
    print(f"  cold CLI (per run) : {cold_mean * 1e3:8.1f} ms")
    print(f"  warm first submit  : {warm_first * 1e3:8.1f} ms")
    print(f"  warm repeat (mean) : {warm_mean * 1e3:8.1f} ms")
    print(f"  warm repeat speedup: {speedup:8.1f}x "
          f"(guard >= {SPEEDUP_GUARD:.0f}x)")
    try:
        import _emit
        _emit.record(cold_s=cold_mean, warm_first_s=warm_first,
                     warm_repeat_s=warm_mean, speedup=speedup,
                     guard_speedup=SPEEDUP_GUARD)
    except ImportError:      # pytest run without benchmarks/ on path
        pass
    assert speedup >= SPEEDUP_GUARD, \
        f"warm daemon only {speedup:.1f}x faster than cold CLI"

if __name__ == "__main__":
    import _emit
    raise SystemExit(_emit.run(globals()))
