"""Simulation-tier benchmarks: falsification coverage and race speedup.

Two guards back the tier's reason to exist:

* **coverage** — plain random simulation, strictly wall-bounded per
  query, must falsify a meaningful share of the suite's violated
  properties entirely on its own (zero solver calls; ``presolve``
  never constructs a solver).
* **race speedup** — on the slice of SAT instances the tier can hit,
  a ``sim_tier=True`` portfolio race must settle at least 1.5x faster
  in aggregate than the identical solver-only race, with verdict
  agreement instance by instance.  This is the whole point: a witness
  found in milliseconds makes the solver spawn cost disappear.
"""

import time

from repro.models import build_suite
from repro.portfolio import race
from repro.sat.types import Budget, SolveResult
from repro.sim import presolve

MIN_SIM_FALSIFIED = 6
MIN_RACE_SPEEDUP = 1.5
RACE_SLICE = 6
RACE_BUDGET = Budget(max_seconds=30.0)


def _sat_instances():
    return [i for i in build_suite() if i.expected is True]


def _sim_hits(instances):
    hits = []
    for inst in instances:
        out = presolve(inst.system, inst.final, inst.k)
        if out is not None:
            hits.append((inst, out))
    return hits


def bench_sim_falsification_coverage(benchmark):
    """How many violated suite properties does the tier settle alone?"""
    instances = _sat_instances()

    def run():
        t0 = time.perf_counter()
        hits = _sim_hits(instances)
        return hits, time.perf_counter() - t0

    hits, seconds = benchmark.pedantic(run, rounds=1, iterations=1)
    for inst, out in hits:
        assert out.hit_k == inst.k, inst.name
        out.trace.validate(inst.system, inst.final)

    import _emit
    _emit.record(sim_falsified=len(hits),
                 sat_instances=len(instances),
                 coverage_seconds=round(seconds, 4),
                 guard_min_falsified=MIN_SIM_FALSIFIED)
    print()
    print(f"sim tier falsified {len(hits)}/{len(instances)} violated "
          f"suite properties in {seconds:.2f} s, zero solver calls")
    assert len(hits) >= MIN_SIM_FALSIFIED, \
        f"sim tier falsified only {len(hits)} properties " \
        f"(guard: >= {MIN_SIM_FALSIFIED})"


def bench_sim_race_speedup(benchmark):
    """sim_tier races vs solver-only races on a SAT-heavy slice."""
    slice_ = [inst for inst, _ in _sim_hits(_sat_instances())][:RACE_SLICE]
    assert len(slice_) == RACE_SLICE

    def run_races(sim_tier):
        outcomes = []
        t0 = time.perf_counter()
        for inst in slice_:
            outcomes.append(race(inst.system, inst.final, inst.k,
                                 methods=["jsat"], budget=RACE_BUDGET,
                                 sim_tier=sim_tier))
        return outcomes, time.perf_counter() - t0

    def run():
        with_sim, sim_wall = run_races(True)
        solver_only, solver_wall = run_races(False)
        return with_sim, sim_wall, solver_only, solver_wall

    with_sim, sim_wall, solver_only, solver_wall = benchmark.pedantic(
        run, rounds=1, iterations=1)

    # Verdict agreement, instance by instance.
    for inst, a, b in zip(slice_, with_sim, solver_only):
        assert a.result.status is SolveResult.SAT, inst.name
        assert a.result.status is b.result.status, inst.name
        assert a.winner == "simulation", inst.name

    speedup = solver_wall / sim_wall if sim_wall > 0 else float("inf")
    import _emit
    _emit.record(race_slice=len(slice_),
                 sim_tier_wall_s=round(sim_wall, 4),
                 solver_only_wall_s=round(solver_wall, 4),
                 speedup=round(speedup, 2),
                 guard_min_speedup=MIN_RACE_SPEEDUP)
    print()
    print(f"{len(slice_)} SAT races: sim tier {sim_wall:.2f} s, "
          f"solver-only {solver_wall:.2f} s -> {speedup:.1f}x")
    assert speedup >= MIN_RACE_SPEEDUP, \
        f"sim-tier races only {speedup:.2f}x faster " \
        f"(guard: >= {MIN_RACE_SPEEDUP}x)"


if __name__ == "__main__":
    import _emit
    raise SystemExit(_emit.run(globals()))
