"""Machine-readable result emission shared by the bench_* scripts.

Every benchmark in this directory can run two ways:

* under ``pytest --benchmark`` (the ``bench_*(benchmark)`` functions
  use the pytest-benchmark fixture), or
* standalone — ``python benchmarks/bench_foo.py [--json PATH]`` — via
  :func:`run`, which discovers the module's ``bench_*`` functions
  (falling back to ``main()`` for report-style scripts), executes them
  with a :class:`FakeBenchmark` stand-in, and writes a
  ``BENCH_<name>.json`` document holding per-function wall seconds,
  guard status (an ``AssertionError`` is a failed perf guard, any
  other exception an error), and whatever the benchmark
  :func:`record`-ed (measured values and guard thresholds).

The JSON artifacts give CI a perf trajectory to track run-over-run;
see ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import argparse
import inspect
import json
import os
import sys
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

_RECORDS: Dict[str, Any] = {}


def record(**values: Any) -> None:
    """Merge measured values / guard thresholds into the JSON payload.

    Call from inside a benchmark function::

        _emit.record(direct_s=direct_s, session_s=session_s,
                     guard_relative=0.02)
    """
    _RECORDS.update(values)


class FakeBenchmark:
    """pytest-benchmark fixture stand-in for standalone runs.

    Supports the two idioms the bench files use — ``benchmark(fn)``
    and ``benchmark.pedantic(fn, rounds=..., iterations=...)`` — by
    running the callable exactly once and returning its result (the
    surrounding :func:`run` does the timing).
    """

    def __call__(self, fn: Callable, *args: Any, **kwargs: Any) -> Any:
        return fn(*args, **kwargs)

    def pedantic(self, fn: Callable, args: Tuple = (),
                 kwargs: Optional[Dict[str, Any]] = None,
                 rounds: int = 1, iterations: int = 1,
                 **_ignored: Any) -> Any:
        return fn(*args, **(kwargs or {}))


def _discover(module_globals: Dict[str, Any]
              ) -> List[Tuple[str, Callable]]:
    """The module's ``bench_*`` functions, else its ``main``."""
    found = [(name, obj) for name, obj in module_globals.items()
             if name.startswith("bench_") and inspect.isfunction(obj)]
    if found:
        return found
    entry = module_globals.get("main")
    if inspect.isfunction(entry):
        return [("main", entry)]
    return []


def run(module_globals: Dict[str, Any],
        argv: Optional[List[str]] = None) -> int:
    """Standalone entry point: run the module's benchmarks, emit JSON.

    Returns a process exit code: 0 when every function passed, 1 when
    any guard failed or errored (the JSON is still written, with the
    failure recorded, so CI keeps the artifact of a red run).
    """
    stem = os.path.splitext(
        os.path.basename(module_globals.get("__file__", "bench")))[0]
    parser = argparse.ArgumentParser(
        prog=f"{stem}.py",
        description=(module_globals.get("__doc__") or "").strip()
        .splitlines()[0] if module_globals.get("__doc__") else None)
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help=f"write machine-readable results (a directory gets "
             f"BENCH_{stem}.json inside it)")
    args = parser.parse_args(argv)

    _RECORDS.clear()
    results: Dict[str, Dict[str, Any]] = {}
    failed = False
    for name, fn in _discover(module_globals):
        start = time.perf_counter()
        status, error = "ok", None
        try:
            if inspect.signature(fn).parameters:
                fn(FakeBenchmark())
            else:
                fn()
        except AssertionError as exc:
            status, error, failed = "guard-failed", str(exc), True
        except Exception as exc:   # noqa: BLE001 - keep the artifact
            status = "error"
            error = f"{type(exc).__name__}: {exc}"
            failed = True
        entry: Dict[str, Any] = {
            "seconds": round(time.perf_counter() - start, 6),
            "status": status,
        }
        if error:
            entry["error"] = error
        results[name] = entry
        print(f"[{stem}] {name}: {status} "
              f"({entry['seconds']:.3f}s)", file=sys.stderr)

    if args.json is not None:
        path = args.json
        if os.path.isdir(path):
            path = os.path.join(path, f"BENCH_{stem}.json")
        payload = {
            "bench": stem,
            "results": results,
            "measured": dict(_RECORDS),
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"[{stem}] wrote {path}", file=sys.stderr)
    return 1 if failed else 0
