"""E1 — the paper's headline table (§3).

Paper (234 instances from 13 Intel test cases, 300 s / 1 GB per
instance):

    SAT on formula (1):            184 / 234 solved
    jSAT on formula (2):           143 / 234 solved
    general-purpose QBF on (2):      3 / 234 solved

This bench reruns the comparison on the synthetic 234-instance suite
with laptop-scale budgets and asserts the *shape*: SAT >= jSAT >>
general-purpose QBF, with jSAT solving the large majority and QDPLL
almost nothing.  The full-budget numbers are recorded in
EXPERIMENTS.md.
"""

import pytest

from repro.harness.experiments import run_e1
from repro.harness.runner import solved_counts
from repro.models import build_suite

# A stratified third of the suite keeps the bench under a minute while
# preserving the family/bound mix; EXPERIMENTS.md reports the full run.
SUBSET_STRIDE = 3


def _run():
    instances = build_suite()[::SUBSET_STRIDE]
    results, report = run_e1(instances=instances, budget_scale=0.5,
                             qbf_budget_scale=0.08)
    return results, report


def bench_e1_solved_counts(benchmark):
    results, report = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(report)
    counts = solved_counts(results)
    sat = counts["sat-unroll"]
    jsat = counts["jsat"]
    qbf = counts["qbf"]
    total = sat["total"]

    # Nothing may answer incorrectly.
    assert sat["wrong"] == jsat["wrong"] == qbf["wrong"] == 0
    # Paper shape: SAT solves at least as much as jSAT...
    assert sat["solved"] >= jsat["solved"]
    # ... jSAT solves the large majority (paper: 143/234 = 61%) ...
    assert jsat["solved"] >= 0.55 * total
    # ... and the general-purpose QBF solver is far behind both
    # (paper: 3/234 = 1.3%; we allow up to a quarter because the
    # synthetic designs are smaller than Intel's).
    assert qbf["solved"] <= 0.25 * total
    assert qbf["solved"] < jsat["solved"] / 2

if __name__ == "__main__":
    import _emit
    raise SystemExit(_emit.run(globals()))
