"""Portfolio subsystem benchmarks: batch speedup and race cancellation.

Two measurements back the subsystem's claims:

* **batch speedup** — the E1 (suite × methods) matrix run serially vs
  sharded over a 4-worker pool.  Wall clock should drop ~linearly with
  cores while summed worker CPU stays put; on a single-core runner the
  wall times converge instead (parallelism cannot beat physics), so
  the ≥2x assertion is gated on available CPUs.
* **cancellation latency** — how long after the winning method answers
  do the loser processes take to actually die.  This bounds the cost
  of racing: a portfolio is only cheap if losers stop burning CPU
  promptly.
"""

import os
import time

from repro.harness.runner import run_matrix
from repro.models import build_suite, counter
from repro.portfolio import race
from repro.sat.types import Budget, SolveResult

# Deterministic limits: serial and parallel runs take identical solver
# paths, so the comparison measures scheduling, not budget noise.
BATCH_BUDGET = Budget(max_conflicts=10_000, max_literals=1_000_000)
SUBSET_STRIDE = 6
JOBS = 4


def _e1_subset():
    return build_suite()[::SUBSET_STRIDE]


def bench_portfolio_batch_speedup(benchmark):
    """Serial vs jobs=4 wall clock on the E1 matrix."""
    instances = _e1_subset()
    methods = ["sat-unroll", "jsat"]

    def run():
        t0 = time.perf_counter()
        serial = run_matrix(instances, methods, budget=BATCH_BUDGET)
        serial_wall = time.perf_counter() - t0
        t0 = time.perf_counter()
        parallel = run_matrix(instances, methods, budget=BATCH_BUDGET,
                              jobs=JOBS)
        parallel_wall = time.perf_counter() - t0
        return serial, serial_wall, parallel, parallel_wall

    serial, serial_wall, parallel, parallel_wall = benchmark.pedantic(
        run, rounds=1, iterations=1)

    # Deterministic assembly: the parallel run is cell-for-cell
    # identical to the serial one.
    assert len(serial) == len(parallel)
    for s, p in zip(serial, parallel):
        assert (s.instance.name, s.method) == (p.instance.name, p.method)
        assert s.status is p.status
        assert s.stats == p.stats

    cpu = sum(c.cpu_seconds for c in parallel)
    speedup = serial_wall / parallel_wall if parallel_wall > 0 else 0.0
    print()
    print(f"E1 subset: {len(instances)} instances x {len(methods)} "
          f"methods = {len(serial)} cells")
    print(f"serial   {serial_wall:.2f} s wall")
    print(f"jobs={JOBS}   {parallel_wall:.2f} s wall, "
          f"{cpu:.2f} s summed worker cpu")
    print(f"speedup  {speedup:.2f}x on {os.cpu_count()} cpu(s)")
    # Real parallel speedup needs real cores; with 4 workers on >= 4
    # cores the LPT schedule comfortably clears 2x.
    if (os.cpu_count() or 1) >= JOBS:
        assert speedup >= 2.0
    else:
        # Single/low-core runner: require the pool's overhead to stay
        # sane rather than asserting impossible parallelism.
        assert parallel_wall < serial_wall * 4 + 2.0


def bench_portfolio_cancellation_latency(benchmark):
    """Time from the winning answer to confirmed-dead losers."""
    # counter(5): jsat answers quickly, the raced partner would run far
    # longer under its 60 s budget if not cancelled.
    system, final, depth = counter.make(5, 19)

    def run():
        outcome = race(system, final, depth,
                       methods=("jsat", "sat-unroll"),
                       budget=Budget(max_seconds=60.0))
        return outcome

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(f"winner {outcome.winner} in {outcome.seconds:.3f} s, "
          f"{len(outcome.loser_pids)} loser(s) cancelled in "
          f"{outcome.cancel_latency * 1e3:.1f} ms")
    assert outcome.result.status is SolveResult.SAT
    # Cancellation must be orders of magnitude below the loser's
    # remaining budget — killing is immediate, not cooperative.
    assert outcome.cancel_latency < 5.0

if __name__ == "__main__":
    import _emit
    raise SystemExit(_emit.run(globals()))
