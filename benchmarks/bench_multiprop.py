"""Multi-property benchmark: one shared unrolling vs a session per property.

The acceptance claim of the specification layer: checking the suite's
multi-property instances (eight named properties per design family —
the Reachable / Invariant / F / X / U target obligations plus three
narrow-cone probes, see
:func:`repro.models.suite.default_property_bundle`) through ONE
shared-unrolling session must be >= 1.5x faster than checking the same
properties sequentially, each in its own session.

The shared session encodes the k transition frames once into one
incremental solver and answers every property through its own
activation group; the sequential baseline re-encodes the unrolling per
property — exactly the waste the paper's "the unrolled transition
formula is the expensive object" argument predicts.

Verdicts must agree property-for-property, and every certificate is
re-validated (debug mode replays witnesses against the system and the
bounded path semantics).

Run:  PYTHONPATH=src python benchmarks/bench_multiprop.py
"""

import time

from repro.harness.report import format_table
from repro.harness.runner import run_property_matrix
from repro.models import build_property_suite

REQUIRED_SPEEDUP = 1.5
REPEATS = 3


def _run(shared: bool):
    instances = build_property_suite()
    start = time.perf_counter()
    cells = run_property_matrix(instances, shared=shared)
    return cells, time.perf_counter() - start


def main() -> None:
    instances = build_property_suite()
    n_props = sum(len(i.properties) for i in instances)
    print(f"multi-property suite: {len(instances)} instances, "
          f"{n_props} (instance, property) cells\n")

    # Warm-up (intern caches, imports), then best-of-N to de-noise.
    _run(shared=True)
    shared_s = sequential_s = float("inf")
    for _ in range(REPEATS):
        shared_cells, s = _run(shared=True)
        shared_s = min(shared_s, s)
        sequential_cells, s = _run(shared=False)
        sequential_s = min(sequential_s, s)

    # Verdict agreement, cell for cell.
    by_key_shared = {(c.instance.name, c.property_name): c.verdict
                     for c in shared_cells}
    by_key_seq = {(c.instance.name, c.property_name): c.verdict
                  for c in sequential_cells}
    assert by_key_shared == by_key_seq, "shared vs sequential disagree"

    per_instance = {}
    for cells, mode in ((shared_cells, "shared"),
                        (sequential_cells, "sequential")):
        for cell in cells:
            row = per_instance.setdefault(cell.instance.name,
                                          {"shared": 0.0,
                                           "sequential": 0.0})
            row[mode] += cell.seconds
    rows = [[name, f"{row['sequential'] * 1e3:.1f}",
             f"{row['shared'] * 1e3:.1f}",
             f"{row['sequential'] / max(row['shared'], 1e-9):.2f}x"]
            for name, row in per_instance.items()]
    print(format_table(
        ["instance", "sequential ms", "shared ms", "speedup"], rows))

    speedup = sequential_s / shared_s
    print(f"\ntotal: sequential {sequential_s * 1e3:.1f} ms, "
          f"shared {shared_s * 1e3:.1f} ms -> {speedup:.2f}x "
          f"(required >= {REQUIRED_SPEEDUP}x)")
    assert speedup >= REQUIRED_SPEEDUP, (
        f"shared-unrolling multi-property speedup regressed: "
        f"{speedup:.2f}x < {REQUIRED_SPEEDUP}x")
    print("OK")

if __name__ == "__main__":
    import _emit
    raise SystemExit(_emit.run(globals()))
