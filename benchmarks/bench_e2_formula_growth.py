"""E2 — formula growth per iteration (paper §2 size arguments).

Regenerates the growth series behind the paper's space claims:

* formula (1): one extra TR copy per step — Θ(k·|TR|);
* formula (2): one state vector + selector per step — Θ(k·n), slope
  independent of |TR|; 2n universals constant in k;
* formula (3): Θ(n·log k) with ⌈log₂ k⌉ alternations;
* jSAT: constant resident encoding (single TR copy).
"""

from repro.bmc.metrics import growth_table
from repro.harness.experiments import run_e2
from repro.models import mixer

BOUNDS = (1, 2, 4, 8, 16, 32, 64)


def bench_e2_formula_growth(benchmark):
    table, report = benchmark.pedantic(
        lambda: run_e2(bounds=BOUNDS), rounds=1, iterations=1)
    print()
    print(report)

    unroll = [row["literals"] for row in table["sat-unroll"]]
    qbf = [row["literals"] for row in table["qbf"]]
    squaring = [row["literals"] for row in table["qbf-squaring"]]
    jsat = [row["literals"] for row in table["jsat"]]

    # Formula (1): linear growth, slope ~|TR|.
    slopes = [(unroll[i + 1] - unroll[i])
              / (BOUNDS[i + 1] - BOUNDS[i])
              for i in range(len(BOUNDS) - 1)]
    assert max(slopes) / min(slopes) < 1.1          # constant slope

    # Formula (2): much smaller slope (independent of |TR|).
    qbf_slope = (qbf[-1] - qbf[-2]) / (BOUNDS[-1] - BOUNDS[-2])
    assert qbf_slope < slopes[-1] / 3

    # Formula (3): logarithmic — equal increments per doubling.
    increments = [squaring[i + 1] - squaring[i]
                  for i in range(1, len(squaring) - 1)]
    assert max(increments) - min(increments) <= max(increments) * 0.2

    # jSAT: constant resident size.
    assert len(set(jsat)) == 1

    # At the largest bound the ordering of the paper holds.
    assert unroll[-1] > qbf[-1] > squaring[-1] > 0
    assert jsat[-1] < unroll[-1]


def bench_e2_universal_counts(benchmark):
    """The ∀-block width: constant for (2), growing for (3)."""
    system, final, _ = mixer.make(10, 4)

    def collect():
        return growth_table(system, final, [2, 4, 8, 16],
                            methods=["qbf", "qbf-squaring"])

    table = benchmark.pedantic(collect, rounds=1, iterations=1)
    qbf_universals = [row["universals"] for row in table["qbf"]]
    squaring_universals = [row["universals"]
                           for row in table["qbf-squaring"]]
    assert len(set(qbf_universals)) == 1
    assert sorted(squaring_universals) == squaring_universals
    assert squaring_universals[-1] > squaring_universals[0]

if __name__ == "__main__":
    import _emit
    raise SystemExit(_emit.run(globals()))
