"""E3 — iteration counts: linear deepening vs iterative squaring.

Paper §2: squaring "allows reducing the number of iterations to be as
the number of the state encoding variables", i.e. logarithmic in the
bound, at the price of deeper quantifier alternation; the self-loop
transformation recovers non-power-of-two bounds.
"""

import math

from repro.harness.experiments import run_e3
from repro.models import shift_register
from repro.bmc import find_reachable


def bench_e3_iterations(benchmark):
    data, report = benchmark.pedantic(
        lambda: run_e3(ring_length=14), rounds=1, iterations=1)
    print()
    print(report)
    depth = data["depth"]
    assert data["linear_found"] and data["squaring_found"]
    # Linear: depth+1 iterations (k = 0..depth).
    assert data["linear_iterations"] == depth + 1
    # Squaring: about log2(depth) iterations.
    assert data["squaring_iterations"] <= math.ceil(math.log2(depth)) + 2
    assert data["squaring_iterations"] < data["linear_iterations"]


def bench_e3_schedule_scaling(benchmark):
    """Iteration counts across increasing depths: log vs linear."""

    def sweep():
        rows = []
        for length in (6, 10, 14, 18):
            system, final, depth = shift_register.make(length)
            _, linear = find_reachable(system, final, depth,
                                       strategy="linear")
            _, squaring = find_reachable(system, final, depth,
                                         strategy="squaring")
            rows.append((depth, len(linear), len(squaring)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("depth  linear_iters  squaring_iters")
    for depth, lin, sq in rows:
        print(f"{depth:5d}  {lin:12d}  {sq:14d}")
    # Linear grows proportionally to depth; squaring stays near log.
    depths = [r[0] for r in rows]
    linears = [r[1] for r in rows]
    squarings = [r[2] for r in rows]
    assert linears == [d + 1 for d in depths]
    assert all(sq <= math.ceil(math.log2(d)) + 2
               for d, sq in zip(depths, squarings))

if __name__ == "__main__":
    import _emit
    raise SystemExit(_emit.run(globals()))
