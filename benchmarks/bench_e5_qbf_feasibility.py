"""E5 — general-purpose QBF solvers on the BMC formulations.

Paper §3: "the general-purpose QBF solvers were unable to solve
practically any of the formulae of the forms (2) and (3), while many of
the corresponding propositional formulae of the form (1) were solved by
the SAT solvers ... in a matter of seconds".

The bench sweeps the bound on one design and shows the cliff: QDPLL
times out almost immediately as k grows, while jSAT — deciding the very
same formula-(2) semantics — answers instantly.
"""

from repro.harness.experiments import run_e5
from repro.sat.types import SolveResult


def bench_e5_qbf_feasibility(benchmark):
    rows, report = benchmark.pedantic(
        lambda: run_e5(max_k=6, budget_seconds=1.0), rounds=1,
        iterations=1)
    print()
    print(report)
    # jSAT answers everything definitively.
    assert all(r["jsat"] in ("SAT", "UNSAT") for r in rows)
    # QDPLL gives up on the deeper bounds (the paper's cliff).
    deep = [r for r in rows if r["k"] >= 4]
    assert any(r["qbf"] == "UNKNOWN" for r in deep)
    # Where QDPLL does answer, it agrees with jSAT.
    for r in rows:
        if r["qbf"] != "UNKNOWN":
            assert r["qbf"] == r["jsat"], r

if __name__ == "__main__":
    import _emit
    raise SystemExit(_emit.run(globals()))
