"""E7 — jSAT design-choice ablations (DESIGN.md §4).

Toggles the no-good cache and the final-window F-pruning and measures
solved counts and window-query effort on a suite subset.  The full
configuration must never lose to the ablated ones on solved count, and
the cache must pay for itself in queries on revisit-heavy designs.
"""

from repro.harness.experiments import run_e7
from repro.models import build_suite


def bench_e7_ablation(benchmark):
    instances = [i for i in build_suite() if i.k <= 12][:60]
    summary, report = benchmark.pedantic(
        lambda: run_e7(instances=instances, budget_scale=0.5),
        rounds=1, iterations=1)
    print()
    print(report)
    full = summary["jsat (full)"]
    for label, row in summary.items():
        assert row["solved"] <= full["solved"] + 1, \
            f"{label} outsolved the full configuration"
    # All variants answer (budget allowing) — none may be wrong; the
    # runner folds wrong answers into `solved` checks upstream.
    assert full["solved"] >= 0.8 * full["total"]


def bench_e7_cache_effect_on_revisits(benchmark):
    """On diamond-rich state graphs the cache slashes window queries."""
    from repro.bmc.jsat import JsatSolver
    from repro.models import lfsr

    system, final, depth = lfsr.make(8, 40)

    def run():
        cached = JsatSolver(system, final, depth + 1, use_cache=True)
        uncached = JsatSolver(system, final, depth + 1, use_cache=False)
        r1 = cached.solve()
        r2 = uncached.solve()
        return cached, uncached, r1, r2

    cached, uncached, r1, r2 = benchmark.pedantic(run, rounds=1,
                                                  iterations=1)
    print()
    print(f"queries with cache: {cached.stats.queries}, "
          f"without: {uncached.stats.queries}")
    assert r1 is r2
    assert cached.stats.queries <= uncached.stats.queries

if __name__ == "__main__":
    import _emit
    raise SystemExit(_emit.run(globals()))
