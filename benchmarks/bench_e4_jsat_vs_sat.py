"""E4 — jSAT vs the base SAT solver on formula (1), per family.

Paper §3: jSAT solved 143 instances "compared to 184 corresponding SAT
instances solved by the solver on which we based our implementation".
This bench reproduces the head-to-head on a stratified subset and
checks that jSAT stays within the paper's ratio band (roughly 0.6-1.0
of SAT's solved count) while never answering incorrectly.
"""

from repro.harness.experiments import run_e4
from repro.harness.runner import solved_counts
from repro.models import build_suite


def bench_e4_jsat_vs_sat(benchmark):
    instances = build_suite()[::3]
    results, report = benchmark.pedantic(
        lambda: run_e4(instances=instances, budget_scale=0.5),
        rounds=1, iterations=1)
    print()
    print(report)
    counts = solved_counts(results)
    sat = counts["sat-unroll"]
    jsat = counts["jsat"]
    assert sat["wrong"] == jsat["wrong"] == 0
    assert sat["solved"] >= jsat["solved"]
    # Paper ratio: 143/184 ≈ 0.78; allow a generous band.
    assert jsat["solved"] >= 0.55 * sat["solved"]


def bench_e4_agreement(benchmark):
    """Where both answer, they must answer identically."""
    instances = build_suite()[::7]

    def run():
        results, _ = run_e4(instances=instances, budget_scale=0.4)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    by_instance = {}
    for cell in results:
        by_instance.setdefault(cell.instance.name, {})[cell.method] = cell
    compared = 0
    for name, cells in by_instance.items():
        if len(cells) == 2:
            a = cells["sat-unroll"]
            b = cells["jsat"]
            from repro.sat.types import SolveResult
            if a.status is not SolveResult.UNKNOWN and \
                    b.status is not SolveResult.UNKNOWN:
                assert a.status is b.status, name
                compared += 1
    assert compared > 10

if __name__ == "__main__":
    import _emit
    raise SystemExit(_emit.run(globals()))
