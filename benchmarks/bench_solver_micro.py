"""Micro-benchmarks of the substrate solvers.

Not a paper artifact — these keep the CDCL/QDPLL substrates honest
(throughput regressions would silently distort E1/E4/E5 comparisons).
"""

import random

from repro.logic.cnf import CNF
from repro.qbf import PCNF, QdpllSolver
from repro.sat import CdclSolver, SolveResult


def _random_3sat(n, ratio, seed):
    rng = random.Random(seed)
    cnf = CNF(n)
    for _ in range(int(ratio * n)):
        clause = rng.sample(range(1, n + 1), 3)
        cnf.add_clause([rng.choice([1, -1]) * v for v in clause])
    return cnf


def bench_cdcl_random_3sat_sat_region(benchmark):
    cnf = _random_3sat(120, 3.5, seed=11)

    def run():
        solver = CdclSolver()
        solver.add_clauses(cnf.clauses)
        return solver.solve()

    result = benchmark(run)
    assert result is SolveResult.SAT


def bench_cdcl_random_3sat_phase_transition(benchmark):
    cnf = _random_3sat(60, 4.26, seed=7)

    def run():
        solver = CdclSolver()
        solver.add_clauses(cnf.clauses)
        return solver.solve()

    result = benchmark(run)
    assert result in (SolveResult.SAT, SolveResult.UNSAT)


def bench_cdcl_pigeonhole(benchmark):
    def run():
        solver = CdclSolver()
        holes = 5
        def var(i, j):
            return i * holes + j + 1
        for i in range(holes + 1):
            solver.add_clause([var(i, j) for j in range(holes)])
        for j in range(holes):
            for i1 in range(holes + 1):
                for i2 in range(i1 + 1, holes + 1):
                    solver.add_clause([-var(i1, j), -var(i2, j)])
        return solver.solve()

    assert benchmark(run) is SolveResult.UNSAT


def bench_cdcl_incremental_assumptions(benchmark):
    cnf = _random_3sat(80, 3.0, seed=3)
    solver = CdclSolver()
    solver.add_clauses(cnf.clauses)
    rng = random.Random(5)

    def run():
        outcomes = []
        for _ in range(10):
            assumptions = [rng.choice([1, -1]) * rng.randint(1, 80)
                           for _ in range(3)]
            outcomes.append(solver.solve(assumptions))
        return outcomes

    outcomes = benchmark(run)
    assert all(o is not SolveResult.UNKNOWN for o in outcomes)


def _pigeonhole_clauses(holes=5):
    def var(i, j):
        return i * holes + j + 1
    clauses = []
    for i in range(holes + 1):
        clauses.append([var(i, j) for j in range(holes)])
    for j in range(holes):
        for i1 in range(holes + 1):
            for i2 in range(i1 + 1, holes + 1):
                clauses.append([-var(i1, j), -var(i2, j)])
    return clauses


def bench_kernel_vs_reference_speedup(benchmark):
    """Perf guard: the kernel engine must aggregate >= 5x over the
    reference across the CDCL micro workloads above.

    Records per-workload wall seconds and speedups via
    :func:`_emit.record` so the ``--json`` artifact carries the full
    table CI tracks run-over-run.
    """
    import time as _time

    from repro.sat.kernel import make_solver

    workloads = {
        "random_3sat": _random_3sat(120, 3.5, seed=11).clauses,
        "phase_transition": _random_3sat(60, 4.26, seed=7).clauses,
        "pigeonhole_6": _pigeonhole_clauses(6),
    }

    def one_shot(engine, clauses):
        solver = make_solver(engine)
        solver.add_clauses(clauses)
        status = solver.solve()
        assert status is not SolveResult.UNKNOWN
        return status

    def incremental(engine):
        cnf = _random_3sat(80, 3.0, seed=3)
        solver = make_solver(engine)
        solver.add_clauses(cnf.clauses)
        rng = random.Random(5)
        for _ in range(10):
            assumptions = [rng.choice([1, -1]) * rng.randint(1, 80)
                           for _ in range(3)]
            assert solver.solve(assumptions) is not SolveResult.UNKNOWN

    def measure():
        table = {}
        for name, clauses in workloads.items():
            times = {}
            for engine in ("reference", "kernel"):
                verdicts = {one_shot(engine, clauses)}   # warm-up
                start = _time.perf_counter()
                verdicts.add(one_shot(engine, clauses))
                times[engine] = _time.perf_counter() - start
                assert len(verdicts) == 1
            table[name] = times
        times = {}
        for engine in ("reference", "kernel"):
            start = _time.perf_counter()
            incremental(engine)
            times[engine] = _time.perf_counter() - start
        table["incremental_assumptions"] = times
        return table

    table = benchmark(measure)
    ref_total = sum(t["reference"] for t in table.values())
    kernel_total = sum(t["kernel"] for t in table.values())
    aggregate = ref_total / max(kernel_total, 1e-9)
    _emit_payload = {
        f"{name}_{engine}_s": round(seconds, 6)
        for name, times in table.items()
        for engine, seconds in times.items()
    }
    _emit_payload.update({
        f"{name}_speedup": round(
            times["reference"] / max(times["kernel"], 1e-9), 2)
        for name, times in table.items()
    })
    try:
        import _emit
        _emit.record(aggregate_speedup=round(aggregate, 2),
                     guard_min_speedup=5.0, **_emit_payload)
    except ImportError:      # pytest run without benchmarks/ on path
        pass
    assert aggregate >= 5.0, (
        f"kernel engine only {aggregate:.2f}x over reference "
        f"(guard: >=5x aggregate)")


def bench_qdpll_small_2qbf(benchmark):
    rng = random.Random(13)
    n = 14
    cnf = CNF(n)
    for _ in range(30):
        cnf.add_clause([rng.choice([1, -1]) * rng.randint(1, n)
                        for _ in range(3)])
    pcnf = PCNF([("e", tuple(range(1, 8))), ("a", tuple(range(8, 11))),
                 ("e", tuple(range(11, n + 1)))], cnf)

    def run():
        return QdpllSolver(pcnf).solve()

    result = benchmark(run)
    assert result in (SolveResult.SAT, SolveResult.UNSAT)

if __name__ == "__main__":
    import _emit
    raise SystemExit(_emit.run(globals()))
