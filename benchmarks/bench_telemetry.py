"""Telemetry-overhead guard: disabled instrumentation must be free.

PR 6 threads ``current_tracer()`` / ``current_metrics()`` hooks
through the solver, the encoders, the sweep driver and the reduction
pipeline.  This benchmark pins their cost on the suite sweep (deepest
instance per family, max_k = 8, the same workload as
``bench_api_overhead``) run two ways:

* **disabled** — the default :class:`~repro.telemetry.NullTracer` and
  the disabled metrics registry, i.e. what every user who never passes
  ``--trace`` / ``--metrics`` pays;
* **enabled** — a recording :class:`~repro.telemetry.Tracer` plus an
  enabled :class:`~repro.telemetry.MetricsRegistry`.

The guard asserts ``enabled - disabled < 3% of disabled`` (plus an
absolute millisecond-scale slack against timer noise).  That is
strictly stronger than the headline claim "disabled-telemetry overhead
< 3%": the disabled path's hook cost is bounded above by the *fully
enabled* cost measured here, so disabled overhead < 3% follows a
fortiori.  A second guard asserts the disabled run recorded zero
events — the null path must not buffer anything.
"""

import time

from repro.bmc import BmcSession
from repro.models import build_suite
from repro.telemetry import (NULL_TRACER, MetricsRegistry, Tracer,
                             current_tracer, set_metrics, set_tracer)

MAX_K = 8
ROUNDS = 5


def _deepest_per_family():
    best = {}
    for instance in build_suite():
        incumbent = best.get(instance.family)
        if incumbent is None or instance.k > incumbent.k:
            best[instance.family] = instance
    return [(i.name, i.system, i.final) for i in best.values()]


def _sweep(designs):
    for _, system, final in designs:
        with BmcSession(system, properties={"target": final}) as session:
            result = session.sweep(MAX_K, method="sat-incremental")
        assert result.per_bound


def _best_of(fn, designs, rounds=ROUNDS):
    """Min over rounds — the standard way to strip scheduler noise."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn(designs)
        best = min(best, time.perf_counter() - start)
    return best


def _measure():
    designs = _deepest_per_family()
    _sweep(designs)                       # warm-up (interning, alloc)

    assert current_tracer() is NULL_TRACER, \
        "benchmark must start with telemetry disabled"
    disabled_s = _best_of(_sweep, designs)
    assert len(current_tracer()) == 0, \
        "NullTracer buffered events on the disabled path"

    tracer = Tracer()
    prev_tracer = set_tracer(tracer)
    prev_metrics = set_metrics(MetricsRegistry())
    try:
        enabled_s = _best_of(_sweep, designs)
    finally:
        set_tracer(prev_tracer)
        set_metrics(prev_metrics)
    assert len(tracer) > 0, "enabled tracer recorded nothing"

    overhead = enabled_s / disabled_s - 1.0
    print()
    print(f"suite sweep (max_k={MAX_K}), best of {ROUNDS}:")
    print(f"  telemetry off: {disabled_s * 1e3:8.1f} ms")
    print(f"  telemetry on : {enabled_s * 1e3:8.1f} ms")
    print(f"  overhead: {overhead * 100:+.2f}%")
    try:
        import _emit
        _emit.record(disabled_s=disabled_s, enabled_s=enabled_s,
                     overhead=overhead, guard_relative=0.03,
                     guard_absolute_s=0.010,
                     events_recorded=len(tracer))
    except ImportError:      # pytest run without benchmarks/ on path
        pass
    return disabled_s, enabled_s, overhead


def bench_telemetry_overhead(benchmark):
    """Fully-enabled telemetry adds <3% to the suite sweep (so the
    disabled hooks, a strict subset of that work, are <3% a fortiori).
    """
    disabled_s, enabled_s, overhead = benchmark.pedantic(
        _measure, rounds=1, iterations=1)
    # <3% relative, with 10 ms absolute slack against timer noise.
    assert enabled_s - disabled_s < 0.03 * disabled_s + 0.010, \
        f"telemetry overhead {overhead * 100:.2f}% exceeds the 3% guard"


if __name__ == "__main__":
    import _emit
    raise SystemExit(_emit.run(globals()))
