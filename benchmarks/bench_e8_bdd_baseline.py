"""E8 — the classical baselines' memory behaviour (paper §1).

The introduction motivates BMC by the memory explosion of symbolic
model checking: "BDD-based techniques, SAT-based methods for image
computation ... and SAT-based reachability analysis based on
'all-solutions' SAT solvers ... all suffer from the memory explosion
problem on modern test cases."

This bench shows both baselines working on a friendly design and
blowing through a node/blocking budget on a dense one — while jSAT
answers the same deep query within a constant-size clause database.
"""

from repro.bdd import BddReachability
from repro.bmc import AllSatReachability, check_reachability
from repro.logic import expr as ex
from repro.models import counter, mixer
from repro.sat.types import SolveResult


def bench_e8_bdd_friendly_vs_dense(benchmark):
    def run():
        out = {}
        friendly, _, _ = counter.make(8, 1)
        reach = BddReachability(friendly, max_nodes=500_000)
        out["friendly_states"] = reach.count_reachable()
        out["friendly_nodes"] = reach.manager.size()

        dense, _, _ = mixer.make(12, 4)
        blown = BddReachability(dense, max_nodes=30_000)
        try:
            blown.reachable_fixpoint()
            out["dense_blowup"] = False
        except MemoryError:
            out["dense_blowup"] = True
        out["dense_nodes"] = blown.manager.size()

        target = ex.var("x11")
        jsat = check_reachability(dense, target, 24, "jsat")
        out["jsat_status"] = jsat.status
        out["jsat_peak"] = jsat.stats["peak_db_literals"]
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(f"counter(8): {out['friendly_states']} reachable states in "
          f"{out['friendly_nodes']} BDD nodes")
    print(f"mixer(12,4): BDD node budget exceeded = "
          f"{out['dense_blowup']} ({out['dense_nodes']} nodes)")
    print(f"jsat on the same dense design, k=24: "
          f"{out['jsat_status'].name} with peak {out['jsat_peak']} "
          f"clause-literals")
    assert out["friendly_states"] == 256
    assert out["dense_blowup"]
    assert out["jsat_status"] is not SolveResult.UNKNOWN
    assert out["jsat_peak"] < 30_000


def bench_e8_allsat_blocking_growth(benchmark):
    """All-solutions enumeration pays per enumerated state."""
    def run():
        system, _, _ = counter.make(6, 1)
        asr = AllSatReachability(system)
        reached, iterations = asr.reachable_fixpoint()
        return len(reached), iterations, asr.total_blocking_literals

    states, iterations, peak = benchmark.pedantic(run, rounds=1,
                                                  iterations=1)
    print()
    print(f"counter(6): {states} states in {iterations} iterations, "
          f"total blocking literals {peak}")
    assert states == 64
    # Blocking clauses scale with the enumerated set — the §1 blow-up.
    assert peak >= states

if __name__ == "__main__":
    import _emit
    raise SystemExit(_emit.run(globals()))
