"""Unbounded-prover benchmark: conclusive HOLDS where bounded BMC says
"no counterexample up to k".

For every suite family this script derives a *true* safety property
from the design itself — ``AG !(cube)`` for a concrete state the BDD
fixpoint proves unreachable — and checks it twice through the
specification layer:

* bounded only: the verdict is HOLDS but inconclusive ("holds up to
  k"), exactly what ``repro check --require-proof`` refuses to pass;
* with a prover paired (k-induction / interpolation / diameter): the
  verdict must upgrade to a conclusive, *proved* HOLDS.

Every proof is differentially validated: the BDD oracle must agree the
cube is unreachable, and an emitted inductive invariant must pass
``validate_invariant`` (contains init, excludes bad, closed under TR).

Three families (counter, gray, barrel) reach their entire state space,
so no non-trivial state invariant is true of them; they are reported
and excluded.  The guard requires a conclusive proof for >= 8 of the
remaining families.

Run:  PYTHONPATH=src python benchmarks/bench_unbounded.py
"""

import itertools
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
import _emit

from repro.bdd.reachability import BddReachability
from repro.bmc.provers import validate_invariant
from repro.harness.report import format_table
from repro.logic import expr as ex
from repro.models import build_suite
from repro.sat import Budget
from repro.spec import Invariant, PropertyChecker, Verdict

REQUIRED_PROVED_FAMILIES = 8
PROVER_ORDER = ("k-induction", "interpolation", "diameter")
MAX_LATCHES = 8
PROVER_BUDGET_S = 20.0


def _unreachable_cube(system):
    """A concrete state the BDD fixpoint proves unreachable, or None."""
    reach = BddReachability(system)
    reached, _ = reach.reachable_fixpoint()
    m = reach.manager
    names = system.state_vars
    for bits in itertools.product([False, True], repeat=len(names)):
        cube = ex.mk_and(*[ex.var(v) if b else ex.mk_not(ex.var(v))
                           for v, b in zip(names, bits)])
        if m.apply_and(m.from_expr(cube), reached) == m.false:
            return cube
    return None


def _candidates():
    """(family, instance, unreachable-cube) triples, one per family."""
    by_family = {}
    for inst in build_suite():
        by_family.setdefault(inst.family, []).append(inst)
    out = []
    for family in sorted(by_family):
        chosen = None
        for inst in sorted(by_family[family],
                           key=lambda i: len(i.system.state_vars)):
            if len(inst.system.state_vars) > MAX_LATCHES:
                continue
            cube = _unreachable_cube(inst.system)
            if cube is not None:
                chosen = (family, inst, cube)
                break
        out.append(chosen or (family, None, None))
    return out


def _check(inst, cube, prover):
    checker = PropertyChecker(inst.system,
                              properties={"safe": Invariant(
                                  ex.mk_not(cube))},
                              prover=prover, prover_max_k=48)
    try:
        return checker.check("safe", inst.k,
                             budget=Budget(max_seconds=PROVER_BUDGET_S)
                             if prover else None)
    finally:
        checker.close()


def main() -> None:
    rows = []
    proved_families = []
    skipped = []
    inconclusive_bounded = 0
    for family, inst, cube in _candidates():
        if inst is None:
            skipped.append(family)
            rows.append([family, "-", "all states reachable", "-", "-"])
            continue

        bounded = _check(inst, cube, prover=None)
        assert bounded.verdict is Verdict.HOLDS, \
            f"{family}: bounded check refuted a BDD-unreachable cube"
        assert not bounded.conclusive, \
            f"{family}: bounded check claims conclusiveness without " \
            f"a prover"
        inconclusive_bounded += 1

        proved_by = None
        elapsed = 0.0
        for prover in PROVER_ORDER:
            start = time.perf_counter()
            result = _check(inst, cube, prover)
            elapsed = time.perf_counter() - start
            if result.proved:
                # Differential validation: verdict against the BDD
                # oracle (the cube IS unreachable by construction),
                # invariant against the three inductiveness queries.
                assert result.verdict is Verdict.HOLDS
                assert result.conclusive
                if result.invariant is not None:
                    assert validate_invariant(inst.system, cube,
                                              result.invariant), \
                        f"{family}: {prover} emitted a bogus invariant"
                proved_by = prover
                break
        if proved_by:
            proved_families.append(family)
        rows.append([family, inst.name,
                     "holds up to %d (bounded)" % bounded.k,
                     proved_by or "none", f"{elapsed * 1e3:.1f}"])

    print(format_table(
        ["family", "instance", "bounded verdict", "proved by", "ms"],
        rows))
    print(f"\nconclusive HOLDS: {len(proved_families)} families "
          f"(need >= {REQUIRED_PROVED_FAMILIES}); "
          f"no true invariant exists for: {', '.join(skipped) or '-'}")

    _emit.record(proved_families=len(proved_families),
                 candidate_families=13 - len(skipped),
                 skipped_families=skipped,
                 inconclusive_bounded=inconclusive_bounded,
                 guard_required_proved=REQUIRED_PROVED_FAMILIES)
    assert len(proved_families) >= REQUIRED_PROVED_FAMILIES, \
        f"only {len(proved_families)} families proved " \
        f"(need {REQUIRED_PROVED_FAMILIES})"


if __name__ == "__main__":
    raise SystemExit(_emit.run(globals()))
