"""E6 — peak resident formula: the title's space-efficiency claim.

Measures the solver clause database (total literal occurrences, the
quantity the paper's 1 GB memory limit bounds) while solving the same
query with the unrolled formula (1) and with jSAT.  The paper's claim:
jSAT's footprint is one TR copy plus per-frame state bookkeeping,
whereas unrolling pays k TR copies plus the learnt clauses over them.
"""

from repro.harness.experiments import run_e6


def bench_e6_memory(benchmark):
    rows, report = benchmark.pedantic(
        lambda: run_e6(width=8, bounds=(4, 8, 16, 32)),
        rounds=1, iterations=1)
    print()
    print(report)
    for row in rows:
        assert row["jsat_peak"] < row["unroll_peak"], row
        # jSAT's peak stays within a small factor of its TR-only base.
        assert row["jsat_peak"] < 8 * row["jsat_base"]
    # Unrolling's peak grows steeply with k; jSAT's barely moves.
    unroll_growth = rows[-1]["unroll_peak"] / rows[0]["unroll_peak"]
    jsat_growth = rows[-1]["jsat_peak"] / max(1, rows[0]["jsat_peak"])
    assert unroll_growth > 4 * jsat_growth


def bench_e6_memory_budget_cliff(benchmark):
    """Under a hard clause-database cap, unrolling dies first.

    The analogue of the paper's 1 GB limit: give both methods the same
    literal cap; the unrolled encoding cannot even be *loaded* at deep
    bounds while jSAT stays comfortably inside.
    """
    from repro.bmc import check_reachability
    from repro.logic import expr as ex
    from repro.models import mixer
    from repro.sat.types import Budget, SolveResult

    # Primary inputs keep the unrolled formula from collapsing under
    # level-0 constant propagation (a fully deterministic design would
    # let the SAT preprocessor sidestep the memory wall).
    circuit = mixer.make_circuit(10, 4, input_bits=3)
    system = circuit.to_transition_system()
    target = ex.var("x9")
    cap = Budget(max_literals=60_000, max_seconds=20.0)

    def run():
        out = {}
        k = 48
        out["unroll"] = check_reachability(system, target, k,
                                           "sat-unroll", budget=cap)
        out["jsat"] = check_reachability(system, target, k, "jsat",
                                         budget=cap)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(f"unroll: {out['unroll'].status.name}   "
          f"jsat: {out['jsat'].status.name} "
          f"(peak {out['jsat'].stats['peak_db_literals']} lits)")
    # The unrolled formula alone exceeds the cap -> UNKNOWN (memory-out);
    # jSAT decides the query inside the same cap.
    assert out["unroll"].status is SolveResult.UNKNOWN
    assert out["jsat"].status is not SolveResult.UNKNOWN
    assert out["jsat"].stats["peak_db_literals"] < 60_000

if __name__ == "__main__":
    import _emit
    raise SystemExit(_emit.run(globals()))
