"""Model-reduction benchmark: the multi-property suite sweep, reduced
vs unreduced.

Workload: every family's multi-property instance (the five
target-centric properties plus the three narrow-cone probes, see
:func:`repro.models.suite.default_property_bundle`), embedded in a
realistic multi-block design context — the family's system composed
side-by-side with two bystander blocks
(:func:`repro.system.model.compose_systems`), the "many blocks, one
netlist" shape real model-checking inputs have.  Every property still
speaks only about its own block, so the verdicts (and the family's
ground truth) are untouched.

The acceptance claim: sweeping the full suite with ``reduce="auto"``
must be >= 1.3x faster in aggregate than with ``reduce="off"``
(measured ~3x).  Why it wins: with reduction on, the session groups
properties by reduced cone and answers each group over its own shared
unrolling — the cone-of-influence pass strips the bystander blocks
(and any constant/duplicate latches) from every query, so each
transition frame costs the property's cone, not the whole design.

Correctness is re-checked in the same run under the strengthening
contract of :mod:`repro.reduce`: loop-free searches must produce
identical (verdict, bound) pairs; lasso searches must be conclusive
whenever the unreduced run is, with the same verdict, resolving no
later (see ``tests/test_reduce.py``).

Run:  PYTHONPATH=src python benchmarks/bench_reduce.py
"""

import time

from repro.bmc import BmcSession
from repro.harness.report import format_table
from repro.models import build_property_suite, gray, shift_register
from repro.spec.ltl import needs_loop_closure
from repro.spec.property import search_plan
from repro.system.model import compose_systems

REQUIRED_SPEEDUP = 1.3
REPEATS = 3


def build_bench_instances():
    """The suite's multi-property instances, each embedded beside two
    bystander blocks (a Gray counter and a token ring)."""
    bystander_a, _, _ = gray.make(4)
    bystander_b, _, _ = shift_register.make(6)
    out = []
    for inst in build_property_suite():
        composed = compose_systems(inst.system, bystander_a, bystander_b,
                                   prefixes=("", "blkA.", "blkB."))
        out.append((inst.name, composed, inst.properties, inst.k))
    return out


def _sweep_suite(instances, reduce_mode):
    results = {}
    per_instance = {}
    start = time.perf_counter()
    for name, system, properties, max_k in instances:
        with BmcSession(system, properties=properties,
                        reduce=reduce_mode) as session:
            t0 = time.perf_counter()
            swept = session.sweep_properties(max_k)
            per_instance[name] = time.perf_counter() - t0
        for prop_name, result in swept.items():
            results[(name, prop_name)] = result
    return results, per_instance, time.perf_counter() - start


def _check_agreement(plain, reduced):
    for key, a in plain.items():
        b = reduced[key]
        loopy = needs_loop_closure(search_plan(a.prop)[0])
        if a.conclusive:
            assert b.conclusive and b.verdict is a.verdict, key
            assert loopy or b.k == a.k, key
            assert b.k <= a.k, key
        elif b.conclusive:
            assert loopy, key        # only lasso searches may strengthen
        else:
            assert b.verdict is a.verdict, key


def main() -> None:
    instances = build_bench_instances()
    n_props = sum(len(props) for _, _, props, _ in instances)
    n_latches = sum(len(system.state_vars) for _, system, _, _ in instances)
    print(f"multi-property suite sweep in a multi-block context: "
          f"{len(instances)} instances, {n_props} (instance, property) "
          f"cells, {n_latches} total latches\n")

    _sweep_suite(instances, "auto")            # warm-up
    plain = reduced = None
    plain_s = reduced_s = float("inf")
    plain_per = reduced_per = None
    for _ in range(REPEATS):
        plain, per, s = _sweep_suite(instances, "off")
        if s < plain_s:
            plain_s, plain_per = s, per
        reduced, per, s = _sweep_suite(instances, "auto")
        if s < reduced_s:
            reduced_s, reduced_per = s, per

    _check_agreement(plain, reduced)

    rows = [[name, f"{plain_per[name] * 1e3:.1f}",
             f"{reduced_per[name] * 1e3:.1f}",
             f"{plain_per[name] / max(reduced_per[name], 1e-9):.2f}x"]
            for name in plain_per]
    print(format_table(
        ["instance", "no-reduce ms", "reduce ms", "speedup"], rows))

    speedup = plain_s / reduced_s
    print(f"\ntotal: no-reduce {plain_s * 1e3:.1f} ms, "
          f"reduce {reduced_s * 1e3:.1f} ms -> {speedup:.2f}x "
          f"(required >= {REQUIRED_SPEEDUP}x)")
    assert speedup >= REQUIRED_SPEEDUP, (
        f"model-reduction speedup regressed: "
        f"{speedup:.2f}x < {REQUIRED_SPEEDUP}x")
    print("OK")

if __name__ == "__main__":
    import _emit
    raise SystemExit(_emit.run(globals()))
