"""Incremental bound-sweep benchmarks: one solver vs a fresh solver per bound.

Two measurements back the incremental driver's claim:

* **suite sweep speedup** — the deepest instance of every suite family
  swept to max_k = 8 with per-bound ``sat-unroll`` (re-encode, fresh
  solver, all learnt clauses discarded) vs ``sat-incremental`` (one
  solver, one new transition frame per bound, final constraints retired
  through assumption groups).  Statuses must agree bound-for-bound and
  every witness must replay; the incremental sweep must be >= 2x faster
  in aggregate.
* **formula-growth sweep** — the E2 mixer designs, whose transition
  relation dwarfs the state vector, with an off-orbit (unreachable)
  target so every sweep runs the full 9 bounds.  This is the regime
  where re-encoding k frames per bound is most wasteful: the naive
  sweep encodes O(K^2) frames in total, the incremental one O(K).
"""

import time

from repro.bmc import sweep
from repro.models import build_suite, mixer
from repro.models._common import value_equals
from repro.sat.types import SolveResult

MAX_K = 8


def _deepest_per_family():
    best = {}
    for instance in build_suite():
        incumbent = best.get(instance.family)
        if incumbent is None or instance.k > incumbent.k:
            best[instance.family] = instance
    return [(i.name, i.system, i.final) for i in best.values()]


def _timed_sweep(system, final, method):
    start = time.perf_counter()
    result = sweep(system, final, MAX_K, method=method)
    return result, time.perf_counter() - start


def _compare(designs):
    """Run both sweeps over the designs; return rows + totals."""
    rows = []
    total_naive = total_incremental = 0.0
    for name, system, final in designs:
        naive, naive_s = _timed_sweep(system, final, "sat-unroll")
        incremental, incremental_s = _timed_sweep(system, final,
                                                  "sat-incremental")
        # Identical verdicts at every bound, and real witnesses.
        assert [b.status for b in naive.per_bound] \
            == [b.status for b in incremental.per_bound], name
        assert naive.shortest_k == incremental.shortest_k, name
        for swept in (naive, incremental):
            if swept.trace is not None:
                swept.trace.validate(system, final)
                assert swept.trace.length == swept.shortest_k
        total_naive += naive_s
        total_incremental += incremental_s
        rows.append((name, len(incremental.per_bound),
                     incremental.status.name, naive_s, incremental_s))
    return rows, total_naive, total_incremental


def _print_rows(rows, total_naive, total_incremental):
    print()
    print(f"{'design':26s} {'bounds':>6s} {'verdict':>8s} "
          f"{'per-bound ms':>12s} {'incremental ms':>14s} {'speedup':>8s}")
    for name, bounds, verdict, naive_s, incremental_s in rows:
        ratio = naive_s / incremental_s if incremental_s > 0 else 0.0
        print(f"{name:26s} {bounds:>6d} {verdict:>8s} "
              f"{naive_s * 1e3:>12.1f} {incremental_s * 1e3:>14.1f} "
              f"{ratio:>7.2f}x")
    speedup = total_naive / total_incremental if total_incremental else 0.0
    print(f"{'TOTAL':26s} {'':6s} {'':8s} {total_naive * 1e3:>12.1f} "
          f"{total_incremental * 1e3:>14.1f} {speedup:>7.2f}x")
    return speedup


def bench_incremental_suite_sweep(benchmark):
    """Suite sweep at max_k=8: incremental must be >= 2x faster overall."""
    designs = _deepest_per_family()

    rows, total_naive, total_incremental = benchmark.pedantic(
        lambda: _compare(designs), rounds=1, iterations=1)
    speedup = _print_rows(rows, total_naive, total_incremental)
    assert speedup >= 2.0


def _off_orbit_target(width, rounds, horizon=64):
    """A state value the deterministic mixer never visits early on."""
    visited = {mixer.simulate_rounds(width, rounds, j)
               for j in range(horizon)}
    value = next(v for v in range(1 << width) if v not in visited)
    return value_equals([f"x{i}" for i in range(width)], value)


def bench_incremental_formula_growth(benchmark):
    """E2 regime: big TR, full-length UNSAT sweeps (all 9 bounds)."""
    designs = []
    for width, rounds in ((8, 3), (10, 4), (12, 4)):
        system, _, _ = mixer.make(width, rounds)
        designs.append((f"mixer{width}x{rounds}-offorbit", system,
                        _off_orbit_target(width, rounds)))

    rows, total_naive, total_incremental = benchmark.pedantic(
        lambda: _compare(designs), rounds=1, iterations=1)
    speedup = _print_rows(rows, total_naive, total_incremental)
    # Every sweep must have refuted all 9 bounds.
    assert all(bounds == MAX_K + 1 and verdict == SolveResult.UNSAT.name
               for _, bounds, verdict, _, _ in rows)
    assert speedup >= 2.0

if __name__ == "__main__":
    import _emit
    raise SystemExit(_emit.run(globals()))
