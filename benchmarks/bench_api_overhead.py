"""API-overhead guard: `BmcSession` dispatch must be (nearly) free.

The api_redesign moved every query behind the backend registry and the
stateful session front end.  This benchmark pins the cost of that
indirection: the suite sweep (deepest instance per family, max_k = 8)
run two ways —

* **direct** — constructing :class:`IncrementalBmc` by hand and
  calling ``sweep`` on it, i.e. the raw driver the pre-redesign
  ``sweep()`` function wrapped with zero object dispatch;
* **session** — the same sweep through ``BmcSession.sweep`` (registry
  lookup, typed-options validation, backend-instance cache, observer
  plumbing).

Both paths run the identical solver work, so the difference is pure
dispatch.  The guard: session wall-clock within 2% of direct (plus a
millisecond-scale absolute slack so sub-millisecond timer noise cannot
fail the build on a fast machine).
"""

import time

from repro.bmc import BmcSession, IncrementalBmc
from repro.models import build_suite

MAX_K = 8
ROUNDS = 5


def _deepest_per_family():
    best = {}
    for instance in build_suite():
        incumbent = best.get(instance.family)
        if incumbent is None or instance.k > incumbent.k:
            best[instance.family] = instance
    return [(i.name, i.system, i.final) for i in best.values()]


def _sweep_direct(designs):
    for _, system, final in designs:
        result = IncrementalBmc(system, final).sweep(MAX_K)
        assert result.per_bound


def _sweep_session(designs):
    for _, system, final in designs:
        with BmcSession(system, properties={"target": final}) as session:
            result = session.sweep(MAX_K, method="sat-incremental")
        assert result.per_bound


def _best_of(fn, designs, rounds=ROUNDS):
    """Min over rounds — the standard way to strip scheduler noise."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn(designs)
        best = min(best, time.perf_counter() - start)
    return best


def _measure():
    designs = _deepest_per_family()
    # One warm-up pass each: import, expression-interning and allocator
    # warm-up otherwise lands entirely on whichever path runs first.
    _sweep_direct(designs)
    _sweep_session(designs)
    direct_s = _best_of(_sweep_direct, designs)
    session_s = _best_of(_sweep_session, designs)
    overhead = session_s / direct_s - 1.0
    print()
    print(f"suite sweep (13 families, max_k={MAX_K}), best of {ROUNDS}:")
    print(f"  direct driver : {direct_s * 1e3:8.1f} ms")
    print(f"  via BmcSession: {session_s * 1e3:8.1f} ms")
    print(f"  dispatch overhead: {overhead * 100:+.2f}%")
    try:
        import _emit
        _emit.record(direct_s=direct_s, session_s=session_s,
                     overhead=overhead, guard_relative=0.02,
                     guard_absolute_s=0.005)
    except ImportError:      # pytest run without benchmarks/ on path
        pass
    return direct_s, session_s, overhead


def bench_session_dispatch_overhead(benchmark):
    """BmcSession dispatch adds <2% wall-clock to the suite sweep."""
    direct_s, session_s, overhead = benchmark.pedantic(
        _measure, rounds=1, iterations=1)
    # <2% relative, with 5 ms absolute slack against timer noise.
    assert session_s - direct_s < 0.02 * direct_s + 0.005, \
        f"dispatch overhead {overhead * 100:.2f}% exceeds the 2% guard"

if __name__ == "__main__":
    import _emit
    raise SystemExit(_emit.run(globals()))
