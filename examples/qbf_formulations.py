#!/usr/bin/env python3
"""The three reachability formulations, exported and solved.

Shows the actual artifacts of the paper's §2: builds formulae (1), (2)
and (3) for the same query, prints their sizes and prefix shapes,
writes the QBF forms to QDIMACS (the solver exchange format), and races
the general-purpose QDPLL against jSAT on the formula-(2) semantics —
the paper's §3 evaluation in miniature.

Run:  python examples/qbf_formulations.py
"""

from repro.bmc import (JsatSolver, encode_qbf, encode_squaring,
                       encode_unrolled)
from repro.models import lfsr
from repro.qbf import QdpllSolver
from repro.sat.types import Budget


def main() -> None:
    system, final, depth = lfsr.make(5, 11)
    k = 4
    print(f"design: {system.name}; query: exact-{k} reachability\n")

    unrolled = encode_unrolled(system, final, k)
    print(f"formula (1): {unrolled.stats()}")

    qbf = encode_qbf(system, final, k)
    shape = " ".join(f"{q}{len(vs)}" for q, vs in qbf.pcnf.prefix)
    print(f"formula (2): {qbf.stats()}")
    print(f"             prefix shape: {shape}")

    squaring = encode_squaring(system, final, k)
    shape = " ".join(f"{q}{len(vs)}" for q, vs in squaring.pcnf.prefix)
    print(f"formula (3): {squaring.stats()}")
    print(f"             prefix shape: {shape}\n")

    qdimacs = qbf.pcnf.to_qdimacs(
        comments=[f"{system.name} exact-{k} reachability, formula (2)"])
    print("QDIMACS export of formula (2), first 5 lines:")
    for line in qdimacs.splitlines()[:5]:
        print(f"    {line}")
    print()

    print("racing the two decision procedures for formula (2):")
    solver = QdpllSolver(qbf.pcnf)
    status = solver.solve(budget=Budget(max_seconds=2.0))
    print(f"  general-purpose QDPLL: {status.name:8s} "
          f"({solver.stats.decisions} decisions)")

    jsat = JsatSolver(system, final, k)
    status = jsat.solve()
    print(f"  special-purpose jSAT:  {status.name:8s} "
          f"({jsat.stats.queries} window queries, "
          f"{jsat.stats.sat_conflicts} conflicts)")
    print("\n(the paper's §3: general QBF solvers solved ~3 of 234 such "
          "instances;\n jSAT solved 143 within the same limits)")


if __name__ == "__main__":
    main()
