#!/usr/bin/env python3
"""Verifying a round-robin arbiter end to end.

The workflow a verification engineer would run on a real block:

1. *bug hunting* — BMC sweep with jSAT over increasing bounds to look
   for a mutual-exclusion violation (two grants at once);
2. *liveness-ish check* — confirm the last client can actually get a
   grant, and extract the witness waveform;
3. *full proof* — close the property for ALL depths with k-induction
   and, independently, with interpolation-based model checking.

Run:  python examples/arbiter_verification.py
"""

from repro.bmc import (BmcSession, prove_by_induction,
                       prove_by_interpolation)
from repro.models import arbiter
from repro.sat.types import SolveResult


def main() -> None:
    n = 4
    system, grant_target, grant_depth = arbiter.make(n)
    _, double_grant, _ = arbiter.make_mutex_check(n)
    print(f"arbiter with {n} clients: {system.num_state_bits} state bits, "
          f"{len(system.input_vars)} inputs\n")

    # -- 1. hunt for a mutual-exclusion violation up to depth 12.  One
    # session = one jSAT solver; its no-good cache carries over between
    # the 13 deepening queries.
    print("[1] BMC sweep for double-grant (jSAT, k = 0..12)")
    with BmcSession(system, double_grant, method="jsat") as session:
        hit, history = session.find_reachable(12)
    assert hit is None, "mutual exclusion violated?!"
    print(f"    no violation up to k=12 "
          f"({len(history)} bounded queries)\n")

    # -- 2. show client n-1 can win a grant, with the witness.
    print(f"[2] reachability of a grant for client {n - 1}")
    with BmcSession(system, grant_target) as session:
        result = session.check(grant_depth, method="jsat")
    assert result.status is SolveResult.SAT
    print(f"    granted at k={grant_depth}; witness:")
    show = [f"tok{i}" for i in range(n)] + [f"gnt{n - 1}"]
    print("    " + result.trace.format(show).replace("\n", "\n    "))
    print()

    # -- 3a. unbounded proof by k-induction.  The property is not
    # 1-inductive: unreachable multi-token states admit long loop-free
    # "good" paths into a double grant, so the induction depth climbs
    # (k=17 for 4 clients) — the paper-intro's warning that "there are
    # still many cases where the induction depth is exponential".
    print("[3a] k-induction on the double-grant property")
    induction = prove_by_induction(system, double_grant, max_k=20)
    print(f"    {induction.status} at k={induction.k}"
          f"  (deep: unreachable one-hot violations stretch the "
          f"simple-path argument)\n")
    assert induction.status == "proved"

    # -- 3b. unbounded proof by interpolation (McMillan).
    print("[3b] interpolation-based model checking")
    interp = prove_by_interpolation(system, double_grant, max_k=8)
    print(f"    {interp.status} at k={interp.k} after "
          f"{interp.iterations} refinements")
    assert interp.status == "proved"
    print(f"    inductive invariant over "
          f"{sorted(interp.invariant.support())}")


if __name__ == "__main__":
    main()
