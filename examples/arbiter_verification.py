#!/usr/bin/env python3
"""Verifying a round-robin arbiter end to end.

The workflow a verification engineer would run on a real block:

1. *spec out the block* — name its obligations as first-class
   :mod:`repro.spec` properties: the mutual-exclusion invariant, grant
   reachability, and a bounded-LTL obligation tying requests to
   grants;
2. *bug hunting* — resolve every property over ONE shared unrolling
   (`sweep_properties`): a single incremental solver answers all of
   them, each at its earliest bound, instead of re-encoding the
   transition frames per query;
3. *full proof* — close the invariant for ALL depths with k-induction
   and, independently, with interpolation-based model checking.

Run:  python examples/arbiter_verification.py
"""

from repro.bmc import (BmcSession, prove_by_induction,
                       prove_by_interpolation)
from repro.logic import expr as ex
from repro.models import arbiter
from repro.spec import Invariant, Reachable, parse_spec


def main() -> None:
    n = 4
    circuit = arbiter.make_circuit(n)
    system = circuit.to_transition_system()
    double_grant = circuit.bad["double-grant"]
    grant_target = ex.var(f"gnt{n - 1}")
    print(f"arbiter with {n} clients: {system.num_state_bits} state bits, "
          f"{len(system.input_vars)} inputs\n")

    # -- 1. the specification, as named Property objects.  Spec strings
    # and AST constructors are interchangeable.
    properties = {
        "mutex": Invariant(~double_grant),          # AG !(gnt_i & gnt_j)
        "grant3": Reachable(grant_target),          # EF gnt3
        # A deliberately wrong bounded-LTL obligation in the spec
        # grammar — client 0 holds the token at reset and can win a
        # grant in the very first cycle, so the checker refutes this
        # with a concrete counterexample:
        "gnt0-not-first": parse_spec("X !gnt0"),
    }
    print("[1] specification")
    for name, prop in properties.items():
        print(f"    {name:15s} {prop}")
    print()

    # -- 2. one shared unrolling answers all three: k transition frames
    # are encoded once into one incremental solver, and each property
    # rides on its own activation group.
    print("[2] multi-property sweep over one shared unrolling (k = 0..12)")
    with BmcSession(system, properties=properties) as session:
        results = session.sweep_properties(12)
    for name, result in results.items():
        evidence = "certificate" if result.conclusive \
            else f"no counterexample up to k={result.k}"
        print(f"    {name:15s} {result.verdict.value.upper():9s} "
              f"({evidence})")
    assert results["mutex"].verdict.value == "holds", \
        "mutual exclusion violated?!"
    print(f"    grant witness at k={results['grant3'].k}:")
    show = [f"tok{i}" for i in range(n)] + [f"gnt{n - 1}"]
    print("    " + results["grant3"].trace.format(show)
          .replace("\n", "\n    "))
    print()

    # -- 3a. unbounded proof by k-induction.  The property is not
    # 1-inductive: unreachable multi-token states admit long loop-free
    # "good" paths into a double grant, so the induction depth climbs
    # (k=17 for 4 clients) — the paper-intro's warning that "there are
    # still many cases where the induction depth is exponential".
    print("[3a] k-induction on the double-grant property")
    induction = prove_by_induction(system, double_grant, max_k=20)
    print(f"    {induction.status} at k={induction.k}"
          f"  (deep: unreachable one-hot violations stretch the "
          f"simple-path argument)\n")
    assert induction.status == "proved"

    # -- 3b. unbounded proof by interpolation (McMillan).
    print("[3b] interpolation-based model checking")
    interp = prove_by_interpolation(system, double_grant, max_k=8)
    print(f"    {interp.status} at k={interp.k} after "
          f"{interp.iterations} refinements")
    assert interp.status == "proved"
    print(f"    inductive invariant over "
          f"{sorted(interp.invariant.support())}")


if __name__ == "__main__":
    main()
