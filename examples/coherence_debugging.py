#!/usr/bin/env python3
"""Debugging a cache-coherence protocol with traces and netlist I/O.

A protocol-verification session on the two-agent MSI model:

1. reach interesting protocol states (cache 0 modified; both shared)
   and display the witness waveforms, including the bus inputs;
2. prove the coherence invariant (no M+M, no M+S) by induction;
3. round-trip the design through AIGER ASCII — the exchange format of
   the hardware model-checking community — and re-verify on the
   re-imported netlist, plus a peek at the ISCAS-89 ``.bench`` reader.

Run:  python examples/coherence_debugging.py
"""

from repro.bmc import BmcSession, prove_by_induction
from repro.models import cache_msi
from repro.sat.types import SolveResult
from repro.system import parse_aiger, parse_bench, write_aiger


def main() -> None:
    # -- 1. reach protocol states and show how the bus got us there.
    for target, label in (("m0", "cache 0 in M"),
                          ("both-s", "both caches in S")):
        system, final, depth = cache_msi.make(target)
        with BmcSession(system, final) as session:
            result = session.check(depth, method="jsat")
        assert result.status is SolveResult.SAT
        print(f"[{label}] reachable at k={depth}; witness states:")
        print("  " + result.trace.format(["m0", "s0", "m1", "s1"])
              .replace("\n", "\n  "))
        inputs = result.trace.inputs
        for step, step_inputs in enumerate(inputs):
            fired = [k for k, v in sorted(step_inputs.items()) if v]
            print(f"  step {step}: bus inputs high: {fired or ['-']}")
        print()

    # -- 2. the coherence invariant holds at all depths.
    system, incoherent, _ = cache_msi.make_coherence_check()
    proof = prove_by_induction(system, incoherent, max_k=8)
    print(f"[invariant] M/M and M/S exclusion: {proof.status} "
          f"(induction depth k={proof.k})\n")
    assert proof.status == "proved"

    # -- 3. netlist I/O round trip.
    circuit = cache_msi.make_circuit()
    aiger_text = write_aiger(circuit)
    print(f"[aiger] exported {circuit.name}: "
          f"{aiger_text.splitlines()[0]!r} "
          f"({len(aiger_text.splitlines())} lines)")
    reimported = parse_aiger(aiger_text)
    system2 = reimported.to_transition_system()
    _, final, depth = cache_msi.make("m0")
    with BmcSession(system2, final) as session:
        result = session.check(depth, method="sat-unroll")
    print(f"[aiger] re-imported netlist verifies the same: "
          f"{result.status.name} at k={depth}\n")

    bench_text = """
    # tiny .bench netlist (ISCAS-89 style)
    INPUT(req)
    OUTPUT(busy)
    state = DFF(nxt)
    nxt   = OR(req, state)
    busy  = BUFF(state)
    """
    bench_circuit = parse_bench(bench_text, "latch-demo")
    states = bench_circuit.simulate([{"req": True}, {"req": False}])
    print(f"[bench] parsed {bench_circuit.name}: latch sticks once "
          f"requested -> {[s['state'] for s in states]}")


if __name__ == "__main__":
    main()
