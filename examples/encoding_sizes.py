#!/usr/bin/env python3
"""The paper's space story, measured live.

Sweeps the bound k on a design whose transition relation dwarfs its
state vector (the regime the paper targets) and prints the resident
formula size of each method, plus the peak solver memory of
unrolling vs jSAT on an actual solve — the content of experiments E2
and E6.

Run:  python examples/encoding_sizes.py
"""

from repro.bmc import BmcSession, growth_table
from repro.harness import format_growth
from repro.logic import expr as ex
from repro.models import mixer


def main() -> None:
    system, final, _ = mixer.make(10, 4)
    n = system.num_state_bits
    print(f"design: {system.name}; |TR| = {system.trans_size()} DAG nodes "
          f"vs only n = {n} state bits\n")

    bounds = [1, 2, 4, 8, 16, 32, 64]
    table = growth_table(system, final, bounds)
    print("resident formula size (literal occurrences) per bound k:")
    print(format_growth(table, metric="literals"))
    print()
    print("reading guide (paper §2):")
    print(" * sat-unroll grows ~|TR| per step (k copies of TR);")
    print(" * qbf (formula 2) grows ~n per step — TR appears once;")
    print(" * qbf-squaring (formula 3) grows ~n per *doubling*;")
    print(" * jsat holds a constant clause database.\n")

    # Peak solver memory while actually deciding a query (E6).
    circuit = mixer.make_circuit(10, 4, input_bits=3)
    nd_system = circuit.to_transition_system()
    target = ex.var("x9")
    print("peak clause-database literals while solving (k = 32):")
    with BmcSession(nd_system, target) as session:
        unroll = session.check(32, method="sat-unroll")
        jsat = session.check(32, method="jsat")
    print(f"  sat-unroll: {unroll.stats['solver_peak_db_literals']:>8d} "
          f"({unroll.status.name})")
    print(f"  jsat:       {jsat.stats['peak_db_literals']:>8d} "
          f"({jsat.status.name})")
    ratio = (unroll.stats['solver_peak_db_literals']
             / max(1, jsat.stats['peak_db_literals']))
    print(f"  -> jSAT uses {ratio:.0f}x less resident formula")


if __name__ == "__main__":
    main()
