"""Drive a ``repro serve`` daemon with concurrent clients.

Usage::

    repro serve --socket /tmp/repro.sock &
    PYTHONPATH=src python examples/serve_clients.py /tmp/repro.sock

With no argument (or a socket path nothing is listening on) the
script boots its own daemon for the duration of the run.  Four
threads each open their own connection and submit real checks;
alongside them the script validates the protocol's error behaviour
(did-you-mean hints on typos), streams a sweep's per-bound progress,
and exercises coalescing by submitting the same query from two
clients at once.  Exits non-zero if any response violates the
documented schema — CI uses this as the daemon smoke test.
"""

import json
import os
import socket
import sys
import tempfile
import threading
import time

from repro.serve import ServeClient, ServeDaemon, ServeError

CHECKS = [("counter", 9), ("gray", 6), ("ring", 4), ("lfsr", 5)]
FAILURES = []


def _client_worker(endpoint, family, k):
    try:
        with ServeClient(socket_path=endpoint) as client:
            done = client.run(family, k, method="jsat")
            result = done["result"]
            for field in ("status", "k", "method", "seconds", "stats"):
                assert field in result, f"result missing {field!r}"
            assert done["state"] == "done", done
            assert result["status"] in ("SAT", "UNSAT", "UNKNOWN")
    except Exception as exc:  # noqa: BLE001 - collect, report, fail
        FAILURES.append(f"{family} k={k}: {type(exc).__name__}: {exc}")


def _check_validation(endpoint):
    """Typos must come back as errors with did-you-mean hints."""
    raw = socket.socket(socket.AF_UNIX)
    raw.connect(endpoint)
    try:
        raw.sendall(b'{"op": "sumbit", "id": 1}\n')
        reply = json.loads(raw.makefile("rb").readline())
        assert reply["ok"] is False, reply
        assert "submit" in reply["error"], reply
    finally:
        raw.close()
    with ServeClient(socket_path=endpoint) as client:
        try:
            client.request("submit", family="counter", k=3,
                           budget={"max_conflits": 5})
        except ServeError as exc:
            assert "max_conflicts" in str(exc), exc
        else:
            raise AssertionError("bad budget key was accepted")


def _check_streaming(endpoint):
    """A sweep streams one bound event per rung, in order."""
    bounds = []
    with ServeClient(socket_path=endpoint) as client:
        done = client.run("counter", 9, kind="sweep",
                          method="sat-incremental",
                          on_bound=lambda e: bounds.append(e["k"]))
    assert done["result"]["status"] == "SAT", done
    assert bounds == sorted(bounds) and len(bounds) >= 1, bounds


def _check_coalescing(endpoint):
    """Identical concurrent submissions share one execution."""
    with ServeClient(socket_path=endpoint) as a, \
            ServeClient(socket_path=endpoint) as b:
        ack_a = a.submit("gray", k=4, method="sat-unroll")
        ack_b = b.submit("gray", k=4, method="sat-unroll")
        assert ack_b["job"] == ack_a["job"] or ack_b.get("cached"), \
            (ack_a, ack_b)
        done_a = a.wait(ack_a)
        done_b = b.wait(ack_b)
        assert done_a["result"]["status"] == done_b["result"]["status"]


def _ensure_daemon(endpoint):
    """Boot a daemon of our own unless something already listens."""
    if os.path.exists(endpoint):
        return endpoint, None
    tmp = tempfile.mkdtemp(prefix="repro-serve-")
    endpoint = os.path.join(tmp, "repro.sock")
    daemon = ServeDaemon(socket_path=endpoint, jobs=2)
    thread = threading.Thread(target=daemon.run, daemon=True)
    thread.start()
    deadline = time.time() + 10
    while not os.path.exists(endpoint):
        assert time.time() < deadline, "daemon never bound its socket"
        time.sleep(0.02)
    return endpoint, thread


def main() -> int:
    endpoint = sys.argv[1] if len(sys.argv) > 1 else "/tmp/repro.sock"
    endpoint, own_daemon = _ensure_daemon(endpoint)
    threads = [threading.Thread(target=_client_worker,
                                args=(endpoint, family, k))
               for family, k in CHECKS]
    for t in threads:
        t.start()
    _check_validation(endpoint)
    _check_streaming(endpoint)
    _check_coalescing(endpoint)
    for t in threads:
        t.join(timeout=120)
        if t.is_alive():
            FAILURES.append("client thread wedged")
    if FAILURES:
        for failure in FAILURES:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    with ServeClient(socket_path=endpoint) as client:
        stats = client.stats()
        if own_daemon is not None:
            client.shutdown()
    if own_daemon is not None:
        own_daemon.join(timeout=20)
    print(f"{len(CHECKS)} concurrent clients ok; daemon served "
          f"{stats['jobs']['requests']} requests, "
          f"{stats['jobs']['completed']} jobs completed, "
          f"{stats['jobs']['coalesced']} coalesced")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
