#!/usr/bin/env python3
"""Quickstart: properties and backends through one `BmcSession`.

Builds a 4-bit counter and checks it two ways:

* **named properties over one shared unrolling** — an `Invariant`, a
  `Reachable` target and a bounded-LTL formula, all answered by a
  single incremental solver with per-property activation groups;
* **the paper's decision methods** — the same reachability query
  through every registered backend (formula (1) unrolling, the QBF
  encodings, jSAT), with solver state persisting across calls.

Run:  python examples/quickstart.py
"""

from repro.bmc import BmcSession, check_reachability
from repro.models import counter
from repro.sat.types import Budget
from repro.spec import Invariant, Reachable, parse_spec


def main() -> None:
    system, final, depth = counter.make(width=4, target=9)
    print(f"design: {system.name}  (state bits: {system.num_state_bits}, "
          f"|TR| = {system.trans_size()} DAG nodes)")

    # ------------------------------------------------------------------
    # 1. The specification layer: named properties, one shared unrolling.
    # ------------------------------------------------------------------
    properties = {
        "count9": Reachable(final),              # EF (count == 9)
        "no-count9": Invariant(~final),          # AG !(count == 9) - fails
        "c0-toggles": parse_spec("G (c0 -> X !c0)"),   # spec grammar
    }
    print("\nproperties over one shared unrolling (k = 12):")
    with BmcSession(system, properties=properties) as session:
        for name, result in session.check_properties(12).items():
            evidence = "certificate" if result.conclusive \
                else f"bounded, k={result.k}"
            print(f"  {name:12s} -> {result.verdict.value.upper():9s} "
                  f"({evidence}, {result.seconds * 1e3:5.1f} ms)")

    # ------------------------------------------------------------------
    # 2. The paper's comparison: one reachability query, every method.
    # ------------------------------------------------------------------
    print(f"\nquery: is count==9 reachable in exactly {depth} steps?\n")
    with BmcSession(system, properties={"target": final}) as session:
        for method in ("sat-unroll", "jsat", "qbf"):
            # The general-purpose QBF solver needs a leash (that is the
            # paper's point); the others answer instantly.
            budget = Budget(max_seconds=2.0) if method == "qbf" else None
            result = session.check(depth, method=method, budget=budget)
            print(f"{method:12s} -> {result.status.name:8s} "
                  f"({result.seconds * 1e3:7.1f} ms)")
            if result.trace is not None:
                print(result.trace.format(["c0", "c1", "c2", "c3"]))
            print()

        # Iterative squaring checks power-of-two bounds; with
        # self-loops it answers "within k" for any k (here: within
        # 16 >= 9 -> reachable).
        result = session.check(16, method="qbf-squaring",
                               semantics="within",
                               budget=Budget(max_seconds=10.0))
        print(f"qbf-squaring (within 16) -> {result.status.name} "
              f"({result.seconds * 1e3:.1f} ms, "
              f"{result.stats['alternations']} quantifier alternations)")

        # Bound sweep: the session's incremental solver walks k = 0..12
        # and finds the shortest counterexample without re-encoding a
        # single frame twice; on_bound streams per-bound progress.
        swept = session.sweep(12, method="sat-incremental",
                              on_bound=lambda b: print(
                                  f"  bound {b.k}: {b.status.name}"))
        print(f"\nsweep 0..12 (sat-incremental) -> shortest cex at "
              f"k={swept.shortest_k} after {swept.time_to_hit * 1e3:.1f} ms "
              f"({len(swept.per_bound)} bounds checked)")

    # The pre-0.3 function API still works through deprecation shims —
    # one call kept here to show the migration is optional:
    import warnings
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        legacy = check_reachability(system, final, depth, "jsat")
    print(f"\nlegacy shim   -> {legacy.status.name} "
          f"(same verdict, stateless per call)")


if __name__ == "__main__":
    main()
