"""Property-based round-trip tests for the exchange formats."""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.logic import expr as ex
from repro.logic.cnf import CNF
from repro.logic.dimacs import (parse_dimacs, parse_qdimacs, write_dimacs,
                                write_qdimacs)
from repro.system import ExplicitOracle, parse_aiger, write_aiger
from repro.system.random_model import random_circuit

COMMON = dict(deadline=None,
              suppress_health_check=[HealthCheck.too_slow])


@st.composite
def cnfs(draw):
    n = draw(st.integers(1, 12))
    cnf = CNF(n)
    for _ in range(draw(st.integers(0, 25))):
        clause = [draw(st.integers(1, n)) * draw(st.sampled_from((1, -1)))
                  for _ in range(draw(st.integers(1, 4)))]
        cnf.add_clause(clause)
    return cnf


class TestDimacsRoundTrip:
    @given(cnfs())
    @settings(max_examples=60, **COMMON)
    def test_cnf_round_trip(self, cnf):
        back = parse_dimacs(write_dimacs(cnf))
        assert back.clauses == cnf.clauses
        assert back.num_vars == cnf.num_vars

    @given(cnfs(), st.data())
    @settings(max_examples=40, **COMMON)
    def test_qdimacs_round_trip(self, cnf, data):
        variables = list(range(1, cnf.num_vars + 1))
        data.draw(st.randoms()).shuffle(variables)
        prefix = []
        i = 0
        while i < len(variables):
            size = data.draw(st.integers(1, len(variables) - i))
            quantifier = data.draw(st.sampled_from("ae"))
            if prefix and prefix[-1][0] == quantifier:
                prefix[-1] = (quantifier,
                              prefix[-1][1] + tuple(variables[i:i + size]))
            else:
                prefix.append((quantifier, tuple(variables[i:i + size])))
            i += size
        text = write_qdimacs(prefix, cnf)
        prefix2, cnf2 = parse_qdimacs(text)
        assert prefix2 == [b for b in prefix if b[1]]
        assert cnf2.clauses == cnf.clauses


class TestAigerRoundTrip:
    @given(st.integers(0, 100_000))
    @settings(max_examples=25, **COMMON)
    def test_semantics_preserved(self, seed):
        rng = random.Random(seed)
        circuit = random_circuit(rng, num_latches=3, num_inputs=1, depth=2)
        circuit.add_bad("target", ex.var("s0") ^ ex.var("s1"))
        back = parse_aiger(write_aiger(circuit))
        o1 = ExplicitOracle(circuit.to_transition_system())
        o2 = ExplicitOracle(back.to_transition_system())
        assert set(o1.initial_states) == set(o2.initial_states)
        for state in o1._succ:
            assert o1.successors(state) == o2.successors(state)
