"""Property-based round-trip tests for the exchange formats."""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.logic import expr as ex
from repro.logic.cnf import CNF
from repro.logic.dimacs import (parse_dimacs, parse_qdimacs, write_dimacs,
                                write_qdimacs)
from repro.models import FAMILIES
from repro.reduce.structure import FunctionalView
from repro.system import ExplicitOracle, parse_aiger, write_aiger
from repro.system.aiger_io import (load_aiger, parse_aiger_binary,
                                   write_aiger_binary)
from repro.system.circuit import Circuit
from repro.system.random_model import random_circuit

COMMON = dict(deadline=None,
              suppress_health_check=[HealthCheck.too_slow])


@st.composite
def cnfs(draw):
    n = draw(st.integers(1, 12))
    cnf = CNF(n)
    for _ in range(draw(st.integers(0, 25))):
        clause = [draw(st.integers(1, n)) * draw(st.sampled_from((1, -1)))
                  for _ in range(draw(st.integers(1, 4)))]
        cnf.add_clause(clause)
    return cnf


class TestDimacsRoundTrip:
    @given(cnfs())
    @settings(max_examples=60, **COMMON)
    def test_cnf_round_trip(self, cnf):
        back = parse_dimacs(write_dimacs(cnf))
        assert back.clauses == cnf.clauses
        assert back.num_vars == cnf.num_vars

    @given(cnfs(), st.data())
    @settings(max_examples=40, **COMMON)
    def test_qdimacs_round_trip(self, cnf, data):
        variables = list(range(1, cnf.num_vars + 1))
        data.draw(st.randoms()).shuffle(variables)
        prefix = []
        i = 0
        while i < len(variables):
            size = data.draw(st.integers(1, len(variables) - i))
            quantifier = data.draw(st.sampled_from("ae"))
            if prefix and prefix[-1][0] == quantifier:
                prefix[-1] = (quantifier,
                              prefix[-1][1] + tuple(variables[i:i + size]))
            else:
                prefix.append((quantifier, tuple(variables[i:i + size])))
            i += size
        text = write_qdimacs(prefix, cnf)
        prefix2, cnf2 = parse_qdimacs(text)
        assert prefix2 == [b for b in prefix if b[1]]
        assert cnf2.clauses == cnf.clauses


class TestAigerRoundTrip:
    @given(st.integers(0, 100_000))
    @settings(max_examples=25, **COMMON)
    def test_semantics_preserved(self, seed):
        rng = random.Random(seed)
        circuit = random_circuit(rng, num_latches=3, num_inputs=1, depth=2)
        circuit.add_bad("target", ex.var("s0") ^ ex.var("s1"))
        back = parse_aiger(write_aiger(circuit))
        o1 = ExplicitOracle(circuit.to_transition_system())
        o2 = ExplicitOracle(back.to_transition_system())
        assert set(o1.initial_states) == set(o2.initial_states)
        for state in o1._succ:
            assert o1.successors(state) == o2.successors(state)


# ----------------------------------------------------------------------
# Every suite family through AIGER, ASCII and binary
# ----------------------------------------------------------------------
def _family_circuit(family):
    """Rebuild one family instance as a Circuit via its functional view.

    The suite stores TransitionSystems; AIGER serialisation starts from
    circuits, so the test reconstitutes one from the per-latch view —
    which every suite family is guaranteed to expose (functional TR,
    no invariant constraints, concrete resets).
    """
    instance = FAMILIES[family]()[0]
    system = instance.system
    view = FunctionalView.from_system(system)
    assert view is not None, family
    assert not view.constraints, family
    circuit = Circuit(system.name)
    for name in system.input_vars:
        circuit.add_input(name)
    for name in system.state_vars:
        circuit.add_latch(name, init=view.resets.get(name))
    for name in system.state_vars:
        circuit.set_next(name, view.updates[name])
    circuit.add_bad("target", instance.final)
    return circuit


def _lockstep(circuit, back, steps=8, seed=0):
    """Drive both circuits with the same random inputs and compare
    every latch value and the bad-signal valuation at every step."""
    rng = random.Random(seed)
    inputs = [{name: rng.random() < 0.5 for name in circuit.input_names}
              for _ in range(steps)]
    initial = {name: rng.random() < 0.5
               for name in circuit.latch_names
               if circuit._init_values[name] is None}
    s1 = circuit.simulate(inputs, initial=initial)
    s2 = back.simulate(inputs, initial=initial)
    assert back.latch_names == circuit.latch_names
    assert s1 == s2
    assert set(back.bad) == set(circuit.bad)
    for state, step_inputs in zip(s1, inputs + [inputs[-1]]):
        env = dict(state)
        env.update(step_inputs)
        for name in circuit.bad:
            assert circuit.bad[name].evaluate(env) == \
                back.bad[name].evaluate(env), name


class TestAigerSuiteFamilies:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_ascii_round_trip(self, family):
        circuit = _family_circuit(family)
        back = parse_aiger(write_aiger(circuit), circuit.name)
        _lockstep(circuit, back)

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_binary_round_trip(self, family):
        circuit = _family_circuit(family)
        back = parse_aiger_binary(write_aiger_binary(circuit),
                                  circuit.name)
        _lockstep(circuit, back)

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_symbol_tables_preserved(self, family):
        circuit = _family_circuit(family)
        for back in (parse_aiger(write_aiger(circuit), circuit.name),
                     parse_aiger_binary(write_aiger_binary(circuit),
                                        circuit.name)):
            assert back.input_names == circuit.input_names
            assert back.latch_names == circuit.latch_names
            assert list(back.bad) == list(circuit.bad)

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_latch_resets_preserved(self, family):
        circuit = _family_circuit(family)
        for back in (parse_aiger(write_aiger(circuit), circuit.name),
                     parse_aiger_binary(write_aiger_binary(circuit),
                                        circuit.name)):
            assert back._init_values == circuit._init_values


class TestAigerBinaryDetails:
    def test_unconstrained_reset_round_trips(self):
        circuit = Circuit("free")
        circuit.add_input("i")
        circuit.add_latch("l0", init=None)
        circuit.add_latch("l1", init=True)
        circuit.set_next("l0", ex.var("i"))
        circuit.set_next("l1", ex.var("l0"))
        circuit.add_bad("target", ex.var("l1"))
        for back in (parse_aiger(write_aiger(circuit)),
                     parse_aiger_binary(write_aiger_binary(circuit))):
            assert back._init_values["l0"] is None
            assert back._init_values["l1"] is True

    def test_multibyte_leb128_deltas(self):
        # A wide xor chain forces AND-gate literals past 254, so the
        # binary encoder must emit multi-byte LEB128 deltas.
        circuit = Circuit("wide")
        bits = [circuit.add_latch(f"b{i}", init=(i % 2 == 0))
                for i in range(40)]
        parity = bits[0]
        for b in bits[1:]:
            parity = parity ^ b
        for i in range(40):
            circuit.set_next(f"b{i}", bits[(i + 1) % 40] ^ parity)
        circuit.add_bad("target", parity)
        data = write_aiger_binary(circuit)
        back = parse_aiger_binary(data, "wide")
        _lockstep(circuit, back, steps=4)

    def test_load_aiger_sniffs_format(self, tmp_path):
        circuit = _family_circuit("counter")
        ascii_path = tmp_path / "m.aag"
        binary_path = tmp_path / "m.aig"
        ascii_path.write_text(write_aiger(circuit))
        binary_path.write_bytes(write_aiger_binary(circuit))
        for path in (ascii_path, binary_path):
            back = load_aiger(path)
            _lockstep(circuit, back, steps=4)
