"""Model family tests: structural sanity + depth ground truth.

Small parameterizations of every family are checked against the
explicit-state oracle (or SAT-BMC for the larger state spaces).
"""

import pytest

from repro.bmc import check_reachability
from repro.models import (arbiter, barrel, cache_msi, counter, elevator,
                          fifo, gray, lfsr, mixer, mutex, pipeline,
                          shift_register, traffic, vending)
from repro.sat.types import SolveResult
from repro.system import ExplicitOracle


def assert_depth_by_oracle(system, final, depth):
    oracle = ExplicitOracle(system)
    assert oracle.shortest_distance(final) == depth


def assert_depth_by_bmc(system, final, depth, check_below=True):
    if check_below and depth > 0:
        r = check_reachability(system, final, depth - 1, "sat-unroll",
                               semantics="within")
        assert r.status is SolveResult.UNSAT
    r = check_reachability(system, final, depth, "sat-unroll")
    assert r.status is SolveResult.SAT
    r.trace.validate(system, final)


def assert_unreachable_by_bmc(system, final, up_to):
    r = check_reachability(system, final, up_to, "sat-unroll",
                           semantics="within")
    assert r.status is SolveResult.UNSAT


class TestReachableTargets:
    @pytest.mark.parametrize("width,target", [(3, 5), (4, 11), (5, 0)])
    def test_counter(self, width, target):
        system, final, depth = counter.make(width, target)
        assert depth == target
        assert_depth_by_oracle(system, final, depth)

    @pytest.mark.parametrize("width", [3, 4])
    def test_gray(self, width):
        system, final, depth = gray.make(width)
        assert_depth_by_oracle(system, final, depth)

    @pytest.mark.parametrize("length,pos", [(4, 2), (5, 4)])
    def test_ring(self, length, pos):
        system, final, depth = shift_register.make(length, pos)
        assert depth == pos
        assert_depth_by_oracle(system, final, depth)

    @pytest.mark.parametrize("width,d", [(4, 6), (5, 13)])
    def test_lfsr(self, width, d):
        system, final, depth = lfsr.make(width, d)
        assert depth == d
        assert_depth_by_oracle(system, final, depth)

    @pytest.mark.parametrize("n", [3, 4])
    def test_arbiter(self, n):
        system, final, depth = arbiter.make(n)
        assert depth == n
        assert_depth_by_bmc(system, final, depth)

    @pytest.mark.parametrize("cycles", [1, 2, 3])
    def test_traffic(self, cycles):
        system, final, depth = traffic.make(cycles)
        assert_depth_by_oracle(system, final, depth)

    @pytest.mark.parametrize("capacity", [3, 5])
    def test_fifo(self, capacity):
        system, final, depth = fifo.make(capacity)
        assert depth == capacity
        assert_depth_by_oracle(system, final, depth)

    @pytest.mark.parametrize("width", [2, 3])
    def test_elevator(self, width):
        system, final, depth = elevator.make(width)
        assert depth == (1 << width) - 1
        assert_depth_by_bmc(system, final, depth)

    def test_mutex(self):
        system, final, depth = mutex.make(0)
        assert depth == 2
        assert_depth_by_bmc(system, final, depth)

    def test_cache(self):
        for target, want in (("m0", 1), ("both-s", 2)):
            system, final, depth = cache_msi.make(target)
            assert depth == want
            assert_depth_by_bmc(system, final, depth)

    @pytest.mark.parametrize("stages", [3, 4])
    def test_pipeline(self, stages):
        system, final, depth = pipeline.make(stages)
        assert depth == stages
        assert_depth_by_bmc(system, final, depth)

    @pytest.mark.parametrize("width", [3, 4])
    def test_barrel(self, width):
        system, final, depth = barrel.make(width)
        assert depth is not None
        assert_depth_by_oracle(system, final, depth)

    @pytest.mark.parametrize("price", [4, 6])
    def test_vending(self, price):
        system, final, depth = vending.make(price)
        assert_depth_by_oracle(system, final, depth)

    def test_mixer(self):
        system, final, depth = mixer.make(8, 2, depth=3)
        assert_depth_by_bmc(system, final, depth)


class TestUnreachableTargets:
    def test_ring_invariants(self):
        for kind in ("two-tokens", "no-token"):
            system, final, depth = \
                shift_register.make_invariant_violation(4, kind)
            assert depth is None
            assert_unreachable_by_bmc(system, final, 8)

    def test_arbiter_mutex(self):
        system, final, _ = arbiter.make_mutex_check(3)
        assert_unreachable_by_bmc(system, final, 7)

    def test_traffic_safety(self):
        system, final, _ = traffic.make_safety_check(2)
        assert_unreachable_by_bmc(system, final, 10)

    def test_fifo_overflow(self):
        system, final, _ = fifo.make_overflow_check(3)
        assert_unreachable_by_bmc(system, final, 8)

    def test_elevator_interlock(self):
        system, final, _ = elevator.make_interlock_check(2)
        assert_unreachable_by_bmc(system, final, 8)

    def test_peterson_exclusion(self):
        system, final, _ = mutex.make_exclusion_check()
        assert_unreachable_by_bmc(system, final, 10)

    def test_cache_coherence(self):
        system, final, _ = cache_msi.make_coherence_check()
        assert_unreachable_by_bmc(system, final, 8)

    def test_pipeline_flush(self):
        system, final, _ = pipeline.make_flush_check(3)
        assert_unreachable_by_bmc(system, final, 8)

    def test_vending_overpay(self):
        system, final, _ = vending.make_overpay_check(4)
        assert_unreachable_by_bmc(system, final, 8)


class TestParameterValidation:
    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            counter.make(3, 100)
        with pytest.raises(ValueError):
            shift_register.make(1)
        with pytest.raises(ValueError):
            lfsr.make(13)          # no tap table
        with pytest.raises(ValueError):
            arbiter.make(1)
        with pytest.raises(ValueError):
            fifo.make_circuit(0)
        with pytest.raises(ValueError):
            mixer.make(4)
