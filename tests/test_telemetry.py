"""Telemetry tests: trace schema, metrics semantics, worker merge.

Covers the PR 6 satellite checklist: Chrome trace-export schema
validation (required ``ph``/``ts``/``pid``/``name`` keys, monotonic
timestamps), cross-worker merge attribution, metrics
``snapshot``/``diff`` semantics, and NullTracer no-op behaviour on
every instrumented path.
"""

import json
import os

import pytest

from repro.bmc import BmcSession
from repro.harness.report import format_metrics
from repro.harness.runner import run_matrix
from repro.models import build_suite, counter
from repro.portfolio import BatchScheduler, ResultCache, race
from repro.sat.types import Budget
from repro.telemetry import (NULL_TRACER, MetricsRegistry, NullTracer,
                             Tracer, current_metrics, current_tracer,
                             diff, set_metrics, set_tracer,
                             chrome_trace_document, write_chrome_trace,
                             validate_chrome_trace)
from repro.telemetry.trace import validate_chrome_trace_file

# Deterministic budget (no wall-clock term): identical solver paths
# in-process and in workers, regardless of machine load.
DET_BUDGET = Budget(max_conflicts=10_000, max_literals=1_000_000)


@pytest.fixture
def telemetry():
    """Install a fresh recording tracer + registry; restore on exit."""
    tracer, registry = Tracer(), MetricsRegistry()
    prev_tracer = set_tracer(tracer)
    prev_metrics = set_metrics(registry)
    yield tracer, registry
    set_tracer(prev_tracer)
    set_metrics(prev_metrics)


@pytest.fixture(scope="module")
def small_suite():
    # SAT instances only: reachable targets force real solver work in
    # the workers (trivially-refuted UNSAT cells can be decided during
    # encoding, without a single ``sat.solve`` call to trace).
    picked = {}
    for inst in build_suite():
        if inst.expected is True and inst.family not in picked \
                and 2 <= inst.k <= 6:
            picked[inst.family] = inst
    return list(picked.values())[:4]


# ----------------------------------------------------------------------
class TestTracer:
    def test_span_and_instant_events(self):
        tracer = Tracer()
        with tracer.span("outer", k=3) as sp:
            tracer.instant("mark", method="jsat")
            sp.set(status="SAT")
        events = tracer.events()
        assert [(e["name"], e["ph"]) for e in events] == \
            [("mark", "i"), ("outer", "X")]
        span = events[1]
        assert span["args"] == {"k": 3, "status": "SAT"}
        assert span["dur"] >= 0
        for key in ("name", "ph", "ts", "pid", "tid"):
            assert key in span
        assert events[0]["pid"] == os.getpid()

    def test_ring_buffer_drops_oldest_and_counts(self):
        tracer = Tracer(capacity=4)
        for i in range(10):
            tracer.instant(f"e{i}")
        assert len(tracer) == 4
        assert tracer.dropped == 6
        assert [e["name"] for e in tracer.events()] == \
            ["e6", "e7", "e8", "e9"]
        tracer.clear()
        assert len(tracer) == 0 and tracer.dropped == 0

    def test_drain_clears_buffer(self):
        tracer = Tracer()
        tracer.instant("a")
        drained = tracer.drain()
        assert [e["name"] for e in drained] == ["a"]
        assert len(tracer) == 0
        tracer.extend(drained)
        assert [e["name"] for e in tracer.events()] == ["a"]

    def test_document_sorts_by_timestamp_metadata_first(self):
        tracer = Tracer()
        # Nested spans complete inner-first, so raw buffer order is
        # completion order — the outer (earlier-starting) span lands
        # last.  Export must restore start order.
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        tracer.name_lane(1234, "worker")        # recorded last
        document = chrome_trace_document(tracer.events())
        names = [e["name"] for e in document["traceEvents"]]
        assert names == ["process_name", "outer", "inner"]
        validate_chrome_trace(document)         # must not raise

    def test_write_and_validate_roundtrip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("work", k=1):
            tracer.instant("tick")
        path = tmp_path / "trace.json"
        count = write_chrome_trace(str(path), tracer.events())
        assert count == 2
        events = validate_chrome_trace_file(str(path))
        assert {e["name"] for e in events} == {"work", "tick"}
        # The document is plain JSON Perfetto can load.
        assert "traceEvents" in json.loads(path.read_text())

    def test_validate_rejects_missing_required_keys(self):
        base = {"name": "x", "ph": "i", "ts": 1, "pid": 1}
        for key in ("name", "ph", "ts", "pid"):
            bad = dict(base)
            del bad[key]
            with pytest.raises(ValueError, match=key):
                validate_chrome_trace({"traceEvents": [bad]})

    def test_validate_rejects_complete_event_without_dur(self):
        event = {"name": "x", "ph": "X", "ts": 1, "pid": 1}
        with pytest.raises(ValueError, match="dur"):
            validate_chrome_trace({"traceEvents": [event]})

    def test_validate_rejects_nonmonotonic_timestamps(self):
        events = [
            {"name": "a", "ph": "i", "ts": 10, "pid": 1},
            {"name": "b", "ph": "i", "ts": 5, "pid": 1},
        ]
        with pytest.raises(ValueError, match="timestamp order"):
            validate_chrome_trace({"traceEvents": events})

    def test_validate_rejects_non_document(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"events": []})
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": "nope"})


# ----------------------------------------------------------------------
class TestNullTracer:
    def test_default_tracer_is_the_shared_null(self):
        assert current_tracer() is NULL_TRACER
        assert isinstance(NULL_TRACER, NullTracer)
        assert not NULL_TRACER.enabled

    def test_every_operation_is_a_noop(self):
        null = NULL_TRACER
        with null.span("x", k=1) as sp:
            sp.set(status="SAT")
            null.instant("y")
        null.name_lane(1, "lane")
        null.extend([{"name": "z", "ph": "i", "ts": 0, "pid": 0}])
        assert null.events() == []
        assert null.drain() == []
        assert len(null) == 0

    def test_instrumented_paths_record_nothing_by_default(self):
        # Exercise solver, encoder, session, property and reduction
        # instrumentation under the default null tracer / disabled
        # registry: no events, no metrics, no attribute errors.
        assert current_tracer() is NULL_TRACER
        before = current_metrics().snapshot()
        system, final, depth = counter.make(3, 5)
        with BmcSession(system, properties={"target": final},
                        reduce="auto") as session:
            session.check(depth, method="sat-unroll")
            session.sweep(depth, method="sat-incremental")
        assert len(current_tracer()) == 0
        delta = diff(before, current_metrics().snapshot())
        assert not delta["counters"] and not delta["histograms"]


# ----------------------------------------------------------------------
class TestMetrics:
    def test_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        registry.inc("c")
        registry.inc("c", 4)
        registry.gauge("g", 7)
        registry.gauge_max("peak", 3)
        registry.gauge_max("peak", 2)           # lower: ignored
        registry.observe("h", 1.0)
        registry.observe("h", 3.0)
        snap = registry.snapshot()
        assert snap["counters"]["c"] == 5
        assert snap["gauges"] == {"g": 7, "peak": 3}
        assert snap["histograms"]["h"] == \
            {"count": 2, "sum": 4.0, "min": 1.0, "max": 3.0}

    def test_diff_subtracts_counters_and_histograms(self):
        registry = MetricsRegistry()
        registry.inc("c", 2)
        registry.observe("h", 1.0)
        registry.gauge("g", 1)
        before = registry.snapshot()
        registry.inc("c", 3)
        registry.inc("untouched", 0)
        registry.observe("h", 5.0)
        registry.gauge("g", 9)
        delta = diff(before, registry.snapshot())
        assert delta["counters"] == {"c": 3}    # zero deltas dropped
        assert delta["gauges"]["g"] == 9        # gauges keep "after"
        assert delta["histograms"]["h"]["count"] == 1
        assert delta["histograms"]["h"]["sum"] == 5.0

    def test_merge_adds_counters_maxes_gauges(self):
        worker = MetricsRegistry()
        worker.inc("c", 2)
        worker.gauge("g", 10)
        worker.observe("h", 2.0)
        parent = MetricsRegistry(enabled=False)  # disabled still merges
        parent.inc("c", 99)                      # no-op: disabled
        parent.merge(worker.snapshot())
        parent.merge(worker.snapshot())
        snap = parent.snapshot()
        assert snap["counters"]["c"] == 4
        assert snap["gauges"]["g"] == 10
        assert snap["histograms"]["h"]["count"] == 2

    def test_disabled_registry_records_nothing(self):
        registry = MetricsRegistry(enabled=False)
        registry.inc("c")
        registry.gauge("g", 1)
        registry.observe("h", 1.0)
        assert not registry
        assert registry.snapshot() == \
            {"counters": {}, "gauges": {}, "histograms": {}}

    def test_format_metrics_table(self):
        registry = MetricsRegistry()
        registry.inc("sat.solve_calls", 7)
        registry.observe("sat.solve_seconds", 0.25)
        table = format_metrics(registry.snapshot())
        assert "sat.solve_calls" in table
        assert "counter" in table and "histogram" in table
        assert "count=1" in table


# ----------------------------------------------------------------------
class TestInstrumentation:
    def test_session_sweep_records_spans_and_metrics(self, telemetry):
        tracer, registry = telemetry
        system, final, depth = counter.make(3, 5)
        with BmcSession(system, properties={"target": final},
                        reduce="auto") as session:
            result = session.check(depth, method="sat-unroll")
            session.sweep(depth, method="sat-incremental")
        assert result.status.name == "SAT"
        names = {e["name"] for e in tracer.events()}
        assert {"session.check", "sat.solve", "encode.unroll",
                "encode.frame", "bmc.bound",
                "reduce.pipeline"} <= names
        snap = registry.snapshot()
        assert snap["counters"]["sat.solve_calls"] > 0
        assert snap["counters"]["bmc.bounds_checked"] == depth + 1
        assert snap["histograms"]["sat.solve_seconds"]["count"] > 0
        validate_chrome_trace(chrome_trace_document(tracer.events()))

    def test_solver_span_carries_result_attrs(self, telemetry):
        tracer, _ = telemetry
        system, final, depth = counter.make(3, 5)
        with BmcSession(system, properties={"target": final}) as session:
            session.check(depth, method="sat-unroll")
        solves = [e for e in tracer.events() if e["name"] == "sat.solve"]
        assert solves
        assert all("result" in e["args"] for e in solves)
        assert all("conflicts" in e["args"] for e in solves)


# ----------------------------------------------------------------------
class TestWorkerMerge:
    def test_cross_worker_attribution(self, telemetry, small_suite):
        tracer, registry = telemetry
        results = run_matrix(small_suite, ["sat-unroll"],
                             budget=DET_BUDGET, jobs=2)
        assert len(results) == len(small_suite)
        events = tracer.events()
        worker_pids = {e["pid"] for e in events
                       if e["name"] == "worker.cell"}
        # Worker events carry the worker's pid, distinct from ours.
        assert worker_pids
        assert os.getpid() not in worker_pids
        # Each worker lane got a metadata label, and worker-side solver
        # spans rode back attributed to their worker's pid.
        lanes = {e["pid"]: e["args"]["name"] for e in events
                 if e["ph"] == "M"}
        assert worker_pids <= set(lanes)
        solve_pids = {e["pid"] for e in events
                      if e["name"] == "sat.solve"}
        assert solve_pids <= worker_pids
        # Metrics aggregated across workers into the parent registry.
        snap = registry.snapshot()
        assert snap["counters"]["sat.solve_calls"] > 0
        # The merged timeline still exports as a valid Chrome trace.
        validate_chrome_trace(chrome_trace_document(events))

    def test_batch_cache_hits_annotated(self, telemetry, small_suite,
                                        tmp_path):
        tracer, _ = telemetry
        cache = ResultCache(tmp_path / "cache")
        sched1 = BatchScheduler(jobs=2, cache=cache)
        sched1.run(small_suite, ["sat-unroll"], budget=DET_BUDGET)
        assert sched1.stats["cache_hits"] == 0
        assert sched1.stats["cache_misses"] == len(small_suite)
        sched2 = BatchScheduler(jobs=2, cache=cache)
        results = sched2.run(small_suite, ["sat-unroll"],
                             budget=DET_BUDGET)
        assert sched2.stats["cache_hits"] == len(small_suite)
        assert sched2.stats["cache_misses"] == 0
        assert all(c.worker == "cache" for c in results)
        assert all(c.stats.get("served_from_cache") for c in results)
        hits = [e for e in tracer.events() if e["name"] == "cache.hit"]
        assert len(hits) == len(small_suite)

    def test_race_served_from_cache(self, tmp_path):
        system, final, depth = counter.make(3, 5)
        cache = ResultCache(tmp_path / "cache")
        # sim_tier off: this test watches the solver-lane cache
        # round-trip; the simulation pre-solve tier would answer first.
        first = race(system, final, depth, methods=("sat-unroll",),
                     budget=DET_BUDGET, cache=cache, sim_tier=False)
        assert first.winner == "sat-unroll"
        assert "cache_served" not in first.result.stats
        second = race(system, final, depth, methods=("sat-unroll",),
                      budget=DET_BUDGET, cache=cache, sim_tier=False)
        assert second.result.stats.get("cache_served") is True
        assert second.result.status.name == "SAT"
        assert second.method_outcomes == {"sat-unroll": "cache"}
        assert second.loser_pids == []


# ----------------------------------------------------------------------
class TestCliSurface:
    def test_trace_flag_writes_valid_file(self, tmp_path, capsys):
        from repro.cli import main
        path = tmp_path / "trace.json"
        assert main(["--trace", str(path),
                     "bmc", "counter", "-k", "4"]) == 0
        events = validate_chrome_trace_file(str(path))
        names = {e["name"] for e in events}
        assert "sat.solve" in names and "session.check" in names
        captured = capsys.readouterr()
        assert "trace:" in captured.err
        # Tracer restored: the CLI run leaves no global tracer behind.
        assert current_tracer() is NULL_TRACER

    def test_metrics_flag_prints_table(self, capsys):
        from repro.cli import main
        assert main(["--metrics", "sweep", "counter", "--max-k", "4"]) \
            == 0
        out = capsys.readouterr().out
        assert "== metrics ==" in out
        assert "sat.solve_calls" in out
        assert "sat.solve_seconds" in out

    def test_batch_reports_hits_and_misses(self, tmp_path, capsys):
        from repro.cli import main
        cache_dir = str(tmp_path / "cache")
        argv = ["batch", "--limit", "2", "--methods", "jsat",
                "--cache", cache_dir]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "0 hits, 2 misses (0% hit rate)" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "2 hits, 0 misses (100% hit rate)" in second


# ----------------------------------------------------------------------
@pytest.mark.skipif("REPRO_TRACE_FILE" not in os.environ,
                    reason="no CI trace artifact to validate")
def test_ci_trace_artifact_is_valid():
    """Schema-check the trace CI produced with a traced portfolio run.

    Set ``REPRO_TRACE_FILE`` to a trace written by
    ``repro --trace FILE.json batch --jobs N ...``; asserts the file
    validates and shows more than one process lane (parent + workers).
    """
    events = validate_chrome_trace_file(os.environ["REPRO_TRACE_FILE"])
    assert events, "trace artifact is empty"
    pids = {e["pid"] for e in events}
    assert len(pids) >= 2, "expected parent + worker lanes"
