"""Differential tests for the unbounded prover backends.

The three provers (k-induction, interpolation, recurrence diameter)
are checked against the BDD fixpoint oracle on every suite family and
on random systems: verdicts must agree, SAT answers must carry
replayable traces, and every emitted inductive invariant must pass
``validate_invariant`` (contains init, excludes bad, closed under TR).

Also covers the latent bugs fixed when the provers were promoted to
backends: silent-``False`` model extraction on frame-unconstrained
inputs, the ``k == 0`` init-satisfiability probe of the recurrence
diameter, and per-call budget re-arming in the deepening loops.
"""

import random
import time

import pytest

from repro.bdd.reachability import BddReachability
from repro.bmc.backend import ALL_METHODS, METHODS, backend_class, \
    create_backend
from repro.bmc.completeness import longest_simple_path_reached, \
    verify_unbounded
from repro.bmc.induction import prove_by_induction
from repro.bmc.interpolation import prove_by_interpolation
from repro.bmc.provers import validate_invariant
from repro.logic import expr as ex
from repro.models import build_suite
from repro.portfolio import race
from repro.sat import Budget, SolveResult
from repro.spec import Invariant, PropertyChecker, Verdict
from repro.system import ExplicitOracle, TransitionSystem, primed, \
    random_predicate, random_system

PROVERS = ("k-induction", "interpolation", "diameter")


def _ts(state_vars, init, next_exprs, input_vars=()):
    trans = ex.mk_and(*[ex.var(primed(n)).iff(e)
                        for n, e in next_exprs.items()])
    return TransitionSystem(state_vars=state_vars, init=init,
                            trans=trans, input_vars=input_vars)


def _smallest_per_family():
    by_family = {}
    for inst in build_suite():
        best = by_family.get(inst.family)
        if best is None or len(inst.system.state_vars) < \
                len(best.system.state_vars):
            by_family[inst.family] = inst
    return sorted(by_family.values(), key=lambda i: i.family)


SMALLEST = _smallest_per_family()


def _input_driven_system():
    """One latch copying one input: v' = i, init v=0, bad = v.

    The k=1 base-case model never assigns positions the frame does not
    constrain, so trace extraction must consult the pool and complete
    the gap consistently with TR (the silent-``False`` regression).
    """
    v, i = ex.var("v"), ex.var("i")
    return _ts(("v",), ex.mk_not(v), {"v": i},
               input_vars=("i",)), v


class TestRegistry:
    def test_provers_registered(self):
        for name in PROVERS:
            assert name in METHODS
            assert name in ALL_METHODS

    def test_capability_flags(self):
        for name in PROVERS:
            cls = backend_class(name)
            assert cls.proves_unbounded
            assert tuple(cls.supported_semantics) == ("within",)
        for name in ("sat-unroll", "sat-incremental", "qbf",
                     "qbf-squaring", "jsat", "portfolio"):
            assert not backend_class(name).proves_unbounded


class TestModelExtraction:
    """Satellite: silent-False extraction on unconstrained positions."""

    def test_induction_base_case_trace_replays(self):
        system, bad = _input_driven_system()
        result = prove_by_induction(system, bad, max_k=4)
        assert result.status == "cex"
        assert result.trace is not None
        # validate() raises if the extracted input values do not drive
        # the states along TR — the old code silently filled False.
        result.trace.validate(system, bad)
        assert result.trace.length == 1

    def test_interpolation_bounded_query_trace_replays(self):
        system, bad = _input_driven_system()
        result = prove_by_interpolation(system, bad, max_k=4)
        assert result.status == "cex"
        assert result.trace is not None
        result.trace.validate(system, bad)

    def test_backend_traces_replay(self):
        system, bad = _input_driven_system()
        for name in PROVERS:
            backend = create_backend(name, system, bad)
            try:
                result = backend.check(4, semantics="within")
                assert result.status is SolveResult.SAT, name
                result.trace.validate(system, bad)
            finally:
                backend.close()


class TestDiameterAtZero:
    """Satellite: k=0 is an init-satisfiability probe, not False."""

    def test_unsat_init_reaches_diameter_at_zero(self):
        v = ex.var("v")
        system = _ts(("v",), ex.mk_and(v, ex.mk_not(v)), {"v": v})
        assert longest_simple_path_reached(system, 0) is True
        result = verify_unbounded(system, v, max_bound=4)
        assert result.status == "safe"
        assert result.bound == 0

    def test_sat_init_does_not_reach_diameter_at_zero(self):
        v = ex.var("v")
        system = _ts(("v",), ex.mk_not(v), {"v": v})
        assert longest_simple_path_reached(system, 0) is False


class TestBudgetDeadline:
    """Satellite: one shared wall-clock deadline, armed once."""

    @staticmethod
    def _big_safe_system(bits=12):
        # A wide counter plus a constant-zero sticky bit.  The bad
        # state (sticky AND all-ones) is unreachable but not closable
        # by a shallow step case, so every deepening loop has
        # thousands of rungs to burn time on.
        vs = [ex.var(f"c{i}") for i in range(bits)]
        z = ex.var("z")
        carry = ex.TRUE
        nxt = {}
        for i, v in enumerate(vs):
            nxt[f"c{i}"] = ex.mk_xor(v, carry)
            carry = ex.mk_and(carry, v)
        nxt["z"] = z
        init = ex.mk_and(ex.mk_not(z), *[ex.mk_not(v) for v in vs])
        bad = ex.mk_and(z, *vs)
        names = tuple(f"c{i}" for i in range(bits)) + ("z",)
        return _ts(names, init, nxt), bad

    @pytest.mark.parametrize("prove", [
        lambda s, b, budget: prove_by_induction(
            s, b, max_k=4096, budget=budget),
        lambda s, b, budget: prove_by_interpolation(
            s, b, max_k=4096, budget=budget),
        lambda s, b, budget: verify_unbounded(
            s, b, max_bound=4096, budget=budget),
    ], ids=["induction", "interpolation", "diameter"])
    def test_tiny_budget_bounds_total_wall_time(self, prove):
        system, bad = self._big_safe_system()
        budget = Budget(max_seconds=0.15)
        start = time.perf_counter()
        prove(system, bad, budget)
        elapsed = time.perf_counter() - start
        # A per-rung re-armed budget would grant 0.15 s to each of up
        # to 4096 rungs; the shared deadline caps the whole loop.
        assert elapsed < 3.0


class TestDifferentialSuite:
    """Every family's smallest instance vs the BDD fixpoint oracle."""

    @pytest.mark.parametrize(
        "inst", SMALLEST, ids=[i.name for i in SMALLEST])
    @pytest.mark.parametrize("prover", PROVERS)
    def test_agrees_with_bdd_oracle(self, inst, prover):
        distance = BddReachability(inst.system).shortest_distance(
            inst.final)
        bound = max(24, 2 * inst.k + 16)
        backend = create_backend(prover, inst.system, inst.final)
        try:
            result = backend.check(bound, semantics="within",
                                   budget=Budget(max_seconds=20.0))
        finally:
            backend.close()
        if result.status is SolveResult.SAT:
            assert distance is not None, \
                f"{prover} found a witness for an unreachable target"
            assert result.trace is not None
            result.trace.validate(inst.system, inst.final)
            assert result.trace.length >= distance
        elif result.proved:
            assert distance is None, \
                f"{prover} proved a reachable target safe " \
                f"(distance {distance})"
            if result.invariant is not None:
                assert validate_invariant(inst.system, inst.final,
                                          result.invariant)
        elif result.status is SolveResult.UNSAT:
            # Bounded UNSAT without a proof: sound up to the bound.
            assert distance is None or distance > bound

    def test_provers_close_reachable_families(self):
        # Sanity against vacuity: on these small instances a deep
        # ladder must actually find the (reachable) targets.
        reachable = [i for i in SMALLEST
                     if BddReachability(i.system).shortest_distance(
                         i.final) is not None]
        assert len(reachable) >= 10
        hits = 0
        for inst in reachable:
            backend = create_backend("k-induction", inst.system,
                                     inst.final)
            try:
                result = backend.check(max(24, 2 * inst.k + 16),
                                       semantics="within")
            finally:
                backend.close()
            hits += result.status is SolveResult.SAT
        assert hits == len(reachable)


class TestDifferentialRandom:
    def test_random_systems_agree_with_explicit_oracle(self):
        rng = random.Random(20050307)
        for _ in range(12):
            system = random_system(rng, num_latches=3,
                                   num_inputs=rng.randint(0, 1),
                                   depth=2)
            bad = random_predicate(rng, system)
            distance = ExplicitOracle(system).shortest_distance(bad)
            for prover in PROVERS:
                backend = create_backend(prover, system, bad)
                try:
                    result = backend.check(16, semantics="within")
                finally:
                    backend.close()
                if distance is None:
                    # 16 > the 3-latch recurrence diameter, so the
                    # diameter prover must be conclusive; the others
                    # must at least never claim SAT.
                    assert result.status is not SolveResult.SAT
                    if prover == "diameter":
                        assert result.proved, \
                            f"diameter inconclusive at 16 on " \
                            f"3-latch system"
                else:
                    assert result.status is SolveResult.SAT, \
                        f"{prover} missed a witness at distance " \
                        f"{distance}"
                    result.trace.validate(system, bad)
                if result.proved and result.invariant is not None:
                    assert validate_invariant(system, bad,
                                              result.invariant)


class TestRaceProverPairing:
    def test_prover_only_race_proves(self):
        # Every suite instance's target is eventually reachable, so
        # build a safe system: a counter with a stuck-at-zero bit.
        vs = [ex.var(f"c{i}") for i in range(4)]
        z = ex.var("z")
        carry = ex.TRUE
        nxt = {}
        for i, v in enumerate(vs):
            nxt[f"c{i}"] = ex.mk_xor(v, carry)
            carry = ex.mk_and(carry, v)
        nxt["z"] = z
        system = _ts(("c0", "c1", "c2", "c3", "z"),
                     ex.mk_and(ex.mk_not(z),
                               *[ex.mk_not(v) for v in vs]), nxt)
        outcome = race(system, z, 3, methods=[],
                       prover="interpolation", semantics="within",
                       wall_timeout=60.0)
        assert outcome.result.status is SolveResult.UNSAT
        assert outcome.result.proved
        assert outcome.winner == "interpolation"

    def test_deep_witness_does_not_win(self):
        # fifo3's target needs more than 1 step: the prover ladder
        # finds it beyond the query bound, which answers a different
        # question than the k=1 race.
        inst = next(i for i in build_suite() if i.name == "fifo3-k2")
        distance = BddReachability(inst.system).shortest_distance(
            inst.final)
        assert distance is not None and distance > 1
        outcome = race(inst.system, inst.final, 1, methods=[],
                       prover="diameter", semantics="within",
                       wall_timeout=60.0)
        assert outcome.result.status is SolveResult.UNKNOWN
        assert outcome.method_outcomes["diameter"] == "deep-witness"

    def test_race_with_falsifier_agrees_with_oracle(self):
        for name in ("fifo3-k2", "counter3-t5-k3"):
            inst = next(i for i in build_suite() if i.name == name)
            distance = BddReachability(inst.system).shortest_distance(
                inst.final)
            want = SolveResult.SAT if distance is not None \
                and distance <= inst.k else SolveResult.UNSAT
            outcome = race(inst.system, inst.final, inst.k,
                           methods=["sat-incremental"],
                           prover="k-induction", semantics="within",
                           reduce="auto", wall_timeout=60.0)
            assert outcome.result.status is want


class TestCheckerEscalation:
    def test_safe_property_escalates_to_proof(self):
        vs = [ex.var(f"c{i}") for i in range(3)]
        carry = ex.TRUE
        nxt = {}
        for i, v in enumerate(vs):
            nxt[f"c{i}"] = ex.mk_xor(v, carry)
            carry = ex.mk_and(carry, v)
        system = _ts(("c0", "c1", "c2"),
                     ex.mk_and(*[ex.mk_not(v) for v in vs]), nxt)
        safe = Invariant(ex.mk_or(vs[0], ex.mk_not(vs[0])))
        checker = PropertyChecker(system, properties={"safe": safe},
                                  prover="interpolation")
        try:
            result = checker.check("safe", 4)
        finally:
            checker.close()
        assert result.verdict is Verdict.HOLDS
        assert result.conclusive
        assert result.proved

    def test_prover_must_prove_unbounded(self):
        system, bad = _input_driven_system()
        with pytest.raises(ValueError, match="proves_unbounded"):
            PropertyChecker(system, prover="sat-unroll")
