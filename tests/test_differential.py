"""Differential tests: every decision method against every other.

The bound-sweep engine makes it cheap to ask the same query many ways;
this suite turns that into a correctness harness:

* for one representative design per suite family and every bound
  k = 0..6, the ``sat-incremental``, ``sat-unroll`` and ``jsat``
  methods and the BDD reachability baseline must all return the same
  verdict, every SAT witness must replay against the transition
  system, and (when the state space is small enough) the verdict must
  match the explicit-state oracle;
* property-based (hypothesis) cross-checks on random transition
  systems: the incremental sweep agrees with per-bound ``sat-unroll``
  bound-for-bound, and the two query semantics satisfy
  ``within(k) ⇔ ∃ j <= k: exact(j)``.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.bdd.reachability import BddReachability
from repro.bmc import check_reachability, sweep
from repro.models import build_suite
from repro.sat.types import SolveResult
from repro.system import ExplicitOracle, random_predicate, random_system

MAX_K = 6
SAT_METHODS = ("sat-incremental", "sat-unroll", "jsat")

COMMON = dict(deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large])


def _family_representatives():
    """The first (smallest) instance of every suite family."""
    seen = {}
    for instance in build_suite():
        seen.setdefault(instance.family, instance)
    return sorted(seen.values(), key=lambda i: i.family)


REPRESENTATIVES = _family_representatives()


@pytest.mark.parametrize("instance", REPRESENTATIVES,
                         ids=[i.family for i in REPRESENTATIVES])
def test_methods_agree_on_family(instance):
    system, final = instance.system, instance.final
    bdd = BddReachability(system)
    oracle = None
    if system.num_state_bits * 2 + len(system.input_vars) <= 22:
        oracle = ExplicitOracle(system)
    for k in range(MAX_K + 1):
        verdicts = {}
        for method in SAT_METHODS:
            result = check_reachability(system, final, k, method)
            assert result.status is not SolveResult.UNKNOWN, \
                (instance.name, k, method)
            verdicts[method] = result.status
            if result.status is SolveResult.SAT:
                assert result.trace is not None, (instance.name, k, method)
                result.trace.validate(system, final)
                assert result.trace.length == k
        assert len(set(verdicts.values())) == 1, (instance.name, k, verdicts)
        status = verdicts["sat-incremental"]
        want = bdd.reachable_in_exactly(final, k)
        assert (status is SolveResult.SAT) == want, \
            (instance.name, k, status, "bdd")
        if oracle is not None:
            assert oracle.reachable_in_exactly(final, k) == want, \
                (instance.name, k, "oracle vs bdd")


@pytest.mark.parametrize("instance", REPRESENTATIVES[::3],
                         ids=[i.family for i in REPRESENTATIVES[::3]])
def test_within_semantics_agree_on_family(instance):
    system, final = instance.system, instance.final
    bdd = BddReachability(system)
    for k in (0, 2, MAX_K):
        verdicts = {}
        for method in SAT_METHODS:
            result = check_reachability(system, final, k, method,
                                        semantics="within")
            verdicts[method] = result.status
            if result.trace is not None:
                result.trace.validate(system, final)
                assert result.trace.length <= k
                # Uniform within-mode shortening: the first final state
                # ends the trace, whatever back end produced it.
                assert not any(final.evaluate(s)
                               for s in result.trace.states[:-1])
        assert len(set(verdicts.values())) == 1, (instance.name, k, verdicts)
        want = bdd.reachable_within(final, k)
        assert (verdicts["jsat"] is SolveResult.SAT) == want, \
            (instance.name, k)


class TestRandomSystems:
    """Property-based differential checks on random transition systems."""

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, **COMMON)
    def test_incremental_sweep_matches_per_bound_unroll(self, seed):
        rng = random.Random(seed)
        system = random_system(rng, num_latches=3, num_inputs=1, depth=2)
        final = random_predicate(rng, system)
        max_k = 4
        unroll = [check_reachability(system, final, k, "sat-unroll").status
                  for k in range(max_k + 1)]
        swept = sweep(system, final, max_k, method="sat-incremental")
        for bound in swept.per_bound:
            assert bound.status is unroll[bound.k], (seed, bound.k)
        sat_bounds = [k for k, s in enumerate(unroll)
                      if s is SolveResult.SAT]
        expected_shortest = sat_bounds[0] if sat_bounds else None
        assert swept.shortest_k == expected_shortest, seed
        if swept.trace is not None:
            swept.trace.validate(system, final)
            assert swept.trace.length == expected_shortest

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, **COMMON)
    def test_within_is_prefix_or_of_exact(self, seed):
        rng = random.Random(seed)
        system = random_system(rng, num_latches=3, num_inputs=1, depth=2)
        final = random_predicate(rng, system)
        max_k = 4
        exact = [check_reachability(system, final, k, "sat-unroll").status
                 for k in range(max_k + 1)]
        for k in range(max_k + 1):
            want = (SolveResult.SAT
                    if any(s is SolveResult.SAT for s in exact[:k + 1])
                    else SolveResult.UNSAT)
            for method in ("sat-unroll", "sat-incremental"):
                got = check_reachability(system, final, k, method,
                                         semantics="within")
                assert got.status is want, (seed, k, method)
                if got.trace is not None:
                    got.trace.validate(system, final)
                    assert not any(final.evaluate(s)
                                   for s in got.trace.states[:-1])

class TestEngineLegs:
    """The same sweep with one leg pinned to each SAT engine via
    ``REPRO_SAT_KERNEL``: the engine choice must be invisible in every
    verdict, shortest bound, and witness."""

    @pytest.mark.parametrize("instance", REPRESENTATIVES[::3],
                             ids=[i.family for i in REPRESENTATIVES[::3]])
    def test_suite_sweep_engine_invariant(self, instance, monkeypatch):
        system, final = instance.system, instance.final
        legs = {}
        for engine in ("reference", "kernel"):
            monkeypatch.setenv("REPRO_SAT_KERNEL", engine)
            legs[engine] = sweep(system, final, MAX_K,
                                 method="sat-incremental")
        ref, ker = legs["reference"], legs["kernel"]
        assert ref.status is ker.status, instance.name
        assert ref.shortest_k == ker.shortest_k, instance.name
        per_bound = {leg: {b.k: b.status for b in result.per_bound}
                     for leg, result in legs.items()}
        assert per_bound["reference"] == per_bound["kernel"], instance.name
        if ker.trace is not None:
            ker.trace.validate(system, final)
            assert ker.trace.length == ker.shortest_k

    @given(st.integers(0, 10_000))
    @settings(max_examples=10, **COMMON)
    def test_methods_engine_matrix_agrees(self, seed):
        rng = random.Random(seed)
        system = random_system(rng, num_latches=3, num_inputs=1, depth=2)
        final = random_predicate(rng, system)
        import os
        previous = os.environ.get("REPRO_SAT_KERNEL")
        verdicts = {}
        try:
            for engine in ("reference", "kernel"):
                os.environ["REPRO_SAT_KERNEL"] = engine
                for method in SAT_METHODS:
                    for k in (0, 2, 4):
                        result = check_reachability(system, final, k,
                                                    method)
                        verdicts.setdefault((method, k), set()).add(
                            result.status)
        finally:
            if previous is None:
                os.environ.pop("REPRO_SAT_KERNEL", None)
            else:
                os.environ["REPRO_SAT_KERNEL"] = previous
        for key, statuses in verdicts.items():
            assert len(statuses) == 1, (seed, key, statuses)


class TestRandomSweeps:
    @given(st.integers(0, 10_000))
    @settings(max_examples=10, **COMMON)
    def test_sweeps_agree_across_methods(self, seed):
        rng = random.Random(seed)
        system = random_system(rng, num_latches=3, num_inputs=0, depth=2)
        final = random_predicate(rng, system)
        results = {method: sweep(system, final, 4, method=method)
                   for method in SAT_METHODS}
        shortest = {m: r.shortest_k for m, r in results.items()}
        assert len(set(shortest.values())) == 1, (seed, shortest)
        statuses = {m: r.status for m, r in results.items()}
        assert len(set(statuses.values())) == 1, (seed, statuses)
