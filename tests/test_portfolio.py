"""Portfolio subsystem tests: pool, race, scheduler, cache, IPC.

The satellite checklist pins four behaviours: race cancellation really
kills loser processes, batch results are identical to serial
``run_matrix`` output, cache hits skip solving, and ``Budget`` limits
hold inside workers.
"""

import os
import pickle
import time

import pytest

from repro.bmc.engine import check_reachability
from repro.harness.runner import run_matrix
from repro.logic import expr as ex
from repro.models import build_suite, counter
from repro.portfolio import (BatchScheduler, ResultCache, Task, WorkerPool,
                             budget_from_dict, budget_to_dict, cell_key,
                             decode_outcome, encode_outcome, execute_cell,
                             fingerprint_expr, fingerprint_system,
                             make_cell_payload, race)
from repro.portfolio.scheduler import hardness_estimate
from repro.sat.types import Budget, SolveResult


# Deterministic budget: no wall-clock term, so serial and parallel runs
# take identical solver paths regardless of machine load.
DET_BUDGET = Budget(max_conflicts=10_000, max_literals=1_000_000)


@pytest.fixture(scope="module")
def small_suite():
    suite = build_suite()
    picked = {}
    for inst in suite:
        if inst.family not in picked and 2 <= inst.k <= 6:
            picked[inst.family] = inst
    return list(picked.values())[:6]


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover
        return True
    return True


# ----------------------------------------------------------------------
class TestIpc:
    def test_expr_pickle_roundtrip_preserves_interning(self):
        f = (ex.var("a") & ~ex.var("b")) | ex.var("c").iff(ex.var("a"))
        g = pickle.loads(pickle.dumps(f))
        assert g is f                      # re-interned into same node
        assert g.evaluate({"a": True, "b": False, "c": True})

    def test_budget_dict_roundtrip(self):
        budget = Budget(max_conflicts=7, max_seconds=1.5)
        back = budget_from_dict(budget_to_dict(budget))
        assert back.max_conflicts == 7
        assert back.max_seconds == 1.5
        assert back.max_literals is None
        assert budget_from_dict(None) is None

    def test_outcome_roundtrip_with_trace(self):
        system, final, depth = counter.make(3, 5)
        result = check_reachability(system, final, depth, "sat-unroll")
        assert result.status is SolveResult.SAT
        outcome = decode_outcome(encode_outcome(result))
        assert outcome["status"] is SolveResult.SAT
        assert outcome["trace"].is_valid(system, final)

    def test_execute_cell_never_raises(self):
        system, final, _ = counter.make(3, 5)
        # A bogus QBF backend makes check_reachability raise; the worker
        # wrapper must fold that into an error outcome, not propagate.
        payload = make_cell_payload(
            system, final, 2, "qbf", semantics="exact",
            options={"qbf_backend": "no-such-backend"})
        outcome = execute_cell(payload)
        assert outcome["status"] == "UNKNOWN"
        assert outcome["error"]


# ----------------------------------------------------------------------
class TestWorkerPool:
    def test_batch_executes_all_tasks(self, small_suite):
        tasks = [Task(i, make_cell_payload(inst.system, inst.final, inst.k,
                                           "jsat", budget=DET_BUDGET))
                 for i, inst in enumerate(small_suite)]
        with WorkerPool(jobs=2) as pool:
            outcomes = pool.run(tasks)
        assert sorted(outcomes) == list(range(len(small_suite)))
        assert all(o["status"] in ("SAT", "UNSAT", "UNKNOWN")
                   for o in outcomes.values())
        assert {o["worker"] for o in outcomes.values()} <= {"w0", "w1"}

    def test_budget_enforced_inside_worker(self, small_suite):
        # A zero-second budget must come back UNKNOWN from the worker —
        # the Budget machinery runs inside the child process.
        inst = small_suite[0]
        payload = make_cell_payload(inst.system, inst.final, inst.k,
                                    "jsat", budget=Budget(max_seconds=0.0))
        with WorkerPool(jobs=1) as pool:
            outcomes = pool.run([Task(0, payload)])
        assert outcomes[0]["status"] == "UNKNOWN"
        assert not outcomes[0].get("timed_out")

    def test_wall_timeout_kills_and_respawns(self):
        # A sleeping executor stands in for a hung solver.
        with WorkerPool(jobs=1, execute=_sleepy_execute) as pool:
            outcomes = pool.run([Task(0, {"sleep": 60.0},
                                      wall_timeout=0.3),
                                 Task(1, {"sleep": 0.0})])
            assert pool.respawns == 1
        assert outcomes[0]["status"] == "UNKNOWN"
        assert outcomes[0]["timed_out"]
        # The respawned worker still ran the second task.
        assert outcomes[1]["status"] == "DONE"

    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            WorkerPool(jobs=0)


def _sleepy_execute(payload):
    time.sleep(payload["sleep"])
    return {"status": "DONE", "stats": {}, "trace": None, "seconds": 0.0,
            "wall_seconds": 0.0, "cpu_seconds": 0.0, "error": None}


# ----------------------------------------------------------------------
class TestRace:
    def test_race_finds_sat_with_valid_witness(self):
        system, final, depth = counter.make(4, 9)
        # sim_tier off: this test races the solver lanes themselves.
        outcome = race(system, final, depth, sim_tier=False,
                       budget=Budget(max_seconds=10.0))
        from repro.portfolio import DEFAULT_RACE_METHODS
        assert outcome.result.status is SolveResult.SAT
        assert outcome.winner in DEFAULT_RACE_METHODS
        assert outcome.result.trace is not None
        assert outcome.result.trace.is_valid(system, final)
        assert outcome.result.stats["portfolio_winner"] == outcome.winner

    def test_race_cancellation_kills_losers(self):
        # Give the loser an enormous budget so it would run for a long
        # time if not killed; the winner finishes almost instantly.
        system, final, depth = counter.make(5, 19)
        outcome = race(system, final, depth,
                       methods=("jsat", "sat-unroll"),
                       budget=Budget(max_seconds=60.0))
        assert outcome.result.status is SolveResult.SAT
        for pid in outcome.loser_pids:
            assert not _pid_alive(pid), f"loser {pid} survived the race"
        states = set(outcome.method_outcomes.values())
        assert "won" in states
        # Cancellation is prompt (well under the loser's 60 s budget).
        assert outcome.cancel_latency < 10.0

    def test_race_all_inconclusive_returns_unknown(self):
        system, final, depth = counter.make(4, 9)
        # sim_tier off: it would (correctly) answer SAT before the
        # zero-budget solver lanes get to be inconclusive.
        outcome = race(system, final, depth, sim_tier=False,
                       budget=Budget(max_seconds=0.0))
        assert outcome.result.status is SolveResult.UNKNOWN
        assert outcome.winner is None
        assert set(outcome.method_outcomes.values()) <= {
            "inconclusive", "cancelled", "timeout"}

    def test_race_unsat_is_conclusive(self):
        system, final, depth = counter.make(4, 9)
        outcome = race(system, final, depth - 1,
                       budget=Budget(max_seconds=10.0))
        assert outcome.result.status is SolveResult.UNSAT

    def test_race_rejects_unknown_method(self):
        system, final, depth = counter.make(3, 5)
        with pytest.raises(ValueError):
            race(system, final, depth, methods=("no-such-method",))

    def test_engine_portfolio_method(self):
        system, final, depth = counter.make(3, 5)
        result = check_reachability(system, final, depth, "portfolio",
                                    budget=Budget(max_seconds=10.0))
        assert result.status is SolveResult.SAT
        assert result.method == "portfolio"
        assert "portfolio_winner" in result.stats
        assert "portfolio_cancel_latency_ms" in result.stats


# ----------------------------------------------------------------------
class TestBatchScheduler:
    def test_batch_identical_to_serial(self, small_suite):
        methods = ["sat-unroll", "jsat"]
        serial = run_matrix(small_suite, methods, budget=DET_BUDGET)
        parallel = run_matrix(small_suite, methods, budget=DET_BUDGET,
                              jobs=2)
        assert len(serial) == len(parallel)
        for s, p in zip(serial, parallel):
            assert s.instance.name == p.instance.name
            assert s.method == p.method
            assert s.status is p.status
            assert s.correct == p.correct
            assert s.stats == p.stats
        assert all(p.worker in ("w0", "w1") for p in parallel)
        assert all(p.cpu_seconds >= 0.0 for p in parallel)

    def test_hardest_first_ordering(self, small_suite):
        timings = {(small_suite[0].name, "jsat"): 100.0}
        hard = hardness_estimate(small_suite[0], "jsat", timings)
        cold = hardness_estimate(small_suite[0], "jsat", None)
        assert hard == 100.0
        assert cold > 0.0
        # Method weight separates equal bounds.
        assert hardness_estimate(small_suite[0], "qbf", None) > cold

    def test_scheduler_stats(self, small_suite):
        scheduler = BatchScheduler(jobs=2)
        results = scheduler.run(small_suite[:3], ["jsat"],
                                budget=DET_BUDGET)
        assert len(results) == 3
        assert scheduler.stats["executed"] == 3
        assert scheduler.stats["cache_hits"] == 0
        assert scheduler.stats["cpu_seconds"] >= 0.0


# ----------------------------------------------------------------------
class TestResultCache:
    def test_fingerprints_stable_and_distinct(self):
        s1, f1, _ = counter.make(3, 5)
        s2, f2, _ = counter.make(3, 5)
        s3, f3, _ = counter.make(4, 9)
        assert fingerprint_system(s1) == fingerprint_system(s2)
        assert fingerprint_expr(f1) == fingerprint_expr(f2)
        assert fingerprint_system(s1) != fingerprint_system(s3)

    def test_key_sensitive_to_all_fields(self):
        system, final, _ = counter.make(3, 5)
        base = cell_key(system, final, 4, "jsat", "exact", DET_BUDGET, {})
        assert base != cell_key(system, final, 5, "jsat", "exact",
                                DET_BUDGET, {})
        assert base != cell_key(system, final, 4, "sat-unroll", "exact",
                                DET_BUDGET, {})
        assert base != cell_key(system, final, 4, "jsat", "within",
                                DET_BUDGET, {})
        assert base != cell_key(system, final, 4, "jsat", "exact",
                                Budget(max_conflicts=1), {})
        assert base != cell_key(system, final, 4, "jsat", "exact",
                                DET_BUDGET, {"f_pruning": False})

    def test_get_put_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        assert cache.get("deadbeef" * 8) is None
        outcome = {"status": "UNSAT", "k": 3, "method": "jsat",
                   "seconds": 0.1, "stats": {"queries": 4}, "trace": None,
                   "error": None, "wall_seconds": 0.1, "cpu_seconds": 0.1}
        key = "ab" * 32
        cache.put(key, outcome)
        assert cache.get(key)["stats"] == {"queries": 4}
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0

    def test_cache_hits_skip_solving(self, small_suite, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        sched1 = BatchScheduler(jobs=2, cache=cache)
        first = sched1.run(small_suite[:4], ["jsat"], budget=DET_BUDGET)
        assert sched1.stats["executed"] == 4
        assert sched1.stats["cache_hits"] == 0

        sched2 = BatchScheduler(jobs=2, cache=cache)
        second = sched2.run(small_suite[:4], ["jsat"], budget=DET_BUDGET)
        assert sched2.stats["executed"] == 0          # nothing re-solved
        assert sched2.stats["cache_hits"] == 4
        assert all(c.worker == "cache" for c in second)
        # A hit costs nothing this run — no inherited timings.
        assert all(c.cpu_seconds == 0.0 and c.seconds == 0.0
                   for c in second)
        for a, b in zip(first, second):
            assert a.status is b.status
            # Identical modulo the hit annotation the cache adds.
            assert b.stats.pop("served_from_cache") is True
            assert a.stats == b.stats

    def test_wall_clock_unknown_not_cached(self, small_suite, tmp_path):
        # UNKNOWN under a wall-clock budget reflects machine load, not
        # the query; it must not be pinned into the cache.
        cache = ResultCache(tmp_path / "cache")
        sched = BatchScheduler(jobs=1, cache=cache)
        results = sched.run(small_suite[:2], ["jsat"],
                            budget=Budget(max_seconds=0.0))
        assert all(c.status is SolveResult.UNKNOWN for c in results)
        assert len(cache) == 0

    def test_semantics_never_cross_served(self, tmp_path):
        # Regression: an exact-k entry must never satisfy the same query
        # under within-k semantics (gray code: exact(depth+1) is UNSAT —
        # the single orbit has moved past the target — but within(depth+1)
        # is SAT).  A cross-served entry would flip the verdict.
        from repro.models import gray
        from repro.models.suite import Instance
        system, final, depth = gray.make(3)
        inst = Instance("gray3-sem", "gray", system, final, depth + 1, None)

        key_exact = cell_key(system, final, inst.k, "jsat", "exact",
                             DET_BUDGET, {})
        key_within = cell_key(system, final, inst.k, "jsat", "within",
                              DET_BUDGET, {})
        assert key_exact != key_within

        cache = ResultCache(tmp_path / "cache")
        sched1 = BatchScheduler(jobs=1, cache=cache)
        exact = sched1.run([inst], ["jsat"], budget=DET_BUDGET,
                           semantics="exact")
        assert exact[0].status is SolveResult.UNSAT
        assert len(cache) == 1

        sched2 = BatchScheduler(jobs=1, cache=cache)
        within = sched2.run([inst], ["jsat"], budget=DET_BUDGET,
                            semantics="within")
        assert sched2.stats["cache_hits"] == 0    # no cross-semantics hit
        assert sched2.stats["executed"] == 1
        assert within[0].status is SolveResult.SAT

        # The exact entry is still served to an exact re-run.
        sched3 = BatchScheduler(jobs=1, cache=cache)
        again = sched3.run([inst], ["jsat"], budget=DET_BUDGET,
                           semantics="exact")
        assert sched3.stats["cache_hits"] == 1
        assert again[0].status is SolveResult.UNSAT

    def test_wall_clock_unknown_still_refused_and_tampering_detected(
            self, small_suite, tmp_path):
        # Both cache-safety properties in one regression: (a) UNKNOWN
        # under a wall-clock budget is never stored, (b) an entry whose
        # recorded fingerprint does not match its key is never served.
        import json

        cache = ResultCache(tmp_path / "cache")
        sched = BatchScheduler(jobs=1, cache=cache)
        results = sched.run(small_suite[:1], ["jsat"],
                            budget=Budget(max_seconds=0.0))
        assert results[0].status is SolveResult.UNKNOWN
        assert len(cache) == 0                    # (a) refused

        key = "cd" * 32
        outcome = {"status": "UNSAT", "k": 1, "method": "jsat",
                   "seconds": 0.0, "stats": {}, "trace": None,
                   "error": None}
        cache.put(key, outcome)
        assert cache.get(key) is not None
        path = cache._path(key)
        entry = json.loads(open(path).read())
        entry["key"] = "ef" * 32                  # tamper the fingerprint
        with open(path, "w") as handle:
            json.dump(entry, handle)
        assert cache.get(key) is None             # (b) rejected

    def test_run_matrix_accepts_cache_path(self, small_suite, tmp_path):
        results = run_matrix(small_suite[:2], ["jsat"], budget=DET_BUDGET,
                             jobs=2, cache=str(tmp_path / "cache"))
        again = run_matrix(small_suite[:2], ["jsat"], budget=DET_BUDGET,
                           jobs=2, cache=str(tmp_path / "cache"))
        assert [c.status for c in results] == [c.status for c in again]
        assert all(c.worker == "cache" for c in again)
