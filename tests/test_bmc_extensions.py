"""k-induction and interpolation-based MC (the paper-intro techniques)."""

import random

import pytest

from repro.bmc.induction import prove_by_induction
from repro.bmc.interpolation import prove_by_interpolation
from repro.logic import expr as ex
from repro.models import (arbiter, cache_msi, counter, elevator, mutex,
                          shift_register, traffic)
from repro.sat.types import Budget
from repro.system import ExplicitOracle, random_predicate, random_system


SAFE_CASES = [
    ("ring-two-tokens",
     lambda: shift_register.make_invariant_violation(4)),
    ("arbiter-mutex", lambda: arbiter.make_mutex_check(3)),
    ("traffic-both-green", lambda: traffic.make_safety_check(2)),
    ("peterson-exclusion", mutex.make_exclusion_check),
    ("msi-coherence", cache_msi.make_coherence_check),
    ("elevator-interlock", lambda: elevator.make_interlock_check(2)),
]

CEX_CASES = [
    ("counter-reaches-3", lambda: counter.make(3, 3)),
    ("ring-position-2", lambda: shift_register.make(4, 2)),
    ("mutex-critical", lambda: mutex.make(0)),
]


class TestInduction:
    @pytest.mark.parametrize("name,build", SAFE_CASES,
                             ids=[c[0] for c in SAFE_CASES])
    def test_proves_safe_properties(self, name, build):
        system, bad, _ = build()
        result = prove_by_induction(system, bad, max_k=12)
        assert result.status == "proved", name

    @pytest.mark.parametrize("name,build", CEX_CASES,
                             ids=[c[0] for c in CEX_CASES])
    def test_finds_counterexamples(self, name, build):
        system, bad, depth = build()
        result = prove_by_induction(system, bad, max_k=depth + 2)
        assert result.status == "cex", name
        assert result.trace is not None
        result.trace.validate(system, bad)
        assert result.trace.length == depth     # base case finds shortest

    def test_unknown_when_bound_too_small(self):
        # A deep counter target: induction needs either a long base case
        # or a deep simple-path argument; k=1 gives neither.
        system, bad, _ = counter.make(4, 15)
        result = prove_by_induction(system, bad, max_k=1)
        assert result.status == "unknown"

    def test_bad_predicate_validated(self):
        system, _, _ = counter.make(3, 1)
        with pytest.raises(ValueError):
            prove_by_induction(system, ex.var("zzz"))

    def test_agrees_with_oracle_on_random_systems(self):
        rng = random.Random(61)
        checked = 0
        for _ in range(15):
            system = random_system(rng, num_latches=3, num_inputs=1,
                                   depth=2)
            bad = random_predicate(rng, system)
            oracle = ExplicitOracle(system)
            reachable = oracle.shortest_distance(bad) is not None
            result = prove_by_induction(system, bad, max_k=10)
            if result.status == "unknown":
                continue
            checked += 1
            assert (result.status == "cex") == reachable
        assert checked >= 10


class TestInterpolation:
    @pytest.mark.parametrize("name,build", SAFE_CASES,
                             ids=[c[0] for c in SAFE_CASES])
    def test_proves_safe_properties(self, name, build):
        system, bad, _ = build()
        result = prove_by_interpolation(system, bad, max_k=8)
        assert result.status == "proved", name
        assert result.invariant is not None
        # The invariant contains the initial states.
        oracle = ExplicitOracle(system)
        for state in oracle.initial_states:
            env = dict(zip(system.state_vars, state))
            assert result.invariant.evaluate(env)

    @pytest.mark.parametrize("name,build", CEX_CASES,
                             ids=[c[0] for c in CEX_CASES])
    def test_finds_counterexamples(self, name, build):
        system, bad, depth = build()
        result = prove_by_interpolation(system, bad, max_k=depth + 2)
        assert result.status == "cex", name
        assert result.trace is not None
        result.trace.validate(system, bad)

    def test_depth0_counterexample(self):
        system, bad, _ = counter.make(3, 0)
        result = prove_by_interpolation(system, bad)
        assert result.status == "cex"
        assert result.trace.length == 0

    def test_invariant_is_inductive_overapproximation(self):
        system, bad, _ = arbiter.make_mutex_check(3)
        result = prove_by_interpolation(system, bad, max_k=8)
        assert result.status == "proved"
        inv = result.invariant
        oracle = ExplicitOracle(system)
        # Every reachable state satisfies the invariant... the invariant
        # is an over-approximation of reachable states, closed enough to
        # exclude bad ones.
        reachable = set(oracle.initial_states)
        frontier = set(reachable)
        while frontier:
            nxt = set()
            for s in frontier:
                nxt |= oracle.successors(s)
            frontier = nxt - reachable
            reachable |= nxt
        for state in reachable:
            env = dict(zip(system.state_vars, state))
            assert inv.evaluate(env)
            assert not bad.evaluate(env)

    def test_agrees_with_oracle_on_random_systems(self):
        rng = random.Random(62)
        checked = 0
        for _ in range(12):
            system = random_system(rng, num_latches=3, num_inputs=1,
                                   depth=2)
            bad = random_predicate(rng, system)
            oracle = ExplicitOracle(system)
            reachable = oracle.shortest_distance(bad) is not None
            result = prove_by_interpolation(system, bad, max_k=10,
                                            max_iterations=128)
            if result.status == "unknown":
                continue
            checked += 1
            assert (result.status == "cex") == reachable
        assert checked >= 8
