"""CNF preprocessor tests: unit propagation, pures, subsumption."""

import random

from repro.logic.cnf import CNF
from repro.logic.simplify import (propagate_units, pure_literals, simplify_cnf,
                                  subsume)
from repro.sat.dpll import brute_force_sat
from repro.sat.types import SolveResult


def test_propagate_units_chains():
    cnf = CNF()
    cnf.add_clause([1])
    cnf.add_clause([-1, 2])
    cnf.add_clause([-2, 3])
    simplified, assignment = propagate_units(cnf)
    assert simplified is not None and not simplified.clauses
    assert assignment == {1: True, 2: True, 3: True}


def test_propagate_units_conflict():
    cnf = CNF()
    cnf.add_clause([1])
    cnf.add_clause([-1])
    simplified, _ = propagate_units(cnf)
    assert simplified is None


def test_pure_literals():
    cnf = CNF()
    cnf.add_clause([1, 2])
    cnf.add_clause([1, -2])
    assert pure_literals(cnf) == {1: True}


def test_subsume_removes_supersets_and_duplicates():
    cnf = CNF()
    cnf.add_clause([1])
    cnf.add_clause([1, 2])
    cnf.add_clause([1, 2])
    cnf.add_clause([2, 3])
    out = subsume(cnf)
    assert sorted(out.clauses) == [(1,), (2, 3)]


def test_simplify_preserves_satisfiability():
    rng = random.Random(99)
    for _ in range(150):
        n = rng.randint(1, 8)
        cnf = CNF(n)
        for _ in range(rng.randint(1, 25)):
            clause = [rng.choice([1, -1]) * rng.randint(1, n)
                      for _ in range(rng.randint(1, 3))]
            cnf.add_clause(clause)
        before, _ = brute_force_sat(cnf)
        result = simplify_cnf(cnf)
        if result.unsat:
            after = SolveResult.UNSAT
        else:
            reduced = result.cnf.copy()
            for var, val in result.forced.items():
                reduced.add_clause([var if val else -var])
            after, _ = brute_force_sat(reduced)
        assert after is before


def test_simplify_forced_literals_extend_models():
    cnf = CNF()
    cnf.add_clause([1])
    cnf.add_clause([-1, 2])
    cnf.add_clause([3, 4])
    result = simplify_cnf(cnf)
    assert not result.unsat
    assert result.forced[1] is True
    assert result.forced[2] is True
