"""Tests for the ``repro serve`` daemon: protocol, queue, end-to-end.

The end-to-end tests run a real daemon (asyncio loop in a background
thread, warm worker pool, unix socket) and speak to it through
:class:`~repro.serve.client.ServeClient` — the same path the CLI verbs
take.  The "long job" used by cancellation/eviction tests is the
paper's own hard case: ``qbf-squaring`` on the mutex family runs
effectively forever on a QDPLL baseline, and aborts within one budget
checkpoint when the worker's stop event fires.
"""

from __future__ import annotations

import threading
import time
from types import SimpleNamespace

import pytest

from repro import cli
from repro.serve import (FairQueue, Job, ProtocolError,
                         ServeClient, ServeDaemon, ServeError,
                         decode_line, encode_line, validate_request)

# A job that keeps a worker busy until cancelled: QDPLL on the
# squaring encoding (the paper's collapsing baseline), unlimited
# budget, reduction off so nothing shrinks it behind our back.
LONG_JOB = dict(family="mutex", k=8, kind="check",
                method="qbf-squaring", reduce="off")

QUICK = dict(family="counter", k=9, method="jsat")


# ----------------------------------------------------------------------
# Protocol units
# ----------------------------------------------------------------------
class TestProtocol:
    def test_defaults_filled(self):
        op, fields = validate_request({"op": "submit",
                                       "family": "counter", "k": 3})
        assert op == "submit"
        assert fields["method"] == "jsat"
        assert fields["kind"] == "check"
        assert fields["reduce"] == "auto"
        assert fields["subscribe"] is False

    def test_unknown_op_suggests(self):
        with pytest.raises(ProtocolError, match="did you mean 'submit'"):
            validate_request({"op": "sumbit"})

    def test_unknown_field_suggests(self):
        with pytest.raises(ProtocolError, match="did you mean 'budget'"):
            validate_request({"op": "submit", "family": "counter",
                             "k": 3, "buget": {}})

    def test_missing_required_field(self):
        with pytest.raises(ProtocolError, match="requires field 'k'"):
            validate_request({"op": "submit", "family": "counter"})

    def test_bad_budget_limit(self):
        with pytest.raises(ProtocolError,
                           match="did you mean 'max_conflicts'"):
            validate_request({"op": "submit", "family": "counter",
                             "k": 3, "budget": {"max_conflits": 5}})

    def test_version_mismatch(self):
        with pytest.raises(ProtocolError, match="version"):
            validate_request({"op": "ping", "version": 99})

    def test_type_errors(self):
        for bad in [{"op": "submit", "family": "counter", "k": -1},
                    {"op": "submit", "family": "counter", "k": True},
                    {"op": "submit", "family": 7, "k": 3},
                    {"op": "submit", "family": "counter", "k": 3,
                     "kind": "race"},
                    {"op": "submit", "family": "counter", "k": 3,
                     "deadline": -2},
                    {"op": "cancel"}]:
            with pytest.raises(ProtocolError):
                validate_request(bad)

    def test_batch_validates_entries(self):
        with pytest.raises(ProtocolError, match="did you mean"):
            validate_request({"op": "batch", "jobs": [
                {"family": "counter", "k": 3, "methd": "jsat"}]})
        with pytest.raises(ProtocolError, match="non-empty"):
            validate_request({"op": "batch", "jobs": []})

    def test_line_roundtrip(self):
        obj = {"op": "ping", "id": 7}
        assert decode_line(encode_line(obj)) == obj

    def test_bad_json_line(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            decode_line(b"{nope\n")


# ----------------------------------------------------------------------
# FairQueue units
# ----------------------------------------------------------------------
def _job(job_id: str, priority: int = 0, deadline=None) -> Job:
    job = Job(job_id, int(job_id[1:]), f"key-{job_id}",
              {"family": "counter", "kind": "check", "k": 3,
               "method": "jsat"}, {})
    job.priority = priority
    job.deadline = deadline
    return job


class TestFairQueue:
    def test_priority_order(self):
        q = FairQueue()
        q.push(_job("j1", priority=0), client_rank=0)
        q.push(_job("j2", priority=5), client_rank=0)
        q.push(_job("j3", priority=-1), client_rank=0)
        assert [q.pop().job_id for _ in range(3)] == ["j2", "j1", "j3"]

    def test_client_fairness(self):
        # A flood from client A (ranks 0..2) interleaves with a
        # newcomer B whose first job (rank 0) beats A's backlog tail.
        q = FairQueue()
        q.push(_job("j1"), client_rank=0)    # A
        q.push(_job("j2"), client_rank=1)    # A
        q.push(_job("j3"), client_rank=2)    # A
        q.push(_job("j4"), client_rank=0)    # B, fresh
        order = [q.pop().job_id for _ in range(4)]
        assert order.index("j4") < order.index("j2")
        assert order.index("j4") < order.index("j3")

    def test_remove_is_tombstone(self):
        q = FairQueue()
        q.push(_job("j1"), client_rank=0)
        q.push(_job("j2"), client_rank=0)
        assert q.remove("j1").job_id == "j1"
        assert "j1" not in q
        assert len(q) == 1
        assert q.pop().job_id == "j2"
        assert q.pop() is None

    def test_evict_expired(self):
        q = FairQueue()
        now = time.monotonic()
        q.push(_job("j1", deadline=now - 1), client_rank=0)
        q.push(_job("j2", deadline=now + 60), client_rank=0)
        q.push(_job("j3"), client_rank=0)
        expired = q.evict_expired(now)
        assert [j.job_id for j in expired] == ["j1"]
        assert len(q) == 2
        assert q.next_deadline() == pytest.approx(now + 60)


# ----------------------------------------------------------------------
# End-to-end daemon
# ----------------------------------------------------------------------
def _start_daemon(tmp_path, **kwargs):
    sock = str(tmp_path / "repro.sock")
    # sim_tier off by default: these tests exercise the queue /
    # coalesce / cancel machinery, which the simulation pre-solve
    # tier would answer before a job ever queues.  The sim tier
    # itself is covered in tests/test_sim.py.
    kwargs.setdefault("sim_tier", False)
    daemon = ServeDaemon(socket_path=sock, **kwargs)
    thread = threading.Thread(target=daemon.run, daemon=True)
    thread.start()
    deadline = time.time() + 10
    import os
    while not os.path.exists(sock):
        assert time.time() < deadline, "daemon never bound its socket"
        time.sleep(0.02)
    return SimpleNamespace(socket=sock, daemon=daemon, thread=thread)


def _stop_daemon(handle) -> None:
    if handle.thread.is_alive():
        try:
            with ServeClient(socket_path=handle.socket) as c:
                c.shutdown()
        except Exception:
            pass
    handle.thread.join(timeout=20)
    assert not handle.thread.is_alive(), "daemon failed to shut down"


@pytest.fixture
def served(tmp_path):
    handle = _start_daemon(tmp_path, jobs=2)
    yield handle
    _stop_daemon(handle)


@pytest.fixture
def served_single(tmp_path):
    """One-worker daemon: queueing behaviour is deterministic."""
    handle = _start_daemon(tmp_path, jobs=1, max_queued=3)
    yield handle
    _stop_daemon(handle)


class TestDaemonBasics:
    def test_ping(self, served):
        with ServeClient(socket_path=served.socket) as c:
            pong = c.ping()
        assert pong["pong"] is True and pong["version"] == 1

    def test_submit_and_wait(self, served):
        with ServeClient(socket_path=served.socket) as c:
            done = c.run("counter", 9, method="jsat")
        assert done["state"] == "done"
        result = done["result"]
        assert result["status"] == "SAT" and result["k"] == 9
        # The trace is full-width over the original system even
        # though the daemon solved a reduced query.
        assert result["trace"] is not None
        assert set(result["trace"]["states"][0]) == {"c0", "c1", "c2"}

    def test_repeat_answered_from_cache(self, served):
        with ServeClient(socket_path=served.socket) as c:
            first = c.run("counter", 9, method="jsat")
            ack = c.submit("counter", k=9, method="jsat")
        assert first["state"] == "done"
        assert ack["cached"] is True and ack["state"] == "done"
        assert ack["result"]["status"] == "SAT"

    def test_errors_have_suggestions(self, served):
        with ServeClient(socket_path=served.socket) as c:
            with pytest.raises(ServeError, match="did you mean"):
                c.submit("counters", k=3)
            with pytest.raises(ServeError, match="did you mean"):
                c.submit("counter", k=3, method="jsatt")
            # Daemon survives bad requests.
            assert c.ping()["pong"] is True

    def test_status_and_stats(self, served):
        with ServeClient(socket_path=served.socket) as c:
            ack = c.submit("counter", k=9, method="jsat")
            c.wait(ack)
            view = c.status(ack["job"])
            stats = c.stats()
        assert view["state"] == "done"
        assert view["result"]["status"] == "SAT"
        assert stats["workers"] == 2
        assert stats["jobs"]["submitted"] >= 1
        assert stats["jobs"]["completed"] >= 1
        assert "uptime_seconds" in stats

    def test_batch(self, served):
        with ServeClient(socket_path=served.socket) as c:
            resp = c.batch([
                {"family": "counter", "k": 9, "method": "jsat"},
                {"family": "gray", "k": 6, "method": "jsat"},
                {"family": "nonsense", "k": 1},
            ])
            acks = resp["jobs"]
            assert acks[2]["ok"] is False
            results = [c.wait(a) for a in acks[:2]]
        assert all(r["state"] == "done" for r in results)

    def test_sweep_streams_bounds(self, served):
        bounds = []
        with ServeClient(socket_path=served.socket) as c:
            done = c.run("counter", 9, kind="sweep",
                         method="sat-incremental",
                         on_bound=lambda e: bounds.append(
                             (e["k"], e["status"])))
        assert done["state"] == "done"
        result = done["result"]
        assert result["kind"] == "sweep"
        assert result["status"] == "SAT"
        # Streamed bounds match the final per_bound ladder.
        assert bounds == [(b["k"], b["status"])
                          for b in result["per_bound"]]
        assert bounds[-1][1] == "SAT"
        assert [k for k, _ in bounds] == list(range(len(bounds)))


class TestCoalescing:
    def test_identical_submissions_share_one_execution(
            self, served_single):
        with ServeClient(socket_path=served_single.socket) as c1, \
                ServeClient(socket_path=served_single.socket) as c2:
            # Occupy the only worker so the next jobs stay queued.
            blocker = c1.submit(**LONG_JOB)
            a = c1.submit("counter", k=9, method="jsat")
            b = c2.submit("counter", k=9, method="jsat")
            assert b["job"] == a["job"]
            assert b["coalesced"] is True
            c1.cancel(blocker["job"])
            done_a = c1.wait(a)
            done_b = c2.wait(b)
            stats = c1.stats()
        assert done_a["state"] == done_b["state"] == "done"
        assert done_a["result"]["status"] == \
            done_b["result"]["status"] == "SAT"
        assert stats["jobs"]["coalesced"] == 1


class TestCancellation:
    def test_cancel_frees_worker_without_respawn(self, served_single):
        with ServeClient(socket_path=served_single.socket) as c:
            ack = c.submit(**LONG_JOB)
            time.sleep(0.3)         # let the worker sink into QDPLL
            view = c.cancel(ack["job"])
            assert view["state"] in ("cancelling", "cancelled")
            # The same warm worker must pick up the next job: no
            # kill, no respawn, prompt completion.
            start = time.perf_counter()
            done = c.run(**QUICK)
            elapsed = time.perf_counter() - start
            stats = c.stats()
        assert done["state"] == "done"
        assert elapsed < 10.0
        assert stats["pool"]["respawns"] == 0
        assert stats["pool"]["cancelled"] >= 1
        assert stats["jobs"]["cancelled"] >= 1

    def test_cancel_queued_job(self, served_single):
        with ServeClient(socket_path=served_single.socket) as c:
            blocker = c.submit(**LONG_JOB)
            queued = c.submit("gray", k=6, method="jsat")
            view = c.cancel(queued["job"])
            assert view["state"] == "cancelled"
            c.cancel(blocker["job"])
            # The queued cancel is immediate; the running one counts
            # once the worker's cooperative abort lands.
            deadline = time.time() + 30
            while time.time() < deadline:
                stats = c.stats()
                if stats["jobs"]["cancelled"] >= 2:
                    break
                time.sleep(0.1)
        assert stats["jobs"]["cancelled"] >= 2

    def test_deadline_evicts_queued_job(self, served_single):
        with ServeClient(socket_path=served_single.socket) as c:
            blocker = c.submit(**LONG_JOB)
            doomed = c.submit("gray", k=6, method="jsat",
                              deadline=0.2)
            event = c.wait(doomed)
            assert event["state"] == "evicted"
            c.cancel(blocker["job"])
            stats = c.stats()
        assert stats["jobs"]["evicted"] == 1

    def test_disconnect_cancels_abandoned_job(self, served_single):
        c1 = ServeClient(socket_path=served_single.socket)
        ack = c1.submit(**LONG_JOB)
        time.sleep(0.2)
        c1.close()                  # walk away mid-solve
        with ServeClient(socket_path=served_single.socket) as c2:
            deadline = time.time() + 30
            while time.time() < deadline:
                view = c2.status(ack["job"])
                if view["state"] == "cancelled":
                    break
                time.sleep(0.1)
            assert view["state"] == "cancelled"
            # The worker is warm and free again.
            assert c2.run(**QUICK)["state"] == "done"

    def test_disconnected_subscriber_does_not_wedge_stream(
            self, served):
        with ServeClient(socket_path=served.socket) as owner:
            ack = owner.submit("counter", k=9, kind="sweep",
                               method="sat-unroll", subscribe=True,
                               options={}, budget=None)
            # A second client subscribes, then vanishes mid-stream.
            lurker = ServeClient(socket_path=served.socket)
            try:
                lurker.subscribe(ack["job"])
            except ServeError:
                pass                # job may already be done: fine
            lurker.close()
            done = owner.wait(ack)
        assert done["state"] == "done"
        assert done["result"]["status"] == "SAT"


class TestBudgets:
    def test_per_client_budget_rejects_flood(self, served_single):
        with ServeClient(socket_path=served_single.socket) as c:
            acks = [c.submit(**LONG_JOB)]
            acks.append(c.submit("gray", k=6, method="jsat"))
            acks.append(c.submit("lfsr", k=5, method="jsat"))
            with pytest.raises(ServeError, match="budget exhausted"):
                c.submit("barrel", k=2, method="jsat")
            for ack in acks:
                c.cancel(ack["job"])

    def test_four_concurrent_clients(self, served):
        jobs = [("counter", 9), ("gray", 6), ("lfsr", 5),
                ("arbiter", 2)]
        results = {}
        errors = []

        def worker(family, k):
            try:
                with ServeClient(socket_path=served.socket) as c:
                    results[family] = c.run(family, k, method="jsat")
            except Exception as err:    # pragma: no cover
                errors.append((family, err))

        threads = [threading.Thread(target=worker, args=spec)
                   for spec in jobs]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors
        assert len(results) == 4
        assert all(r["state"] == "done" for r in results.values())
        with ServeClient(socket_path=served.socket) as c:
            stats = c.stats()
        assert stats["jobs"]["completed"] >= 4


class TestServeCli:
    def test_submit_wait_and_status(self, tmp_path, capsys):
        handle = _start_daemon(tmp_path, jobs=1)
        try:
            rc = cli.main(["submit", "counter", "-k", "9",
                           "--method", "jsat", "--socket",
                           handle.socket, "--wait"])
            out = capsys.readouterr().out
            assert rc == 0
            assert "SAT" in out and "trace of length 9" in out

            rc = cli.main(["status", "--socket", handle.socket])
            out = capsys.readouterr().out
            assert rc == 0
            assert "workers: 1" in out and "completed" in out
        finally:
            _stop_daemon(handle)

    def test_follow_streams_bounds(self, tmp_path, capsys):
        handle = _start_daemon(tmp_path, jobs=1)
        try:
            rc = cli.main(["submit", "counter", "-k", "9", "--sweep",
                           "--method", "sat-incremental",
                           "--socket", handle.socket, "--follow"])
            out = capsys.readouterr().out
            assert rc == 0
            assert "k=0" in out and "SAT" in out
        finally:
            _stop_daemon(handle)

    def test_cancel_verb(self, tmp_path, capsys):
        handle = _start_daemon(tmp_path, jobs=1)
        try:
            rc = cli.main(["submit", "mutex", "-k", "8",
                           "--method", "qbf-squaring", "--no-reduce",
                           "--socket", handle.socket])
            out = capsys.readouterr().out
            assert rc == 0
            job = out.split()[1].rstrip(":")
            rc = cli.main(["cancel", job, "--socket", handle.socket])
            out = capsys.readouterr().out
            assert rc == 0
            assert "cancel" in out
        finally:
            _stop_daemon(handle)

    def test_connection_refused_is_friendly(self, tmp_path, capsys):
        rc = cli.main(["status", "--socket",
                       str(tmp_path / "absent.sock")])
        err = capsys.readouterr().err
        assert rc == 1
        assert "cannot reach daemon" in err

    def test_endpoint_required(self, capsys):
        rc = cli.main(["status"])
        err = capsys.readouterr().err
        assert rc == 1
        assert "exactly one endpoint" in err
