"""Differential/fuzz verification of the array-based CDCL kernel.

The :class:`repro.sat.kernel.KernelSolver` must be indistinguishable
from the reference :class:`repro.sat.solver.CdclSolver` at the public
surface — same verdicts, valid models, equivalent assumption-group
retirement, honored budgets, sane stats — on randomly generated
problems.  Both kernel backends are pinned: the pure-Python array
implementation (``REPRO_SAT_CC=off``) and, when a system C compiler is
available, the compiled core.

Three layers of agreement:

* random CNF formulas (hypothesis): kernel vs reference vs DPLL
  enumeration, incremental add/solve rounds with assumptions;
* random transition-system unrollings for k = 0..6 through
  :class:`repro.bmc.incremental.IncrementalBmc` on each engine,
  cross-checked against the explicit-state oracle;
* jSAT-style activation-group retirement: retiring groups mid-stream
  must leave both engines answering identically afterwards.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.bmc.incremental import IncrementalBmc
from repro.logic.cnf import CNF
from repro.sat.ckernel import CORE_ENV, compiled_available
from repro.sat.dpll import brute_force_sat
from repro.sat.kernel import KernelSolver, make_solver
from repro.sat.proof import DratProof, ResolutionProof
from repro.sat.solver import CdclSolver
from repro.sat.types import (Budget, SolveResult, install_stop_check,
                             resolve_engine)
from repro.system import ExplicitOracle, random_predicate, random_system

COMMON = dict(deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large])

#: Kernel backends under test; the compiled leg is skipped gracefully
#: when no C compiler is present (the pure-Python path is always on).
BACKENDS = ["interpreted", "compiled"]


@pytest.fixture(params=BACKENDS)
def kernel_backend(request, monkeypatch):
    """Force one kernel backend for the test's solver constructions."""
    if request.param == "interpreted":
        monkeypatch.setenv(CORE_ENV, "off")
    else:
        monkeypatch.delenv(CORE_ENV, raising=False)
        if not compiled_available():
            pytest.skip("no C compiler for the compiled kernel core")
    return request.param


def _fresh_kernel(backend, proof=None):
    """A KernelSolver on the requested backend (dispatch happens at
    construction time, so the fixture's env var decides)."""
    solver = KernelSolver(proof=proof)
    if proof is None:
        assert solver.backend == backend
    return solver


# ----------------------------------------------------------------------
# Random CNF strategies
# ----------------------------------------------------------------------
def _random_cnf(rng, num_vars, num_clauses, max_len=4):
    cnf = CNF(num_vars)
    for _ in range(num_clauses):
        width = rng.randint(1, max_len)
        lits = [rng.choice([1, -1]) * rng.randint(1, num_vars)
                for _ in range(width)]
        cnf.add_clause(lits)
    return cnf


def _assert_model_satisfies(cnf, model, context):
    assignment = {v: model.get(v, False)
                  for v in range(1, cnf.num_vars + 1)}
    assert cnf.evaluate(assignment), context


class TestRandomCnf:
    """Verdict and model agreement on one-shot random formulas."""

    @given(st.integers(0, 100_000))
    @settings(max_examples=60, **COMMON)
    def test_kernel_matches_reference_and_dpll(self, seed):
        rng = random.Random(seed)
        num_vars = rng.randint(3, 12)
        cnf = _random_cnf(rng, num_vars, rng.randint(1, 4 * num_vars))
        expected, _ = brute_force_sat(cnf)

        for engine in ("reference", "kernel"):
            solver = make_solver(engine)
            solver.ensure_vars(cnf.num_vars)
            loaded = solver.add_clauses(cnf.clauses)
            status = solver.solve() if loaded else SolveResult.UNSAT
            assert status is expected, (seed, engine)
            if status is SolveResult.SAT:
                _assert_model_satisfies(cnf, solver.model(), (seed, engine))

    @given(st.integers(0, 100_000))
    @settings(max_examples=40, **COMMON)
    def test_incremental_rounds_with_assumptions(self, seed):
        """Interleaved add/solve rounds under assumptions stay in
        lock-step: same verdict each round, failed-assumption cores are
        themselves unsatisfiable together with the clauses."""
        rng = random.Random(seed)
        num_vars = rng.randint(4, 10)
        reference = CdclSolver()
        kernel = KernelSolver()
        for solver in (reference, kernel):
            solver.ensure_vars(num_vars)
        added = []
        for _ in range(rng.randint(2, 5)):
            batch = _random_cnf(rng, num_vars, rng.randint(1, 6)).clauses
            ok_ref = all([reference.add_clause(c) for c in batch])
            ok_ker = all([kernel.add_clause(c) for c in batch])
            added.extend(batch)
            assert reference.ok == kernel.ok, seed
            assumptions = [rng.choice([1, -1]) * rng.randint(1, num_vars)
                           for _ in range(rng.randint(0, 3))]
            status_ref = reference.solve(assumptions)
            status_ker = kernel.solve(assumptions)
            assert status_ref is status_ker, (seed, assumptions,
                                              ok_ref, ok_ker)
            if status_ker is SolveResult.SAT:
                model = kernel.model()
                cnf = CNF(num_vars)
                for clause in added:
                    cnf.add_clause(clause)
                _assert_model_satisfies(cnf, model, seed)
                for lit in assumptions:
                    value = model.get(abs(lit), False)
                    assert value == (lit > 0), (seed, lit)
            elif status_ker is SolveResult.UNSAT and assumptions:
                core = kernel.core()
                assert set(map(abs, core)) <= set(map(abs, assumptions))

    def test_both_backends_agree(self, kernel_backend):
        """The forced backend answers exactly like the reference on a
        deterministic batch of formulas (belt over the fuzz above)."""
        rng = random.Random(20250808)
        for _ in range(25):
            num_vars = rng.randint(3, 10)
            cnf = _random_cnf(rng, num_vars, rng.randint(1, 30))
            expected, _ = brute_force_sat(cnf)
            solver = _fresh_kernel(kernel_backend)
            solver.ensure_vars(cnf.num_vars)
            loaded = solver.add_clauses(cnf.clauses)
            status = solver.solve() if loaded else SolveResult.UNSAT
            assert status is expected


# ----------------------------------------------------------------------
# Group retirement (the jSAT idiom)
# ----------------------------------------------------------------------
class TestGroupRetirement:
    @given(st.integers(0, 100_000))
    @settings(max_examples=30, **COMMON)
    def test_retirement_equivalence(self, seed):
        """Guarded constraints + retirement behave identically: while a
        group is assumed the constraint bites, after ``[-g]`` +
        purge both engines answer like the constraint never existed."""
        rng = random.Random(seed)
        num_vars = rng.randint(4, 9)
        base = _random_cnf(rng, num_vars, rng.randint(2, 10))
        constraint = [rng.choice([1, -1]) * rng.randint(1, num_vars)
                      for _ in range(rng.randint(1, 3))]
        solvers = {"reference": CdclSolver(), "kernel": KernelSolver()}
        group = num_vars + 1
        status = {}
        for name, solver in solvers.items():
            solver.ensure_vars(num_vars + 1)
            loaded = solver.add_clauses(base.clauses)
            for lit in constraint:
                solver.add_clause([-group, lit])
            active = solver.solve([group]) if loaded else SolveResult.UNSAT
            solver.add_clause([-group])
            solver.purge_satisfied()
            retired = solver.solve() if solver.ok else SolveResult.UNSAT
            status[name] = (active, retired)
        assert status["reference"] == status["kernel"], seed
        # Retirement really removed the constraint: the plain base
        # formula's verdict matches the post-retirement answer.
        expected, _ = brute_force_sat(base)
        assert status["kernel"][1] is expected, seed


# ----------------------------------------------------------------------
# Random-system unrollings
# ----------------------------------------------------------------------
class TestRandomUnrollings:
    @given(st.integers(0, 100_000))
    @settings(max_examples=15, **COMMON)
    def test_incremental_bmc_engines_agree(self, seed):
        rng = random.Random(seed)
        system = random_system(rng, num_latches=3, num_inputs=1, depth=2)
        final = random_predicate(rng, system)
        oracle = ExplicitOracle(system)
        drivers = {engine: IncrementalBmc(system, final, solver=engine)
                   for engine in ("reference", "kernel")}
        for k in range(7):
            verdicts = {}
            for engine, driver in drivers.items():
                status, trace, _ = driver.check_bound(k)
                verdicts[engine] = status
                if status is SolveResult.SAT:
                    assert trace is not None, (seed, k, engine)
                    trace.validate(system, final)
                    assert trace.length == k
                driver.retire_bound(k)
            assert verdicts["reference"] is verdicts["kernel"], (seed, k)
            want = oracle.reachable_in_exactly(final, k)
            assert (verdicts["kernel"] is SolveResult.SAT) == want, \
                (seed, k)


# ----------------------------------------------------------------------
# Budgets and cooperative cancellation
# ----------------------------------------------------------------------
def _pigeonhole(solver, holes=8):
    def var(i, j):
        return i * holes + j + 1
    solver.ensure_vars((holes + 1) * holes)
    for i in range(holes + 1):
        solver.add_clause([var(i, j) for j in range(holes)])
    for j in range(holes):
        for i1 in range(holes + 1):
            for i2 in range(i1 + 1, holes + 1):
                solver.add_clause([-var(i1, j), -var(i2, j)])


class TestBudgetsAndCancellation:
    def test_conflict_budget_unknown(self, kernel_backend):
        solver = _fresh_kernel(kernel_backend)
        _pigeonhole(solver)
        status = solver.solve(budget=Budget(max_conflicts=5))
        assert status is SolveResult.UNKNOWN
        assert solver.stats.conflicts >= 5

    def test_decision_budget_unknown(self, kernel_backend):
        solver = _fresh_kernel(kernel_backend)
        _pigeonhole(solver)
        assert solver.solve(budget=Budget(max_decisions=5)) \
            is SolveResult.UNKNOWN

    def test_deadline_unknown(self, kernel_backend):
        solver = _fresh_kernel(kernel_backend)
        _pigeonhole(solver, holes=10)
        budget = Budget(max_seconds=0.001)
        assert solver.solve(budget=budget) is SolveResult.UNKNOWN

    def test_stop_check_aborts(self, kernel_backend):
        """An installed stop probe cancels the search mid-flight, the
        warm-cancel contract the worker pool relies on."""
        solver = _fresh_kernel(kernel_backend)
        _pigeonhole(solver, holes=6)
        calls = [0]

        def stop():
            calls[0] += 1
            return calls[0] > 3

        previous = install_stop_check(stop)
        try:
            assert solver.solve() is SolveResult.UNKNOWN
        finally:
            install_stop_check(previous)
        assert calls[0] > 3
        # The solver survives a cancellation: the same instance
        # finishes the query once the probe is gone.
        assert solver.solve() is SolveResult.UNSAT

    def test_budget_slices_resume(self, kernel_backend):
        """Repeated small conflict slices eventually finish the query
        (the jSAT global-budget slicing pattern)."""
        solver = _fresh_kernel(kernel_backend)
        _pigeonhole(solver, holes=5)
        for _ in range(2000):
            status = solver.solve(budget=Budget(max_conflicts=50))
            if status is not SolveResult.UNKNOWN:
                break
        assert status is SolveResult.UNSAT


# ----------------------------------------------------------------------
# Stats sanity
# ----------------------------------------------------------------------
class TestStatsSanity:
    def test_counters_present_and_monotone(self, kernel_backend):
        solver = _fresh_kernel(kernel_backend)
        reference = CdclSolver()
        assert set(solver.stats.as_dict()) == \
            set(reference.stats.as_dict())
        _pigeonhole(solver, holes=4)
        assert solver.solve() is SolveResult.UNSAT
        stats = solver.stats.as_dict()
        assert stats["conflicts"] > 0
        assert stats["decisions"] > 0
        assert stats["propagations"] > 0
        assert stats["learned"] > 0
        assert stats["db_literals"] >= 0
        assert stats["peak_db_literals"] >= stats["db_literals"]
        assert solver.stats.solve_calls == 1
        before = dict(stats)
        assert solver.solve() is SolveResult.UNSAT   # level-0 conflict
        after = solver.stats.as_dict()
        for key in ("conflicts", "decisions", "propagations"):
            assert after[key] >= before[key], key

    def test_engine_attributes(self, kernel_backend):
        solver = _fresh_kernel(kernel_backend)
        assert solver.engine == "kernel"
        assert CdclSolver().engine == "reference"
        assert resolve_engine("fast") == "kernel"
        assert resolve_engine("ref") == "reference"


# ----------------------------------------------------------------------
# UNSAT proofs (resolution chains and DRAT/RUP) on both engines
# ----------------------------------------------------------------------
class TestUnsatProofs:
    @pytest.mark.parametrize("engine", ["reference", "kernel"])
    @pytest.mark.parametrize("proof_cls", [ResolutionProof, DratProof])
    def test_pigeonhole_refutation_validates(self, engine, proof_cls):
        proof = proof_cls()
        solver = make_solver(engine, proof=proof)
        _pigeonhole(solver, holes=4)
        assert solver.solve() is SolveResult.UNSAT
        assert proof.check_refutation(solver.empty_clause_proof)

    @pytest.mark.parametrize("engine", ["reference", "kernel"])
    def test_incremental_unsat_proof(self, engine):
        """Proof logging across add/solve rounds: the refutation logged
        after the second batch still replays."""
        proof = DratProof()
        solver = make_solver(engine, proof=proof)
        solver.ensure_vars(3)
        solver.add_clauses([[1, 2], [-1, 2], [1, -2]])
        assert solver.solve() is SolveResult.SAT
        solver.add_clauses([[-1, -2]])
        assert solver.solve() is SolveResult.UNSAT
        assert proof.check_refutation(solver.empty_clause_proof)
