"""Tseitin / Plaisted-Greenbaum transformation tests.

The key contracts: (1) the encoded CNF is equisatisfiable with the
expression, (2) with full Tseitin every model of the CNF projects to a
model of the expression and vice versa, (3) shared sub-DAGs are encoded
once.
"""

import itertools
import random

import pytest

from repro.logic import expr as ex
from repro.logic.cnf import CNF, VarPool
from repro.logic.tseitin import TseitinEncoder, expr_to_cnf
from repro.sat.dpll import brute_force_models
from repro.system.random_model import random_expr


def models_of_expr(expression):
    names = sorted(expression.support())
    out = set()
    for bits in itertools.product([False, True], repeat=len(names)):
        env = dict(zip(names, bits))
        if expression.evaluate(env):
            out.add(tuple(bits))
    return names, out


@pytest.mark.parametrize("polarity_reduction", [False, True])
def test_equisatisfiable_on_random_exprs(polarity_reduction):
    rng = random.Random(42)
    for _ in range(120):
        leaves = [ex.var(n) for n in ("a", "b", "c", "d")]
        expression = random_expr(rng, leaves, depth=3)
        if expression.is_const:
            continue
        names, expr_models = models_of_expr(expression)
        cnf, pool = expr_to_cnf(expression, polarity_reduction)
        name_vars = [pool.named(n) for n in names]
        cnf_projections = set()
        if cnf.has_empty_clause:
            sat_models = []
        else:
            sat_models = list(brute_force_models(cnf))
        for model in sat_models:
            cnf_projections.add(tuple(model[v] for v in name_vars))
        assert cnf_projections == expr_models, \
            f"{expression} (pg={polarity_reduction})"


def test_shared_subdag_encoded_once():
    a, b, c = ex.var("a"), ex.var("b"), ex.var("c")
    shared = a & b
    f = ex.mk_xor(shared, c) | shared
    cnf, pool = expr_to_cnf(f)
    # One aux var for `shared`, one for the xor, one for the or.
    n_named = 3
    assert cnf.num_vars == n_named + 3


def test_encoder_reuses_cache_across_calls():
    pool = VarPool()
    cnf = CNF()
    enc = TseitinEncoder(cnf, pool)
    f = ex.var("a") & ex.var("b")
    lit1 = enc.encode(f)
    size_before = len(cnf.clauses)
    lit2 = enc.encode(f)
    assert lit1 == lit2
    assert len(cnf.clauses) == size_before


def test_assert_true_adds_nothing():
    cnf, _ = expr_to_cnf(ex.TRUE)
    assert len(cnf.clauses) == 0 and not cnf.has_empty_clause


def test_assert_false_is_unsat():
    cnf, _ = expr_to_cnf(ex.FALSE)
    assert cnf.has_empty_clause


def test_encode_constant_returns_constrained_literal():
    pool = VarPool()
    cnf = CNF()
    enc = TseitinEncoder(cnf, pool)
    lit = enc.encode(ex.TRUE)
    assert (lit,) in cnf.clauses


def test_polarity_reduction_smaller_or_equal():
    rng = random.Random(7)
    for _ in range(40):
        leaves = [ex.var(n) for n in ("a", "b", "c", "d", "e")]
        expression = random_expr(rng, leaves, depth=4)
        if expression.is_const:
            continue
        full, _ = expr_to_cnf(expression, polarity_reduction=False)
        pg, _ = expr_to_cnf(expression, polarity_reduction=True)
        assert len(pg.clauses) <= len(full.clauses)


def test_full_tseitin_aux_vars_functionally_determined():
    """With full Tseitin, fixing the named vars forces every aux var —
    the property the QBF encodings rely on to place aux innermost."""
    rng = random.Random(3)
    for _ in range(30):
        leaves = [ex.var(n) for n in ("a", "b", "c")]
        expression = random_expr(rng, leaves, depth=3)
        if expression.is_const:
            continue
        pool = VarPool()
        cnf = CNF()
        enc = TseitinEncoder(cnf, pool)
        enc.encode(expression)
        names = sorted(expression.support())
        name_vars = [pool.named(n) for n in names]
        seen = {}
        conflict = False
        for model in brute_force_models(cnf):
            key = tuple(model[v] for v in name_vars)
            aux = tuple(model[v] for v in range(1, cnf.num_vars + 1)
                        if v not in name_vars)
            if key in seen and seen[key] != aux:
                conflict = True
            seen[key] = aux
        assert not conflict


def test_encode_false_returns_false_literal():
    """Regression: encode(FALSE) must hand back a literal that *is*
    false, not the (true) asserted unit — the jSAT F-guard relies on it."""
    from repro.sat import CdclSolver, SolveResult

    pool = VarPool()
    cnf = CNF()
    enc = TseitinEncoder(cnf, pool)
    lit_true = enc.encode(ex.TRUE)
    lit_false = enc.encode(ex.FALSE)
    solver = CdclSolver()
    solver.ensure_vars(cnf.num_vars)
    solver.add_clauses(cnf.clauses)
    assert solver.solve() is SolveResult.SAT
    def value(lit):
        v = solver.model_value(abs(lit))
        return v if lit > 0 else not v
    assert value(lit_true) is True
    assert value(lit_false) is False
