"""Reference DPLL solver and brute-force enumerator tests."""

import random

import pytest

from repro.logic.cnf import CNF
from repro.sat import CdclSolver, DpllSolver, SolveResult
from repro.sat.dpll import brute_force_models, brute_force_sat


def test_empty_formula():
    assert DpllSolver(CNF()).solve() is SolveResult.SAT


def test_unsat_pair():
    cnf = CNF()
    cnf.add_clause([1])
    cnf.add_clause([-1])
    assert DpllSolver(cnf).solve() is SolveResult.UNSAT


def test_model_is_total_and_satisfying():
    cnf = CNF(4)
    cnf.add_clause([1, 2])
    cnf.add_clause([-2, 3])
    solver = DpllSolver(cnf)
    assert solver.solve() is SolveResult.SAT
    assert set(solver.model) == {1, 2, 3, 4}
    assert cnf.evaluate(solver.model)


def test_agrees_with_cdcl_on_random():
    rng = random.Random(8)
    for _ in range(120):
        n = rng.randint(1, 9)
        cnf = CNF(n)
        for _ in range(rng.randint(1, 30)):
            cnf.add_clause([rng.choice([1, -1]) * rng.randint(1, n)
                            for _ in range(rng.randint(1, 3))])
        cdcl = CdclSolver()
        cdcl.add_clauses(cnf.clauses)
        assert DpllSolver(cnf).solve() is cdcl.solve()


def test_brute_force_model_count():
    cnf = CNF(3)
    cnf.add_clause([1, 2, 3])
    models = list(brute_force_models(cnf))
    assert len(models) == 7

    status, model = brute_force_sat(cnf)
    assert status is SolveResult.SAT and cnf.evaluate(model)


def test_brute_force_refuses_large():
    cnf = CNF(30)
    cnf.add_clause([1])
    with pytest.raises(ValueError):
        list(brute_force_models(cnf))
