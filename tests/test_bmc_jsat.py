"""jSAT decision-procedure tests (the paper's core contribution)."""

import random

import pytest

from repro.bmc.jsat import JsatSolver
from repro.logic import expr as ex
from repro.models import counter, lfsr, shift_register
from repro.sat.types import Budget, SolveResult
from repro.system import ExplicitOracle, random_predicate, random_system


class TestBasics:
    def test_sat_at_depth_with_trace(self):
        system, final, depth = counter.make(4, 9)
        solver = JsatSolver(system, final, depth)
        assert solver.solve() is SolveResult.SAT
        trace = solver.trace()
        assert trace is not None and trace.length == depth
        trace.validate(system, final)

    def test_unsat_below_depth(self):
        system, final, depth = counter.make(4, 9)
        solver = JsatSolver(system, final, depth - 1)
        assert solver.solve() is SolveResult.UNSAT

    def test_k0_sat_and_unsat(self):
        system, final, _ = counter.make(3, 0)
        assert JsatSolver(system, final, 0).solve() is SolveResult.SAT
        system, final, _ = counter.make(3, 5)
        assert JsatSolver(system, final, 0).solve() is SolveResult.UNSAT

    def test_unreachable_target(self):
        system, final, _ = shift_register.make_invariant_violation(4)
        for k in (1, 3, 5):
            assert JsatSolver(system, final, k).solve() is SolveResult.UNSAT

    def test_negative_k_rejected(self):
        system, final, _ = counter.make(3, 1)
        with pytest.raises(ValueError):
            JsatSolver(system, final, -1)

    def test_bad_semantics_rejected(self):
        system, final, _ = counter.make(3, 1)
        with pytest.raises(ValueError):
            JsatSolver(system, final, 1, semantics="upto")


class TestWithinSemantics:
    def test_within_finds_shallower_target(self):
        system, final, depth = counter.make(4, 5)
        solver = JsatSolver(system, final, depth + 3, semantics="within")
        assert solver.solve() is SolveResult.SAT
        trace = solver.trace()
        assert trace.length <= depth + 3
        trace.validate(system, final)

    def test_within_depth0_target(self):
        system, final, _ = counter.make(3, 0)
        solver = JsatSolver(system, final, 4, semantics="within")
        assert solver.solve() is SolveResult.SAT
        assert solver.trace().length == 0

    def test_within_unsat_when_too_shallow(self):
        system, final, depth = counter.make(4, 9)
        solver = JsatSolver(system, final, depth - 1, semantics="within")
        assert solver.solve() is SolveResult.UNSAT


class TestAblations:
    @pytest.mark.parametrize("use_cache", [True, False])
    @pytest.mark.parametrize("f_pruning", [True, False])
    def test_all_variants_agree(self, use_cache, f_pruning):
        rng = random.Random(40)
        for _ in range(10):
            system = random_system(rng, num_latches=3, num_inputs=1,
                                   depth=2)
            final = random_predicate(rng, system)
            oracle = ExplicitOracle(system)
            for k in (0, 1, 2, 4):
                expected = oracle.reachable_in_exactly(final, k)
                solver = JsatSolver(system, final, k,
                                    use_cache=use_cache,
                                    f_pruning=f_pruning)
                got = solver.solve()
                want = SolveResult.SAT if expected else SolveResult.UNSAT
                assert got is want
                if got is SolveResult.SAT:
                    solver.trace().validate(system, final)

    def test_cache_reduces_queries_on_diamond(self):
        """Diamond-shaped graphs revisit states; the cache must pay off."""
        system, final, depth = lfsr.make(6, 17)
        with_cache = JsatSolver(system, final, depth + 1, use_cache=True)
        without = JsatSolver(system, final, depth + 1, use_cache=False)
        r1, r2 = with_cache.solve(), without.solve()
        assert r1 is r2
        assert with_cache.stats.queries <= without.stats.queries


class TestSpaceBehaviour:
    def test_resident_formula_independent_of_k(self):
        """The title claim: one TR copy regardless of the bound."""
        system, final, _ = counter.make(6, 63)
        base_sizes = []
        for k in (2, 8, 32):
            solver = JsatSolver(system, final, k)
            base_sizes.append(solver.base_db_literals)
        assert len(set(base_sizes)) == 1

    def test_purge_bounds_resident_size(self):
        system, final, depth = counter.make(5, 19)
        solver = JsatSolver(system, final, depth, purge_interval=1)
        assert solver.solve() is SolveResult.SAT
        resident = solver.resident_literals()
        # Resident DB stays within a small factor of the base encoding.
        assert resident < solver.base_db_literals * 5

    def test_repeated_solves_do_not_leak_groups(self):
        """Regression: SAT exits and budget aborts used to leave their
        activation groups unretired, pinning the groups' blocking
        clauses in the database forever — unbounded growth across the
        repeated solves of a long-lived session."""
        system, final, depth = counter.make(5, 19)
        solver = JsatSolver(system, final, depth)
        assert solver.solve() is SolveResult.SAT
        assert not solver._live_groups
        resident_first = solver.resident_literals()
        for _ in range(5):
            assert solver.solve() is SolveResult.SAT
            assert not solver._live_groups
        assert solver.resident_literals() <= resident_first

        # Budget aborts unwind past every frame; leftovers must still
        # be retired and reclaimed.
        aborted = JsatSolver(system, final, depth, use_cache=False)
        sizes = []
        for _ in range(5):
            status = aborted.solve(budget=Budget(max_propagations=40))
            assert status is SolveResult.UNKNOWN
            assert not aborted._live_groups
            sizes.append(aborted.resident_literals())
        assert sizes[-1] <= sizes[0]

    def test_peak_much_smaller_than_unrolled(self):
        from repro.bmc import check_reachability
        system, final, _ = counter.make(6, 63)
        target = ex.var("c5")
        k = 40
        unrolled = check_reachability(system, target, k, "sat-unroll")
        jsat = check_reachability(system, target, k, "jsat")
        assert jsat.status is unrolled.status
        assert (jsat.stats["peak_db_literals"] * 2
                < unrolled.stats["solver_peak_db_literals"])


class TestBudgets:
    def test_time_budget_unknown(self):
        # Deep enough that even the compiled kernel engine needs well
        # over the wall budget (~100x headroom measured).
        system, final, _ = lfsr.make(16, 2000)
        solver = JsatSolver(system, final, 2000)
        assert solver.solve(budget=Budget(max_seconds=0.001)) \
            is SolveResult.UNKNOWN

    def test_propagation_budget_is_global(self):
        # A deterministic LFSR is conflict-free for jSAT (every window
        # query propagates to the unique successor), so the global
        # budget must be enforced on propagations, not only conflicts.
        system, final, _ = lfsr.make(10, 400)
        solver = JsatSolver(system, final, 400)
        result = solver.solve(budget=Budget(max_propagations=500))
        assert result is SolveResult.UNKNOWN
        assert solver.stats.queries < 400


class TestRandomizedAgainstOracle:
    def test_matches_oracle(self):
        rng = random.Random(91)
        for trial in range(25):
            system = random_system(rng, num_latches=rng.randint(2, 4),
                                   num_inputs=rng.randint(0, 2), depth=2)
            final = random_predicate(rng, system)
            oracle = ExplicitOracle(system)
            for k in (0, 1, 2, 3, 6):
                expected = oracle.reachable_in_exactly(final, k)
                got = JsatSolver(system, final, k).solve()
                want = SolveResult.SAT if expected else SolveResult.UNSAT
                assert got is want, f"trial {trial} k={k}"


class TestConstantPredicates:
    """Regression: constant-FALSE targets once made jSAT report SAT
    (the encode(FALSE) literal-polarity bug found by bench E4)."""

    def test_constant_false_final_unsat(self):
        system, _, _ = counter.make(3, 1)
        for k in (0, 1, 3):
            assert JsatSolver(system, ex.FALSE, k).solve() \
                is SolveResult.UNSAT

    def test_constant_true_final_sat(self):
        system, _, _ = counter.make(3, 1)
        for k in (0, 2):
            solver = JsatSolver(system, ex.TRUE, k)
            assert solver.solve() is SolveResult.SAT
            solver.trace().validate(system, ex.TRUE)
