"""Formula-size metric tests — the quantitative space claims (E2/E6)."""

from repro.bmc import encoding_sizes, growth_table, jsat_resident_size
from repro.models import mixer


def setup_module(module):
    module.SYSTEM, module.FINAL, _ = mixer.make(8, 3)


def test_encoding_sizes_has_all_methods():
    sizes = encoding_sizes(SYSTEM, FINAL, 4)
    assert set(sizes) == {"sat-unroll", "qbf", "qbf-squaring", "jsat"}
    for row in sizes.values():
        assert row["literals"] > 0


def test_unroll_copies_tr_k_times():
    sizes = encoding_sizes(SYSTEM, FINAL, 6)
    assert sizes["sat-unroll"]["trans_copies"] == 6
    assert sizes["qbf"]["trans_copies"] == 1
    assert sizes["jsat"]["trans_copies"] == 1


def test_growth_shapes():
    bounds = [1, 2, 4, 8, 16]
    table = growth_table(SYSTEM, FINAL, bounds)
    unroll = [row["literals"] for row in table["sat-unroll"]]
    qbf = [row["literals"] for row in table["qbf"]]
    jsat = [row["literals"] for row in table["jsat"]]

    # (1) grows linearly and fastest.
    assert unroll[-1] > qbf[-1] > jsat[-1]
    # jSAT resident encoding is constant in k.
    assert len(set(jsat)) == 1
    # QBF per-step slope is much smaller than unrolling's.
    unroll_slope = (unroll[-1] - unroll[-2]) / 8
    qbf_slope = (qbf[-1] - qbf[-2]) / 8
    assert qbf_slope < unroll_slope / 2


def test_squaring_only_at_powers_of_two():
    table = growth_table(SYSTEM, FINAL, [1, 2, 3, 4])
    ks = [row["k"] for row in table["qbf-squaring"]]
    assert ks == [1, 2, 4]


def test_qbf_universals_constant_vs_squaring_growing():
    sizes8 = encoding_sizes(SYSTEM, FINAL, 8)
    sizes16 = encoding_sizes(SYSTEM, FINAL, 16)
    assert sizes8["qbf"]["universals"] == sizes16["qbf"]["universals"]
    assert sizes16["qbf-squaring"]["universals"] > \
        sizes8["qbf-squaring"]["universals"]
    assert sizes16["qbf-squaring"]["alternations"] > \
        sizes16["qbf"]["alternations"]


def test_jsat_resident_reports_state_tracking():
    row = jsat_resident_size(SYSTEM, FINAL, 10)
    assert row["state_bits_tracked"] == SYSTEM.num_state_bits * 11
    assert row["clauses"] > 0
