"""Resolution proof logging, replay, and core extraction tests."""

import random

import pytest

from repro.logic.cnf import CNF
from repro.sat import (CdclSolver, ProofError, ResolutionProof, SolveResult,
                       brute_force_sat)


class TestProofPrimitives:
    def test_resolution(self):
        proof = ResolutionProof()
        a = proof.add_input([1, 2])
        b = proof.add_input([-1, 2])
        c = proof.add_derived(a, [(b, 1)], [2])
        assert proof.replay(c) == frozenset({2})

    def test_bad_pivot_rejected(self):
        proof = ResolutionProof()
        a = proof.add_input([1, 2])
        b = proof.add_input([1, 3])
        c = proof.add_derived(a, [(b, 1)], [2, 3])
        with pytest.raises(ProofError):
            proof.replay(c)

    def test_strict_replay_checks_result(self):
        proof = ResolutionProof()
        a = proof.add_input([1, 2])
        b = proof.add_input([-1, 3])
        wrong = proof.add_derived(a, [(b, 1)], [2])     # should be {2,3}
        with pytest.raises(ProofError):
            proof.replay(wrong)
        assert proof.replay(wrong, strict=False) == frozenset({2, 3})

    def test_empty_chain_is_identity(self):
        proof = ResolutionProof()
        a = proof.add_input([1])
        assert proof.add_derived(a, [], [1]) == a


class TestSolverRefutations:
    def _random_unsat_runs(self, seed, trials):
        rng = random.Random(seed)
        count = 0
        for _ in range(trials):
            n = rng.randint(1, 9)
            cnf = CNF(n)
            for _ in range(rng.randint(4, 45)):
                cnf.add_clause([rng.choice([1, -1]) * rng.randint(1, n)
                                for _ in range(rng.randint(1, 3))])
            expected, _ = brute_force_sat(cnf)
            if expected is not SolveResult.UNSAT:
                continue
            proof = ResolutionProof()
            solver = CdclSolver(proof=proof)
            solver.add_clauses(cnf.clauses)
            assert solver.solve() is SolveResult.UNSAT
            yield cnf, proof, solver
            count += 1
        assert count > 10       # the generator must exercise real cases

    def test_refutations_replay(self):
        for cnf, proof, solver in self._random_unsat_runs(31, 150):
            assert solver.empty_clause_proof >= 0
            assert proof.check_refutation(solver.empty_clause_proof)

    def test_unsat_core_clauses_are_unsat(self):
        for cnf, proof, solver in self._random_unsat_runs(77, 150):
            core = proof.core_clauses(solver.empty_clause_proof)
            core_cnf = CNF(cnf.num_vars)
            for clause in core:
                core_cnf.add_clause(clause)
            status, _ = brute_force_sat(core_cnf)
            assert status is SolveResult.UNSAT
            # The core is a subset of the inputs.
            inputs = {tuple(sorted(c)) for c in cnf.clauses}
            for clause in core:
                assert tuple(sorted(clause)) in inputs

    def test_pigeonhole_proof(self):
        proof = ResolutionProof()
        s = CdclSolver(proof=proof)
        def v(i, j):
            return i * 3 + j + 1
        for i in range(4):
            s.add_clause([v(i, j) for j in range(3)])
        for j in range(3):
            for i1 in range(4):
                for i2 in range(i1 + 1, 4):
                    s.add_clause([-v(i1, j), -v(i2, j)])
        assert s.solve() is SolveResult.UNSAT
        assert proof.check_refutation(s.empty_clause_proof)
