"""Suite builder tests: 234 instances, ground truth spot checks."""

import random

import pytest

from repro.bmc import check_reachability
from repro.models import FAMILIES, build_suite, suite_summary
from repro.sat.types import SolveResult


@pytest.fixture(scope="module")
def suite():
    return build_suite()


def test_exactly_234_instances(suite):
    assert len(suite) == 234


def test_thirteen_families_all_represented(suite):
    assert len(FAMILIES) == 13
    families = {inst.family for inst in suite}
    assert families == set(FAMILIES)


def test_mix_of_sat_and_unsat(suite):
    sat = sum(1 for i in suite if i.expected is True)
    unsat = sum(1 for i in suite if i.expected is False)
    assert sat >= 30 and unsat >= 30
    assert sat + unsat == len(suite)      # every instance has ground truth


def test_instance_names_unique(suite):
    names = [i.name for i in suite]
    assert len(names) == len(set(names))


def test_bounds_are_positive_sane(suite):
    assert all(0 <= i.k <= 128 for i in suite)


def test_summary_shape(suite):
    summary = suite_summary(suite)
    assert sum(row["instances"] for row in summary.values()) == 234


def test_ground_truth_spot_check(suite):
    """Verify a random sample of instances against SAT-BMC."""
    rng = random.Random(0)
    for inst in rng.sample(suite, 25):
        result = check_reachability(inst.system, inst.final, inst.k,
                                    "sat-unroll")
        want = SolveResult.SAT if inst.expected else SolveResult.UNSAT
        assert result.status is want, inst.name


def test_deterministic_construction():
    a = build_suite()
    b = build_suite()
    assert [i.name for i in a] == [i.name for i in b]
    assert [i.k for i in a] == [i.k for i in b]
