"""Incremental bound-sweep engine tests.

Covers the IncrementalBmc driver mechanics (clause reuse, assumption-
group retirement, budget exhaustion), the engine-level ``sweep`` API
contract for every method, the native jSAT sweep (persistent no-good
cache), and the uniform within-mode trace shortening.
"""

import pytest

from repro.bmc import IncrementalBmc, check_reachability, sweep
from repro.bmc.engine import METHODS
from repro.bmc.incremental import SweepBudget
from repro.bmc.jsat import JsatSolver
from repro.models import counter, gray, mutex, shift_register
from repro.sat.types import Budget, SolveResult


class TestIncrementalBmc:
    def test_sweep_finds_shortest_counterexample(self):
        system, final, depth = counter.make(4, 9)
        result = IncrementalBmc(system, final).sweep(depth + 3)
        assert result.status is SolveResult.SAT
        assert result.shortest_k == depth
        assert result.trace is not None
        result.trace.validate(system, final)
        assert result.trace.length == depth
        assert result.time_to_hit is not None
        assert result.time_to_hit <= result.seconds

    def test_lower_bound_after_extension_not_spurious_unsat(self):
        """Regression: frames beyond k are asserted unconditionally, so
        querying a bound below the frames already encoded used to
        exclude witnesses ending in a deadlock state (non-total TR) —
        check_bound(3) then check_bound(1) answered UNSAT where a fresh
        driver answers SAT."""
        from repro.logic import expr as ex
        from repro.system.model import TransitionSystem
        a = ex.var("a")
        deadlock = TransitionSystem(
            state_vars=["a"], init=~a, trans=~a & ex.var("a'"),
            name="deadlock")
        final = a
        inc = IncrementalBmc(deadlock, final)
        assert inc.check_bound(3)[0] is SolveResult.UNSAT
        status, trace, _ = inc.check_bound(1)
        assert status is SolveResult.SAT
        trace.validate(deadlock, final)
        # Ascending re-query through the same driver still works.
        assert inc.check_bound(4)[0] is SolveResult.UNSAT

    def test_low_driver_retention_is_bounded(self):
        """A long-lived driver keeps at most one auxiliary low driver
        (no unbounded chains): monotone low-bound patterns reuse it
        ascending, a query below its frames replaces it."""
        system, final, depth = counter.make(4, 9)
        inc = IncrementalBmc(system, final)
        inc.check_bound(depth)
        inc.check_bound(depth - 2)
        low = inc._low
        assert low is not None and low._low is None
        # Ascending within the low range grows the same driver.
        status, _, stats = inc.check_bound(depth - 1)
        assert inc._low is low and low._low is None
        assert status is SolveResult.UNSAT
        assert stats["clauses_reused"] > 0
        # Below the low driver's frames: replaced, never chained.
        inc.check_bound(depth - 3)
        assert inc._low is not low
        assert inc._low._low is None

    def test_retire_bound_reaches_low_driver(self):
        """Regression: after check_bound(3), check_bound(5),
        check_bound(3), BOTH drivers hold a group for bound 3;
        retire_bound(3) must retire it on both, or the low driver's
        constraint clauses stay unreclaimable forever."""
        system, final, _ = counter.make(4, 9)
        inc = IncrementalBmc(system, final)
        inc.check_bound(3)
        inc.check_bound(5)
        inc.check_bound(3)
        assert 3 in inc._groups and 3 in inc._low._groups
        inc.retire_bound(3)
        assert 3 not in inc._groups
        assert 3 not in inc._low._groups

    def test_sweep_after_deep_check_reuses_one_low_driver(self):
        """A sweep below the frames already encoded must reuse ONE
        auxiliary driver grown ascending (not a throwaway per bound),
        and retire refuted bounds on the driver that answered them."""
        system, final, depth = counter.make(4, 9)
        inc = IncrementalBmc(system, final)
        inc.check_bound(depth + 2)          # frames now extend past depth
        assert inc.k == depth + 2
        swept = inc.sweep(depth + 1)
        assert swept.shortest_k == depth
        low = inc._low
        assert low is not None
        reused = [b.stats["clauses_reused"] for b in swept.per_bound]
        assert reused[0] < reused[-1]       # one growing driver
        # Every refuted bound was retired on the low driver; only the
        # SAT bound's final-constraint group may remain live.
        assert len(low._groups) <= 1

    def test_clauses_carry_over_between_bounds(self):
        system, final, depth = shift_register.make(6)
        inc = IncrementalBmc(system, final)
        result = inc.sweep(depth)
        reused = [b.stats["clauses_reused"] for b in result.per_bound]
        # Later bounds reuse strictly more carried-over clauses than the
        # first (the whole point of keeping one solver alive).
        assert reused[0] < reused[-1]
        assert all(b.stats["trans_frames"] >= b.k for b in result.per_bound)

    def test_check_bound_is_repeatable(self):
        system, final, depth = counter.make(3, 5)
        inc = IncrementalBmc(system, final)
        first = inc.check_bound(depth)
        second = inc.check_bound(depth)
        assert first[0] is SolveResult.SAT
        assert second[0] is SolveResult.SAT
        # Out-of-order queries against earlier, unretired bounds work too.
        earlier = inc.check_bound(depth - 1)
        assert earlier[0] is SolveResult.UNSAT

    def test_retired_groups_are_reclaimed(self):
        system, final, _ = mutex.make_exclusion_check()
        inc = IncrementalBmc(system, final, purge_interval=1)
        inc.check_bound(2)
        before = inc.solver.num_clauses()
        inc.retire_bound(2)
        # The final constraint (and anything derived from it) is
        # physically gone; the transition frames remain.
        assert inc.solver.num_clauses() < before
        assert inc.solver.stats.purged > 0

    def test_unsat_sweep_refutes_every_bound(self):
        system, final, _ = mutex.make_exclusion_check()
        result = IncrementalBmc(system, final).sweep(5)
        assert result.status is SolveResult.UNSAT
        assert [b.k for b in result.per_bound] == list(range(6))
        assert all(b.status is SolveResult.UNSAT for b in result.per_bound)

    def test_budget_exhaustion_yields_unknown(self):
        system, final, _ = counter.make(5, 19)
        result = IncrementalBmc(system, final).sweep(
            12, budget=Budget(max_seconds=0.0))
        assert result.status is SolveResult.UNKNOWN
        assert len(result.per_bound) < 13

    def test_rejects_bad_inputs(self):
        system, final, _ = counter.make(3, 5)
        with pytest.raises(ValueError):
            IncrementalBmc(system, final).sweep(-1)
        with pytest.raises(ValueError):
            IncrementalBmc(system, final).check_bound(-2)


class TestSweepBudget:
    def test_unlimited_never_exhausts(self):
        tracker = SweepBudget(None)
        tracker.charge(conflicts=10 ** 9)
        assert not tracker.exhausted()
        assert tracker.remaining() is None

    def test_conflict_pool_drains(self):
        tracker = SweepBudget(Budget(max_conflicts=100))
        assert tracker.remaining().max_conflicts == 100
        tracker.charge(conflicts=60)
        assert tracker.remaining().max_conflicts == 40
        tracker.charge(conflicts=60)
        assert tracker.exhausted()


class TestEngineSweep:
    def test_all_methods_implement_the_contract(self):
        # ring(3) keeps even the QBF back ends inside a small budget.
        system, final, depth = shift_register.make(3)
        budget = Budget(max_seconds=10.0, max_decisions=200_000)
        for method in METHODS:
            result = sweep(system, final, depth + 1, method=method,
                           budget=budget)
            assert result.method == method
            assert result.status is SolveResult.SAT, method
            if method == "qbf-squaring":
                # The squaring schedule brackets the shortest depth
                # (within-k rungs at 0, 1, 2, 4, ...), it does not pin it.
                assert result.shortest_k >= depth, method
            elif method == "simulation":
                # The random-simulation tier reports the first frame a
                # lane hit; it cannot certify lower rungs UNSAT, so the
                # sweep is a single SAT entry at (or past) the depth.
                assert result.shortest_k >= depth, method
                assert all(b.status is not SolveResult.UNSAT
                           for b in result.per_bound), method
            else:
                assert result.shortest_k == depth, method
                assert [b.k for b in result.per_bound] \
                    == list(range(depth + 1)), method

    def test_squaring_sweep_runs_the_log_schedule(self):
        # An unreachable target walks the whole power-of-two ladder;
        # rungs the QBF solver cannot finish in budget end the sweep
        # with UNKNOWN, so the recorded ks are a prefix of the ladder.
        system, final, _ = shift_register.make_invariant_violation(4)
        result = sweep(system, final, 8, method="qbf-squaring",
                       budget=Budget(max_seconds=5.0))
        ladder = [0, 1, 2, 4, 8]
        ks = [b.k for b in result.per_bound]
        assert ks == ladder[:len(ks)]
        assert all(b.status is SolveResult.UNSAT
                   for b in result.per_bound[:-1])
        if result.status is not SolveResult.UNKNOWN:
            assert result.status is SolveResult.UNSAT

    def test_sweep_rejects_unknown_method(self):
        system, final, _ = counter.make(3, 5)
        with pytest.raises(ValueError):
            sweep(system, final, 2, method="magic")

    def test_native_jsat_sweep_keeps_nogood_cache(self):
        system, final, _ = mutex.make_exclusion_check()
        result = sweep(system, final, 6, method="jsat")
        assert result.status is SolveResult.UNSAT
        entries = [b.stats["cache_entries"] for b in result.per_bound]
        # The cache survives retargeting: it only ever grows.
        assert entries == sorted(entries)
        assert entries[-1] > 0

    def test_native_jsat_sweep_space_stays_bounded(self):
        # Every UNSAT bound retires its root enumeration group and
        # purges, so the resident database does not accumulate root
        # blocking clauses across the sweep (the paper's space claim).
        system, final, _ = mutex.make_exclusion_check()
        result = sweep(system, final, 6, method="jsat")
        resident = [b.stats["resident_literals"] for b in result.per_bound]
        assert resident[-1] <= 2 * resident[0]

    def test_jsat_retarget_resets_trace_only(self):
        system, final, depth = counter.make(3, 5)
        jsolver = JsatSolver(system, final, depth, "exact")
        assert jsolver.solve() is SolveResult.SAT
        assert jsolver.trace() is not None
        jsolver.retarget(depth - 1)
        assert jsolver.trace() is None
        assert jsolver.solve() is SolveResult.UNSAT
        jsolver.retarget(depth)
        assert jsolver.solve() is SolveResult.SAT
        jsolver.trace().validate(system, final)
        with pytest.raises(ValueError):
            jsolver.retarget(-1)


class TestIncrementalMethod:
    def test_exact_matches_unroll(self):
        system, final, depth = gray.make(4)
        for k in (depth - 1, depth, depth + 1):
            a = check_reachability(system, final, k, "sat-unroll")
            b = check_reachability(system, final, k, "sat-incremental")
            assert a.status is b.status, k
            if b.status is SolveResult.SAT:
                b.trace.validate(system, final)
                assert b.trace.length == k

    def test_within_returns_shortest_hit(self):
        system, final, depth = counter.make(4, 3)
        result = check_reachability(system, final, depth + 4,
                                    "sat-incremental", semantics="within")
        assert result.status is SolveResult.SAT
        # The sweep refuted every smaller bound, so the witness is the
        # true shortest path — its only final state is the last one.
        assert result.trace.length == depth
        assert not any(final.evaluate(s) for s in result.trace.states[:-1])
        assert result.stats["shortest_k"] == depth

    def test_incremental_stats_expose_reuse(self):
        system, final, depth = counter.make(4, 9)
        result = check_reachability(system, final, depth,
                                    "sat-incremental")
        assert result.stats["trans_frames"] == depth
        assert result.stats["clauses_reused"] >= 0
        assert "learnts_retained" in result.stats


class TestUniformWithinShortening:
    def test_every_trace_method_shortens_within_traces(self):
        # The fix: _shorten_to_final used to run only inside
        # _check_unroll; now check_reachability applies it to whatever
        # the back end returned.
        system, final, depth = counter.make(4, 3)
        for method in ("sat-unroll", "sat-incremental", "jsat"):
            result = check_reachability(system, final, depth + 4, method,
                                        semantics="within")
            assert result.status is SolveResult.SAT, method
            assert result.trace is not None, method
            result.trace.validate(system, final)
            # Trace ends at its first final state (length = first hit).
            assert final.evaluate(result.trace.states[-1]), method
            assert not any(final.evaluate(s)
                           for s in result.trace.states[:-1]), method
