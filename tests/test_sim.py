"""Tests for the bit-parallel simulation tier.

Four layers, bottom up: the op-list engine (lane semantics against
direct expression evaluation), the random-walk falsifier (witness
validity, determinism, cancellation), the registered ``simulation``
backend (SAT-only contract), and the pre-solve wiring — race, batch
scheduler, property checker and serve daemon must all give the same
verdicts with the tier on or off, with every simulation witness
replaying on the original system.
"""

from __future__ import annotations

import random
import threading
import time
from types import SimpleNamespace

import pytest

from repro.bmc.backend import backend_class
from repro.bmc.session import BmcSession
from repro.logic.expr import mk_and, mk_not, var
from repro.models import build_suite
from repro.models import counter as counter_model
from repro.models import shift_register
from repro.portfolio import race
from repro.portfolio.scheduler import BatchScheduler
from repro.reduce.structure import FunctionalView
from repro.sat.types import Budget, SolveResult
from repro.serve import ServeClient, ServeDaemon
from repro.sim import (CompiledNet, SimCompileError, SimulationBackend,
                       falsify, presolve)
from repro.sim.engine import lane_bit


def _ring(length=4):
    """Shift-register instance: (system, final, shortest_depth)."""
    return shift_register.make(length)


def _lane_env(net, state, frame_inputs, lane):
    env = {latch: lane_bit(state[i], lane)
           for i, latch in enumerate(net.latches)}
    env.update({name: lane_bit(frame_inputs[i], lane)
                for i, name in enumerate(net.inputs)})
    return env


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------
class TestEngine:
    def test_eval_frame_matches_expression_semantics(self):
        """Every lane of eval_frame agrees with direct Expr.evaluate."""
        system, final, _ = counter_model.make(3)
        view = FunctionalView.from_system(system)
        net = CompiledNet(system, {"p": final}, view)
        lanes = 16
        mask = (1 << lanes) - 1
        rng = random.Random(7)
        state = [rng.getrandbits(lanes) for _ in net.latches]
        frame_inputs = [rng.getrandbits(lanes) for _ in net.inputs]
        nxt, ok, probes = net.eval_frame(state, frame_inputs, mask)
        assert ok == mask          # counter has no TR constraints
        for lane in range(lanes):
            env = _lane_env(net, state, frame_inputs, lane)
            assert lane_bit(probes["p"], lane) == final.evaluate(env)
            for i, latch in enumerate(net.latches):
                expected = view.updates[latch].evaluate(env)
                assert lane_bit(nxt[i], lane) == expected, latch

    def test_reset_lanes(self):
        system, final, _ = _ring(3)
        net = CompiledNet(system, {"p": final})
        mask = (1 << 8) - 1
        fills = iter([0b10101010] * len(net.latches))
        state = net.reset_lanes(mask, lambda: next(fills))
        for i, latch in enumerate(net.latches):
            reset = net.resets.get(latch)
            if reset is None:
                assert state[i] == 0b10101010
            else:
                assert state[i] == (mask if reset else 0)

    def test_relational_system_rejected(self):
        system, _, _ = _ring(3)
        squared = system.with_self_loops()
        with pytest.raises(SimCompileError):
            CompiledNet(squared, {})

    def test_stray_probe_variable_rejected(self):
        system, _, _ = _ring(3)
        with pytest.raises(SimCompileError, match="unknown variables"):
            CompiledNet(system, {"p": var("no_such_wire")})

    def test_lane_bit(self):
        assert lane_bit(0b1010, 1) is True
        assert lane_bit(0b1010, 0) is False


# ----------------------------------------------------------------------
# Falsifier
# ----------------------------------------------------------------------
class TestFalsify:
    def test_exact_hit_is_a_valid_witness(self):
        system, final, depth = _ring(4)
        out = falsify(system, final, depth, semantics="exact")
        assert out.hit and out.hit_k == depth
        assert out.trace.length == depth
        out.trace.validate(system, final)       # raises on any flaw
        assert out.stats["sim_frames"] > 0
        assert out.stats["sim_lanes"] > 0

    def test_within_accepts_shallower_hits(self):
        system, final, depth = _ring(4)
        out = falsify(system, final, depth + 3, semantics="within")
        assert out.hit and out.hit_k <= depth + 3
        out.trace.validate(system, final)

    def test_miss_below_shortest_depth(self):
        # The token cannot reach the last stage in < depth steps, so
        # a within-(depth-1) walk can never hit — not just unlikely.
        system, final, depth = _ring(4)
        out = falsify(system, final, depth - 1, semantics="within")
        assert not out.hit
        assert out.trace is None and out.hit_k is None
        assert out.stats["sim_restarts"] >= 1

    def test_deterministic_per_seed(self):
        system, final, depth = _ring(4)
        a = falsify(system, final, depth, semantics="exact")
        b = falsify(system, final, depth, semantics="exact")
        assert a.hit_k == b.hit_k
        assert a.trace.states == b.trace.states
        assert a.trace.inputs == b.trace.inputs

    def test_stop_check_cancels(self):
        system, final, depth = _ring(6)
        out = falsify(system, final, depth, stop_check=lambda: True)
        assert out.stopped and not out.hit

    def test_expired_budget_stops(self):
        system, final, depth = _ring(6)
        budget = Budget(max_seconds=0.0)
        out = falsify(system, final, depth, budget=budget)
        assert out.stopped and not out.hit

    def test_bad_arguments(self):
        system, final, depth = _ring(3)
        with pytest.raises(ValueError, match="semantics"):
            falsify(system, final, depth, semantics="sideways")
        with pytest.raises(ValueError, match="k must be"):
            falsify(system, final, -1)


# ----------------------------------------------------------------------
# The registered backend
# ----------------------------------------------------------------------
class TestSimulationBackend:
    def test_registered_under_simulation(self):
        assert backend_class("simulation") is SimulationBackend

    def test_check_sat_with_witness(self):
        system, final, depth = _ring(4)
        backend = SimulationBackend(system, final)
        result = backend.check(depth)
        assert result.status is SolveResult.SAT
        assert result.k == depth
        result.trace.validate(system, final)
        assert result.stats["sim_solver_calls"] == 0

    def test_unknown_on_miss_never_unsat(self):
        system, final, depth = _ring(4)
        backend = SimulationBackend(system, final)
        result = backend.check(depth - 1, semantics="within")
        assert result.status is SolveResult.UNKNOWN
        assert result.trace is None
        assert result.stats["sim_solver_calls"] == 0

    def test_unsupported_target_degrades_to_unknown(self):
        # A target reading a primary input cannot be witnessed by a
        # states-only trace; the backend must answer UNKNOWN, not blow
        # up, so sessions can fall through to other engines.
        system, final, _ = counter_model.make(2)
        bad_target = mk_and(final, var(system.input_vars[0]))
        backend = SimulationBackend(system, bad_target)
        result = backend.check(3)
        assert result.status is SolveResult.UNKNOWN
        assert result.stats.get("sim_unsupported") == 1

    def test_session_check_by_method_name(self):
        system, final, depth = _ring(4)
        with BmcSession(system, properties={"target": final}) as session:
            result = session.check(depth, method="simulation")
        assert result.status is SolveResult.SAT

    def test_sweep_is_single_sat_bound(self):
        system, final, depth = _ring(4)
        backend = SimulationBackend(system, final)
        sweep = backend.sweep(depth + 2)
        assert len(sweep.per_bound) == 1
        bound = sweep.per_bound[0]
        assert bound.status is SolveResult.SAT
        assert bound.k <= depth + 2

    def test_sweep_miss_is_single_unknown(self):
        system, final, depth = _ring(4)
        backend = SimulationBackend(system, final)
        sweep = backend.sweep(depth - 1)
        assert len(sweep.per_bound) == 1
        assert sweep.per_bound[0].status is SolveResult.UNKNOWN


# ----------------------------------------------------------------------
# presolve()
# ----------------------------------------------------------------------
class TestPresolve:
    def test_hit_returns_validated_outcome(self):
        system, final, depth = _ring(4)
        out = presolve(system, final, depth)
        assert out is not None and out.hit_k == depth
        out.trace.validate(system, final)

    def test_miss_returns_none(self):
        system, final, depth = _ring(4)
        assert presolve(system, final, depth - 1,
                        semantics="within") is None

    def test_unsupported_returns_none(self):
        system, final, _ = counter_model.make(2)
        bad_target = mk_and(final, var(system.input_vars[0]))
        assert presolve(system, bad_target, 3) is None

    def test_stop_check_suppresses_answer(self):
        system, final, depth = _ring(4)
        assert presolve(system, final, depth,
                        stop_check=lambda: True) is None

    def test_suite_witnesses_replay_on_original_systems(self):
        """Differential over the suite: every simulation witness must
        be a real counterexample of the original system at the exact
        ground-truth depth."""
        sat_instances = [i for i in build_suite() if i.expected is True]
        hits = 0
        for inst in sat_instances:
            out = presolve(inst.system, inst.final, inst.k)
            if out is None:
                continue            # SAT-only tier: misses are fine
            hits += 1
            assert out.hit_k == inst.k, inst.name
            out.trace.validate(inst.system, inst.final)
        # The tier must actually earn its keep on the paper's suite.
        assert hits >= 6, f"only {hits} sim falsifications"


# ----------------------------------------------------------------------
# Pre-solve wiring: race / scheduler / checker
# ----------------------------------------------------------------------
SOLVE_BUDGET = Budget(max_conflicts=200_000)


class TestRaceSimTier:
    def test_sim_wins_without_solver_lanes(self):
        system, final, depth = _ring(4)
        outcome = race(system, final, depth, methods=["jsat"],
                       budget=SOLVE_BUDGET, sim_tier=True)
        assert outcome.winner == "simulation"
        assert outcome.result.status is SolveResult.SAT
        assert outcome.method_outcomes["jsat"] == "skipped"
        assert outcome.loser_pids == []      # nothing ever spawned
        outcome.result.trace.validate(system, final)

    def test_verdicts_identical_with_tier_off(self):
        cases = []
        system, final, depth = _ring(4)
        cases.append((system, final, depth))          # SAT: sim hits
        c_sys, c_final, c_depth = counter_model.make(3)
        cases.append((c_sys, c_final, c_depth - 1))   # UNSAT: sim misses
        for system, final, k in cases:
            with_sim = race(system, final, k, methods=["jsat"],
                            budget=SOLVE_BUDGET, sim_tier=True)
            without = race(system, final, k, methods=["jsat"],
                           budget=SOLVE_BUDGET, sim_tier=False)
            assert with_sim.result.status is without.result.status


class TestSchedulerSimTier:
    def test_sim_fills_cells_and_statuses_agree(self):
        instances = [i for i in build_suite()
                     if i.family == "ring"][:4]      # mixed SAT/UNSAT
        assert any(i.expected for i in instances)
        assert any(i.expected is False for i in instances)
        with_sim = BatchScheduler(jobs=2).run(
            instances, ["jsat"], budget=SOLVE_BUDGET, sim_tier=True)
        sched = BatchScheduler(jobs=2)
        without = sched.run(instances, ["jsat"], budget=SOLVE_BUDGET,
                            sim_tier=False)
        for a, b in zip(with_sim, without):
            assert (a.instance.name, a.method) == (b.instance.name,
                                                   b.method)
            assert a.status is b.status
        sim_cells = [c for c in with_sim if c.worker == "sim"]
        assert sim_cells, "sim tier answered no cells"
        for cell in sim_cells:
            assert cell.status is SolveResult.SAT
            assert cell.stats.get("sim_presolved")

    def test_sim_hits_counted_in_stats(self):
        instances = [i for i in build_suite()
                     if i.family == "ring" and i.expected][:2]
        sched = BatchScheduler(jobs=2)
        sched.run(instances, ["jsat"], budget=SOLVE_BUDGET,
                  sim_tier=True)
        assert sched.stats["sim_hits"] >= 1


class TestCheckerSimTier:
    def test_verdicts_identical_with_tier_off(self):
        from repro.spec.checker import PropertyChecker
        system, final, depth = _ring(4)
        props = {"reach": final, "safe": mk_and(final, mk_not(final))}
        results = {}
        for tier in (True, False):
            checker = PropertyChecker(system, props, sim_tier=tier)
            try:
                results[tier] = checker.check_all(depth)
            finally:
                checker.close()
        for name in props:
            assert (results[True][name].status
                    is results[False][name].status), name


# ----------------------------------------------------------------------
# Serve daemon pre-solve tier
# ----------------------------------------------------------------------
def _start_daemon(tmp_path, **kwargs):
    sock = str(tmp_path / "repro.sock")
    daemon = ServeDaemon(socket_path=sock, **kwargs)
    thread = threading.Thread(target=daemon.run, daemon=True)
    thread.start()
    deadline = time.time() + 10
    import os
    while not os.path.exists(sock):
        assert time.time() < deadline, "daemon never bound its socket"
        time.sleep(0.02)
    return SimpleNamespace(socket=sock, daemon=daemon, thread=thread)


def _stop_daemon(handle):
    if handle.thread.is_alive():
        try:
            with ServeClient(socket_path=handle.socket) as c:
                c.shutdown()
        except Exception:
            pass
    handle.thread.join(timeout=20)
    assert not handle.thread.is_alive()


@pytest.fixture
def served(tmp_path):
    handle = _start_daemon(tmp_path, jobs=1)      # sim tier default ON
    yield handle
    _stop_daemon(handle)


class TestServeSimTier:
    # ring4-k2's target is reachable at k=3, which presolve finds
    # deterministically (seeded walk) well inside its wall budget.
    FAMILY, K = "ring", 3

    def test_unpinned_submit_is_presolved(self, served):
        with ServeClient(socket_path=served.socket) as client:
            ack = client.submit(self.FAMILY, self.K)
            assert ack.get("presolved") is True
            assert ack["state"] == "done"
            assert ack["result"]["status"] == "SAT"
            assert ack["result"]["method"] == "simulation"
            event = client.wait(ack)          # answered, no blocking
            assert event["result"]["status"] == "SAT"
            assert client.stats()["jobs"]["sim_answers"] >= 1

    def test_pinned_method_is_never_presolved(self, served):
        with ServeClient(socket_path=served.socket) as client:
            ack = client.submit(self.FAMILY, self.K, method="jsat")
            assert "presolved" not in ack
            assert ack["state"] == "queued"
            event = client.wait(ack)
            assert event["result"]["status"] == "SAT"
            assert event["result"]["method"] == "jsat"

    def test_sweep_submission_presolves_within(self, served):
        with ServeClient(socket_path=served.socket) as client:
            ack = client.submit(self.FAMILY, self.K + 2, kind="sweep")
            assert ack.get("presolved") is True
            result = ack["result"]
            assert result["kind"] == "sweep"
            assert len(result["per_bound"]) == 1
            assert result["per_bound"][0]["status"] == "SAT"
