"""Craig interpolation tests: the three defining properties."""

import itertools
import random

import pytest

from repro.logic import expr as ex
from repro.logic.cnf import CNF
from repro.sat import CdclSolver, ResolutionProof, SolveResult, brute_force_sat
from repro.sat.interpolation import InterpolationError, compute_interpolant


def _check_itp_properties(a_clauses, b_clauses, num_vars, itp):
    """A -> itp; itp & B unsat; vars(itp) ⊆ shared (exhaustively)."""
    a_vars = {abs(l) for c in a_clauses for l in c}
    b_vars = {abs(l) for c in b_clauses for l in c}
    shared = a_vars & b_vars
    names = itp.support()
    assert names <= {f"v{v}" for v in shared}, (names, shared)

    def clause_sat(clauses, env):
        return all(any(env[abs(l)] == (l > 0) for l in c) for c in clauses)

    for bits in itertools.product([False, True], repeat=num_vars):
        env = {v: bits[v - 1] for v in range(1, num_vars + 1)}
        itp_env = {f"v{v}": env[v] for v in range(1, num_vars + 1)}
        value = itp.evaluate({n: itp_env[n] for n in names}) \
            if names else itp.evaluate({})
        if clause_sat(a_clauses, env):
            assert value, f"A true but itp false at {env}"
        if clause_sat(b_clauses, env):
            assert not value, f"B true but itp true at {env}"


def _solve_partition(a_clauses, b_clauses):
    proof = ResolutionProof()
    solver = CdclSolver(proof=proof)
    a_ids, b_ids = [], []
    for clause in a_clauses:
        start = len(proof)
        solver.add_clause(clause)
        a_ids.extend(range(start, len(proof)))
    for clause in b_clauses:
        start = len(proof)
        solver.add_clause(clause)
        b_ids.extend(range(start, len(proof)))
    status = solver.solve()
    return proof, solver, a_ids, b_ids, status


def test_textbook_example():
    a = [(1, 2), (-2, 3)]
    b = [(-1, -3), (1, -3)]         # B forces ~3... and A forces ... unsat?
    proof, solver, a_ids, b_ids, status = _solve_partition(a, b)
    if status is SolveResult.SAT:
        pytest.skip("example not unsat under this construction")
    itp = compute_interpolant(proof, solver.empty_clause_proof, a_ids, b_ids)
    _check_itp_properties(a, b, 3, itp)


def test_random_unsat_partitions():
    rng = random.Random(101)
    exercised = 0
    for _ in range(250):
        n = rng.randint(2, 7)
        m = rng.randint(4, 22)
        clauses = []
        for _ in range(m):
            clause = tuple(rng.choice([1, -1]) * rng.randint(1, n)
                           for _ in range(rng.randint(1, 3)))
            clauses.append(clause)
        cnf = CNF(n)
        for c in clauses:
            cnf.add_clause(c)
        status, _ = brute_force_sat(cnf)
        if status is not SolveResult.UNSAT:
            continue
        cut = rng.randint(0, len(clauses))
        a_clauses, b_clauses = clauses[:cut], clauses[cut:]
        proof, solver, a_ids, b_ids, got = _solve_partition(a_clauses,
                                                            b_clauses)
        assert got is SolveResult.UNSAT
        itp = compute_interpolant(proof, solver.empty_clause_proof,
                                  a_ids, b_ids)
        _check_itp_properties(a_clauses, b_clauses, n, itp)
        exercised += 1
    assert exercised > 30


def test_empty_a_gives_true_like_interpolant():
    # A empty: the interpolant must be implied by TRUE and refute B,
    # so B itself must be unsat.
    b = [(1,), (-1,)]
    proof, solver, a_ids, b_ids, status = _solve_partition([], b)
    assert status is SolveResult.UNSAT
    itp = compute_interpolant(proof, solver.empty_clause_proof, a_ids, b_ids)
    assert itp.is_true or itp.evaluate({}) or itp.support() == frozenset()


def test_empty_b_gives_false_like_interpolant():
    a = [(1,), (-1,)]
    proof, solver, a_ids, b_ids, status = _solve_partition(a, [])
    assert status is SolveResult.UNSAT
    itp = compute_interpolant(proof, solver.empty_clause_proof, a_ids, b_ids)
    names = sorted(itp.support())
    assert not names          # no shared variables at all
    assert not itp.evaluate({})


def test_overlapping_partition_rejected():
    proof = ResolutionProof()
    cid = proof.add_input([1])
    with pytest.raises(InterpolationError):
        compute_interpolant(proof, cid, [cid], [cid])
