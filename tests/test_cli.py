"""CLI integration tests (run in-process through cli.main)."""

import pytest

from repro.cli import main


def test_suite_command(capsys):
    assert main(["suite"]) == 0
    out = capsys.readouterr().out
    assert "234 instances" in out


def test_bmc_command_sat(capsys):
    assert main(["bmc", "counter", "-k", "3", "--method", "jsat"]) == 0
    out = capsys.readouterr().out
    assert "UNSAT" in out or "SAT" in out


def test_bmc_unknown_family(capsys):
    assert main(["bmc", "nonexistent"]) == 1


def test_sweep_command(capsys):
    assert main(["sweep", "counter", "--max-k", "6"]) == 0
    out = capsys.readouterr().out
    assert "sweep k=0..6" in out
    assert "sat-incremental" in out
    assert "shortest counterexample" in out
    assert "trace of length" in out


def test_sweep_command_multiple_methods(capsys):
    assert main(["sweep", "ring", "--max-k", "4",
                 "--methods", "sat-incremental", "jsat"]) == 0
    out = capsys.readouterr().out
    assert "sat-incremental" in out and "jsat" in out


def test_sweep_unknown_family(capsys):
    assert main(["sweep", "nonexistent"]) == 1


def test_solve_cnf(tmp_path, capsys):
    path = tmp_path / "f.cnf"
    path.write_text("p cnf 2 2\n1 2 0\n-1 0\n")
    assert main(["solve-cnf", str(path), "--model"]) == 0
    out = capsys.readouterr().out
    assert "s SAT" in out and "v " in out


def test_solve_cnf_unsat(tmp_path, capsys):
    path = tmp_path / "f.cnf"
    path.write_text("p cnf 1 2\n1 0\n-1 0\n")
    assert main(["solve-cnf", str(path)]) == 0
    assert "s UNSAT" in capsys.readouterr().out


def test_solve_qbf(tmp_path, capsys):
    path = tmp_path / "f.qdimacs"
    path.write_text("p cnf 2 2\na 1 0\ne 2 0\n1 -2 0\n-1 2 0\n")
    assert main(["solve-qbf", str(path)]) == 0
    assert "s SAT" in capsys.readouterr().out
    assert main(["solve-qbf", str(path), "--backend", "expansion"]) == 0


def test_experiment_e3(capsys):
    assert main(["experiment", "e3"]) == 0
    out = capsys.readouterr().out
    assert "E3" in out and "iterations" in out


def test_bmc_with_budget_flags(capsys):
    code = main(["--timeout", "5", "--conflicts", "10000",
                 "bmc", "ring", "--method", "sat-unroll"])
    assert code == 0


def test_check_command_family_bundle(capsys):
    # The family's default multi-property bundle includes a failing
    # invariant (the target IS reachable) -> exit code 1.
    assert main(["check", "counter"]) == 1
    out = capsys.readouterr().out
    assert "reach-target" in out and "never-target" in out
    assert "HOLDS" in out and "VIOLATED" in out


def test_check_command_user_specs(capsys):
    code = main(["check", "arbiter",
                 "--spec", "mutex := G !(gnt0 & gnt1)",
                 "--spec", "EF gnt2", "-k", "6"])
    assert code == 0
    out = capsys.readouterr().out
    assert "mutex" in out and "spec1" in out
    assert "trace of length" in out          # the EF witness waveform


def test_check_command_sweep_streams(capsys):
    # Per-bound progress goes to the logger (stderr, behind -v);
    # stdout stays report-only.
    assert main(["-v", "check", "counter", "--spec", "EF (c0 & c1)",
                 "-k", "5", "--sweep"]) == 0
    captured = capsys.readouterr()
    assert "[spec0] bound 0" in captured.err
    assert "[spec0] bound 0" not in captured.out


def test_check_sweep_quiet_without_verbose(capsys):
    assert main(["check", "counter", "--spec", "EF (c0 & c1)",
                 "-k", "5", "--sweep"]) == 0
    captured = capsys.readouterr()
    assert "bound 0" not in captured.err
    assert "bound 0" not in captured.out


def test_check_command_smv(tmp_path, capsys):
    path = tmp_path / "m.smv"
    path.write_text(
        "MODULE main\n"
        "VAR x : boolean;\n"
        "ASSIGN init(x) := FALSE; next(x) := !x;\n"
        "SPEC never_x := AG !x\n"
        "INVARSPEC TRUE\n")
    assert main(["check", "--smv", str(path), "-k", "3"]) == 1
    out = capsys.readouterr().out
    assert "never_x" in out and "VIOLATED" in out
    assert "invar0" in out and "HOLDS" in out


def test_check_command_bad_spec(capsys):
    assert main(["check", "counter", "--spec", "G (("]) == 1
    assert "check:" in capsys.readouterr().err


def test_check_command_unknown_variable(capsys):
    assert main(["check", "counter", "--spec", "EF bogus_var"]) == 1
    assert "non-state variables" in capsys.readouterr().err


def test_check_command_needs_one_subject(capsys):
    assert main(["check"]) == 1
    assert "exactly one" in capsys.readouterr().err


def test_check_prover_proves_and_require_proof_passes(capsys):
    # An inductive invariant the prover closes: exit 0 even under
    # --require-proof, and the report says "proved" not "bounded".
    code = main(["check", "counter",
                 "--spec", "taut := G (c0 | !c0)", "-k", "4",
                 "--prover", "k-induction", "--require-proof"])
    assert code == 0
    out = capsys.readouterr().out
    assert "proved" in out
    assert "(bounded)" not in out


def test_check_require_proof_downgrades_bounded_holds(capsys):
    # Without a prover the same property only holds up to k: the
    # verdict is printed with the bounded qualifier and
    # --require-proof turns the exit code into 2.
    code = main(["check", "counter",
                 "--spec", "taut := G (c0 | !c0)", "-k", "4",
                 "--require-proof"])
    assert code == 2
    captured = capsys.readouterr()
    assert "holds up to 4 (bounded)" in captured.out
    assert "--require-proof" in captured.err


def test_check_bounded_holds_passes_without_require_proof(capsys):
    code = main(["check", "counter",
                 "--spec", "taut := G (c0 | !c0)", "-k", "4"])
    assert code == 0
    assert "holds up to 4 (bounded)" in capsys.readouterr().out


def test_check_violation_outranks_require_proof(capsys):
    # VIOLATED exits 1 even when --require-proof would also fire.
    code = main(["check", "counter", "--spec", "EF (c0 & c1)",
                 "--spec", "bad := G !(c0 & c1)", "-k", "5",
                 "--require-proof"])
    assert code == 1
    assert "VIOLATED" in capsys.readouterr().out


def test_backends_table_lists_provers(capsys):
    assert main(["backends"]) == 0
    out = capsys.readouterr().out
    assert "proves" in out
    for name in ("k-induction", "interpolation", "diameter"):
        assert name in out
