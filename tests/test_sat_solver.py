"""CDCL solver unit and randomized tests."""

import random

import pytest

from repro.logic.cnf import CNF
from repro.sat import (Budget, CdclSolver, ResolutionProof, SolveResult,
                       brute_force_sat)
from repro.sat.types import from_internal, luby, to_internal


class TestBasics:
    def test_empty_formula_sat(self):
        assert CdclSolver().solve() is SolveResult.SAT

    def test_unit_conflict(self):
        s = CdclSolver()
        s.add_clause([1])
        assert not s.add_clause([-1])
        assert s.solve() is SolveResult.UNSAT

    def test_simple_sat_model(self):
        s = CdclSolver()
        s.add_clause([1, 2])
        s.add_clause([-1])
        assert s.solve() is SolveResult.SAT
        assert s.model_value(1) is False
        assert s.model_value(2) is True
        assert s.model_value(-2) is False

    def test_pigeonhole_3_2_unsat(self):
        # 3 pigeons, 2 holes: p_ij = pigeon i in hole j.
        s = CdclSolver()
        def v(i, j):
            return i * 2 + j + 1
        for i in range(3):
            s.add_clause([v(i, 0), v(i, 1)])
        for j in range(2):
            for i1 in range(3):
                for i2 in range(i1 + 1, 3):
                    s.add_clause([-v(i1, j), -v(i2, j)])
        assert s.solve() is SolveResult.UNSAT

    def test_tautology_ignored(self):
        s = CdclSolver()
        s.add_clause([1, -1])
        assert s.solve() is SolveResult.SAT

    def test_model_covers_all_vars(self):
        s = CdclSolver()
        s.ensure_vars(5)
        s.add_clause([1, 2])
        assert s.solve() is SolveResult.SAT
        assert all(s.model_value(v) is not None for v in range(1, 6))


class TestAssumptions:
    def test_assumption_forces_value(self):
        s = CdclSolver()
        s.add_clause([1, 2])
        assert s.solve(assumptions=[-1]) is SolveResult.SAT
        assert s.model_value(2) is True

    def test_unsat_under_assumptions_recovers(self):
        s = CdclSolver()
        s.add_clause([-1, 2])
        s.add_clause([-2, 3])
        assert s.solve(assumptions=[1, -3]) is SolveResult.UNSAT
        core = s.core()
        assert set(core) <= {1, -3} and core
        # Still satisfiable without assumptions.
        assert s.solve() is SolveResult.SAT

    def test_core_is_unsat_subset(self):
        rng = random.Random(17)
        for _ in range(80):
            n = rng.randint(2, 8)
            cnf = CNF(n)
            for _ in range(rng.randint(2, 25)):
                cnf.add_clause([rng.choice([1, -1]) * rng.randint(1, n)
                                for _ in range(rng.randint(1, 3))])
            assumptions = [rng.choice([1, -1]) * v
                           for v in rng.sample(range(1, n + 1),
                                               rng.randint(1, n))]
            s = CdclSolver()
            s.add_clauses(cnf.clauses)
            if s.solve(assumptions) is SolveResult.UNSAT:
                with_core = cnf.copy()
                for lit in s.core():
                    with_core.add_clause([lit])
                status, _ = brute_force_sat(with_core)
                assert status is SolveResult.UNSAT

    def test_contradictory_assumptions(self):
        s = CdclSolver()
        s.ensure_vars(1)
        assert s.solve(assumptions=[1, -1]) is SolveResult.UNSAT
        assert 1 in set(map(abs, s.core()))


class TestBudgets:
    def test_conflict_budget_returns_unknown(self):
        # A hard random instance at the phase transition.
        rng = random.Random(1)
        n = 60
        s = CdclSolver()
        for _ in range(int(4.26 * n)):
            clause = rng.sample(range(1, n + 1), 3)
            s.add_clause([rng.choice([1, -1]) * v for v in clause])
        result = s.solve(budget=Budget(max_conflicts=3))
        assert result in (SolveResult.UNKNOWN, SolveResult.SAT,
                          SolveResult.UNSAT)
        # With a tiny budget on a hard instance UNKNOWN is expected;
        # a solved outcome just means the instance was easy.

    def test_memory_budget(self):
        rng = random.Random(2)
        n = 50
        s = CdclSolver()
        for _ in range(int(4.26 * n)):
            clause = rng.sample(range(1, n + 1), 3)
            s.add_clause([rng.choice([1, -1]) * v for v in clause])
        result = s.solve(budget=Budget(max_literals=10))
        assert result is SolveResult.UNKNOWN


class TestGroupsAndPurge:
    def test_group_retirement_reclaims_clauses(self):
        s = CdclSolver()
        g = s.new_var()
        x = s.new_var()
        s.add_clause([-g, x])
        s.add_clause([-g, -x])
        assert s.solve(assumptions=[g]) is SolveResult.UNSAT
        assert s.solve() is SolveResult.SAT
        s.add_clause([-g])
        purged = s.purge_satisfied()
        assert purged >= 2
        assert s.solve() is SolveResult.SAT

    def test_purge_keeps_semantics(self):
        rng = random.Random(3)
        s = CdclSolver()
        n = 10
        cnf = CNF(n)
        for _ in range(30):
            clause = [rng.choice([1, -1]) * rng.randint(1, n)
                      for _ in range(3)]
            cnf.add_clause(clause)
        s.add_clauses(cnf.clauses)
        expected = s.solve()
        s.purge_satisfied()
        assert s.solve() is expected


class TestRandomizedAgainstBruteForce:
    def test_random_formulas(self):
        rng = random.Random(123)
        for trial in range(200):
            n = rng.randint(1, 10)
            cnf = CNF(n)
            for _ in range(rng.randint(1, 40)):
                clause = [rng.choice([1, -1]) * rng.randint(1, n)
                          for _ in range(rng.randint(1, 4))]
                cnf.add_clause(clause)
            expected, _ = brute_force_sat(cnf)
            s = CdclSolver()
            s.add_clauses(cnf.clauses)
            got = s.solve()
            assert got is expected, f"trial {trial}"
            if got is SolveResult.SAT:
                model = {v: bool(s.model_value(v))
                         for v in range(1, n + 1)}
                assert cnf.evaluate(model)

    def test_incremental_clause_addition(self):
        rng = random.Random(5)
        for _ in range(40):
            n = rng.randint(2, 8)
            s = CdclSolver()
            cnf = CNF(n)
            for _ in range(12):
                clause = [rng.choice([1, -1]) * rng.randint(1, n)
                          for _ in range(rng.randint(1, 3))]
                cnf.add_clause(clause)
                s.add_clause(clause)
                expected, _ = brute_force_sat(cnf)
                assert s.solve() is expected
                if expected is SolveResult.UNSAT:
                    break


class TestInternals:
    def test_literal_conversion_round_trip(self):
        for lit in (1, -1, 5, -17):
            assert from_internal(to_internal(lit)) == lit

    def test_luby_sequence(self):
        expected = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]
        assert [luby(i) for i in range(1, 16)] == expected

    def test_tri_valued_result_guards_bool(self):
        with pytest.raises(TypeError):
            bool(SolveResult.SAT)

    def test_stats_counted(self):
        s = CdclSolver()
        s.add_clause([1, 2])
        s.add_clause([-1, 2])
        s.add_clause([1, -2])
        s.add_clause([-1, -2, 3])
        s.solve()
        assert s.stats.solve_calls == 1
        assert s.stats.propagations > 0
        assert s.stats.peak_db_literals >= 9


class TestEngineStatsParity:
    """Both engines expose the SAME observability surface: identical
    counter names and identical ``sat.solve`` span fields, so dashboards
    and bench harnesses never special-case the engine."""

    CNF_CLAUSES = [[1, 2], [-1, 2], [1, -2], [-1, -2, 3], [-3, 4]]

    def _solved(self, engine):
        from repro.sat.kernel import make_solver
        s = make_solver(engine)
        for clause in self.CNF_CLAUSES:
            s.add_clause(clause)
        assert s.solve() is SolveResult.SAT
        return s

    def test_counter_names_identical(self):
        ref = self._solved("reference")
        ker = self._solved("kernel")
        assert set(ker.stats.as_dict()) == set(ref.stats.as_dict())
        for s in (ref, ker):
            d = s.stats.as_dict()
            assert d["propagations"] > 0
            assert d["db_literals"] > 0
            assert d["peak_db_literals"] >= d["db_literals"]
            assert s.stats.solve_calls == 1

    def test_solve_span_fields_identical(self):
        from repro.telemetry import (MetricsRegistry, Tracer, set_metrics,
                                     set_tracer)
        tracer, registry = Tracer(), MetricsRegistry()
        prev_tracer = set_tracer(tracer)
        prev_metrics = set_metrics(registry)
        try:
            self._solved("reference")
            self._solved("kernel")
        finally:
            set_tracer(prev_tracer)
            set_metrics(prev_metrics)
        solves = [e for e in tracer.events() if e["name"] == "sat.solve"]
        by_engine = {e["args"]["engine"]: e for e in solves}
        assert set(by_engine) == {"reference", "kernel"}
        assert (set(by_engine["reference"]["args"])
                == set(by_engine["kernel"]["args"]))
        for event in by_engine.values():
            assert event["args"]["result"] == "SAT"
