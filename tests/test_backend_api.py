"""The pluggable backend registry and the stateful session API.

Pins the api_redesign contract:

* all six built-in methods run through the ``Backend`` registry, and
  ``METHODS`` / ``ALL_METHODS`` are live views over it;
* a custom backend registered in a test participates in ``check`` /
  ``sweep`` / ``run_matrix`` / the CLI without editing core modules;
* typed options reject unknown kwargs (the silent-drop bugfix) and
  ``find_reachable`` validates method *and* strategy up front;
* the old public functions still work as shims, emit
  ``DeprecationWarning``, and agree with the session API across the
  model suite for k = 0..4 (the differential guarantee);
* session-held backend state really persists across calls, and the
  ``on_bound`` observer streams per-bound progress.
"""

import warnings

import pytest

from repro.bmc import (ALL_METHODS, METHODS, Backend, BackendOptions,
                       BmcResult, BmcSession, backend_class,
                       check_reachability, find_reachable, register_backend,
                       registered_backends, sweep, unregister_backend)
from repro.bmc.backends import JsatBackend, PortfolioBackend
from repro.models import build_suite, counter, shift_register
from repro.sat.types import Budget, SolveResult
from repro.system.oracle import ExplicitOracle

BUILTINS = ("sat-unroll", "sat-incremental", "qbf", "qbf-squaring",
            "jsat", "k-induction", "interpolation", "diameter",
            "simulation", "portfolio")


# ----------------------------------------------------------------------
# A complete external backend in ~20 lines: explicit-state enumeration.
# ----------------------------------------------------------------------
import dataclasses


@dataclasses.dataclass(frozen=True)
class ToyOptions(BackendOptions):
    max_states: int = 4096


class ToyOracleBackend(Backend):
    """Decides reachability by explicit-state enumeration."""

    options_class = ToyOptions
    native_incremental = True      # the oracle persists across calls

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._oracle = None
        self.calls = 0

    @property
    def oracle(self):
        if self._oracle is None:
            self._oracle = ExplicitOracle(self.system)
        return self._oracle

    def check(self, k, semantics="exact", budget=None):
        self.calls += 1
        if semantics == "exact":
            sat = self.oracle.reachable_in_exactly(self.final, k)
        else:
            sat = self.oracle.reachable_within(self.final, k)
        status = SolveResult.SAT if sat else SolveResult.UNSAT
        return self.result(status, None, k, {"oracle_calls": self.calls})


@pytest.fixture
def toy_backend():
    register_backend("toy-oracle")(ToyOracleBackend)
    try:
        yield "toy-oracle"
    finally:
        unregister_backend("toy-oracle")


# ----------------------------------------------------------------------
class TestRegistry:
    def test_builtins_registered_in_order(self):
        assert tuple(ALL_METHODS) == BUILTINS
        assert tuple(METHODS) == BUILTINS[:-1]     # portfolio is composite

    def test_views_behave_like_tuples(self):
        assert "jsat" in METHODS
        assert METHODS[0] == "sat-unroll"
        assert len(ALL_METHODS) == len(METHODS) + 1
        assert METHODS + ("portfolio",) == tuple(ALL_METHODS)
        assert METHODS == tuple(METHODS)

    def test_unknown_backend_raises_with_choices(self):
        with pytest.raises(ValueError, match="unknown method 'magic'"):
            backend_class("magic")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend("jsat")(ToyOracleBackend)
        # ... unless replace is explicit.
        original = backend_class("jsat")
        try:
            register_backend("jsat", replace=True)(ToyOracleBackend)
            assert backend_class("jsat") is ToyOracleBackend
        finally:
            register_backend("jsat", replace=True)(original)
        assert backend_class("jsat") is original

    def test_non_backend_rejected(self):
        with pytest.raises(TypeError):
            register_backend("bogus")(object)

    def test_capability_flags(self):
        backends = registered_backends()
        assert backends["sat-incremental"].native_incremental
        assert backends["jsat"].native_incremental
        assert not backends["sat-unroll"].native_incremental
        assert backends["portfolio"].composite
        assert backend_class("jsat") is JsatBackend
        assert backend_class("portfolio") is PortfolioBackend

    def test_custom_backend_appears_in_views(self, toy_backend):
        assert toy_backend in METHODS
        assert toy_backend in ALL_METHODS
        unregister_backend(toy_backend)
        assert toy_backend not in METHODS

    def test_alias_registration_keeps_both_names(self, toy_backend):
        # Registering the same class under a second name must not
        # relabel the first registration's results.
        register_backend("toy-alias")(ToyOracleBackend)
        try:
            system, final, depth = counter.make(3, 5)
            with BmcSession(system, properties={"target": final}) as session:
                a = session.check(depth, method=toy_backend)
                b = session.check(depth, method="toy-alias")
            assert a.method == toy_backend
            assert b.method == "toy-alias"
            assert a.status is b.status is SolveResult.SAT
        finally:
            unregister_backend("toy-alias")


# ----------------------------------------------------------------------
class TestOptionsStrictness:
    def test_typo_raises_with_hint(self):
        system, final, _ = counter.make(3, 5)
        with BmcSession(system, properties={"target": final}) as session:
            with pytest.raises(TypeError,
                               match="polarity_reducton.*did you mean"):
                session.check(2, method="sat-unroll",
                              polarity_reducton=True)

    def test_option_of_other_method_rejected(self):
        system, final, _ = counter.make(3, 5)
        with BmcSession(system, properties={"target": final}) as session:
            with pytest.raises(TypeError, match="unknown option"):
                session.check(2, method="sat-unroll", use_cache=False)
            # The same key is fine where it belongs.
            result = session.check(2, method="jsat", use_cache=False)
            assert result.status is not None

    def test_shims_reject_unknown_options_too(self):
        # Regression: these used to be silently dropped.
        system, final, _ = counter.make(3, 5)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(TypeError):
                check_reachability(system, final, 2, "jsat",
                                   f_prunning=True)
            with pytest.raises(TypeError):
                sweep(system, final, 2, method="sat-incremental",
                      purge_intervall=2)
            with pytest.raises(TypeError):
                find_reachable(system, final, 2, method="sat-unroll",
                               polarty_reduction=False)

    def test_portfolio_broadcast_options_still_work(self):
        # Old API allowed flat kwargs shared across raced methods; each
        # method takes the keys its options class declares.  Keys no
        # raced method declares still raise.
        system, final, depth = counter.make(3, 5)
        with BmcSession(system, properties={"target": final}) as session:
            result = session.check(depth, method="portfolio",
                                   portfolio_methods=("jsat",
                                                      "sat-unroll"),
                                   use_cache=False,
                                   budget=Budget(max_seconds=10.0))
            assert result.status is SolveResult.SAT
            with pytest.raises(TypeError, match="use_cach"):
                session.check(depth, method="portfolio",
                              portfolio_methods=("jsat",),
                              use_cach=False)

    def test_portfolio_own_option_typo_gets_hint(self):
        # Regression: a near-miss of one of portfolio's OWN options
        # used to fold into shared_options and surface as a confusing
        # "not accepted by any raced method" error at check time.
        system, final, depth = counter.make(3, 5)
        with BmcSession(system, properties={"target": final}) as session:
            with pytest.raises(TypeError,
                               match="wall_timout.*did you mean "
                                     "'wall_timeout'"):
                session.check(depth, method="portfolio",
                              wall_timout=5.0)

    def test_portfolio_method_options_validated_up_front(self):
        # Regression: a typo'd per-method override used to fail inside
        # one worker process, silently reducing the race to the other
        # contenders; now it raises in the parent before any fork.
        from repro.portfolio.race import race
        system, final, depth = counter.make(3, 5)
        with pytest.raises(TypeError, match="use_cach.*did you mean"):
            race(system, final, depth,
                 methods=("jsat", "sat-unroll"),
                 method_options={"jsat": {"use_cach": False}})
        with pytest.raises(ValueError, match="not among the methods"):
            race(system, final, depth,
                 methods=("jsat", "sat-unroll"),
                 method_options={"qbf": {"qbf_backend": "qdpll"}})

    def test_run_matrix_broadcasts_options_per_method(self):
        # Regression: run_matrix(["sat-unroll", "jsat"], use_cache=...)
        # is 0.2-era usage (each method takes the keys its options
        # class accepts); strict per-method validation must not reject
        # the broadcast, only keys NO listed method accepts.
        from repro.harness.runner import run_matrix
        suite = [i for i in build_suite() if i.family == "counter"][:2]
        results = run_matrix(suite, ["sat-unroll", "jsat"],
                             use_cache=False)
        assert len(results) == 2 * len(suite)
        assert all(c.correct is not False for c in results)
        with pytest.raises(TypeError, match="use_cach"):
            run_matrix(suite, ["sat-unroll", "jsat"], use_cach=False)

    def test_fan_out_with_portfolio_still_rejects_unknown_keys(self):
        # Regression: portfolio accepting every broadcast key would
        # let a typo through the up-front matrix validation whenever
        # "portfolio" is among the methods, deferring the error to a
        # worker (where it silently degrades cells to UNKNOWN).
        from repro.bmc.backend import fan_out_options
        with pytest.raises(TypeError, match="use_cach"):
            fan_out_options(["jsat", "portfolio"], {"use_cach": False})
        out = fan_out_options(["jsat", "portfolio"],
                              {"use_cache": False})
        assert out["jsat"] == {"use_cache": False}
        # The composite forwards the key to its raced methods.
        assert out["portfolio"] == {"use_cache": False}

    def test_naive_sweep_records_per_bound_seconds(self):
        # Regression: the default (naive) Backend.sweep must time each
        # bound itself — backend.check does not stamp seconds.
        system, final, depth = counter.make(4, 9)
        with BmcSession(system, properties={"target": final}) as session:
            swept = session.sweep(depth, method="sat-unroll")
        assert len(swept.per_bound) > 1
        assert all(b.seconds > 0.0 for b in swept.per_bound)
        assert all(b.cumulative_seconds >= b.seconds
                   for b in swept.per_bound)

    def test_valid_options_still_flow_through(self):
        system, final, depth = counter.make(3, 5)
        with BmcSession(system, properties={"target": final}) as session:
            a = session.check(depth, method="sat-unroll",
                              polarity_reduction=True)
            b = session.check(depth, method="jsat", f_pruning=False,
                              use_cache=False)
        assert a.status is SolveResult.SAT
        assert b.status is SolveResult.SAT


# ----------------------------------------------------------------------
class TestUpFrontValidation:
    def test_find_reachable_unknown_method(self):
        # Regression: a bad method used to fail deep inside the
        # per-bound dispatch ladder; now it raises before any solving.
        system, final, _ = counter.make(3, 5)
        with BmcSession(system, properties={"target": final}) as session:
            with pytest.raises(ValueError, match="unknown method"):
                session.find_reachable(3, method="magic")

    def test_find_reachable_unknown_strategy(self):
        system, final, _ = counter.make(3, 5)
        with BmcSession(system, properties={"target": final}) as session:
            with pytest.raises(ValueError, match="unknown strategy"):
                session.find_reachable(3, strategy="zigzag")

    def test_shim_validates_method_and_strategy(self):
        system, final, _ = counter.make(3, 5)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(ValueError, match="unknown method"):
                find_reachable(system, final, 3, method="magic",
                               strategy="zigzag")
            with pytest.raises(ValueError, match="unknown strategy"):
                find_reachable(system, final, 3, strategy="zigzag")

    def test_negative_bounds_rejected(self):
        system, final, _ = counter.make(3, 5)
        with BmcSession(system, properties={"target": final}) as session:
            with pytest.raises(ValueError):
                session.check(-1)
            with pytest.raises(ValueError):
                session.sweep(-1)

    def test_closed_session_refuses_work(self):
        system, final, _ = counter.make(3, 5)
        session = BmcSession(system, properties={"target": final})
        session.close()
        with pytest.raises(RuntimeError):
            session.check(1)


# ----------------------------------------------------------------------
class TestCustomBackendEndToEnd:
    def test_through_session_check_and_sweep(self, toy_backend):
        system, final, depth = counter.make(3, 5)
        with BmcSession(system, properties={"target": final}) as session:
            result = session.check(depth, method=toy_backend)
            assert result.status is SolveResult.SAT
            assert result.method == toy_backend
            swept = session.sweep(depth + 2, method=toy_backend)
            assert swept.shortest_k == depth
            assert swept.method == toy_backend
            # One oracle instance served every bound of the sweep.
            assert session.backend(toy_backend).calls >= depth + 1

    def test_typed_options_apply_to_custom_backend(self, toy_backend):
        system, final, depth = counter.make(3, 5)
        with BmcSession(system, properties={"target": final}) as session:
            backend = session.backend(toy_backend, max_states=99)
            assert backend.options.max_states == 99
            with pytest.raises(TypeError, match="max_stats"):
                session.check(1, method=toy_backend, max_stats=1)

    def test_through_run_matrix(self, toy_backend):
        from repro.harness.runner import run_matrix, solved_counts
        instances = [i for i in build_suite() if i.k <= 4][:3]
        results = run_matrix(instances, [toy_backend, "sat-unroll"])
        assert len(results) == 6
        counts = solved_counts(results)
        assert counts[toy_backend]["total"] == 3
        # The oracle and the SAT encoding agree cell for cell.
        by_method = {}
        for cell in results:
            by_method.setdefault(cell.method, []).append(cell.status)
        assert by_method[toy_backend] == by_method["sat-unroll"]

    def test_through_cli(self, toy_backend, capsys):
        from repro.cli import main
        assert main(["bmc", "counter", "-k", "3",
                     "--method", toy_backend]) == 0
        out = capsys.readouterr().out
        assert toy_backend in out
        assert "oracle_calls" in out

    def test_cli_backends_listing(self, toy_backend, capsys):
        from repro.cli import main
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        for name in BUILTINS:
            assert name in out
        assert toy_backend in out
        assert "max_states" in out

    def test_cli_backends_listing_handles_factory_defaults(self, capsys):
        # Regression: a default_factory field used to render as the
        # dataclasses MISSING sentinel in the `repro backends` table.
        from repro.cli import main

        @dataclasses.dataclass(frozen=True)
        class FactoryOptions(BackendOptions):
            extras: tuple = dataclasses.field(default_factory=tuple)

        class FactoryBackend(ToyOracleBackend):
            options_class = FactoryOptions

        register_backend("toy-factory")(FactoryBackend)
        try:
            assert main(["backends"]) == 0
            out = capsys.readouterr().out
            assert "extras=()" in out
            assert "MISSING" not in out
        finally:
            unregister_backend("toy-factory")

    def test_custom_backends_rejected_for_spawn_workers(self, toy_backend):
        # Fork workers inherit the registry; spawned workers re-import
        # repro with only the built-ins, so a custom method must be
        # rejected in the parent instead of killing every worker.
        import multiprocessing
        from repro.portfolio.race import ensure_methods_spawnable
        spawn = multiprocessing.get_context("spawn")
        with pytest.raises(ValueError, match="custom backend"):
            ensure_methods_spawnable([toy_backend], spawn)
        ensure_methods_spawnable(["jsat", "sat-unroll"], spawn)
        fork = multiprocessing.get_context("fork")
        ensure_methods_spawnable([toy_backend], fork)

    def test_through_shims(self, toy_backend):
        system, final, depth = counter.make(3, 5)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            result = check_reachability(system, final, depth, toy_backend)
            assert result.status is SolveResult.SAT
            hit, history = find_reachable(system, final, depth + 1,
                                          method=toy_backend)
            assert hit is not None and hit.k == depth


# ----------------------------------------------------------------------
class TestSessionState:
    def test_incremental_state_persists_across_checks(self):
        system, final, depth = counter.make(4, 9)
        with BmcSession(system, properties={"target": final}) as session:
            first = session.check(depth - 1, method="sat-incremental")
            second = session.check(depth, method="sat-incremental")
        # The second query reuses the first's clause database instead
        # of re-encoding from scratch.
        assert second.stats["clauses_reused"] \
            > first.stats["clauses_reused"]

    def test_incremental_lower_bound_recheck_is_sound(self):
        # Regression: frames beyond k are asserted unconditionally in
        # the persistent driver, so a session check at a bound LOWER
        # than an earlier one used to return spurious UNSAT when the
        # witness ends in a deadlock state (non-total TR).
        from repro.logic import expr as ex
        from repro.system.model import TransitionSystem
        a = ex.var("a")
        deadlock = TransitionSystem(
            state_vars=["a"], init=~a, trans=~a & ex.var("a'"),
            name="deadlock")
        with BmcSession(deadlock, properties={"target": a}) as session:
            assert session.check(3, method="sat-incremental").status \
                is SolveResult.UNSAT
            low = session.check(1, method="sat-incremental")
            assert low.status is SolveResult.SAT
            low.trace.validate(deadlock, a)
            swept = session.sweep(2, method="sat-incremental")
            assert swept.shortest_k == 1

    def test_jsat_nogood_cache_persists(self):
        system, final, _ = shift_register.make_invariant_violation(4)
        with BmcSession(system, properties={"target": final}) as session:
            session.check(3, method="jsat")
            backend = session.backend("jsat")
            cached = backend.solver("exact").cache_size()
            assert cached > 0
            second = session.check(3, method="jsat")
            # Same solver instance, cache intact.
            assert second.stats["cache_entries"] >= cached

    def test_distinct_options_get_distinct_instances(self):
        system, final, _ = counter.make(3, 5)
        with BmcSession(system, properties={"target": final}) as session:
            a = session.backend("jsat", use_cache=True)
            b = session.backend("jsat", use_cache=False)
            again = session.backend("jsat", use_cache=True)
        assert a is not b
        assert a is again

    def test_close_releases_backends(self):
        system, final, _ = counter.make(3, 5)
        session = BmcSession(system, properties={"target": final})
        session.check(2, method="sat-incremental")
        backend = session.backend("sat-incremental")
        assert backend._inc is not None
        session.close()
        assert backend._inc is None


# ----------------------------------------------------------------------
class TestObserver:
    def test_on_bound_streams_sweep_progress(self):
        system, final, depth = counter.make(4, 6)
        seen = []
        with BmcSession(system, properties={"target": final}) as session:
            swept = session.sweep(depth + 2, method="sat-incremental",
                                  on_bound=seen.append)
        assert [b.k for b in seen] == [b.k for b in swept.per_bound]
        assert seen[-1].status is SolveResult.SAT
        assert all(b.status is SolveResult.UNSAT for b in seen[:-1])

    def test_session_level_observer_and_override(self):
        system, final, depth = counter.make(3, 5)
        session_seen, call_seen = [], []
        with BmcSession(system, properties={"target": final},
                        on_bound=session_seen.append) as session:
            session.sweep(depth, method="jsat")
            assert len(session_seen) == depth + 1
            session.sweep(depth, method="jsat",
                          on_bound=call_seen.append)
        assert len(session_seen) == depth + 1    # override, not both
        assert len(call_seen) == depth + 1

    def test_find_reachable_streams_bounds(self):
        system, final, depth = shift_register.make(5)
        seen = []
        with BmcSession(system, properties={"target": final}) as session:
            hit, history = session.find_reachable(
                depth + 2, method="jsat", on_bound=seen.append)
        assert hit is not None
        assert [b.k for b in seen] == list(range(depth + 1))
        assert len(seen) == len(history)


# ----------------------------------------------------------------------
class TestShimCompatibility:
    def test_shims_emit_deprecation_warning(self):
        system, final, depth = counter.make(3, 5)
        with pytest.warns(DeprecationWarning, match="BmcSession.check"):
            check_reachability(system, final, depth, "jsat")
        with pytest.warns(DeprecationWarning, match="BmcSession.sweep"):
            sweep(system, final, 2)
        with pytest.warns(DeprecationWarning,
                          match="BmcSession.find_reachable"):
            find_reachable(system, final, 2)

    def test_legacy_qbf_backend_kwarg_still_works(self):
        system, final, _ = shift_register.make(3)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            result = check_reachability(system, final, 2, "qbf",
                                        qbf_backend="expansion",
                                        budget=Budget(max_seconds=5.0))
        assert result.status in (SolveResult.SAT, SolveResult.UNKNOWN)
        bad = check_reachability.__wrapped__ \
            if hasattr(check_reachability, "__wrapped__") else None
        assert bad is None   # plain function, no decorator magic

    @pytest.mark.parametrize("method",
                             ("sat-unroll", "sat-incremental", "jsat"))
    def test_differential_shim_vs_session(self, method):
        """Old-API shims and new-API sessions must agree — verdict and
        witness — across the model suite for k = 0..4."""
        picked = {}
        for inst in build_suite():
            if inst.family not in picked and inst.k >= 2:
                picked[inst.family] = inst
        instances = list(picked.values())[:6]
        for inst in instances:
            with BmcSession(inst.system, properties={"target": inst.final}) as session:
                for k in range(5):
                    new = session.check(k, method=method)
                    with warnings.catch_warnings():
                        warnings.simplefilter("ignore",
                                              DeprecationWarning)
                        old = check_reachability(inst.system, inst.final,
                                                 k, method)
                    assert old.status is new.status, \
                        (inst.name, method, k)
                    for result in (old, new):
                        if result.trace is not None:
                            result.trace.validate(inst.system, inst.final)
                            assert result.trace.length == k

    def test_differential_sweep_shim_vs_session(self):
        system, final, depth = counter.make(4, 9)
        with BmcSession(system, properties={"target": final}) as session:
            new = session.sweep(depth + 1, method="sat-incremental")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            old = sweep(system, final, depth + 1,
                        method="sat-incremental")
        assert old.shortest_k == new.shortest_k == depth
        assert [b.status for b in old.per_bound] \
            == [b.status for b in new.per_bound]

    def test_result_type_unchanged(self):
        # Downstream code isinstance-checks BmcResult from any import
        # path; the engine re-export must be the same class.
        from repro.bmc.engine import BmcResult as EngineResult
        assert EngineResult is BmcResult
