"""AIG structural hashing, rewrites, and Expr round-trip tests."""

import itertools
import random

from repro.logic import expr as ex
from repro.logic.aig import AIG, AIG_FALSE, AIG_TRUE, aig_from_expr, aig_to_expr
from repro.system.random_model import random_expr


class TestAigRewrites:
    def test_constants(self):
        aig = AIG()
        a = aig.add_input("a")
        assert aig.mk_and(a, AIG_FALSE) == AIG_FALSE
        assert aig.mk_and(a, AIG_TRUE) == a
        assert aig.mk_and(a, a) == a
        assert aig.mk_and(a, a ^ 1) == AIG_FALSE

    def test_structural_hashing(self):
        aig = AIG()
        a, b = aig.add_input("a"), aig.add_input("b")
        n1 = aig.mk_and(a, b)
        n2 = aig.mk_and(b, a)
        assert n1 == n2
        assert aig.num_ands == 1

    def test_or_demorgan(self):
        aig = AIG()
        a, b = aig.add_input("a"), aig.add_input("b")
        o = aig.mk_or(a, b)
        assert aig.evaluate({a: True, b: False}, [o]) == [True]
        assert aig.evaluate({a: False, b: False}, [o]) == [False]

    def test_xor_ite(self):
        aig = AIG()
        a, b, c = (aig.add_input(n) for n in "abc")
        x = aig.mk_xor(a, b)
        i = aig.mk_ite(c, a, b)
        for va, vb, vc in itertools.product([False, True], repeat=3):
            vx, vi = aig.evaluate({a: va, b: vb, c: vc}, [x, i])
            assert vx == (va != vb)
            assert vi == (va if vc else vb)


class TestLatches:
    def test_latch_next_assignment(self):
        aig = AIG()
        q = aig.add_latch("q", init=False)
        a = aig.add_input("a")
        aig.set_latch_next(q, a ^ 1)
        assert aig.latches[0][1] == a ^ 1
        assert aig.latches[0][2] == 0 or aig.latches[0][2] is False


class TestExprRoundTrip:
    def test_round_trip_random(self):
        rng = random.Random(11)
        for _ in range(60):
            leaves = [ex.var(n) for n in ("a", "b", "c", "d")]
            expression = random_expr(rng, leaves, depth=3)
            aig, (lit,) = aig_from_expr([expression])
            back = aig_to_expr(aig, lit)
            names = sorted(expression.support() | back.support())
            for bits in itertools.product([False, True],
                                          repeat=len(names)):
                env = dict(zip(names, bits))
                assert expression.evaluate(env) == back.evaluate(env)

    def test_shared_roots(self):
        a, b = ex.var("a"), ex.var("b")
        aig, lits = aig_from_expr([a & b, ~(a & b)])
        assert lits[0] == lits[1] ^ 1
        assert aig.num_ands == 1

    def test_constant_root(self):
        aig, (lit,) = aig_from_expr([ex.TRUE])
        assert lit == AIG_TRUE
