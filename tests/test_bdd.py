"""ROBDD engine and BDD-based reachability tests."""

import itertools
import random

import pytest

from repro.bdd import BddManager, BddReachability
from repro.logic import expr as ex
from repro.models import counter, shift_register
from repro.system import ExplicitOracle, random_predicate, random_system
from repro.system.random_model import random_expr


class TestManager:
    def test_terminals_and_vars(self):
        m = BddManager(["a", "b"])
        assert m.true == 1 and m.false == 0
        assert m.var("a") == m.var("a")          # canonical
        with pytest.raises(KeyError):
            m.var("zz")

    def test_canonicity_random(self):
        """Equivalent formulas compile to the identical node."""
        rng = random.Random(5)
        names = ["a", "b", "c", "d"]
        for _ in range(60):
            m = BddManager(names)
            leaves = [ex.var(n) for n in names]
            e1 = random_expr(rng, leaves, depth=3)
            # Build a syntactically different equivalent: double negation
            # distributed via ite.
            f1 = m.from_expr(e1)
            f2 = m.apply_not(m.apply_not(f1))
            assert f1 == f2
            for bits in itertools.product([False, True], repeat=4):
                env = dict(zip(names, bits))
                want = e1.evaluate(env) if not e1.is_const else e1.is_true
                assert m.evaluate(f1, env) == want

    def test_quantification(self):
        m = BddManager(["a", "b"])
        f = m.apply_and(m.var("a"), m.var("b"))
        assert m.exists(["a"], f) == m.var("b")
        assert m.forall(["a"], f) == m.false
        g = m.apply_or(m.var("a"), m.var("b"))
        assert m.forall(["a"], g) == m.var("b")

    def test_rename_order_compatible(self):
        m = BddManager(["x", "x'", "y", "y'"])
        f = m.apply_and(m.var("x"), m.apply_not(m.var("y")))
        g = m.rename(f, {"x": "x'", "y": "y'"})
        assert g == m.apply_and(m.var("x'"), m.apply_not(m.var("y'")))

    def test_rename_order_incompatible_falls_back(self):
        m = BddManager(["a", "b"])
        f = m.apply_and(m.var("a"), m.apply_not(m.var("b")))
        g = m.rename(f, {"a": "b", "b": "a"})    # swap
        assert g == m.apply_and(m.var("b"), m.apply_not(m.var("a")))

    def test_count_and_one_sat(self):
        m = BddManager(["a", "b", "c"])
        f = m.apply_or(m.var("a"), m.var("b"))
        assert m.count_sat(f, ["a", "b", "c"]) == 6
        model = m.one_sat(f)
        env = {"a": False, "b": False, "c": False}
        env.update(model)
        assert m.evaluate(f, env)
        assert m.one_sat(m.false) is None


class TestReachability:
    def test_matches_oracle_random(self):
        rng = random.Random(31)
        for _ in range(10):
            system = random_system(rng, num_latches=3, num_inputs=1,
                                   depth=2)
            predicate = random_predicate(rng, system)
            oracle = ExplicitOracle(system)
            reach = BddReachability(system)
            assert reach.shortest_distance(predicate) == \
                oracle.shortest_distance(predicate)
            for k in (0, 2, 4):
                assert reach.reachable_in_exactly(predicate, k) == \
                    oracle.reachable_in_exactly(predicate, k)
                assert reach.reachable_within(predicate, k) == \
                    oracle.reachable_within(predicate, k)

    def test_count_reachable_counter(self):
        system, _, _ = counter.make(4, 1)
        reach = BddReachability(system)
        assert reach.count_reachable() == 16      # full count cycle

    def test_fixpoint_iterations_ring(self):
        system, _, _ = shift_register.make(5)
        reach = BddReachability(system)
        reached, iterations = reach.reachable_fixpoint()
        assert reach.manager.count_sat(reached, system.state_vars) == 5
        assert iterations == 5                    # 4 new layers + 1 empty

    def test_squared_relations_double_steps(self):
        system, _, _ = shift_register.make(8)
        reach = BddReachability(system)
        relations = reach.squared_relations(3)    # TR_1..TR_8
        m = reach.manager
        state = reach.init_bdd
        # Apply TR_4 once: token should be at position 4.
        step4 = m.apply_and(state, relations[2])
        step4 = m.rename(m.exists(reach._curr, step4),
                         dict(zip(reach._next, reach._curr)))
        want = m.from_expr(ex.conjoin(
            ex.var(f"t{i}") if i == 4 else ex.mk_not(ex.var(f"t{i}"))
            for i in range(8)))
        assert step4 == want

    def test_node_limit_raises(self):
        system, _, _ = counter.make(5, 1)
        reach = BddReachability(system, max_nodes=10)
        with pytest.raises(MemoryError):
            reach.reachable_fixpoint()
