"""Engine-level integration tests: all methods through one front end."""

import pytest

from repro.bmc import check_reachability, find_reachable
from repro.logic import expr as ex
from repro.models import counter, shift_register
from repro.sat.types import Budget, SolveResult


class TestCheckReachability:
    def test_unknown_method_rejected(self):
        system, final, _ = counter.make(3, 5)
        with pytest.raises(ValueError):
            check_reachability(system, final, 1, "magic")

    def test_all_methods_agree_on_ring(self):
        system, final, depth = shift_register.make(4)
        statuses = {}
        for method in ("sat-unroll", "jsat", "qbf"):
            r = check_reachability(system, final, depth, method)
            statuses[method] = r.status
        assert set(statuses.values()) == {SolveResult.SAT}

    def test_traces_are_returned_and_valid(self):
        system, final, depth = counter.make(4, 6)
        for method in ("sat-unroll", "jsat"):
            r = check_reachability(system, final, depth, method)
            assert r.trace is not None
            r.trace.validate(system, final)

    def test_qbf_trace_on_inputless_system(self):
        system, final, depth = shift_register.make(3)
        r = check_reachability(system, final, depth, "qbf")
        assert r.status is SolveResult.SAT
        assert r.trace is not None
        r.trace.validate(system, final)

    def test_squaring_k0_falls_back(self):
        system, final, _ = counter.make(3, 0)
        r = check_reachability(system, final, 0, "qbf-squaring")
        assert r.status is SolveResult.SAT

    def test_squaring_within_rounds_up(self):
        system, final, depth = shift_register.make(3, position=1)
        r = check_reachability(system, final, 3, "qbf-squaring",
                               semantics="within")
        assert r.status is SolveResult.SAT

    def test_within_traces_shortened(self):
        system, final, depth = counter.make(4, 3)
        r = check_reachability(system, final, depth + 4, "sat-unroll",
                               semantics="within")
        assert r.status is SolveResult.SAT
        # The trace is cut at its first final state (not necessarily the
        # globally shortest witness — BMC-within does not minimize).
        assert r.trace.length <= depth + 4
        assert final.evaluate(r.trace.states[-1])
        assert not any(final.evaluate(s) for s in r.trace.states[:-1])
        r.trace.validate(system, final)

    def test_stats_carry_formula_sizes(self):
        system, final, depth = counter.make(3, 5)
        r = check_reachability(system, final, depth, "sat-unroll")
        assert r.stats["trans_copies"] == depth
        assert r.stats["literals"] > 0
        r = check_reachability(system, final, depth, "qbf",
                               budget=Budget(max_seconds=1.0))
        assert r.stats["trans_copies"] == 1

    def test_seconds_recorded(self):
        system, final, depth = counter.make(3, 5)
        r = check_reachability(system, final, depth, "jsat")
        assert r.seconds >= 0


class TestFindReachable:
    def test_linear_strategy_counts_iterations(self):
        system, final, depth = shift_register.make(6)
        hit, history = find_reachable(system, final, depth + 2,
                                      method="sat-unroll",
                                      strategy="linear")
        assert hit is not None and hit.k == depth
        assert len(history) == depth + 1       # k = 0 .. depth

    def test_squaring_strategy_logarithmic(self):
        system, final, depth = shift_register.make(9)
        hit, history = find_reachable(system, final, 16,
                                      method="sat-unroll",
                                      strategy="squaring")
        assert hit is not None
        assert hit.status is SolveResult.SAT
        # 0, 1, 2, 4, 8, 16 — six iterations for bound 16.
        assert len(history) <= 6

    def test_unreachable_exhausts(self):
        system, final, _ = shift_register.make_invariant_violation(3)
        hit, history = find_reachable(system, final, 4,
                                      method="jsat", strategy="linear")
        assert hit is None
        assert len(history) == 5

    def test_unknown_strategy_rejected(self):
        system, final, _ = counter.make(3, 5)
        with pytest.raises(ValueError):
            find_reachable(system, final, 3, strategy="zigzag")

    def test_jsat_linear_matches_depth(self):
        system, final, depth = counter.make(4, 7)
        hit, _ = find_reachable(system, final, depth + 1, method="jsat",
                                strategy="linear")
        assert hit is not None and hit.k == depth
