"""Complete (unbounded) verification via recurrence diameter."""

import random

import pytest

from repro.bmc import (longest_simple_path_reached, verify_unbounded)
from repro.models import counter, shift_register, traffic
from repro.system import ExplicitOracle, random_predicate, random_system


class TestRecurrenceDiameter:
    def test_ring_longest_simple_path(self):
        system, _, _ = shift_register.make(4)
        # The deterministic ring has loop-free paths of length exactly 3.
        assert longest_simple_path_reached(system, 3) is False
        assert longest_simple_path_reached(system, 4) is True

    def test_k0_never_reached(self):
        system, _, _ = shift_register.make(3)
        assert longest_simple_path_reached(system, 0) is False


class TestVerifyUnbounded:
    def test_safe_property(self):
        system, bad, _ = shift_register.make_invariant_violation(4)
        out = verify_unbounded(system, bad, method="jsat", max_bound=10)
        assert out.status == "safe"
        assert out.bound <= 4

    def test_counterexample_found_at_exact_depth(self):
        system, final, depth = counter.make(3, 5)
        out = verify_unbounded(system, final, method="jsat")
        assert out.status == "cex" and out.bound == depth
        out.result.trace.validate(system, final)

    def test_traffic_safety_closes(self):
        system, bad, _ = traffic.make_safety_check(1)
        out = verify_unbounded(system, bad, method="sat-unroll",
                               max_bound=32)
        assert out.status == "safe"

    def test_matches_oracle_on_random_systems(self):
        rng = random.Random(77)
        checked = 0
        for _ in range(12):
            system = random_system(rng, num_latches=3, num_inputs=1,
                                   depth=2)
            final = random_predicate(rng, system)
            oracle = ExplicitOracle(system)
            expected = oracle.shortest_distance(final)
            out = verify_unbounded(system, final, method="jsat",
                                   max_bound=20)
            if out.status == "unknown":
                continue
            checked += 1
            if expected is None:
                assert out.status == "safe"
            else:
                assert out.status == "cex" and out.bound == expected
        assert checked >= 10
