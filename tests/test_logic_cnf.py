"""Unit tests for the CNF container and variable pool."""

import pytest

from repro.logic.cnf import CNF, VarPool, lit_sign, lit_var, neg


class TestLiterals:
    def test_helpers(self):
        assert neg(3) == -3
        assert lit_var(-7) == 7
        assert lit_sign(4) and not lit_sign(-4)


class TestVarPool:
    def test_named_is_idempotent(self):
        pool = VarPool()
        assert pool.named("x") == pool.named("x") == 1

    def test_fresh_always_new(self):
        pool = VarPool()
        assert pool.fresh() != pool.fresh()

    def test_lookup_and_names(self):
        pool = VarPool()
        v = pool.named("x")
        assert pool.lookup("x") == v
        assert pool.lookup("y") is None
        assert pool.name_of(v) == "x"

    def test_reserve(self):
        pool = VarPool()
        block = pool.reserve(5)
        assert block == [1, 2, 3, 4, 5]
        assert pool.num_vars == 5


class TestCNF:
    def test_add_clause_normalizes_duplicates(self):
        cnf = CNF()
        cnf.add_clause([1, 1, 2])
        assert cnf.clauses == [(1, 2)]

    def test_tautology_dropped(self):
        cnf = CNF()
        assert not cnf.add_clause([1, -1, 2])
        assert cnf.clauses == []

    def test_empty_clause_flag(self):
        cnf = CNF()
        cnf.add_clause([])
        assert cnf.has_empty_clause

    def test_num_vars_tracks_max(self):
        cnf = CNF()
        cnf.add_clause([3, -7])
        assert cnf.num_vars == 7

    def test_invalid_literal(self):
        cnf = CNF()
        with pytest.raises(ValueError):
            cnf.add_clause([0])

    def test_evaluate_mapping_and_sequence(self):
        cnf = CNF()
        cnf.add_clause([1, -2])
        cnf.add_clause([2])
        model = {1: True, 2: True}
        assert cnf.evaluate(model)
        assert not cnf.evaluate({1: False, 2: False})
        assert cnf.evaluate([None, True, True])

    def test_stats(self):
        cnf = CNF()
        cnf.add_clause([1, 2])
        cnf.add_clause([-1])
        assert cnf.stats() == {"vars": 2, "clauses": 2, "literals": 3}

    def test_extend_and_copy(self):
        a = CNF()
        a.add_clause([1, 2])
        b = CNF()
        b.add_clause([-3])
        a.extend(b)
        assert len(a) == 2 and a.num_vars == 3
        c = a.copy()
        c.add_clause([4])
        assert len(a) == 2 and len(c) == 3

    def test_variables_occurring(self):
        cnf = CNF(10)
        cnf.add_clause([1, -5])
        assert cnf.variables() == {1, 5}
