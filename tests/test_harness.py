"""Harness tests: budgeted runner, aggregation, reports, experiments."""

import pytest

from repro.harness import (default_budget, format_growth,
                           format_per_family, format_solved_counts,
                           format_table, run_cell, run_matrix,
                           solved_counts)
from repro.harness.experiments import run_e2, run_e3, run_e5, run_e6, run_e7
from repro.models import build_suite
from repro.models.suite import Instance
from repro.models import counter
from repro.sat.types import Budget, SolveResult


@pytest.fixture(scope="module")
def tiny_suite():
    suite = build_suite()
    picked = {}
    for inst in suite:
        if inst.family not in picked and inst.k <= 6:
            picked[inst.family] = inst
    return list(picked.values())


class TestRunner:
    def test_run_cell_correctness_flag(self, tiny_suite):
        cell = run_cell(tiny_suite[0], "sat-unroll", default_budget(0.5))
        assert cell.status is not SolveResult.UNKNOWN
        assert cell.correct is True
        assert cell.solved

    def test_unknown_not_solved(self, tiny_suite):
        # Zero-second budget forces UNKNOWN for any non-trivial query.
        hard = [i for i in tiny_suite if i.k >= 2][0]
        cell = run_cell(hard, "jsat", Budget(max_seconds=0.0))
        assert cell.status is SolveResult.UNKNOWN
        assert not cell.solved

    def test_run_matrix_and_counts(self, tiny_suite):
        results = run_matrix(tiny_suite[:4], ["sat-unroll", "jsat"],
                             budget=default_budget(0.5))
        assert len(results) == 8
        counts = solved_counts(results)
        assert counts["sat-unroll"]["total"] == 4
        assert counts["jsat"]["total"] == 4
        assert counts["sat-unroll"]["solved"] == 4

    def test_method_specific_budgets(self, tiny_suite):
        results = run_matrix(
            tiny_suite[:2], ["sat-unroll", "qbf"],
            budget=default_budget(0.5),
            method_budgets={"qbf": Budget(max_seconds=0.0)})
        qbf_cells = [c for c in results if c.method == "qbf"]
        assert all(c.status is SolveResult.UNKNOWN for c in qbf_cells)

    def test_run_matrix_sweep_mode(self, tiny_suite):
        results = run_matrix(tiny_suite[:4],
                             ["sat-incremental", "sat-unroll"],
                             mode="sweep")
        assert len(results) == 8
        for cell in results:
            assert cell.status is not SolveResult.UNKNOWN
            assert cell.stats["max_k"] == cell.instance.k
            assert 1 <= cell.stats["bounds_checked"] \
                <= cell.instance.k + 1
            if cell.status is SolveResult.SAT:
                # Witness replayed during the run; time-to-cex recorded.
                assert cell.correct is True
                assert cell.stats["shortest_k"] <= cell.instance.k
                assert cell.stats["time_to_cex_ms"] >= 0
        # Both methods agree on the sweep verdicts cell-for-cell.
        half = len(results) // 2
        for a, b in zip(results[:half], results[half:]):
            assert a.instance.name == b.instance.name
            assert a.status is b.status
            assert a.stats.get("shortest_k") == b.stats.get("shortest_k")

    def test_sweep_mode_is_serial_only(self, tiny_suite):
        with pytest.raises(ValueError):
            run_matrix(tiny_suite[:2], ["sat-incremental"], mode="sweep",
                       jobs=2)
        with pytest.raises(ValueError):
            run_matrix(tiny_suite[:2], ["sat-incremental"], mode="sweep",
                       cache="/tmp/never-created")
        with pytest.raises(ValueError):
            run_matrix(tiny_suite[:2], ["sat-incremental"], mode="bogus")


class TestReports:
    def test_format_table_alignment(self):
        table = format_table(["a", "bbbb"], [[1, 2], [333, 4]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_solved_counts_report_includes_paper_row(self, tiny_suite):
        results = run_matrix(tiny_suite[:3], ["jsat"],
                             budget=default_budget(0.5))
        text = format_solved_counts(solved_counts(results),
                                    {"jsat": 143, "total": 234})
        assert "jsat" in text and "143" in text

    def test_per_family_report(self, tiny_suite):
        results = run_matrix(tiny_suite[:5], ["jsat"],
                             budget=default_budget(0.5))
        text = format_per_family(results)
        assert "family" in text

    def test_growth_report(self):
        _, text = run_e2(bounds=(1, 2, 4), width=8, rounds=2)
        assert "sat-unroll" in text and "jsat" in text

    def test_sweep_report(self):
        from repro.bmc import sweep
        from repro.harness import format_sweep
        system, final, depth = counter.make(4, 9)
        text = format_sweep(sweep(system, final, depth + 2))
        assert "clauses reused" in text
        assert f"shortest counterexample: k={depth}" in text
        unsat = sweep(system, final, depth - 1)
        text = format_sweep(unsat)
        assert "no counterexample" in text and "UNSAT" in text


class TestExperiments:
    def test_e3_iteration_shapes(self):
        data, report = run_e3(ring_length=9)
        assert data["linear_found"] and data["squaring_found"]
        assert data["squaring_iterations"] < data["linear_iterations"]
        assert "linear" in report

    def test_e5_qbf_struggles_jsat_does_not(self):
        rows, report = run_e5(max_k=3, budget_seconds=0.5)
        assert all(r["jsat"] in ("SAT", "UNSAT") for r in rows)
        assert "qdpll" in report

    def test_e6_jsat_peak_below_unroll(self):
        rows, _ = run_e6(width=6, bounds=(8, 16))
        for row in rows:
            assert row["jsat_peak"] < row["unroll_peak"]
        # jSAT peak grows much slower than unrolling's.
        assert (rows[1]["unroll_peak"] - rows[0]["unroll_peak"]
                > 4 * (rows[1]["jsat_peak"] - rows[0]["jsat_peak"]))

    def test_e7_ablation_runs(self):
        suite = [i for i in build_suite() if i.k <= 4][:6]
        summary, report = run_e7(instances=suite, budget_scale=0.3)
        assert set(summary) == {"jsat (full)", "jsat -cache",
                                "jsat -Fprune", "jsat -both"}
        assert all(row["solved"] >= 0 for row in summary.values())
        assert "variant" in report
