"""Docstring-coverage gate, mirrored from the CI interrogate check.

CI runs ``interrogate --fail-under 80 src/repro`` (configured in
``pyproject.toml``); this test enforces the same floor with a small
stdlib-only counter so offline runs (and environments without
interrogate) cannot silently rot the docs.  The counting rules match
the interrogate configuration: modules, public classes and public
functions/methods count; private names (leading underscore, dunders
and ``__init__`` included) and nested functions are exempt.
"""

import ast
import pathlib

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"
FAIL_UNDER = 80.0


def _walk(node, qualname, in_class):
    """Yield (qualname, documented) for every countable definition."""
    for child in ast.iter_child_nodes(node):
        if isinstance(child, ast.ClassDef):
            if not child.name.startswith("_"):
                yield (f"{qualname}.{child.name}",
                       bool(ast.get_docstring(child)))
                yield from _walk(child, f"{qualname}.{child.name}",
                                 in_class=True)
        elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if child.name.startswith("_"):
                continue
            if not in_class and qualname:
                continue                 # nested function: exempt
            yield (f"{qualname}.{child.name}",
                   bool(ast.get_docstring(child)))


def test_docstring_coverage_floor():
    total = documented = 0
    missing = []
    for path in sorted(SRC.rglob("*.py")):
        rel = path.relative_to(SRC).as_posix()
        tree = ast.parse(path.read_text())
        total += 1
        if ast.get_docstring(tree):
            documented += 1
        else:
            missing.append(f"{rel} (module)")
        for name, has_doc in _walk(tree, "", in_class=False):
            total += 1
            if has_doc:
                documented += 1
            else:
                missing.append(f"{rel}:{name.lstrip('.')}")
    coverage = 100.0 * documented / total
    worst = "\n  ".join(missing[:25])
    assert coverage >= FAIL_UNDER, (
        f"docstring coverage {coverage:.1f}% fell below "
        f"{FAIL_UNDER}% ({documented}/{total} documented); "
        f"undocumented (first 25):\n  {worst}")
