"""All-solutions-SAT reachability and the SMV front end."""

import random

import pytest

from repro.bmc import AllSatReachability, check_reachability
from repro.logic import expr as ex
from repro.models import counter, shift_register
from repro.sat.types import SolveResult
from repro.system import (ExplicitOracle, SmvError, parse_smv,
                          random_predicate, random_system)


class TestAllSat:
    def test_initial_states_enumerated(self):
        system, _, _ = shift_register.make(4)
        asr = AllSatReachability(system)
        assert asr.initial_states() == {(True, False, False, False)}

    def test_image_and_layers(self):
        system, _, _ = counter.make(3, 1)     # enable input: stay or +1
        asr = AllSatReachability(system)
        init = asr.initial_states()
        succ = asr.image(init)
        assert succ == {(False, False, False), (True, False, False)}
        layers = asr.layers(2)
        assert layers[0] == init and layers[1] == succ

    def test_fixpoint_matches_oracle(self):
        rng = random.Random(12)
        for _ in range(6):
            system = random_system(rng, num_latches=3, num_inputs=1,
                                   depth=2)
            oracle = ExplicitOracle(system)
            asr = AllSatReachability(system)
            reached, _ = asr.reachable_fixpoint()
            explicit = set(oracle.initial_states)
            frontier = set(explicit)
            while frontier:
                new = set()
                for s in frontier:
                    new |= oracle.successors(s)
                frontier = new - explicit
                explicit |= new
            assert reached == explicit

    def test_shortest_distance_matches_oracle(self):
        rng = random.Random(13)
        for _ in range(6):
            system = random_system(rng, num_latches=3, num_inputs=1,
                                   depth=2)
            predicate = random_predicate(rng, system)
            oracle = ExplicitOracle(system)
            asr = AllSatReachability(system)
            assert asr.shortest_distance(predicate) == \
                oracle.shortest_distance(predicate)

    def test_blocking_growth_is_tracked(self):
        system, _, _ = counter.make(4, 1)
        asr = AllSatReachability(system)
        asr.reachable_fixpoint()
        assert asr.peak_blocking_literals > 0


SMV_TEXT = """
MODULE main  -- toggler with interlock
VAR
  x : boolean;
  y : boolean;
IVAR
  press : boolean;
ASSIGN
  init(x) := FALSE;
  next(x) := x xor press;
  init(y) := TRUE;
  next(y) := (x & !y) | (!x & y);
DEFINE
  both := x & y;
SPEC AG !both
"""


class TestSmv:
    def test_structure(self):
        circuit = parse_smv(SMV_TEXT)
        system = circuit.to_transition_system()
        assert system.state_vars == ["x", "y"]
        assert system.input_vars == ["press"]
        assert "spec0" in circuit.bad
        assert "both" in circuit.outputs

    def test_semantics_against_bmc(self):
        circuit = parse_smv(SMV_TEXT)
        system = circuit.to_transition_system()
        bad = circuit.bad["spec0"]
        oracle = ExplicitOracle(system)
        depth = oracle.shortest_distance(bad)
        assert depth is not None
        result = check_reachability(system, bad, depth, "jsat")
        assert result.status is SolveResult.SAT
        result.trace.validate(system, bad)

    def test_unconstrained_init(self):
        text = ("MODULE main\nVAR\n  a : boolean;\nASSIGN\n"
                "  next(a) := !a;\n")
        circuit = parse_smv(text)
        assert circuit._init_values["a"] is None

    def test_operator_precedence(self):
        text = ("MODULE main\nVAR\n  a : boolean;\n  b : boolean;\n"
                "ASSIGN\n  next(a) := a | b & !a;\n"
                "  next(b) := a -> b -> a;\n")
        circuit = parse_smv(text)
        nxt_a = circuit._next_exprs["a"]
        # a | (b & !a) — & binds tighter than |.
        assert nxt_a.evaluate({"a": True, "b": False})
        assert nxt_a.evaluate({"a": False, "b": True})
        assert not nxt_a.evaluate({"a": False, "b": False})
        # a -> (b -> a) is a tautology (right associative).
        nxt_b = circuit._next_exprs["b"]
        assert nxt_b is ex.TRUE

    def test_errors(self):
        with pytest.raises(SmvError):
            parse_smv("MODULE main\nVAR\n  a : boolean;\n")   # no next(a)
        with pytest.raises(SmvError):
            parse_smv("MODULE main\nVAR\n  a : boolean;\nASSIGN\n"
                      "  init(a) := b;\n  next(a) := a;\n")   # non-const
        with pytest.raises(SmvError):
            parse_smv("VAR a : boolean;")                     # no MODULE

    def test_define_chain(self):
        text = ("MODULE main\nVAR\n  a : boolean;\nASSIGN\n"
                "  next(a) := step2;\nDEFINE\n  step1 := !a;\n"
                "  step2 := step1 xor a;\n")
        circuit = parse_smv(text)
        nxt = circuit._next_exprs["a"]
        assert nxt is ex.TRUE       # (!a) xor a == TRUE
