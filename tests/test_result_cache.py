"""Robustness tests for the on-disk result cache.

The serve daemon keeps one ResultCache open for days while batch runs
and other daemons write to the same directory; every malformed entry a
crashed or concurrent writer can leave behind must read back as a miss,
never as an exception.
"""

from __future__ import annotations

import json
import multiprocessing
import os

import pytest

from repro.portfolio import MemoryCache, ResultCache

KEY = "ab" * 32
OUTCOME = {"status": "UNSAT", "k": 3, "method": "jsat", "seconds": 0.1,
           "stats": {"queries": 4}, "trace": None, "error": None}


def entry_path(cache: ResultCache) -> str:
    return cache._path(KEY)


class TestCorruptEntries:
    """Every flavour of on-disk damage degrades to a miss."""

    @pytest.fixture
    def cache(self, tmp_path):
        return ResultCache(tmp_path / "cache")

    def assert_miss(self, cache):
        misses_before = cache.misses
        assert cache.get(KEY) is None
        assert cache.misses == misses_before + 1

    def test_truncated_json(self, cache):
        cache.put(KEY, OUTCOME)
        with open(entry_path(cache)) as handle:
            text = handle.read()
        with open(entry_path(cache), "w") as handle:
            handle.write(text[:len(text) // 2])
        self.assert_miss(cache)

    def test_empty_file(self, cache):
        with open(entry_path(cache), "w"):
            pass
        self.assert_miss(cache)

    def test_binary_garbage(self, cache):
        with open(entry_path(cache), "wb") as handle:
            handle.write(b"\x80\x81\xfe\xff" * 64)
        self.assert_miss(cache)

    def test_wrong_shape_list(self, cache):
        with open(entry_path(cache), "w") as handle:
            json.dump([1, 2, 3], handle)
        self.assert_miss(cache)

    def test_wrong_shape_scalar(self, cache):
        with open(entry_path(cache), "w") as handle:
            json.dump("not a cache entry", handle)
        self.assert_miss(cache)

    def test_missing_outcome_field(self, cache):
        with open(entry_path(cache), "w") as handle:
            json.dump({"key": KEY}, handle)
        self.assert_miss(cache)

    def test_key_mismatch(self, cache):
        with open(entry_path(cache), "w") as handle:
            json.dump({"key": "cd" * 32, "outcome": OUTCOME}, handle)
        self.assert_miss(cache)

    def test_entry_is_directory(self, cache):
        os.mkdir(entry_path(cache))
        self.assert_miss(cache)

    def test_unreadable_entry(self, cache):
        cache.put(KEY, OUTCOME)
        os.chmod(entry_path(cache), 0o000)
        try:
            if os.geteuid() == 0:  # root reads anything; cannot test
                pytest.skip("permission bits ignored when running as root")
            self.assert_miss(cache)
        finally:
            os.chmod(entry_path(cache), 0o644)

    def test_good_entry_still_hits_after_corrupt_neighbour(self, cache):
        cache.put(KEY, OUTCOME)
        other = ResultCache(cache.directory)
        bad_key = "cd" * 32
        with open(other._path(bad_key), "w") as handle:
            handle.write("{torn write")
        assert cache.get(bad_key) is None
        assert cache.get(KEY) == OUTCOME


def _hammer(directory: str, seed: int, rounds: int) -> None:
    """Interleave writes and reads of the same keys from one process."""
    cache = ResultCache(directory)
    for i in range(rounds):
        key = ("%02x" % ((seed + i) % 7)) * 32
        cache.put(key, {"status": "UNSAT", "k": i, "writer": seed,
                        "stats": {}, "trace": None, "error": None})
        got = cache.get(key)
        # Concurrent writers may have replaced it, but a read must
        # always return a complete entry or None — never raise.
        assert got is None or got["status"] == "UNSAT"


class TestConcurrentWriters:
    def test_multiprocess_hammer(self, tmp_path):
        directory = str(tmp_path / "cache")
        ctx = multiprocessing.get_context("fork")
        procs = [ctx.Process(target=_hammer, args=(directory, seed, 50))
                 for seed in range(4)]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0
        # Every surviving entry is complete and well-formed.
        cache = ResultCache(directory)
        files = [n for n in os.listdir(directory) if n.endswith(".json")]
        assert files
        for name in files:
            with open(os.path.join(directory, name)) as handle:
                entry = json.load(handle)
            assert entry["outcome"]["status"] == "UNSAT"
            assert cache.get(entry["key"]) == entry["outcome"]


class TestMemoryCache:
    def test_roundtrip_and_counters(self):
        cache = MemoryCache()
        assert cache.get(KEY) is None
        cache.put(KEY, OUTCOME)
        assert cache.get(KEY) == OUTCOME
        assert (cache.hits, cache.misses, cache.stores) == (1, 1, 1)
        assert len(cache) == 1
        cache.clear()
        assert cache.get(KEY) is None

    def test_fifo_eviction(self):
        cache = MemoryCache(maxsize=3)
        for i in range(5):
            cache.put(f"{i:02d}" * 32, {"k": i})
        assert len(cache) == 3
        assert cache.get("00" * 32) is None          # evicted first
        assert cache.get("04" * 32) == {"k": 4}      # newest survives
