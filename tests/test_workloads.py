"""Tests for the industrial-workload ingestion pipeline.

The checked-in ``examples/corpus/`` directory is the fixture: six
models across all four supported formats, covering AIGER 1.9 bad
sections, the binary HWMCC format, ISCAS-89 ``.bench`` and the SMV
subset.  Beyond parsing, the key invariant is *verdict agreement*:
for every ingested instance the simulation tier, a bounded solver
backend, the explicit-state oracle and the BDD engine must tell the
same story about reachability within the default bound.
"""

from __future__ import annotations

from pathlib import Path

import json

import pytest

from repro.bdd import BddReachability
from repro.logic.expr import var
from repro.bmc.session import BmcSession
from repro.models import shift_register
from repro.sat.types import SolveResult
from repro.sim import presolve
from repro.system import ExplicitOracle
from repro.system.aiger_io import write_aiger, write_aiger_binary
from repro.workloads import (CorpusError, SUPPORTED_EXTENSIONS,
                             fingerprint_circuit, ingest, ingest_file,
                             load_circuit, scan_directory, write_manifest)

CORPUS = Path(__file__).resolve().parent.parent / "examples" / "corpus"


@pytest.fixture(scope="module")
def report():
    return ingest(CORPUS)


class TestIngest:
    def test_all_formats_ingested(self, report):
        assert not report.errors
        assert len(report.entries) >= 5
        formats = {entry.format for entry in report.entries}
        assert formats == set(SUPPORTED_EXTENSIONS.values())

    def test_instances_are_suite_compatible(self, report):
        instances = report.instances
        assert len(instances) >= 6
        for inst in instances:
            assert inst.family == "corpus"
            assert inst.expected is None       # no ground truth claimed
            assert ":" in inst.name            # "<model>:<target>"
            assert inst.k >= 1
            # The reduced final must speak the instance system's
            # vocabulary — reduction happened at load time.
            assert inst.final.support() <= set(inst.system.state_vars)

    def test_entries_record_reduction_stats(self, report):
        for entry in report.entries:
            for inst in entry.instances:
                stats = entry.reductions[inst.name]
                assert stats["reduced_latches"] <= stats["original_latches"]
                assert len(inst.system.state_vars) == \
                    stats["reduced_latches"]

    def test_custom_bound(self, tmp_path):
        (tmp_path / "m.aag").write_text(
            (CORPUS / "toggle.aag").read_text())
        rep = ingest(tmp_path, k=17)
        assert all(inst.k == 17 for inst in rep.instances)

    def test_reduce_off_keeps_full_system(self, report):
        rep = ingest(CORPUS, reduce="off")
        for entry in rep.entries:
            for inst in entry.instances:
                stats = entry.reductions[inst.name]
                assert stats["reduced_latches"] == \
                    stats["original_latches"]
                assert len(inst.system.state_vars) == \
                    stats["original_latches"]


class TestManifest:
    def test_shape(self, report, tmp_path):
        manifest = report.manifest()
        assert manifest["version"] == 1
        assert manifest["instances"] == len(report.instances)
        assert manifest["errors"] == {}
        for row in manifest["models"]:
            assert row["format"] in SUPPORTED_EXTENSIONS.values()
            assert len(row["sha256"]) == 64
            assert len(row["canonical"]) == 64
            assert row["targets"]
        out = tmp_path / "manifest.json"
        write_manifest(report, out)
        assert json.loads(out.read_text()) == json.loads(
            json.dumps(manifest))      # JSON-serialisable as written

    def test_canonical_fingerprint_is_format_independent(self, tmp_path):
        # The same circuit saved as ASCII and as binary AIGER must
        # carry the same canonical fingerprint and different raw
        # hashes — the canonical hash is the cross-format identity.
        circuit = shift_register.make_circuit(4)
        circuit.add_bad("token", var("t3"))
        (tmp_path / "m.aag").write_text(write_aiger(circuit))
        (tmp_path / "m.aig").write_bytes(write_aiger_binary(circuit))
        rep = ingest(tmp_path)
        assert len(rep.entries) == 2
        a, b = rep.entries
        assert a.canonical == b.canonical
        assert a.sha256 != b.sha256

    def test_fingerprint_stable_across_reparse(self):
        circuit = shift_register.make_circuit(3)
        fp = fingerprint_circuit(circuit)
        from repro.system.aiger_io import parse_aiger
        again = parse_aiger(write_aiger(circuit), circuit.name)
        assert fingerprint_circuit(again) == fp


class TestErrors:
    def test_bad_file_recorded_not_fatal(self, tmp_path):
        (tmp_path / "ok.aag").write_text(
            (CORPUS / "toggle.aag").read_text())
        (tmp_path / "broken.aag").write_text("aag 1 1 1\n")
        rep = ingest(tmp_path)
        assert len(rep.entries) == 1
        assert len(rep.errors) == 1
        assert "broken.aag" in next(iter(rep.errors))

    def test_strict_raises(self, tmp_path):
        (tmp_path / "broken.aag").write_text("aag 1 1 1\n")
        with pytest.raises(CorpusError):
            ingest(tmp_path, strict=True)

    def test_scan_requires_directory(self, tmp_path):
        with pytest.raises(CorpusError, match="not a directory"):
            scan_directory(tmp_path / "missing")

    def test_unsupported_extension(self, tmp_path):
        target = tmp_path / "m.vhdl"
        target.write_text("entity e is end;")
        with pytest.raises(CorpusError, match="unsupported extension"):
            load_circuit(target)

    def test_no_targets(self, tmp_path):
        # An AIGER file with neither bad sections nor outputs has
        # nothing to verify.
        (tmp_path / "empty.aag").write_text("aag 1 0 1 0 0\n2 2\n")
        with pytest.raises(CorpusError, match="no bad sections"):
            ingest_file(tmp_path / "empty.aag")


class TestVerdictAgreement:
    """Sim tier vs bounded solver vs explicit oracle vs BDD engine."""

    def test_all_engines_agree_on_every_corpus_instance(self, report):
        for inst in report.instances:
            oracle = ExplicitOracle(inst.system)
            truth = oracle.reachable_within(inst.final, inst.k)
            bdd = BddReachability(inst.system)
            assert bdd.reachable_within(inst.final, inst.k) == truth, \
                inst.name

            with BmcSession(inst.system,
                            properties={"t": inst.final},
                            sim_tier=False) as session:
                solver = session.check(inst.k, method="jsat",
                                       semantics="within")
            assert (solver.status is SolveResult.SAT) == truth, inst.name

            sim = presolve(inst.system, inst.final, inst.k,
                           semantics="within")
            if sim is not None:        # SAT-only tier: misses prove nothing
                assert truth, inst.name
                sim.trace.validate(inst.system, inst.final)

    def test_sim_finds_the_violated_targets(self, report):
        # The fixture corpus was built so its violated properties are
        # shallow: the sim tier alone must falsify most of them.
        hits = 0
        for inst in report.instances:
            if presolve(inst.system, inst.final, inst.k,
                        semantics="within") is not None:
                hits += 1
        assert hits >= 4, f"only {hits} corpus sim falsifications"
