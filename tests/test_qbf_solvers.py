"""QBF solver tests: QDPLL and expansion vs the semantic oracle."""

import random

import pytest

from repro.logic.cnf import CNF
from repro.qbf import (PCNF, ExpansionSolver, QdpllSolver, evaluate_qbf)
from repro.sat.types import Budget, SolveResult


def _pcnf(prefix, clauses, num_vars=0):
    cnf = CNF(num_vars)
    for c in clauses:
        cnf.add_clause(c)
    return PCNF(prefix, cnf)


class TestPcnf:
    def test_block_merging(self):
        p = _pcnf([("e", (1,)), ("e", (2,))], [[1, 2]])
        assert p.prefix == [("e", (1, 2))]

    def test_double_quantification_rejected(self):
        with pytest.raises(ValueError):
            _pcnf([("e", (1,)), ("a", (1,))], [[1]])

    def test_free_vars_and_close(self):
        p = _pcnf([("a", (2,))], [[1, 2]])
        assert p.free_vars() == {1}
        p.close()
        assert p.prefix[0] == ("e", (1,))

    def test_levels_and_stats(self):
        p = _pcnf([("e", (1,)), ("a", (2,)), ("e", (3,))],
                  [[1, 2, 3]])
        assert p.level_of(1) == 0 and p.level_of(2) == 1
        assert p.quantifier_of(2) == "a"
        assert p.num_alternations() == 2
        stats = p.stats()
        assert stats["universals"] == 1 and stats["existentials"] == 2


class TestKnownFormulas:
    def test_forall_exists_sat(self):
        # ∀x ∃y: (x ∨ ¬y) ∧ (¬x ∨ y) — y can copy x: TRUE.
        p = _pcnf([("a", (1,)), ("e", (2,))], [[1, -2], [-1, 2]])
        assert QdpllSolver(p).solve() is SolveResult.SAT
        assert ExpansionSolver(p).solve() is SolveResult.SAT
        assert evaluate_qbf(p)

    def test_exists_forall_unsat(self):
        # ∃y ∀x: (x ∨ ¬y) ∧ (¬x ∨ y) — y must equal both values: FALSE.
        p = _pcnf([("e", (2,)), ("a", (1,))], [[1, -2], [-1, 2]])
        assert QdpllSolver(p).solve() is SolveResult.UNSAT
        assert ExpansionSolver(p).solve() is SolveResult.UNSAT
        assert not evaluate_qbf(p)

    def test_universal_reduction_conflict(self):
        # ∀x: (x) is false.
        p = _pcnf([("a", (1,))], [[1]])
        assert QdpllSolver(p).solve() is SolveResult.UNSAT
        assert ExpansionSolver(p).solve() is SolveResult.UNSAT

    def test_empty_matrix_true(self):
        p = _pcnf([("a", (1,))], [])
        assert QdpllSolver(p).solve() is SolveResult.SAT

    def test_empty_clause_false(self):
        p = _pcnf([("e", (1,))], [[]])
        assert QdpllSolver(p).solve() is SolveResult.UNSAT


class TestRandomizedAgainstOracle:
    def _random_pcnf(self, rng):
        n = rng.randint(2, 8)
        cnf = CNF(n)
        for _ in range(rng.randint(1, 20)):
            cnf.add_clause([rng.choice([1, -1]) * rng.randint(1, n)
                            for _ in range(rng.randint(1, 3))])
        variables = list(range(1, n + 1))
        rng.shuffle(variables)
        pcnf = PCNF(matrix=cnf)
        i = 0
        while i < len(variables):
            size = rng.randint(1, len(variables) - i)
            pcnf.add_block(rng.choice("ae"), variables[i:i + size])
            i += size
        return pcnf

    def test_qdpll_matches_oracle(self):
        rng = random.Random(55)
        for _ in range(150):
            pcnf = self._random_pcnf(rng)
            expected = evaluate_qbf(pcnf)
            got = QdpllSolver(pcnf).solve()
            want = SolveResult.SAT if expected else SolveResult.UNSAT
            assert got is want

    def test_expansion_matches_oracle(self):
        rng = random.Random(56)
        for _ in range(150):
            pcnf = self._random_pcnf(rng)
            expected = evaluate_qbf(pcnf)
            got = ExpansionSolver(pcnf).solve()
            want = SolveResult.SAT if expected else SolveResult.UNSAT
            assert got is want

    def test_solvers_agree_with_each_other(self):
        rng = random.Random(57)
        for _ in range(80):
            pcnf = self._random_pcnf(rng)
            assert QdpllSolver(pcnf).solve() is ExpansionSolver(pcnf).solve()


class TestBudgets:
    def test_qdpll_budget_unknown(self):
        rng = random.Random(4)
        n = 24
        cnf = CNF(n)
        for _ in range(60):
            cnf.add_clause([rng.choice([1, -1]) * rng.randint(1, n)
                            for _ in range(3)])
        prefix = [("e", tuple(range(1, 9))), ("a", tuple(range(9, 17))),
                  ("e", tuple(range(17, n + 1)))]
        pcnf = PCNF(prefix, cnf)
        # A zero-second deadline trips on the first decision, conflict
        # or solution, whichever the search reaches first.
        result = QdpllSolver(pcnf).solve(budget=Budget(max_seconds=0.0))
        assert result is SolveResult.UNKNOWN

    def test_expansion_literal_cap(self):
        rng = random.Random(9)
        n = 20
        cnf = CNF(n)
        for _ in range(40):
            cnf.add_clause([rng.choice([1, -1]) * rng.randint(1, n)
                            for _ in range(3)])
        prefix = [("a", tuple(range(1, 11))), ("e", tuple(range(11, n + 1)))]
        solver = ExpansionSolver(PCNF(prefix, cnf), max_literals=200)
        assert solver.solve() is SolveResult.UNKNOWN
