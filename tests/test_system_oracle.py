"""Explicit-state oracle tests."""

import pytest

from repro.logic import expr as ex
from repro.models import counter, shift_register
from repro.system import ExplicitOracle, TransitionSystem
from repro.system.model import primed


def ring3():
    system, final, depth = shift_register.make(3, position=2)
    return system, final, depth


class TestBasics:
    def test_initial_states(self):
        system, _, _ = ring3()
        oracle = ExplicitOracle(system)
        assert oracle.initial_states == [(True, False, False)]

    def test_successors_deterministic_ring(self):
        system, _, _ = ring3()
        oracle = ExplicitOracle(system)
        assert oracle.successors((True, False, False)) == \
            {(False, True, False)}

    def test_layers_and_exact(self):
        system, final, depth = ring3()
        oracle = ExplicitOracle(system)
        assert oracle.reachable_in_exactly(final, depth)
        assert not oracle.reachable_in_exactly(final, depth - 1)
        assert oracle.reachable_in_exactly(final, depth + 3)  # period 3

    def test_within_uses_fixpoint(self):
        system, final, depth = ring3()
        oracle = ExplicitOracle(system)
        assert oracle.reachable_within(final, depth)
        assert oracle.reachable_within(final, 100)
        assert not oracle.reachable_within(final, depth - 1)

    def test_shortest_distance(self):
        system, final, depth = ring3()
        oracle = ExplicitOracle(system)
        assert oracle.shortest_distance(final) == depth
        unreachable = ex.conjoin(
            ex.var(f"t{i}") for i in range(3))    # 3 tokens at once
        assert oracle.shortest_distance(unreachable) is None

    def test_diameter_bound(self):
        # The longest shortest path from the init token position is 2
        # (all three ring states are within two rotations).
        system, _, _ = ring3()
        oracle = ExplicitOracle(system)
        assert oracle.diameter_bound() == 2

    def test_nondeterministic_inputs(self):
        system, final, depth = counter.make(3, 2)
        oracle = ExplicitOracle(system)
        # With enable, state can stay or advance.
        succ = oracle.successors((False, False, False))
        assert succ == {(False, False, False), (True, False, False)}

    def test_too_large_rejected(self):
        wide = TransitionSystem(
            [f"b{i}" for i in range(16)], ex.TRUE, ex.TRUE)
        with pytest.raises(ValueError):
            ExplicitOracle(wide)
