"""Differential and unit tests for the model-reduction pipeline.

The contract under test: for every property and every bound, solving
the *reduced* system gives the same verdict as solving the original,
and every SAT witness lifts back to a full-width trace that replays
against the original system.  The suite checks that contract over all
13 design families, over random systems at k = 0..6, and through every
wired-in entry point (session, checker, race, run_matrix, CLI knob).
"""

import random

import pytest

from repro.bmc import BmcSession
from repro.harness.runner import run_matrix, run_property_matrix
from repro.logic import expr as ex
from repro.models import build_property_suite, build_suite, counter
from repro.portfolio.race import race
from repro.reduce import (ConeOfInfluence, ConstantLatches, DuplicateLatches,
                          FunctionalView, InputPruning, Pipeline,
                          default_pipeline, identity_reduction,
                          reduce_for_target, reduce_system, resolve_reduce,
                          ternary_evaluate)
from repro.sat.types import SolveResult
from repro.spec import Invariant, PropertyChecker, Reachable
from repro.spec.property import Atom, Finally, Globally, Until
from repro.system.circuit import Circuit
from repro.system.random_model import random_predicate, random_system
from repro.system.trace import Trace


def _deepest_per_family(limit=None):
    deepest = {}
    for inst in build_suite():
        best = deepest.get(inst.family)
        if best is None or inst.k > best.k:
            deepest[inst.family] = inst
    out = list(deepest.values())
    return out[:limit] if limit else out


# ----------------------------------------------------------------------
# The structural layer
# ----------------------------------------------------------------------
class TestStructure:
    def test_functional_view_recovers_circuit_updates(self):
        circuit = counter.make_circuit(3)
        system = circuit.to_transition_system()
        view = FunctionalView.from_system(system)
        assert view is not None
        assert set(view.updates) == set(system.state_vars)
        assert view.resets == {"c0": False, "c1": False, "c2": False}
        assert view.constraints == []

    def test_constraints_survive_extraction(self):
        circuit = Circuit("constrained")
        a = circuit.add_input("a")
        q = circuit.add_latch("q", init=False)
        circuit.set_next("q", a)
        circuit.add_constraint(~(a & q))
        view = FunctionalView.from_system(circuit.to_transition_system())
        assert view is not None
        assert len(view.constraints) == 1

    def test_self_looped_system_has_no_view(self):
        system, _, _ = counter.make(3, 5)
        assert FunctionalView.from_system(system.with_self_loops()) is None

    def test_non_literal_init_has_no_view(self):
        system, _, _ = counter.make(2, 2)
        from repro.system.model import TransitionSystem
        odd = TransitionSystem(system.state_vars,
                               ex.var("c0") | ex.var("c1"),
                               system.trans, system.input_vars)
        assert FunctionalView.from_system(odd) is None

    def test_ternary_evaluate_kleene(self):
        a, b = ex.var("a"), ex.var("b")
        assert ternary_evaluate(a & b, {"a": False}) is False
        assert ternary_evaluate(a | b, {"b": True}) is True
        assert ternary_evaluate(a ^ b, {"a": True}) is None
        assert ternary_evaluate(~a, {}) is None
        assert ternary_evaluate(ex.mk_ite(a, b, b), {"b": False}) is False
        assert ternary_evaluate(ex.TRUE, {}) is True


# ----------------------------------------------------------------------
# The transforms
# ----------------------------------------------------------------------
class TestTransforms:
    def test_constant_latch_folded(self):
        circuit = Circuit("const")
        stuck = circuit.add_latch("stuck", init=False)
        live = circuit.add_latch("live", init=False)
        circuit.set_next("stuck", stuck)          # stays at reset forever
        circuit.set_next("live", ~live | stuck)
        rs = reduce_system(circuit.to_transition_system(),
                           Reachable(live))
        assert rs.fixed == {"stuck": False}
        assert rs.kept_latches == ["live"]

    def test_duplicate_latches_merged(self):
        circuit = Circuit("dup")
        a = circuit.add_input("a")
        u = circuit.add_latch("u", init=False)
        v = circuit.add_latch("v", init=False)
        w = circuit.add_latch("w", init=True)     # differing reset: kept
        circuit.set_next("u", u ^ a)
        circuit.set_next("v", v ^ a)
        circuit.set_next("w", w ^ a)
        rs = reduce_system(circuit.to_transition_system(),
                           Reachable(u & v & w))
        assert rs.merged == {"v": "u"}
        assert rs.kept_latches == ["u", "w"]

    def test_cone_of_influence_frees_unobserved(self):
        system, _, _ = counter.make(4, 9)
        rs = reduce_for_target(system, ex.var("c1"))
        assert rs.kept_latches == ["c0", "c1"]
        assert sorted(rs.freed) == ["c2", "c3"]

    def test_constraint_pulls_its_cone_in(self):
        circuit = Circuit("guarded")
        a = circuit.add_input("a")
        seen = circuit.add_latch("seen", init=False)
        out = circuit.add_latch("out", init=False)
        circuit.set_next("seen", seen | a)
        circuit.set_next("out", a)
        # The constraint couples `seen` into every path, so reducing
        # for `out` must keep it (dropping it would readmit paths the
        # constraint forbids).
        circuit.add_constraint(~seen)
        rs = reduce_system(circuit.to_transition_system(),
                           Reachable(out))
        assert "seen" in rs.kept_latches

    def test_input_pruning(self):
        circuit = Circuit("pruner")
        used = circuit.add_input("used")
        circuit.add_input("unused")
        q = circuit.add_latch("q", init=False)
        circuit.set_next("q", q | used)
        rs = reduce_system(circuit.to_transition_system(), Reachable(q))
        assert rs.kept_inputs == ["used"]

    def test_full_cone_is_identity_no_op(self):
        # A property observing the whole model must reduce to the
        # *original system object* — no rebuilt TR, no overhead.
        system, final, _ = counter.make(4, 9)
        rs = reduce_for_target(system, final)
        assert rs.is_identity
        assert rs.system is system
        trace = Trace([{v: False for v in system.state_vars}])
        assert rs.lift(trace) is trace

    def test_resolve_reduce_knob(self):
        assert resolve_reduce("off") is None
        assert resolve_reduce(None) is None
        assert isinstance(resolve_reduce("auto"), Pipeline)
        custom = Pipeline([ConeOfInfluence()])
        assert resolve_reduce(custom) is custom
        with pytest.raises(ValueError, match="reduce"):
            resolve_reduce("sometimes")
        with pytest.raises(TypeError, match="Reduction"):
            Pipeline(["cone"])

    def test_map_expr_rejects_out_of_cone_predicates(self):
        system, _, _ = counter.make(4, 9)
        rs = reduce_for_target(system, ex.var("c0"))
        with pytest.raises(ValueError, match="outside the reduced cone"):
            rs.map_expr(ex.var("c3"))

    def test_pipeline_passes_compose(self):
        # Constant + duplicate + cone interact: the duplicate of a
        # latch feeding the target collapses, then the cone shrinks.
        circuit = Circuit("compose")
        a = circuit.add_input("a")
        stuck = circuit.add_latch("stuck", init=True)
        u = circuit.add_latch("u", init=False)
        v = circuit.add_latch("v", init=False)
        far = circuit.add_latch("far", init=False)
        circuit.set_next("stuck", stuck | a)      # stuck at True
        circuit.set_next("u", u ^ (a & stuck))
        circuit.set_next("v", v ^ (a & stuck))
        circuit.set_next("far", far ^ u)
        rs = reduce_system(circuit.to_transition_system(),
                           Reachable(u & v))
        assert rs.fixed == {"stuck": True}
        assert rs.merged == {"v": "u"}
        assert rs.kept_latches == ["u"]
        assert rs.freed == ["far"]


# ----------------------------------------------------------------------
# Differential: every suite family, reduced vs unreduced
# ----------------------------------------------------------------------
def _needs_loop(prop) -> bool:
    from repro.spec.ltl import needs_loop_closure
    from repro.spec.property import search_plan
    return needs_loop_closure(search_plan(prop)[0])


def _assert_strengthens(plain, reduced, context) -> None:
    """The reduction contract for one (property, bound) comparison.

    Loop-free searches agree exactly.  Lasso searches can only
    *strengthen*: every full-system witness projects onto the cone, so
    a reduced run is conclusive whenever the plain run is (with the
    same verdict) and may additionally turn a bounded inconclusive
    claim into a conclusive one — the freed latches no longer delay
    loop closure.
    """
    if plain.conclusive:
        assert reduced.conclusive, context
        assert reduced.verdict is plain.verdict, context
    elif reduced.conclusive:
        assert _needs_loop(plain.prop), context
    else:
        assert reduced.verdict is plain.verdict, context


class TestSuiteDifferential:
    def test_property_verdicts_agree_per_family(self):
        for inst in build_property_suite():
            with BmcSession(inst.system, properties=inst.properties,
                            reduce="off") as session:
                plain = session.check_properties(inst.k)
            with BmcSession(inst.system, properties=inst.properties,
                            reduce="auto") as session:
                reduced = session.check_properties(inst.k)
            for name in inst.properties:
                context = (inst.name, name)
                _assert_strengthens(plain[name], reduced[name], context)
                if not _needs_loop(inst.properties[name]):
                    assert reduced[name].verdict is plain[name].verdict, \
                        context
                if reduced[name].trace is not None:
                    # Lifted certificates are full-width and replay on
                    # the ORIGINAL system.
                    assert set(reduced[name].trace.states[0]) == \
                        set(inst.system.state_vars)
                    reduced[name].trace.validate(inst.system)

    def test_property_sweeps_resolve_no_later(self):
        for inst in build_property_suite():
            with BmcSession(inst.system, properties=inst.properties,
                            reduce="off") as session:
                plain = session.sweep_properties(inst.k)
            with BmcSession(inst.system, properties=inst.properties,
                            reduce="auto") as session:
                reduced = session.sweep_properties(inst.k)
            for name in inst.properties:
                context = (inst.name, name)
                _assert_strengthens(plain[name], reduced[name], context)
                if _needs_loop(inst.properties[name]):
                    # Lasso witnesses may close earlier on the cone,
                    # never later.
                    if plain[name].conclusive:
                        assert reduced[name].k <= plain[name].k, context
                else:
                    assert reduced[name].verdict is plain[name].verdict, \
                        context
                    assert reduced[name].k == plain[name].k, context

    def test_reachability_cells_agree_per_family(self):
        for inst in _deepest_per_family():
            for mode in ("off", "auto"):
                with BmcSession(inst.system,
                                properties={"t": inst.final},
                                reduce=mode) as session:
                    result = session.check(inst.k, method="jsat")
                assert result.status is not SolveResult.UNKNOWN
                if inst.expected is not None:
                    want = SolveResult.SAT if inst.expected \
                        else SolveResult.UNSAT
                    assert result.status is want, (inst.name, mode)
                if result.trace is not None:
                    result.trace.validate(inst.system, inst.final)
                    assert result.trace.length == inst.k

    def test_incremental_sweep_agrees_and_lifts(self):
        for inst in _deepest_per_family(limit=6):
            with BmcSession(inst.system, properties={"t": inst.final},
                            reduce="off") as session:
                plain = session.sweep(inst.k, method="sat-incremental")
            seen = []
            with BmcSession(inst.system, properties={"t": inst.final},
                            reduce="auto") as session:
                reduced = session.sweep(inst.k, method="sat-incremental",
                                        on_bound=seen.append)
            assert reduced.status is plain.status
            assert reduced.shortest_k == plain.shortest_k
            assert [b.k for b in seen] == [b.k for b in reduced.per_bound]
            if reduced.trace is not None:
                reduced.trace.validate(inst.system, inst.final)


# ----------------------------------------------------------------------
# Differential: random systems, k = 0..6
# ----------------------------------------------------------------------
class TestRandomDifferential:
    def test_random_reachability_all_bounds(self):
        rng = random.Random(20260730)
        for trial in range(12):
            system = random_system(rng, num_latches=4, num_inputs=2,
                                   depth=3)
            final = random_predicate(rng, system)
            for k in range(0, 7):
                with BmcSession(system, properties={"t": final},
                                reduce="off") as session:
                    plain = session.check(k, method="sat-unroll")
                with BmcSession(system, properties={"t": final},
                                reduce="auto") as session:
                    reduced = session.check(k, method="sat-unroll")
                assert reduced.status is plain.status, (trial, k)
                if reduced.trace is not None:
                    reduced.trace.validate(system, final)
                    assert reduced.trace.length == k

    def test_random_properties_all_bounds(self):
        rng = random.Random(4251)
        for trial in range(8):
            system = random_system(rng, num_latches=4, num_inputs=1,
                                   depth=3)
            p = random_predicate(rng, system)
            q = random_predicate(rng, system)
            properties = {
                "reach": Reachable(p),
                "safe": Invariant(p),
                "ev": Finally(Atom(p)),
                "hold": Globally(Atom(q)),
                "until": Until(Atom(q), Atom(p)),
            }
            plain = PropertyChecker(system, properties, reduce="off")
            reduced = PropertyChecker(system, properties, reduce="auto")
            for k in range(0, 7):
                a = plain.check_all(k)
                b = reduced.check_all(k)
                for name in properties:
                    _assert_strengthens(a[name], b[name],
                                        (trial, k, name))
                    if not _needs_loop(properties[name]):
                        assert a[name].verdict is b[name].verdict, \
                            (trial, k, name)
                        assert a[name].conclusive == \
                            b[name].conclusive, (trial, k, name)


# ----------------------------------------------------------------------
# Wiring: race, run_matrix, cones, circuit validation
# ----------------------------------------------------------------------
class TestWiring:
    def test_race_with_reduction_lifts_winner(self):
        inst = [i for i in _deepest_per_family()
                if i.family == "arbiter"][0]
        outcome = race(inst.system, inst.final, inst.k,
                       methods=("sat-unroll", "jsat"), reduce="auto")
        assert outcome.result.status is SolveResult.SAT
        assert outcome.result.stats["reduced_latches"] < \
            outcome.result.stats["original_latches"]
        outcome.result.trace.validate(inst.system, inst.final)

    def test_run_matrix_forwards_reduce(self):
        instances = [i for i in build_suite()
                     if i.family in ("arbiter", "cache")][:6]
        plain = run_matrix(instances, ["jsat"], reduce="off")
        reduced = run_matrix(instances, ["jsat"], reduce="auto")
        assert [c.status for c in plain] == [c.status for c in reduced]
        assert all(c.solved for c in reduced)

    def test_run_matrix_sweep_mode_forwards_reduce(self):
        instances = [i for i in build_suite()
                     if i.family == "traffic"][:3]
        plain = run_matrix(instances, ["sat-incremental"], mode="sweep",
                           reduce="off")
        reduced = run_matrix(instances, ["sat-incremental"], mode="sweep",
                             reduce="auto")
        assert [c.status for c in plain] == [c.status for c in reduced]

    def test_parallel_run_rejects_pipeline_objects(self):
        instances = build_suite()[:2]
        with pytest.raises(ValueError, match="reduce"):
            run_matrix(instances, ["jsat"], jobs=2,
                       reduce=default_pipeline())

    def test_property_matrix_reduce_agrees(self):
        instances = [i for i in build_property_suite()
                     if i.family in ("cache", "pipeline")]
        plain = run_property_matrix(instances, reduce="off")
        reduced = run_property_matrix(instances, reduce="auto")
        assert [(c.instance.name, c.property_name, c.verdict)
                for c in plain] == \
            [(c.instance.name, c.property_name, c.verdict)
             for c in reduced]

    def test_checker_groups_properties_by_cone(self):
        inst = [i for i in build_property_suite()
                if i.family == "cache"][0]
        checker = PropertyChecker(inst.system, inst.properties,
                                  reduce="auto")
        checker.check_all(2)
        # Target properties share one cone, probe properties another —
        # strictly fewer cones than properties, more than one.
        assert 1 < checker.cone_count() < len(inst.properties)

    def test_checker_off_uses_single_identity_cone(self):
        inst = [i for i in build_property_suite()
                if i.family == "cache"][0]
        checker = PropertyChecker(inst.system, inst.properties,
                                  reduce="off")
        checker.check_all(2)
        assert checker.cone_count() == 1
        cone = checker._cone_for("reach-target")
        assert cone.reduction.is_identity

    def test_circuit_add_property_rejects_non_property(self):
        circuit = Circuit("typed")
        q = circuit.add_latch("q", init=False)
        circuit.set_next("q", ~q)
        with pytest.raises(TypeError, match="Property"):
            circuit.add_property("bad", "G q")
        with pytest.raises(TypeError, match="Property"):
            circuit.add_property("bad", None)
        circuit.add_property("ok", q)          # Expr wraps as Reachable
        assert isinstance(circuit.properties["ok"], Reachable)

    def test_composed_context_strips_bystanders(self):
        from repro.models import gray, shift_register
        from repro.system.model import compose_systems
        inst = [i for i in build_property_suite()
                if i.family == "counter"][0]
        bystander_a, _, _ = gray.make(3)
        bystander_b, _, _ = shift_register.make(4)
        composed = compose_systems(inst.system, bystander_a, bystander_b,
                                   prefixes=("", "a.", "b."))
        rs = reduce_for_target(composed, inst.final)
        # The cone is exactly the family block: no bystander survives.
        assert set(rs.kept_latches) == set(inst.system.state_vars)
        with BmcSession(composed, properties={"t": inst.final},
                        reduce="auto") as session:
            result = session.check(inst.k, method="jsat")
        assert result.status is SolveResult.SAT
        result.trace.validate(composed, inst.final)

    def test_compose_systems_validation(self):
        from repro.system.model import compose_systems
        system, _, _ = counter.make(2, 2)
        with pytest.raises(ValueError, match="prefix"):
            compose_systems(system, system, prefixes=("x.",))
        with pytest.raises(ValueError, match="disjoint"):
            compose_systems(system, system, prefixes=("", ""))
        with pytest.raises(ValueError, match="at least one"):
            compose_systems()

    def test_constant_target_reduces_to_empty_cone(self):
        # A property whose entire support is constant-folded leaves a
        # zero-latch system; checking it must still work end to end
        # and lift full-width certificates.
        from repro.models import traffic
        system, _, _ = traffic.make(1)          # tm0 is stuck at reset
        rs = reduce_for_target(system, ex.var("tm0"))
        assert rs.kept_latches == []
        with BmcSession(system, properties={
                "stuck-off": Invariant(~ex.var("tm0")),
                "never-on": Finally(Atom(ex.var("tm0")))},
                reduce="auto") as session:
            results = session.sweep_properties(4)
        assert results["stuck-off"].verdict.name == "HOLDS"
        assert results["never-on"].verdict.name == "VIOLATED"
        trace = results["never-on"].trace
        assert trace is not None
        assert set(trace.states[0]) == set(system.state_vars)
        trace.validate(system)

    def test_suite_probe_latch_is_never_constant(self):
        from repro.models.suite import _narrowest_cone_latch
        from repro.reduce import ConstantLatches, ReductionState
        from repro.spec.property import Atom
        for inst in build_property_suite():
            probe = inst.properties.get("probe-reach")
            if probe is None:
                continue
            view = FunctionalView.from_system(inst.system)
            state = ReductionState(view, Atom(ex.TRUE))
            ConstantLatches().apply(state)
            assert not set(probe.expr.support()) & set(state.fixed), \
                inst.name

    def test_custom_pipeline_not_memoized_per_support(self):
        # A property-structure-dependent transform must be re-run per
        # property; declaring support_determined is opt-in.
        from repro.reduce import Reduction

        calls = []

        class Spy(Reduction):
            name = "spy"

            def apply(self, state):
                calls.append(str(state.prop))

        system, final, _ = counter.make(3, 5)
        pipeline = Pipeline([Spy()])
        assert not pipeline.support_determined
        assert default_pipeline().support_determined
        checker = PropertyChecker(
            system,
            {"r": Reachable(final), "i": Invariant(~final)},
            reduce=pipeline)
        checker.check_all(2)
        assert len(calls) == 2                   # same support, two runs

    def test_replacing_single_property_refreshes_backend(self):
        # Regression: the backend cache is keyed by target too, so
        # replacing the session's single property must not reuse a
        # backend solving (a reduction of) the old target.
        system, _, depth = counter.make(4, 9)
        for mode in ("off", "auto"):
            with BmcSession(system, properties={"t": ex.var("c0")},
                            reduce=mode) as session:
                first = session.check(1, method="sat-unroll")
                assert first.status is SolveResult.SAT
                session.add_property("t", ex.var("c3"))
                again = session.check(depth, method="sat-unroll")
                assert again.status is SolveResult.SAT
                again.trace.validate(system, ex.var("c3"))

    def test_custom_rewrite_pipeline_is_not_discarded(self):
        # Regression: a transform that rewrites the logic without
        # removing a variable must produce a reduced system, not be
        # silently folded into the identity reduction.
        from repro.reduce import Reduction

        class FreezeInput(Reduction):
            """Cofactor every update with input a=False."""

            def apply(self, state):
                state.substitute({"a": ex.FALSE})

        circuit = Circuit("freeze")
        a = circuit.add_input("a")
        q = circuit.add_latch("q", init=False)
        circuit.set_next("q", q | a)
        system = circuit.to_transition_system()
        rs = Pipeline([FreezeInput()]).reduce(system, Reachable(q))
        assert not rs.is_identity
        assert rs.system.trans is not system.trans

    def test_identity_reduction_properties(self):
        system, final, _ = counter.make(3, 5)
        rs = identity_reduction(system)
        assert rs.is_identity
        assert rs.map_expr(final) is final
        assert rs.summary()["latches_before"] == \
            rs.summary()["latches_after"]


# Keep ruff happy about the intentionally unused transform imports —
# they are exercised via default_pipeline's composition above.
_ALL_TRANSFORMS = (ConstantLatches, DuplicateLatches, InputPruning)
