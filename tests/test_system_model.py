"""Transition system, priming, and transformation tests."""

import pytest

from repro.logic import expr as ex
from repro.system import TransitionSystem, primed, unprimed, is_primed
from repro.system.oracle import ExplicitOracle


def two_bit_counter():
    b0, b1 = ex.var("b0"), ex.var("b1")
    return TransitionSystem(
        state_vars=["b0", "b1"],
        init=~b0 & ~b1,
        trans=(ex.var(primed("b0")).iff(~b0)
               & ex.var(primed("b1")).iff(b1 ^ b0)))


class TestPriming:
    def test_primed_unprimed(self):
        assert primed("x") == "x'"
        assert unprimed("x'") == "x"
        assert is_primed("x'") and not is_primed("x")

    def test_unprimed_requires_prime(self):
        with pytest.raises(ValueError):
            unprimed("x")


class TestValidation:
    def test_duplicate_state_vars(self):
        with pytest.raises(ValueError):
            TransitionSystem(["a", "a"], ex.TRUE, ex.TRUE)

    def test_init_over_non_state_rejected(self):
        with pytest.raises(ValueError):
            TransitionSystem(["a"], ex.var("b"), ex.TRUE)

    def test_trans_over_unknown_rejected(self):
        with pytest.raises(ValueError):
            TransitionSystem(["a"], ex.TRUE, ex.var("zzz"))

    def test_state_input_overlap_rejected(self):
        with pytest.raises(ValueError):
            TransitionSystem(["a"], ex.TRUE, ex.TRUE, input_vars=["a"])


class TestRenaming:
    def test_rename_state_expr(self):
        ts = two_bit_counter()
        renamed = ts.rename_state_expr(ts.init, ["x@0", "y@0"])
        assert renamed.support() == {"x@0", "y@0"}

    def test_trans_between(self):
        ts = two_bit_counter()
        step = ts.trans_between(["a0", "a1"], ["b0n", "b1n"])
        assert step.support() == {"a0", "a1", "b0n", "b1n"}
        # 00 -> 01 is a counter step (b0 flips).
        assert step.evaluate({"a0": False, "a1": False,
                              "b0n": True, "b1n": False})
        assert not step.evaluate({"a0": False, "a1": False,
                                  "b0n": False, "b1n": True})

    def test_vector_length_checked(self):
        ts = two_bit_counter()
        with pytest.raises(ValueError):
            ts.trans_between(["a"], ["b", "c"])


class TestTransformations:
    def test_self_loops_allow_stutter(self):
        ts = two_bit_counter()
        looped = ts.with_self_loops()
        assert looped.holds_trans([False, False], {}, [False, False])
        assert looped.holds_trans([False, False], {}, [True, False])
        assert not looped.holds_trans([False, False], {}, [False, True])

    def test_self_loops_preserve_within_reachability(self):
        ts = two_bit_counter()
        target = ex.var("b0") & ex.var("b1")
        plain = ExplicitOracle(ts)
        looped = ExplicitOracle(ts.with_self_loops())
        for k in range(6):
            assert (plain.reachable_within(target, k)
                    == looped.reachable_in_exactly(target, k)
                    == looped.reachable_within(target, k))

    def test_reversed_swaps_edges(self):
        ts = two_bit_counter()
        rev = ts.reversed()
        # Forward: 00 -> 01. Backward: 01 -> 00.
        assert rev.holds_trans([True, False], {}, [False, False])
        assert not rev.holds_trans([False, False], {}, [True, False])


class TestConcreteEvaluation:
    def test_holds_init(self):
        ts = two_bit_counter()
        assert ts.holds_init([False, False])
        assert not ts.holds_init([True, False])

    def test_trans_size_proxy(self):
        ts = two_bit_counter()
        assert ts.trans_size() == ts.trans.size() > 0
