"""The specification layer: Property AST, parser, SMV/Circuit
frontends, the multi-property session API and the harness property
axis."""

import pickle
import warnings

import pytest

from repro.bmc import BmcSession
from repro.harness.report import format_property_results
from repro.harness.runner import (run_matrix, run_property_matrix,
                                  verdict_counts)
from repro.logic import expr as ex
from repro.models import build_property_suite, counter
from repro.sat.types import Budget, SolveResult
from repro.spec import (And, Atom, Finally, Globally, Invariant, Next, Not,
                        Or, PropertyChecker, Reachable, Release, SpecError,
                        Until, Verdict, nnf, parse_spec, reachability_target,
                        search_plan)
from repro.system.circuit import Circuit
from repro.system.smv import SmvError, parse_smv


a, b, c = ex.var("a"), ex.var("b"), ex.var("c")


# ----------------------------------------------------------------------
class TestPropertyAst:
    def test_operator_sugar_and_coercion(self):
        prop = Globally(a) & b | ~Finally(c)
        assert isinstance(prop, Or)
        assert prop == Or(And(Globally(Atom(a)), Atom(b)),
                          Not(Finally(Atom(c))))

    def test_structural_equality_and_hash(self):
        assert Invariant(a & b) == Invariant(a & b)
        assert Invariant(a) != Reachable(a)
        assert hash(Until(a, b)) == hash(Until(a, b))
        assert len({Finally(a), Finally(a), Globally(a)}) == 2

    def test_immutability(self):
        prop = Finally(a)
        with pytest.raises(AttributeError):
            prop.arg = Atom(b)

    def test_pickling(self):
        for prop in (Invariant(a & ~b), Reachable(a),
                     Until(Atom(a), Next(Atom(b)))):
            assert pickle.loads(pickle.dumps(prop)) == prop

    def test_atom_requires_expr(self):
        with pytest.raises(TypeError):
            Atom("a")
        with pytest.raises(TypeError, match="state predicate"):
            Invariant(Finally(a))

    def test_nnf_dualities(self):
        # ¬G f = F ¬f, ¬(f U g) = ¬f R ¬g, ¬X f = X ¬f, ¬ into atoms.
        assert nnf(Not(Globally(a))) == Finally(Atom(ex.mk_not(a)))
        assert nnf(Not(Until(a, b))) == Release(Atom(ex.mk_not(a)),
                                                Atom(ex.mk_not(b)))
        assert nnf(Not(Next(a))) == Next(Atom(ex.mk_not(a)))
        assert nnf(Not(And(Atom(a), Atom(b)))) == \
            Or(Atom(ex.mk_not(a)), Atom(ex.mk_not(b)))
        assert nnf(Not(Not(Finally(a)))) == Finally(Atom(a))

    def test_nested_top_level_forms_rejected(self):
        with pytest.raises(ValueError, match="top-level"):
            nnf(Globally(Invariant(a)))

    def test_search_plan_polarity(self):
        formula, universal = search_plan(Invariant(a))
        assert universal and formula == Finally(Atom(ex.mk_not(a)))
        formula, universal = search_plan(Reachable(a))
        assert not universal and formula == Finally(Atom(a))
        # A bare LTL formula is a universal claim; its search is the
        # NNF negation.
        formula, universal = search_plan(Finally(Atom(a)))
        assert universal and formula == Globally(Atom(ex.mk_not(a)))

    def test_reachability_target(self):
        assert reachability_target(Reachable(a)) is a
        assert reachability_target(Invariant(a)) == ex.mk_not(a)
        # G over a plain predicate reduces too; F (universal) does not.
        assert reachability_target(Globally(Atom(a))) == ex.mk_not(a)
        assert reachability_target(Finally(Atom(a))) is None
        assert reachability_target(Until(Atom(a), Atom(b))) is None


# ----------------------------------------------------------------------
class TestSpecParser:
    @pytest.mark.parametrize("text", [
        "G !(req0 & req1)", "AG !bad", "EF (a & b)", "a U b",
        "F (a -> b)", "X X a", "(a U b) | G c", "a R b",
        "G (a -> X !a)", "TRUE", "!a xor b",
    ])
    def test_round_trip(self, text):
        prop = parse_spec(text)
        assert parse_spec(str(prop)) == prop

    def test_boolean_combinations_fold_into_atoms(self):
        prop = parse_spec("!(a & b) | c")
        assert isinstance(prop, Atom)
        assert prop.expr == ex.mk_or(ex.mk_not(ex.mk_and(a, b)), c)

    def test_precedence(self):
        # U binds tighter than &, & tighter than |, -> right-assoc.
        assert parse_spec("G a & F b") == And(Globally(Atom(a)),
                                              Finally(Atom(b)))
        assert parse_spec("a U b & G c") == And(Until(Atom(a), Atom(b)),
                                                Globally(Atom(c)))
        assert parse_spec("a -> b -> c") == \
            Atom(ex.mk_implies(a, ex.mk_implies(b, c)))

    def test_nested_ag_ef_rejected(self):
        with pytest.raises(SpecError, match="top-level"):
            parse_spec("G (AG a)")
        with pytest.raises(SpecError, match="plain state predicate"):
            parse_spec("AG (F a)")

    def test_errors(self):
        with pytest.raises(SpecError):
            parse_spec("")
        with pytest.raises(SpecError):
            parse_spec("a &")
        with pytest.raises(SpecError):
            parse_spec("(a | b")
        with pytest.raises(SpecError, match="variable name"):
            parse_spec("U")


# ----------------------------------------------------------------------
class TestFrontends:
    SMV = """
    MODULE main
    VAR
      x : boolean;
      y : boolean;
    ASSIGN
      init(x) := FALSE;
      next(x) := !x;
      init(y) := FALSE;
      next(y) := x & !y;
    DEFINE
      both := x & y;
    SPEC AG !both
    SPEC no_y := AG !y
    INVARSPEC safe := !both
    INVARSPEC !x
    """

    def test_smv_labels_and_invarspec(self):
        circuit = parse_smv(self.SMV)
        assert sorted(circuit.bad) == ["invar0", "no_y", "safe", "spec0"]
        assert circuit.properties["no_y"] == Invariant(ex.mk_not(ex.var("y")))
        assert circuit.properties["safe"] == \
            Invariant(ex.mk_not(ex.mk_and(ex.var("x"), ex.var("y"))))
        # Unlabelled entries keep the historical spec{i} numbering.
        assert circuit.properties["spec0"] == circuit.properties["safe"]

    def test_smv_duplicate_label_rejected(self):
        text = self.SMV + "\n    INVARSPEC safe := !y\n"
        with pytest.raises(SmvError, match="duplicate spec label"):
            parse_smv(text)

    def test_smv_specs_check_end_to_end(self):
        circuit = parse_smv(self.SMV)
        system = circuit.to_transition_system()
        with BmcSession(system, properties=circuit.properties) as session:
            results = session.check_properties(4)
        assert results["invar0"].verdict is Verdict.VIOLATED   # x toggles
        assert results["no_y"].verdict is Verdict.VIOLATED     # y pulses
        assert results["safe"].verdict is Verdict.HOLDS        # x&y never

    def test_circuit_add_bad_registers_reachable(self):
        circuit = Circuit("toy")
        q = circuit.add_latch("q", init=False)
        circuit.set_next("q", ~q)
        circuit.add_bad("stuck", q & ~q)
        assert circuit.properties["stuck"] == Reachable(q & ~q)
        circuit.add_property("hits-one", q)        # Expr -> Reachable
        assert circuit.properties["hits-one"] == Reachable(q)
        circuit.add_property("always-off", Invariant(~q))
        assert isinstance(circuit.properties["always-off"], Invariant)


# ----------------------------------------------------------------------
class TestSessionProperties:
    def setup_method(self):
        self.system, self.final, self.depth = counter.make(3, 5)

    def test_multi_property_check(self):
        with BmcSession(self.system, properties={
                "hit": Reachable(self.final),
                "safe": Invariant(ex.mk_not(self.final)),
                "ev": Finally(Atom(self.final))}) as session:
            results = session.check_properties(self.depth + 1)
        assert results["hit"].verdict is Verdict.HOLDS
        assert results["hit"].conclusive
        assert results["hit"].trace is not None
        assert results["safe"].verdict is Verdict.VIOLATED
        # F(final) as a universal claim fails: idle at zero forever.
        assert results["ev"].verdict is Verdict.VIOLATED

    def test_shared_matches_per_property_sessions(self):
        properties = {
            "hit": Reachable(self.final),
            "safe": Invariant(ex.mk_not(self.final)),
            "step": Next(Atom(ex.mk_not(self.final))),
        }
        with BmcSession(self.system, properties=properties) as session:
            shared = session.check_properties(self.depth + 1)
        for name, prop in properties.items():
            with BmcSession(self.system,
                            properties={name: prop}) as session:
                solo = session.check_properties(self.depth + 1)[name]
            assert solo.verdict is shared[name].verdict, name
            assert solo.conclusive == shared[name].conclusive, name

    def test_sweep_properties_earliest_bound(self):
        events = []
        with BmcSession(self.system, properties={
                "hit": Reachable(self.final),
                "safe": Invariant(ex.mk_not(self.final))}) as session:
            results = session.sweep_properties(
                self.depth + 3,
                on_bound=lambda name, bound: events.append((name, bound.k)))
        # Both resolve exactly at the counter's depth.
        assert results["hit"].k == self.depth
        assert results["safe"].k == self.depth
        assert ("hit", 0) in events and ("safe", self.depth) in events
        # No bound past the resolution point was queried.
        assert max(k for _, k in events) == self.depth

    def test_deprecated_final_shim(self):
        with pytest.deprecated_call():
            session = BmcSession(self.system, self.final)
        with session:
            assert session.final is self.final
            assert session.properties == {"target": Reachable(self.final)}
            result = session.check(self.depth)
        assert result.status is SolveResult.SAT

    def test_final_derived_from_single_property(self):
        with BmcSession(self.system, properties={
                "safe": Invariant(ex.mk_not(self.final))}) as session:
            assert session.final == self.final    # target = !(!final)
            result = session.check(self.depth)    # reach the violation
        assert result.status is SolveResult.SAT

    def test_check_rejects_multi_property_session(self):
        with BmcSession(self.system, properties={
                "a": Reachable(self.final),
                "b": Invariant(self.final)}) as session:
            with pytest.raises(ValueError, match="check_properties"):
                session.check(2)

    def test_check_rejects_non_reducible_property(self):
        with BmcSession(self.system, properties={
                "ev": Finally(Atom(self.final))}) as session:
            with pytest.raises(ValueError, match="bounded-LTL"):
                session.check(2)
            # ... but the property engine handles it.
            assert session.check_properties(2)["ev"].verdict \
                is Verdict.VIOLATED

    def test_add_property_on_live_session(self):
        with BmcSession(self.system, properties={
                "hit": Reachable(self.final)}) as session:
            session.check_properties(2)
            session.add_property("safe", Invariant(ex.mk_not(self.final)))
            results = session.check_properties(self.depth)
        assert set(results) == {"hit", "safe"}
        assert results["safe"].verdict is Verdict.VIOLATED

    def test_unknown_property_name(self):
        with BmcSession(self.system, properties={
                "hit": Reachable(self.final)}) as session:
            with pytest.raises(KeyError, match="unknown property"):
                session.check_properties(2, names=["typo"])

    def test_no_properties_errors(self):
        with BmcSession(self.system) as session:
            with pytest.raises(ValueError, match="no properties"):
                session.check_properties(2)
            with pytest.raises(ValueError, match="0 properties"):
                session.check(2)

    def test_property_over_unknown_variable_rejected(self):
        with BmcSession(self.system, properties={
                "bogus": Reachable(ex.var("nope"))}) as session:
            with pytest.raises(ValueError, match="non-state variables"):
                session.check_properties(2)

    def test_budget_exhaustion_yields_unknown(self):
        checker = PropertyChecker(self.system, {
            "hit": Reachable(self.final),
            "safe": Invariant(ex.mk_not(self.final))})
        results = checker.check_all(
            self.depth, budget=Budget(max_seconds=0.0))
        assert all(r.verdict is Verdict.UNKNOWN
                   for r in results.values())

    def test_unrolling_state_persists_across_calls(self):
        # sim_tier off: this test watches the shared unrolling itself.
        with BmcSession(self.system, sim_tier=False, properties={
                "hit": Reachable(self.final)}) as session:
            first = session.check_properties(self.depth)["hit"]
            again = session.check_properties(self.depth)["hit"]
        assert first.stats["trans_frames"] == self.depth
        # Second call re-used the encoded frames (no growth).
        assert again.stats["trans_frames"] == self.depth
        assert again.verdict is first.verdict


# ----------------------------------------------------------------------
class TestHarnessPropertyAxis:
    def test_property_matrix_and_reports(self):
        instances = [i for i in build_property_suite()
                     if i.family in ("counter", "ring")]
        cells = run_matrix(instances, (), mode="properties")
        assert len(cells) == sum(len(i.properties) for i in instances)
        counts = verdict_counts(cells)
        assert counts["reach-target"]["holds"] == len(instances)
        table = format_property_results(cells)
        assert "reach-target" in table and "verdict" in table

    def test_sequential_baseline_agrees(self):
        instances = [i for i in build_property_suite()
                     if i.family == "gray"]
        shared = run_property_matrix(instances, shared=True)
        solo = run_property_matrix(instances, shared=False)
        assert [(c.property_name, c.verdict) for c in shared] == \
            [(c.property_name, c.verdict) for c in solo]

    def test_property_mode_rejects_backend_knobs(self):
        instances = build_property_suite()[:1]
        with pytest.raises(ValueError, match="shared-unrolling"):
            run_matrix(instances, ("jsat",), mode="properties")
        with pytest.raises(ValueError, match="serially"):
            run_matrix(instances, (), mode="properties", jobs=4)

    def test_suite_instances_carry_default_target(self):
        from repro.models import build_suite
        instance = build_suite()[0]
        assert instance.properties == \
            {"target": Reachable(instance.final)}


# ----------------------------------------------------------------------
class TestReviewRegressions:
    """Regression pins for the findings of this PR's code review."""

    def test_cli_duplicate_spec_labels_rejected(self, capsys):
        from repro.cli import main
        assert main(["check", "counter", "--spec", "v := EF c0",
                     "--spec", "v := EF c1"]) == 1
        assert "duplicate spec label" in capsys.readouterr().err

    def test_cli_violated_outranks_unknown(self, capsys):
        from repro.cli import main
        # A definite counterexample must exit 1 even when another
        # property times out (exit 2 would hide the violation).
        code = main(["--timeout", "0.0", "check", "counter",
                     "--spec", "AG !c0", "--spec", "G (c0 -> X c1)",
                     "-k", "6"])
        out = capsys.readouterr().out
        if "VIOLATED" in out:
            assert code == 1
        else:                      # everything timed out: unknown
            assert code == 2

    def test_unspaced_implication_tokenizes(self):
        assert parse_spec("c0->c1") == parse_spec("c0 -> c1")
        assert parse_spec("a<->b") == parse_spec("a <-> b")
        # Interior dashes still form one identifier.
        atom = parse_spec("reach-target")
        assert isinstance(atom, Atom)
        assert atom.expr.name == "reach-target"

    def test_sweep_after_growth_keeps_two_encodings(self):
        system, final, depth = counter.make(3, 5)
        # sim_tier off: this test watches the two-driver encodings.
        checker = PropertyChecker(system, {"hit": Reachable(final)},
                                  sim_tier=False)
        cone = checker._cone_for("hit")
        shared = cone.unrolling_for(0)
        checker.check_all(depth + 2)               # shared grows deep
        # A sweep below the shared frames rides ONE auxiliary low
        # driver (not a throwaway per bound), and keeps it afterwards.
        first = checker.sweep(depth)["hit"]
        low = cone._low
        assert low is not None and low.k == depth
        assert cone.unrolling_for(depth + 2) is shared
        # Follow-up monotone queries below the shared frames reuse the
        # kept low encoding instead of rebuilding.
        again = checker.check_all(depth)["hit"]
        assert cone._low is low
        assert first.verdict is again.verdict is Verdict.HOLDS
        assert first.k == depth
