"""WorkerPool lifecycle under cancellation, signals, and parent death.

The pool's contract: cooperative cancellation frees a worker without
killing it, and *no code path leaks orphan solver processes* — not
Ctrl-C (KeyboardInterrupt), not SIGTERM, not even a SIGKILL'd parent
(workers notice the re-parenting through their stop check and exit on
their own).
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.portfolio.pool import Task, WorkerPool

SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src")


def _spin_execute(payload):
    """Busy-wait until cancelled (or a 60 s safety valve)."""
    from repro.sat.types import stop_requested
    start = time.monotonic()
    while not stop_requested() and time.monotonic() - start < 60:
        time.sleep(0.005)
    return {"status": "UNKNOWN", "k": payload.get("k", -1),
            "method": "spin", "seconds": time.monotonic() - start,
            "stats": {}, "trace": None, "error": None}


def _kernel_execute(payload):
    """A real kernel-engine solve that runs until the pool cancels it.

    Unlike :func:`_spin_execute` this exercises the production path:
    the kernel solver polls the worker's installed stop check from
    inside its search loop, so cancellation must land mid-solve.
    """
    from repro.sat.kernel import make_solver
    from repro.sat.types import SolveResult
    holes = payload.get("holes", 11)

    def var(i, j):
        return i * holes + j + 1

    solver = make_solver("kernel")
    solver.ensure_vars((holes + 1) * holes)
    for i in range(holes + 1):
        solver.add_clause([var(i, j) for j in range(holes)])
    for j in range(holes):
        for i1 in range(holes + 1):
            for i2 in range(i1 + 1, holes + 1):
                solver.add_clause([-var(i1, j), -var(i2, j)])
    start = time.monotonic()
    status = solver.solve()
    return {"status": status.name, "k": payload.get("k", -1),
            "method": "kernel-pigeonhole",
            "seconds": time.monotonic() - start,
            "stats": solver.stats.as_dict(), "trace": None,
            "error": None,
            "interrupted": status is SolveResult.UNKNOWN}


def _alive(pid: int) -> bool:
    """True while ``pid`` is a live (non-zombie) process."""
    try:
        with open(f"/proc/{pid}/stat") as handle:
            return handle.read().split(")")[-1].split()[0] != "Z"
    except (FileNotFoundError, ProcessLookupError, OSError):
        return False


def _wait_dead(pids, timeout: float = 20.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if not any(_alive(p) for p in pids):
            return True
        time.sleep(0.1)
    return False


# ----------------------------------------------------------------------
# Cooperative cancellation (in-process)
# ----------------------------------------------------------------------
class TestCooperativeCancel:
    def test_cancel_running_keeps_worker_warm(self):
        with WorkerPool(jobs=1, execute=_spin_execute) as pool:
            pool.submit(Task(1, {"k": 1}))
            assert pool.cancel(1) == "running"
            while 1 not in pool._results:
                pool.collect(timeout=5.0)
            outcome = pool.take_results()[1]
            assert outcome["cancelled"] is True
            first_pid = outcome["worker_pid"]
            # The same warm process serves the next task: cancelled,
            # not killed.
            pool.submit(Task(2, {"k": 2}))
            assert pool.cancel(2) == "running"
            while 2 not in pool._results:
                pool.collect(timeout=5.0)
            outcome2 = pool.take_results()[2]
            assert outcome2["worker_pid"] == first_pid
            assert pool.respawns == 0
            assert pool.cancelled == 2

    def test_cancel_kernel_solve_keeps_worker_warm(self):
        """Warm-cancel through the kernel engine's own stop-check
        polling: a hard pigeonhole solve is aborted mid-search, the
        worker survives, and the same process then completes an easy
        instance to completion."""
        with WorkerPool(jobs=1, execute=_kernel_execute) as pool:
            pool.submit(Task(1, {"holes": 11}))
            time.sleep(0.3)          # let the solve get going
            assert pool.cancel(1) == "running"
            while 1 not in pool._results:
                pool.collect(timeout=10.0)
            outcome = pool.take_results()[1]
            assert outcome["cancelled"] is True
            assert outcome["interrupted"] is True
            assert outcome["status"] == "UNKNOWN"
            first_pid = outcome["worker_pid"]
            # Same warm worker finishes a small instance normally.
            pool.submit(Task(2, {"holes": 4}))
            while 2 not in pool._results:
                pool.collect(timeout=10.0)
            outcome2 = pool.take_results()[2]
            assert outcome2["worker_pid"] == first_pid
            assert not outcome2.get("cancelled")
            assert outcome2["status"] == "UNSAT"
            assert pool.respawns == 0

    def test_cancel_queued_synthesizes_outcome(self):
        with WorkerPool(jobs=1, execute=_spin_execute) as pool:
            pool.submit(Task(1, {"k": 1}))      # occupies the worker
            pool.submit(Task(2, {"k": 2}))      # stays queued
            assert pool.cancel(2) == "queued"
            results = pool.take_results()
            assert results[2]["cancelled"] is True
            assert results[2]["status"] == "UNKNOWN"
            assert pool.cancel(1) == "running"

    def test_cancel_unknown_task(self):
        with WorkerPool(jobs=1, execute=_spin_execute) as pool:
            assert pool.cancel(99) is None

    def test_shutdown_reaps_busy_workers(self):
        pool = WorkerPool(jobs=2, execute=_spin_execute)
        pids = [w.process.pid for w in pool._workers]
        for i in range(4):
            pool.submit(Task(i, {"k": i}))
        time.sleep(0.2)
        pool.shutdown(grace=2.0)
        assert _wait_dead(pids, timeout=10.0)
        assert pool._workers == []


# ----------------------------------------------------------------------
# Signals (subprocess scripts: the signal must hit a real process
# group parent, not the pytest process)
# ----------------------------------------------------------------------
_SCRIPT = textwrap.dedent("""\
    import signal, sys, time
    sys.path.insert(0, {src!r})
    from repro.portfolio.pool import Task, WorkerPool

    def spin(payload):
        from repro.sat.types import stop_requested
        start = time.monotonic()
        while not stop_requested() and time.monotonic() - start < 60:
            time.sleep(0.005)
        return {{"status": "UNKNOWN", "k": -1, "method": "spin",
                 "seconds": 0.0, "stats": {{}}, "trace": None,
                 "error": None}}

    {sigterm_handler}
    pool = WorkerPool(jobs=2, execute=spin)
    print("PIDS", " ".join(str(w.process.pid)
                           for w in pool._workers), flush=True)
    try:
        pool.run([Task(i, {{}}) for i in range(4)])
    except KeyboardInterrupt:
        print("INTERRUPTED", flush=True)
        sys.exit(42)
    sys.exit(0)
""")

_SIGTERM_HANDLER = textwrap.dedent("""\
    def _term(signum, frame):
        raise KeyboardInterrupt
    signal.signal(signal.SIGTERM, _term)
""")


def _launch(sigterm_handler: str = "") -> "tuple":
    script = _SCRIPT.format(src=os.path.abspath(SRC),
                            sigterm_handler=sigterm_handler)
    proc = subprocess.Popen([sys.executable, "-c", script],
                            stdout=subprocess.PIPE, text=True)
    line = proc.stdout.readline()
    assert line.startswith("PIDS "), f"unexpected: {line!r}"
    pids = [int(p) for p in line.split()[1:]]
    time.sleep(0.3)             # let the workers start spinning
    return proc, pids


class TestSignals:
    def test_keyboard_interrupt_reaps_children(self):
        proc, pids = _launch()
        proc.send_signal(signal.SIGINT)
        out, _ = proc.communicate(timeout=30)
        assert proc.returncode == 42
        assert "INTERRUPTED" in out
        assert _wait_dead(pids, timeout=5.0), \
            f"orphan workers survived Ctrl-C: {pids}"

    def test_sigterm_reaps_children(self):
        proc, pids = _launch(sigterm_handler=_SIGTERM_HANDLER)
        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=30)
        assert proc.returncode == 42
        assert _wait_dead(pids, timeout=5.0), \
            f"orphan workers survived SIGTERM: {pids}"

    @pytest.mark.skipif(sys.platform != "linux",
                        reason="relies on /proc and POSIX semantics")
    def test_sigkilled_parent_leaves_no_orphans(self):
        # SIGKILL gives the parent no chance to clean up; the workers
        # must notice the re-parenting via their stop check (busy) or
        # the dead pipe (idle) and exit on their own.
        proc, pids = _launch()
        proc.kill()
        proc.wait(timeout=10)
        assert _wait_dead(pids, timeout=20.0), \
            f"orphan workers survived parent SIGKILL: {pids}"
