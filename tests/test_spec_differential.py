"""Differential guarantees for the bounded-LTL specification layer.

Three cross-checks:

* **symbolic vs explicit** — every Property kind (Invariant /
  Reachable / G / F / X / U, plus nested combinations exercising the
  Release dual and lasso wrap-around) compiled and solved over random
  circuit systems, compared verdict-for-verdict against the
  explicit-state path-semantics evaluator on the
  :class:`ExplicitOracle` state graph, for k = 0..6;
* **reachability consistency** — Reachable/Invariant verdicts agree
  with the oracle's BFS ``reachable_within`` (random circuits compile
  to total transition relations, where both notions coincide);
* **shared vs sequential** — the suite's multi-property instances
  answered through one shared-unrolling session vs one session per
  property give identical verdicts.
"""

import random

import pytest

from repro.bmc import BmcSession
from repro.logic import expr as ex
from repro.models import build_property_suite
from repro.spec import (Atom, Finally, Globally, Invariant, Next, Not,
                        PropertyChecker, Reachable, Until, Verdict,
                        check_explicit)
from repro.system.oracle import ExplicitOracle
from repro.system.random_model import random_predicate, random_system

MAX_K = 6
SEEDS = (7, 23, 101, 444)


def _property_zoo(p, q):
    """One property per kind, plus shapes that need the lasso."""
    return {
        "invariant": Invariant(p),
        "reachable": Reachable(q),
        "globally": Globally(Atom(p)),
        "finally": Finally(Atom(p)),            # negation needs G (lasso)
        "next": Next(Next(Atom(p))),
        "until": Until(Atom(p), Atom(q)),       # negation needs R
        "not-until": Not(Until(Atom(p), Atom(q))),
        "nested": Globally(implies_atom(p, Next(Atom(q)))),
    }


def implies_atom(p, prop):
    return Not(Atom(p)) | prop


@pytest.mark.parametrize("seed", SEEDS)
def test_symbolic_matches_explicit_semantics(seed):
    rng = random.Random(seed)
    system = random_system(rng, num_latches=3, num_inputs=1, depth=2)
    p = random_predicate(rng, system)
    q = random_predicate(rng, system)
    oracle = ExplicitOracle(system)
    zoo = _property_zoo(p, q)
    checker = PropertyChecker(system, zoo)
    for k in range(MAX_K + 1):
        symbolic = checker.check_all(k)
        for name, prop in zoo.items():
            expected = check_explicit(prop, oracle, k)
            got = symbolic[name].verdict
            assert got is expected, (
                f"seed={seed} k={k} property {name!r} ({prop}): "
                f"symbolic {got.name} vs explicit {expected.name}")


@pytest.mark.parametrize("seed", SEEDS)
def test_reachability_properties_match_bfs_oracle(seed):
    rng = random.Random(seed + 1000)
    system = random_system(rng, num_latches=3, num_inputs=1, depth=2)
    target = random_predicate(rng, system)
    oracle = ExplicitOracle(system)
    checker = PropertyChecker(system, {
        "reach": Reachable(target),
        "safe": Invariant(ex.mk_not(target))})
    for k in range(MAX_K + 1):
        results = checker.check_all(k)
        reachable = oracle.reachable_within(target, k)
        assert (results["reach"].verdict is Verdict.HOLDS) == reachable
        assert (results["safe"].verdict is Verdict.VIOLATED) == reachable
        if results["reach"].trace is not None:
            trace = results["reach"].trace
            trace.validate(system, target)
            # The shortened witness is a genuine shortest-or-better path.
            assert trace.length <= k


def test_sweep_resolves_at_shortest_depth():
    rng = random.Random(5)
    system = random_system(rng, num_latches=3, num_inputs=1, depth=2)
    target = random_predicate(rng, system)
    oracle = ExplicitOracle(system)
    checker = PropertyChecker(system, {"reach": Reachable(target)})
    result = checker.sweep(MAX_K)["reach"]
    distance = oracle.shortest_distance(target, max_depth=MAX_K)
    if distance is None or distance > MAX_K:
        assert result.verdict is Verdict.VIOLATED and not result.conclusive
    else:
        assert result.verdict is Verdict.HOLDS
        assert result.k == distance
        assert result.trace.length == distance


def test_suite_shared_vs_sequential_sessions_agree():
    for instance in build_property_suite():
        with BmcSession(instance.system,
                        properties=instance.properties) as session:
            shared = session.check_properties(instance.k)
        for name, prop in instance.properties.items():
            with BmcSession(instance.system,
                            properties={name: prop}) as session:
                solo = session.check_properties(instance.k)[name]
            assert solo.verdict is shared[name].verdict, \
                (instance.name, name)
            assert solo.conclusive == shared[name].conclusive, \
                (instance.name, name)
