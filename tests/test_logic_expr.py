"""Unit tests for the hash-consed expression DAG."""

import pytest

from repro.logic import expr as ex


class TestConstruction:
    def test_hash_consing_identity(self):
        assert ex.var("a") is ex.var("a")
        assert (ex.var("a") & ex.var("b")) is (ex.var("a") & ex.var("b"))

    def test_var_requires_name(self):
        with pytest.raises(ValueError):
            ex.var("")

    def test_constants(self):
        assert ex.const(True) is ex.TRUE
        assert ex.const(False) is ex.FALSE
        assert ex.TRUE.is_true and ex.FALSE.is_false

    def test_immutable(self):
        with pytest.raises(AttributeError):
            ex.var("a").op = "const"


class TestSimplification:
    def test_double_negation(self):
        a = ex.var("a")
        assert ex.mk_not(ex.mk_not(a)) is a

    def test_not_constant(self):
        assert ex.mk_not(ex.TRUE) is ex.FALSE
        assert ex.mk_not(ex.FALSE) is ex.TRUE

    def test_and_neutral_dominant(self):
        a = ex.var("a")
        assert ex.mk_and(a, ex.TRUE) is a
        assert ex.mk_and(a, ex.FALSE) is ex.FALSE
        assert ex.mk_and() is ex.TRUE

    def test_or_neutral_dominant(self):
        a = ex.var("a")
        assert ex.mk_or(a, ex.FALSE) is a
        assert ex.mk_or(a, ex.TRUE) is ex.TRUE
        assert ex.mk_or() is ex.FALSE

    def test_and_complement(self):
        a = ex.var("a")
        assert ex.mk_and(a, ex.mk_not(a)) is ex.FALSE
        assert ex.mk_or(a, ex.mk_not(a)) is ex.TRUE

    def test_and_flattens_and_dedupes(self):
        a, b, c = ex.var("a"), ex.var("b"), ex.var("c")
        nested = ex.mk_and(ex.mk_and(a, b), ex.mk_and(b, c))
        assert nested is ex.mk_and(a, b, c)

    def test_and_is_commutative_by_construction(self):
        a, b = ex.var("a"), ex.var("b")
        assert ex.mk_and(a, b) is ex.mk_and(b, a)

    def test_xor_rules(self):
        a, b = ex.var("a"), ex.var("b")
        assert ex.mk_xor(a, a) is ex.FALSE
        assert ex.mk_xor(a, ex.mk_not(a)) is ex.TRUE
        assert ex.mk_xor(a, ex.FALSE) is a
        assert ex.mk_xor(a, ex.TRUE) is ex.mk_not(a)
        assert ex.mk_xor(ex.mk_not(a), ex.mk_not(b)) is ex.mk_xor(a, b)

    def test_iff_via_xor(self):
        a, b = ex.var("a"), ex.var("b")
        assert ex.mk_iff(a, b) is ex.mk_not(ex.mk_xor(a, b))
        assert ex.mk_iff(a, a) is ex.TRUE

    def test_ite_folding(self):
        a, t, e = ex.var("a"), ex.var("t"), ex.var("e")
        assert ex.mk_ite(ex.TRUE, t, e) is t
        assert ex.mk_ite(ex.FALSE, t, e) is e
        assert ex.mk_ite(a, t, t) is t
        assert ex.mk_ite(a, ex.TRUE, ex.FALSE) is a
        assert ex.mk_ite(a, ex.FALSE, ex.TRUE) is ex.mk_not(a)
        assert ex.mk_ite(a, t, ex.FALSE) is ex.mk_and(a, t)
        assert ex.mk_ite(a, ex.TRUE, e) is ex.mk_or(a, e)


class TestEvaluation:
    def test_simple(self):
        a, b = ex.var("a"), ex.var("b")
        f = (a & ~b) | (~a & b)
        assert f.evaluate({"a": True, "b": False})
        assert not f.evaluate({"a": True, "b": True})

    def test_missing_var_raises(self):
        with pytest.raises(KeyError):
            ex.var("a").evaluate({})

    def test_ite_evaluation(self):
        c, t, e = ex.var("c"), ex.var("t"), ex.var("e")
        f = ex.mk_ite(c, t, e)
        assert f.evaluate({"c": True, "t": True, "e": False})
        assert not f.evaluate({"c": False, "t": True, "e": False})

    def test_deep_chain_no_recursion_error(self):
        f = ex.var("x0")
        for i in range(1, 3000):
            f = ex.mk_xor(f, ex.var(f"x{i}"))
        env = {f"x{i}": (i % 2 == 0) for i in range(3000)}
        f.evaluate(env)         # must not hit the recursion limit


class TestQueries:
    def test_support(self):
        f = ex.var("a") & (ex.var("b") | ~ex.var("c"))
        assert f.support() == {"a", "b", "c"}

    def test_size_counts_dag_nodes_once(self):
        a, b = ex.var("a"), ex.var("b")
        shared = a & b
        f = shared | ~shared
        # f folds to TRUE (complement rule), so build a non-folding one:
        g = ex.mk_xor(shared, ex.var("c"))
        assert g.size() == shared.size() + 2   # xor node + var c

    def test_depth(self):
        a, b, c = ex.var("a"), ex.var("b"), ex.var("c")
        assert a.depth() == 0
        assert (a & b).depth() == 1
        assert ((a & b) | c).depth() == 2


class TestTransforms:
    def test_substitute(self):
        a, b = ex.var("a"), ex.var("b")
        f = a & b
        g = ex.substitute(f, {"a": ex.var("x")})
        assert g is (ex.var("x") & b)

    def test_substitute_folds_constants(self):
        a, b = ex.var("a"), ex.var("b")
        f = a & b
        assert ex.substitute(f, {"a": ex.TRUE}) is b
        assert ex.substitute(f, {"a": ex.FALSE}) is ex.FALSE

    def test_simplify_with(self):
        a, b = ex.var("a"), ex.var("b")
        f = (a | b) & ~a
        assert ex.simplify_with(f, {"a": False}) is b

    def test_rename_vars(self):
        f = ex.var("a") & ex.var("b")
        g = ex.rename_vars(f, {"a": "a@1", "b": "b@1"})
        assert g.support() == {"a@1", "b@1"}

    def test_equal_vectors(self):
        xs = [ex.var("x0"), ex.var("x1")]
        ys = [ex.var("y0"), ex.var("y1")]
        eq = ex.equal_vectors(xs, ys)
        assert eq.evaluate({"x0": True, "x1": False,
                            "y0": True, "y1": False})
        assert not eq.evaluate({"x0": True, "x1": False,
                                "y0": True, "y1": True})

    def test_equal_vectors_length_mismatch(self):
        with pytest.raises(ValueError):
            ex.equal_vectors([ex.var("a")], [])
