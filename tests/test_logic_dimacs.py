"""DIMACS / QDIMACS round-trip and error-handling tests."""

import pytest

from repro.logic.cnf import CNF
from repro.logic.dimacs import (DimacsError, parse_dimacs, parse_qdimacs,
                                write_dimacs, write_qdimacs)


SAMPLE = """c a comment
p cnf 3 2
1 -2 0
2 3 0
"""


class TestDimacs:
    def test_parse_basic(self):
        cnf = parse_dimacs(SAMPLE)
        assert cnf.num_vars == 3
        assert cnf.clauses == [(1, -2), (2, 3)]

    def test_clause_across_lines(self):
        cnf = parse_dimacs("p cnf 2 1\n1\n-2 0\n")
        assert cnf.clauses == [(1, -2)]

    def test_missing_terminator_tolerated(self):
        cnf = parse_dimacs("p cnf 2 1\n1 -2\n")
        assert cnf.clauses == [(1, -2)]

    def test_bad_header(self):
        with pytest.raises(DimacsError):
            parse_dimacs("p sat 3 2\n")

    def test_bad_literal(self):
        with pytest.raises(DimacsError):
            parse_dimacs("p cnf 1 1\nx 0\n")

    def test_round_trip(self):
        cnf = parse_dimacs(SAMPLE)
        again = parse_dimacs(write_dimacs(cnf, comments=["round trip"]))
        assert again.clauses == cnf.clauses
        assert again.num_vars == cnf.num_vars


QSAMPLE = """c qbf
p cnf 4 2
e 1 2 0
a 3 0
e 4 0
1 3 -4 0
-2 4 0
"""


class TestQdimacs:
    def test_parse(self):
        prefix, cnf = parse_qdimacs(QSAMPLE)
        assert prefix == [("e", (1, 2)), ("a", (3,)), ("e", (4,))]
        assert cnf.clauses == [(1, 3, -4), (-2, 4)]

    def test_merges_adjacent_same_quantifier(self):
        prefix, _ = parse_qdimacs("p cnf 2 0\ne 1 0\ne 2 0\n")
        assert prefix == [("e", (1, 2))]

    def test_quantifier_after_matrix_rejected(self):
        with pytest.raises(DimacsError):
            parse_qdimacs("p cnf 2 1\n1 0\ne 2 0\n")

    def test_unterminated_quantifier_line(self):
        with pytest.raises(DimacsError):
            parse_qdimacs("p cnf 2 0\ne 1 2\n")

    def test_round_trip(self):
        prefix, cnf = parse_qdimacs(QSAMPLE)
        text = write_qdimacs(prefix, cnf)
        prefix2, cnf2 = parse_qdimacs(text)
        assert prefix2 == prefix
        assert cnf2.clauses == cnf.clauses

    def test_write_rejects_bad_quantifier(self):
        with pytest.raises(DimacsError):
            write_qdimacs([("x", (1,))], CNF(1))
