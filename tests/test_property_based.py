"""Property-based tests (hypothesis) on the core invariants.

These encode the load-bearing contracts of the library:

* the CDCL solver agrees with brute force and produces real models;
* Tseitin preserves satisfiability and model projections;
* QDPLL and expansion agree with the semantic QBF oracle;
* all BMC methods agree with the explicit-state oracle and with each
  other, and SAT answers come with replayable traces.
"""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.bmc import BmcSession
from repro.logic import expr as ex
from repro.logic.cnf import CNF
from repro.logic.tseitin import expr_to_cnf
from repro.qbf import PCNF, ExpansionSolver, QdpllSolver, evaluate_qbf
from repro.sat import CdclSolver, SolveResult, brute_force_sat
from repro.system import ExplicitOracle, random_predicate, random_system
from repro.system.random_model import random_expr

COMMON = dict(deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large])


@st.composite
def cnf_formulas(draw, max_vars=9, max_clauses=35):
    n = draw(st.integers(1, max_vars))
    m = draw(st.integers(1, max_clauses))
    cnf = CNF(n)
    for _ in range(m):
        width = draw(st.integers(1, 4))
        clause = [draw(st.integers(1, n)) * draw(st.sampled_from((1, -1)))
                  for _ in range(width)]
        cnf.add_clause(clause)
    return cnf


class TestSatSolverProperties:
    @given(cnf_formulas())
    @settings(max_examples=60, **COMMON)
    def test_cdcl_matches_brute_force(self, cnf):
        expected, _ = brute_force_sat(cnf)
        solver = CdclSolver()
        solver.add_clauses(cnf.clauses)
        got = solver.solve()
        assert got is expected
        if got is SolveResult.SAT:
            model = {v: bool(solver.model_value(v))
                     for v in range(1, cnf.num_vars + 1)}
            assert cnf.evaluate(model)

    @given(cnf_formulas(max_vars=7), st.data())
    @settings(max_examples=40, **COMMON)
    def test_assumptions_equal_units(self, cnf, data):
        n = cnf.num_vars
        count = data.draw(st.integers(0, min(3, n)))
        variables = data.draw(st.permutations(range(1, n + 1)))
        assumptions = [v * data.draw(st.sampled_from((1, -1)))
                       for v in variables[:count]]
        s1 = CdclSolver()
        s1.add_clauses(cnf.clauses)
        via_assumptions = s1.solve(assumptions)
        stronger = cnf.copy()
        for lit in assumptions:
            stronger.add_clause([lit])
        expected, _ = brute_force_sat(stronger)
        assert via_assumptions is expected


class TestTseitinProperties:
    @given(st.integers(0, 10_000), st.booleans())
    @settings(max_examples=60, **COMMON)
    def test_equisatisfiability(self, seed, polarity_reduction):
        rng = random.Random(seed)
        leaves = [ex.var(n) for n in ("a", "b", "c", "d")]
        expression = random_expr(rng, leaves, depth=3)
        if expression.is_const:
            return
        cnf, pool = expr_to_cnf(expression, polarity_reduction)
        solver = CdclSolver()
        solver.ensure_vars(cnf.num_vars)
        solver.add_clauses(cnf.clauses)
        got = solver.solve()
        # Compare with direct enumeration of the expression.
        names = sorted(expression.support())
        expr_sat = any(
            expression.evaluate(dict(zip(names, bits)))
            for bits in _bool_tuples(len(names)))
        want = SolveResult.SAT if expr_sat else SolveResult.UNSAT
        assert got is want


def _bool_tuples(n):
    import itertools
    return itertools.product([False, True], repeat=n)


@st.composite
def pcnf_formulas(draw):
    n = draw(st.integers(2, 7))
    cnf = CNF(n)
    for _ in range(draw(st.integers(1, 18))):
        width = draw(st.integers(1, 3))
        cnf.add_clause([draw(st.integers(1, n))
                        * draw(st.sampled_from((1, -1)))
                        for _ in range(width)])
    variables = draw(st.permutations(range(1, n + 1)))
    pcnf = PCNF(matrix=cnf)
    i = 0
    while i < len(variables):
        size = draw(st.integers(1, len(variables) - i))
        pcnf.add_block(draw(st.sampled_from("ae")),
                       variables[i:i + size])
        i += size
    return pcnf


class TestQbfProperties:
    @given(pcnf_formulas())
    @settings(max_examples=50, **COMMON)
    def test_solvers_match_oracle(self, pcnf):
        expected = evaluate_qbf(pcnf)
        want = SolveResult.SAT if expected else SolveResult.UNSAT
        assert QdpllSolver(pcnf).solve() is want
        assert ExpansionSolver(pcnf).solve() is want


def _check(system, final, k, method, semantics="exact"):
    """Session-API reachability query (check_reachability is deprecated)."""
    with BmcSession(system, properties={"target": final}) as session:
        return session.check(k, method=method, semantics=semantics)


class TestBmcProperties:
    @given(st.integers(0, 10_000), st.integers(0, 5))
    @settings(max_examples=25, **COMMON)
    def test_methods_agree_with_oracle(self, seed, k):
        rng = random.Random(seed)
        system = random_system(rng, num_latches=rng.randint(2, 3),
                               num_inputs=rng.randint(0, 1), depth=2)
        final = random_predicate(rng, system)
        oracle = ExplicitOracle(system)
        expected = oracle.reachable_in_exactly(final, k)
        want = SolveResult.SAT if expected else SolveResult.UNSAT
        for method in ("sat-unroll", "jsat"):
            result = _check(system, final, k, method)
            assert result.status is want
            if result.status is SolveResult.SAT:
                result.trace.validate(system, final)

    @given(st.integers(0, 10_000), st.integers(0, 4))
    @settings(max_examples=15, **COMMON)
    def test_within_semantics_agree(self, seed, k):
        rng = random.Random(seed)
        system = random_system(rng, num_latches=rng.randint(2, 3),
                               num_inputs=rng.randint(0, 1), depth=2)
        final = random_predicate(rng, system)
        oracle = ExplicitOracle(system)
        expected = oracle.reachable_within(final, k)
        want = SolveResult.SAT if expected else SolveResult.UNSAT
        for method in ("sat-unroll", "jsat"):
            result = _check(system, final, k, method,
                            semantics="within")
            assert result.status is want

    @given(st.integers(0, 10_000))
    @settings(max_examples=10, **COMMON)
    def test_self_loop_transform_equivalence(self, seed):
        """within-k on M == exact-k on M+self-loops (paper §2)."""
        rng = random.Random(seed)
        system = random_system(rng, num_latches=2, num_inputs=1, depth=2)
        final = random_predicate(rng, system)
        looped = system.with_self_loops()
        for k in (1, 3):
            a = _check(system, final, k, "jsat", semantics="within")
            b = _check(looped, final, k, "jsat", semantics="exact")
            assert a.status is b.status
