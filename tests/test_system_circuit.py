"""Circuit DSL, simulation, and trace tests."""

import pytest

from repro.logic import expr as ex
from repro.system import Circuit, Trace, TraceError


def toggler():
    c = Circuit("toggler")
    en = c.add_input("en")
    q = c.add_latch("q", init=False)
    c.set_next("q", q ^ en)
    c.add_output("state", q)
    return c


class TestCircuitConstruction:
    def test_duplicate_wire_rejected(self):
        c = Circuit()
        c.add_input("a")
        with pytest.raises(ValueError):
            c.add_latch("a")

    def test_unknown_latch_rejected(self):
        c = Circuit()
        with pytest.raises(KeyError):
            c.set_next("nope", ex.TRUE)

    def test_missing_next_rejected_at_compile(self):
        c = Circuit()
        c.add_latch("q")
        with pytest.raises(ValueError):
            c.to_transition_system()

    def test_init_expr(self):
        c = Circuit()
        c.add_latch("a", init=True)
        c.add_latch("b", init=False)
        c.add_latch("c", init=None)          # unconstrained
        init = c.init_expr()
        assert init.evaluate({"a": True, "b": False, "c": True})
        assert init.evaluate({"a": True, "b": False, "c": False})
        assert not init.evaluate({"a": False, "b": False, "c": True})

    def test_constraint_restricts_trans(self):
        c = Circuit()
        q = c.add_latch("q", init=False)
        c.set_next("q", ~q)
        c.add_constraint(~q)                 # only from q=0 states
        ts = c.to_transition_system()
        assert ts.holds_trans([False], {}, [True])
        assert not ts.holds_trans([True], {}, [False])


class TestSimulation:
    def test_toggler_sequence(self):
        c = toggler()
        states = c.simulate([{"en": True}, {"en": False}, {"en": True}])
        assert [s["q"] for s in states] == [False, True, True, False]

    def test_unconstrained_init_needs_value(self):
        c = Circuit()
        c.add_latch("q", init=None)
        c.set_next("q", ex.var("q"))
        with pytest.raises(ValueError):
            c.simulate([])
        states = c.simulate([], initial={"q": True})
        assert states[0]["q"] is True

    def test_output_values(self):
        c = toggler()
        out = c.output_values({"q": True}, {"en": False})
        assert out == {"state": True}


class TestTrace:
    def test_valid_trace(self):
        c = toggler()
        ts = c.to_transition_system()
        tr = Trace([{"q": False}, {"q": True}], [{"en": True}])
        tr.validate(ts, ex.var("q"))
        assert tr.is_valid(ts)

    def test_bad_init_detected(self):
        ts = toggler().to_transition_system()
        tr = Trace([{"q": True}], [])
        with pytest.raises(TraceError):
            tr.validate(ts)

    def test_bad_step_detected(self):
        ts = toggler().to_transition_system()
        tr = Trace([{"q": False}, {"q": True}], [{"en": False}])
        with pytest.raises(TraceError):
            tr.validate(ts)

    def test_missing_input_detected(self):
        ts = toggler().to_transition_system()
        tr = Trace([{"q": False}, {"q": True}], [{}])
        with pytest.raises(TraceError):
            tr.validate(ts)

    def test_final_predicate_checked(self):
        ts = toggler().to_transition_system()
        tr = Trace([{"q": False}], [])
        with pytest.raises(TraceError):
            tr.validate(ts, ex.var("q"))

    def test_format_waveform(self):
        tr = Trace([{"q": False}, {"q": True}], [{}])
        assert "q" in tr.format() and "01" in tr.format()

    def test_input_count_mismatch(self):
        with pytest.raises(ValueError):
            Trace([{"q": False}, {"q": True}], [])


class TestPropertyValidation:
    def test_add_property_rejects_non_property_values(self):
        circuit = toggler()
        with pytest.raises(TypeError, match="Property"):
            circuit.add_property("spec", "AG q")      # a string, not a spec
        with pytest.raises(TypeError, match="Property"):
            circuit.add_property("spec", 42)

    def test_add_property_accepts_property_and_expr(self):
        from repro.spec import Invariant, Reachable
        circuit = toggler()
        circuit.add_property("safe", Invariant(~ex.var("q")))
        circuit.add_property("hits", ex.var("q"))     # wrapped Reachable
        assert isinstance(circuit.properties["safe"], Invariant)
        assert isinstance(circuit.properties["hits"], Reachable)

    def test_properties_are_typed_after_add_bad(self):
        from repro.spec import Property
        circuit = toggler()
        circuit.add_bad("boom", ex.var("q"))
        assert all(isinstance(p, Property)
                   for p in circuit.properties.values())
