"""Tests for the three formula encodings: (1) unroll, (2) QBF, (3) squaring.

Semantics checks go through the solvers; structural checks verify the
paper's growth and prefix-shape claims directly on the encodings.
"""

import pytest

from repro.bmc import encode_qbf, encode_squaring, encode_unrolled
from repro.logic import expr as ex
from repro.models import counter, mixer, shift_register
from repro.qbf import QdpllSolver, evaluate_qbf
from repro.sat import CdclSolver, SolveResult


@pytest.fixture(scope="module")
def small_counter():
    return counter.make(3, 5)


class TestUnrolled:
    def test_sat_at_exact_depth(self, small_counter):
        system, final, depth = small_counter
        enc = encode_unrolled(system, final, depth)
        s = CdclSolver()
        s.ensure_vars(enc.cnf.num_vars)
        s.add_clauses(enc.cnf.clauses)
        assert s.solve() is SolveResult.SAT
        trace = enc.extract_trace(s.model_value)
        trace.validate(system, final)

    def test_unsat_below_depth(self, small_counter):
        system, final, depth = small_counter
        enc = encode_unrolled(system, final, depth - 1)
        s = CdclSolver()
        s.ensure_vars(enc.cnf.num_vars)
        s.add_clauses(enc.cnf.clauses)
        assert s.solve() is SolveResult.UNSAT

    def test_within_semantics_disjunction(self, small_counter):
        system, final, depth = small_counter
        enc = encode_unrolled(system, final, depth + 2, semantics="within")
        s = CdclSolver()
        s.ensure_vars(enc.cnf.num_vars)
        s.add_clauses(enc.cnf.clauses)
        assert s.solve() is SolveResult.SAT

    def test_k0(self, small_counter):
        system, final, _ = small_counter
        zero = counter.make(3, 0)
        enc = encode_unrolled(zero[0], zero[1], 0)
        s = CdclSolver()
        s.ensure_vars(enc.cnf.num_vars)
        s.add_clauses(enc.cnf.clauses)
        assert s.solve() is SolveResult.SAT      # counter starts at 0

    def test_growth_is_linear_in_k(self):
        system, final, _ = mixer.make(8, 3)
        sizes = [encode_unrolled(system, final, k).stats()["literals"]
                 for k in (1, 2, 4, 8)]
        slope1 = sizes[1] - sizes[0]
        slope2 = (sizes[3] - sizes[2]) / 4
        assert slope1 > 0
        assert abs(slope2 - slope1) / slope1 < 0.05   # constant slope

    def test_negative_k_rejected(self, small_counter):
        system, final, _ = small_counter
        with pytest.raises(ValueError):
            encode_unrolled(system, final, -1)

    def test_non_state_final_rejected(self, small_counter):
        system, _, _ = small_counter
        with pytest.raises(ValueError):
            encode_unrolled(system, ex.var("nope"), 1)


class TestQbfEncoding:
    def test_prefix_shape(self, small_counter):
        system, final, depth = small_counter
        enc = encode_qbf(system, final, depth)
        quants = [q for q, _ in enc.pcnf.prefix]
        assert quants == ["e", "a", "e"]
        n = system.num_state_bits
        assert len(enc.pcnf.prefix[1][1]) == 2 * n     # U and V only

    def test_universal_count_constant_in_k(self, small_counter):
        system, final, _ = small_counter
        u2 = encode_qbf(system, final, 2).pcnf.num_universals()
        u9 = encode_qbf(system, final, 9).pcnf.num_universals()
        assert u2 == u9 == 2 * system.num_state_bits

    def test_semantics_small(self):
        system, final, depth = shift_register.make(4)
        for k, expected in ((depth, True), (depth - 1, False)):
            if k < 1:
                continue
            enc = encode_qbf(system, final, k)
            assert evaluate_qbf(enc.pcnf, max_vars=40) is expected \
                if enc.pcnf.matrix.num_vars <= 40 else True

    def test_qdpll_decides_tiny_instance(self):
        system, final, depth = shift_register.make(3)
        enc = encode_qbf(system, final, depth)
        assert QdpllSolver(enc.pcnf).solve() is SolveResult.SAT
        enc = encode_qbf(system, final, depth - 1)
        assert QdpllSolver(enc.pcnf).solve() is SolveResult.UNSAT

    def test_k0_rejected(self, small_counter):
        system, final, _ = small_counter
        with pytest.raises(ValueError):
            encode_qbf(system, final, 0)

    def test_growth_slope_independent_of_tr(self):
        """Formula (2)'s per-step growth must not scale with |TR|."""
        small_sys, small_final, _ = mixer.make(8, 1)
        big_sys, big_final, _ = mixer.make(8, 5)
        def slope(system, final):
            a = encode_qbf(system, final, 2).stats()["literals"]
            b = encode_qbf(system, final, 6).stats()["literals"]
            return (b - a) / 4
        assert big_sys.trans_size() > 2 * small_sys.trans_size()
        s_small = slope(small_sys, small_final)
        s_big = slope(big_sys, big_final)
        assert abs(s_big - s_small) / s_small < 0.05


class TestSquaringEncoding:
    def test_power_of_two_required(self, small_counter):
        system, final, _ = small_counter
        with pytest.raises(ValueError):
            encode_squaring(system, final, 3)
        with pytest.raises(ValueError):
            encode_squaring(system, final, 0)

    def test_alternations_grow_logarithmically(self, small_counter):
        system, final, _ = small_counter
        for k, levels in ((1, 0), (2, 1), (4, 2), (16, 4)):
            enc = encode_squaring(system, final, k)
            assert enc.levels == levels
            assert enc.pcnf.num_universals() == \
                2 * system.num_state_bits * levels

    def test_matrix_growth_logarithmic(self):
        system, final, _ = mixer.make(8, 3)
        s4 = encode_squaring(system, final, 4).stats()["literals"]
        s64 = encode_squaring(system, final, 64).stats()["literals"]
        # 16x bound increase, but only log-factor size increase.
        assert s64 < s4 * 3

    def test_semantics_k1_and_k2(self):
        system, final, depth = shift_register.make(4)
        # k=1: R_1 = TR: target at position 3 not reachable in 1 step.
        enc = encode_squaring(system, final, 1)
        assert evaluate_qbf(enc.pcnf, max_vars=30) is False
        # position 1 reachable in exactly 1 step.
        system2, final2, _ = shift_register.make(4, position=1)
        enc = encode_squaring(system2, final2, 1)
        assert evaluate_qbf(enc.pcnf, max_vars=30) is True

    def test_semantics_k2_exact(self):
        system, final, _ = shift_register.make(4, position=2)
        enc = encode_squaring(system, final, 2)
        assert QdpllSolver(enc.pcnf).solve() is SolveResult.SAT
        system1, final1, _ = shift_register.make(4, position=1)
        enc = encode_squaring(system1, final1, 2)
        assert QdpllSolver(enc.pcnf).solve() is SolveResult.UNSAT

    def test_self_loops_give_within_semantics(self):
        system, final, _ = shift_register.make(4, position=1)
        looped = system.with_self_loops()
        enc = encode_squaring(looped, final, 2)
        assert QdpllSolver(enc.pcnf).solve() is SolveResult.SAT
