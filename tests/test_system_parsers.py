"""ISCAS-89 .bench and AIGER parser tests."""

import itertools
import random

import pytest

from repro.logic import expr as ex
from repro.system import (AigerError, BenchError, Circuit, ExplicitOracle,
                          parse_aiger, parse_bench, random_circuit,
                          write_aiger)


S27ISH = """
# small sequential netlist in the s27 style
INPUT(G0)
INPUT(G1)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G10 = NAND(G0, G5)
G11 = NOR(G1, G6)
G17 = AND(G10, G11)
"""


class TestBench:
    def test_parse_structure(self):
        c = parse_bench(S27ISH, "s27ish")
        assert c.input_names == ["G0", "G1"]
        assert set(c.latch_names) == {"G5", "G6"}
        assert "G17" in c.outputs

    def test_semantics(self):
        c = parse_bench(S27ISH)
        states = c.simulate([{"G0": False, "G1": False}])
        # G10 = NAND(0, 0) = 1 -> G5 becomes 1.
        assert states[1]["G5"] is True
        assert states[1]["G6"] is True          # NOR(0, 0) = 1

    def test_comment_and_blank_lines(self):
        c = parse_bench("# nothing\n\nINPUT(a)\nOUTPUT(b)\nb = NOT(a)\n")
        assert c.input_names == ["a"]

    def test_undefined_wire(self):
        with pytest.raises(BenchError):
            parse_bench("OUTPUT(z)\nz = AND(p, q)\n")

    def test_combinational_cycle(self):
        with pytest.raises(BenchError):
            parse_bench("INPUT(a)\nOUTPUT(x)\nx = AND(y, a)\ny = AND(x, a)\n")

    def test_unknown_gate(self):
        with pytest.raises(BenchError):
            parse_bench("INPUT(a)\nOUTPUT(b)\nb = MAJ3(a, a, a)\n")

    def test_xor_gates(self):
        c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(x)\nx = XNOR(a, b)\n")
        vals = c.output_values({}, {"a": True, "b": True})
        assert vals["x"] is True


AIG_TOGGLE = """aag 3 1 1 1 1
2
4 6
4
6 5 3
i0 en
l0 q
o0 out
"""


class TestAiger:
    def test_parse_toggle(self):
        c = parse_aiger(AIG_TOGGLE)
        assert c.input_names == ["en"]
        assert c.latch_names == ["q"]
        # next(q) = AND(~q, ~en)... literal 6 = and(5, 3) = ~q & ~en
        states = c.simulate([{"en": False}, {"en": False}])
        assert [s["q"] for s in states] == [False, True, False]

    def test_bad_header(self):
        with pytest.raises(AigerError):
            parse_aiger("aig 1 0 0 0 1\n")

    def test_forward_reference_rejected(self):
        bad = "aag 2 0 0 1 2\n2\n2 4 4\n4 2 2\n"
        with pytest.raises(AigerError):
            parse_aiger(bad)

    def test_round_trip_random_circuits(self):
        rng = random.Random(21)
        for _ in range(15):
            c = random_circuit(rng, num_latches=3, num_inputs=1, depth=3)
            c.add_bad("b", ex.var("s0") & ex.var("s2"))
            text = write_aiger(c)
            back = parse_aiger(text)
            o1 = ExplicitOracle(c.to_transition_system())
            o2 = ExplicitOracle(back.to_transition_system())
            assert set(o1.initial_states) == set(o2.initial_states)
            for state in o1._succ:
                assert o1.successors(state) == o2.successors(state)
            # bad expressions survive the round trip semantically
            assert set(back.bad) == {"b"}
            for bits in itertools.product([False, True], repeat=3):
                env = {f"s{i}": b for i, b in enumerate(bits)}
                assert (c.bad["b"].evaluate(env)
                        == back.bad["b"].evaluate(env))

    def test_uninitialized_latch_round_trip(self):
        c = Circuit("u")
        c.add_latch("q", init=None)
        c.set_next("q", ex.var("q"))
        back = parse_aiger(write_aiger(c))
        assert back._init_values["q"] is None
