"""ISCAS-89 ``.bench`` netlist parser.

The ``.bench`` format is the classic sequential-benchmark exchange
format (s27, s344, ...).  Supported constructs::

    INPUT(a)
    OUTPUT(z)
    q = DFF(d)
    z = AND(a, b)        # also OR, NAND, NOR, XOR, XNOR, NOT, BUFF

DFFs power up to 0 by default (``init_value`` overrides).  The parser
produces a :class:`repro.system.circuit.Circuit`; combinational gates
become expression DAG nodes, so repeated fan-out is shared.
"""

from __future__ import annotations

import io
import re
from typing import Dict, List, TextIO, Tuple

from ..logic import expr as ex
from ..logic.expr import Expr
from .circuit import Circuit

__all__ = ["parse_bench", "BenchError"]


class BenchError(ValueError):
    """Raised on malformed .bench input."""


_LINE = re.compile(r"^\s*(\w+)\s*=\s*(\w+)\s*\(([^)]*)\)\s*$")
_DECL = re.compile(r"^\s*(INPUT|OUTPUT)\s*\(\s*([^)\s]+)\s*\)\s*$",
                   re.IGNORECASE)

_GATES = {
    "AND": lambda args: ex.mk_and(*args),
    "OR": lambda args: ex.mk_or(*args),
    "NAND": lambda args: ex.mk_not(ex.mk_and(*args)),
    "NOR": lambda args: ex.mk_not(ex.mk_or(*args)),
    "XOR": lambda args: _xor_chain(args),
    "XNOR": lambda args: ex.mk_not(_xor_chain(args)),
    "NOT": lambda args: ex.mk_not(_only(args)),
    "BUFF": lambda args: _only(args),
    "BUF": lambda args: _only(args),
}


def _only(args: List[Expr]) -> Expr:
    if len(args) != 1:
        raise BenchError(f"gate expects one operand, got {len(args)}")
    return args[0]


def _xor_chain(args: List[Expr]) -> Expr:
    if not args:
        raise BenchError("XOR with no operands")
    out = args[0]
    for a in args[1:]:
        out = ex.mk_xor(out, a)
    return out


def parse_bench(source: str | TextIO, name: str = "bench",
                init_value: bool | None = False) -> Circuit:
    """Parse a ``.bench`` netlist into a :class:`Circuit`.

    ``init_value`` is the power-up value given to every DFF (None keeps
    the initial state unconstrained, the strict ISCAS-89 reading).
    """
    stream = io.StringIO(source) if isinstance(source, str) else source
    inputs: List[str] = []
    outputs: List[str] = []
    gate_defs: Dict[str, Tuple[str, List[str]]] = {}
    dffs: Dict[str, str] = {}           # latch name -> data wire

    for raw in stream:
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        decl = _DECL.match(line)
        if decl:
            kind, wire = decl.group(1).upper(), decl.group(2)
            (inputs if kind == "INPUT" else outputs).append(wire)
            continue
        m = _LINE.match(line)
        if not m:
            raise BenchError(f"cannot parse line: {line!r}")
        lhs, gate, operand_text = m.group(1), m.group(2).upper(), m.group(3)
        operands = [t.strip() for t in operand_text.split(",") if t.strip()]
        if gate == "DFF":
            if len(operands) != 1:
                raise BenchError(f"DFF expects one operand: {line!r}")
            dffs[lhs] = operands[0]
        elif gate in _GATES:
            gate_defs[lhs] = (gate, operands)
        else:
            raise BenchError(f"unknown gate {gate!r} in line {line!r}")

    circuit = Circuit(name)
    for wire in inputs:
        circuit.add_input(wire)
    for latch in dffs:
        circuit.add_latch(latch, init=init_value)

    # Resolve combinational wires to expressions (iterative, memoized).
    cache: Dict[str, Expr] = {w: ex.var(w) for w in inputs}
    cache.update({l: ex.var(l) for l in dffs})

    def resolve(wire: str) -> Expr:
        if wire in cache:
            return cache[wire]
        stack = [wire]
        on_stack = {wire}
        while stack:
            top = stack[-1]
            if top in cache:
                on_stack.discard(top)
                stack.pop()
                continue
            if top not in gate_defs:
                raise BenchError(f"undefined wire {top!r}")
            gate, operands = gate_defs[top]
            missing = [op for op in operands if op not in cache]
            if missing:
                cycle = [op for op in missing if op in on_stack]
                if cycle:
                    raise BenchError(f"combinational cycle at {cycle[0]!r}")
                stack.extend(missing)
                on_stack.update(missing)
                continue
            cache[top] = _GATES[gate]([cache[op] for op in operands])
            on_stack.discard(top)
            stack.pop()
        return cache[wire]

    for latch, data in dffs.items():
        circuit.set_next(latch, resolve(data))
    for wire in outputs:
        circuit.add_output(wire, resolve(wire))
    return circuit
