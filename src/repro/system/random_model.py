"""Random transition-system generation for property-based tests.

The generator produces small, well-formed systems with controllable
state width, input count and next-state expression depth.  The test
suite drives all four BMC methods over these systems and compares them
against the explicit-state oracle.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from ..logic import expr as ex
from ..logic.expr import Expr
from .circuit import Circuit
from .model import TransitionSystem

__all__ = ["random_circuit", "random_system", "random_predicate"]


def random_expr(rng: random.Random, leaves: List[Expr], depth: int) -> Expr:
    """A random expression over the given leaves."""
    if depth <= 0 or rng.random() < 0.25:
        leaf = rng.choice(leaves)
        return ex.mk_not(leaf) if rng.random() < 0.5 else leaf
    op = rng.choice(["and", "or", "xor", "ite", "not"])
    if op == "not":
        return ex.mk_not(random_expr(rng, leaves, depth - 1))
    if op == "ite":
        return ex.mk_ite(random_expr(rng, leaves, depth - 1),
                         random_expr(rng, leaves, depth - 1),
                         random_expr(rng, leaves, depth - 1))
    arity = rng.randint(2, 3)
    args = [random_expr(rng, leaves, depth - 1) for _ in range(arity)]
    return ex.mk_and(*args) if op == "and" else ex.mk_or(*args)


def random_circuit(rng: random.Random, num_latches: int = 3,
                   num_inputs: int = 1, depth: int = 3) -> Circuit:
    """A random sequential circuit with deterministic latch updates."""
    circuit = Circuit(f"random{rng.randrange(1 << 30)}")
    leaves: List[Expr] = []
    for i in range(num_inputs):
        leaves.append(circuit.add_input(f"x{i}"))
    for i in range(num_latches):
        leaves.append(circuit.add_latch(f"s{i}", init=rng.random() < 0.5))
    for i in range(num_latches):
        circuit.set_next(f"s{i}", random_expr(rng, leaves, depth))
    return circuit


def random_system(rng: random.Random, num_latches: int = 3,
                  num_inputs: int = 1, depth: int = 3) -> TransitionSystem:
    """A random transition system (compiled random circuit)."""
    return random_circuit(rng, num_latches, num_inputs, depth) \
        .to_transition_system()


def random_predicate(rng: random.Random, system: TransitionSystem,
                     depth: int = 2) -> Expr:
    """A random state predicate over the system's state variables.

    Avoids the constants, so both SAT and UNSAT queries occur.
    """
    leaves = [ex.var(v) for v in system.state_vars]
    for _ in range(16):
        candidate = random_expr(rng, leaves, depth)
        if not candidate.is_const:
            return candidate
    # Extremely unlikely fallback: single variable.
    return leaves[0]
