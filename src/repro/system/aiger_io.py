"""AIGER reading and writing — ASCII (``aag``) and binary (``aig``).

Supports the AIGER 1.0 header ``aag M I L O A`` and the 1.9 extension
``aag M I L O A B`` (bad-state properties), plus latch reset values and
the symbol table (``i0/l0/o0/b0`` lines).  Binary ``aig`` files use the
standard compact encoding: inputs and latches get implicit consecutive
literals, and each AND gate is a pair of LEB128 delta-encoded operands
(``delta0 = lhs - rhs0``, ``delta1 = rhs0 - rhs1``) — the layout every
HWMCC distribution ships.

Reading produces a :class:`repro.system.circuit.Circuit` whose latch
update functions are the AIG cones converted back to expression DAGs.
"""

from __future__ import annotations

import io
import os
from typing import Dict, List, Optional, Sequence, TextIO, Tuple

from ..logic import expr as ex
from ..logic.aig import AIG, aig_to_expr
from .circuit import Circuit

__all__ = ["parse_aiger", "parse_aiger_binary", "load_aiger",
           "write_aiger", "write_aiger_binary", "AigerError"]


class AigerError(ValueError):
    """Raised on malformed AIGER input."""


# ----------------------------------------------------------------------
# Shared assembly: literal tables -> Circuit
# ----------------------------------------------------------------------
def _assemble(name: str,
              max_var: int,
              input_lits: List[int],
              latch_lits: List[int],
              latch_next: List[int],
              latch_init: List[Optional[bool]],
              output_lits: List[int],
              bad_lits: List[int],
              and_rows: Sequence[Tuple[int, int, int]],
              symbols: Dict[str, str]) -> Circuit:
    aig = AIG()
    lit_names: Dict[int, str] = {}
    for idx, lit in enumerate(input_lits):
        if lit % 2 or lit == 0:
            raise AigerError(f"invalid input literal {lit}")
        lit_names[lit] = symbols.get(f"i{idx}", f"in{idx}")
    for idx, lit in enumerate(latch_lits):
        if lit % 2 or lit == 0:
            raise AigerError(f"invalid latch literal {lit}")
        lit_names[lit] = symbols.get(f"l{idx}", f"latch{idx}")

    # Rebuild the AIG's internal tables so literal numbering matches.
    aig._num_vars = max_var
    for lhs, a, b in and_rows:
        if lhs % 2 or lhs == 0:
            raise AigerError(f"invalid and literal {lhs}")
        if a >= lhs or b >= lhs:
            # The expression rebuilder relies on topological numbering,
            # which the AIGER format mandates anyway.
            raise AigerError(f"and gate {lhs} uses a later literal")
        lo, hi = (a, b) if a <= b else (b, a)
        aig._and_defs[lhs // 2] = (lo, hi)
        aig._strash[(lo, hi)] = lhs

    circuit = Circuit(name)
    leaf_names = dict(lit_names)
    for lit in input_lits:
        circuit.add_input(leaf_names[lit])
    for idx, lit in enumerate(latch_lits):
        circuit.add_latch(leaf_names[lit], init=latch_init[idx])
    for idx, lit in enumerate(latch_lits):
        circuit.set_next(leaf_names[lit],
                         aig_to_expr(aig, latch_next[idx], leaf_names))
    for idx, lit in enumerate(output_lits):
        label = symbols.get(f"o{idx}", f"out{idx}")
        circuit.add_output(label, aig_to_expr(aig, lit, leaf_names))
    for idx, lit in enumerate(bad_lits):
        label = symbols.get(f"b{idx}", f"bad{idx}")
        circuit.add_bad(label, aig_to_expr(aig, lit, leaf_names))
    return circuit


def _parse_reset(raw: Optional[int], lit: int) -> Optional[bool]:
    """AIGER reset field: 0/1 are concrete, own-literal = unconstrained."""
    if raw is None:
        return False
    reset = {0: False, 1: True}.get(raw)
    if reset is None and raw != lit:
        raise AigerError(f"invalid reset value {raw}")
    return reset


def _read_symbols(lines) -> Dict[str, str]:
    symbols: Dict[str, str] = {}
    for line in lines:
        line = line.strip()
        if line == "c":
            break
        if not line:
            continue
        key, _, label = line.partition(" ")
        if label:
            symbols[key] = label
    return symbols


# ----------------------------------------------------------------------
# ASCII read
# ----------------------------------------------------------------------
def parse_aiger(source: str | TextIO, name: str = "aiger") -> Circuit:
    """Parse an ASCII AIGER file into a Circuit."""
    stream = io.StringIO(source) if isinstance(source, str) else source
    header = stream.readline().split()
    if len(header) not in (6, 7) or header[0] != "aag":
        raise AigerError(f"bad header: {' '.join(header)}")
    try:
        max_var, n_in, n_latch, n_out, n_and = (int(x) for x in header[1:6])
        n_bad = int(header[6]) if len(header) == 7 else 0
    except ValueError as exc:
        raise AigerError("non-numeric header field") from exc

    def read_ints(count: int, what: str) -> List[List[int]]:
        rows = []
        for _ in range(count):
            line = stream.readline()
            if not line:
                raise AigerError(f"unexpected EOF in {what}")
            rows.append([int(t) for t in line.split()])
        return rows

    input_rows = read_ints(n_in, "inputs")
    latch_rows = read_ints(n_latch, "latches")
    output_rows = read_ints(n_out, "outputs")
    bad_rows = read_ints(n_bad, "bad")
    and_rows = read_ints(n_and, "ands")
    symbols = _read_symbols(stream)

    input_lits = [row[0] for row in input_rows]
    latch_lits = [row[0] for row in latch_rows]
    latch_next = [row[1] for row in latch_rows]
    latch_init = [_parse_reset(row[2] if len(row) >= 3 else None, row[0])
                  for row in latch_rows]
    ands: List[Tuple[int, int, int]] = []
    for row in and_rows:
        if len(row) != 3:
            raise AigerError(f"bad and line: {row}")
        ands.append((row[0], row[1], row[2]))
    return _assemble(name, max_var, input_lits, latch_lits, latch_next,
                     latch_init, [r[0] for r in output_rows],
                     [r[0] for r in bad_rows], ands, symbols)


# ----------------------------------------------------------------------
# Binary read
# ----------------------------------------------------------------------
def _decode_leb128(data: bytes, pos: int) -> Tuple[int, int]:
    """Decode one LEB128 varint; returns (value, next position)."""
    value = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise AigerError("unexpected EOF in binary and section")
        byte = data[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7


def parse_aiger_binary(data: bytes, name: str = "aiger") -> Circuit:
    """Parse a binary (``aig``) AIGER file into a Circuit.

    Inputs occupy implicit literals ``2..2I``; latch ``i`` is literal
    ``2(I+1+i)``; AND gate ``i`` defines literal ``2(I+L+1+i)`` from two
    LEB128 deltas.  Latch lines carry only the next-state literal and an
    optional reset.
    """
    newline = data.find(b"\n")
    if newline < 0:
        raise AigerError("missing header line")
    header = data[:newline].decode("ascii", "replace").split()
    if len(header) not in (6, 7) or header[0] != "aig":
        raise AigerError(f"bad header: {' '.join(header)}")
    try:
        max_var, n_in, n_latch, n_out, n_and = (int(x) for x in header[1:6])
        n_bad = int(header[6]) if len(header) == 7 else 0
    except ValueError as exc:
        raise AigerError("non-numeric header field") from exc
    if max_var != n_in + n_latch + n_and:
        raise AigerError(
            f"binary header M={max_var} != I+L+A={n_in + n_latch + n_and}")

    pos = newline + 1

    def read_line() -> List[int]:
        nonlocal pos
        end = data.find(b"\n", pos)
        if end < 0:
            raise AigerError("unexpected EOF in ASCII section")
        row = [int(t) for t in data[pos:end].split()]
        pos = end + 1
        return row

    input_lits = [2 * (i + 1) for i in range(n_in)]
    latch_lits = [2 * (n_in + 1 + i) for i in range(n_latch)]
    latch_next: List[int] = []
    latch_init: List[Optional[bool]] = []
    for idx in range(n_latch):
        row = read_line()
        if not row:
            raise AigerError(f"empty latch line {idx}")
        latch_next.append(row[0])
        latch_init.append(_parse_reset(row[1] if len(row) >= 2 else None,
                                       latch_lits[idx]))
    output_lits = [read_line()[0] for _ in range(n_out)]
    bad_lits = [read_line()[0] for _ in range(n_bad)]

    ands: List[Tuple[int, int, int]] = []
    for i in range(n_and):
        lhs = 2 * (n_in + n_latch + 1 + i)
        delta0, pos = _decode_leb128(data, pos)
        delta1, pos = _decode_leb128(data, pos)
        rhs0 = lhs - delta0
        rhs1 = rhs0 - delta1
        if rhs0 < 0 or rhs1 < 0:
            raise AigerError(f"and gate {lhs}: delta underflows")
        ands.append((lhs, rhs0, rhs1))

    symbols = _read_symbols(
        io.StringIO(data[pos:].decode("ascii", "replace")))
    return _assemble(name, max_var, input_lits, latch_lits, latch_next,
                     latch_init, output_lits, bad_lits, ands, symbols)


def load_aiger(path: str | os.PathLike) -> Circuit:
    """Load an AIGER file, sniffing ASCII vs binary from the header."""
    name = os.path.splitext(os.path.basename(os.fspath(path)))[0]
    with open(path, "rb") as handle:
        data = handle.read()
    if data.startswith(b"aig "):
        return parse_aiger_binary(data, name)
    return parse_aiger(data.decode("ascii", "replace"), name)


# ----------------------------------------------------------------------
# Write (shared AIG construction)
# ----------------------------------------------------------------------
def _circuit_to_aig(circuit: Circuit):
    """Build the shared AIG for a circuit.

    Returns ``(aig, latch_literal, latch_out_lits, output_items,
    output_lits, bad_items, bad_lits, input_lits)`` with inputs and
    latches laid out in declaration order (the AIGER variable layout).
    """
    roots: List[ex.Expr] = []
    for latch in circuit.latch_names:
        nxt = circuit._next_exprs[latch]
        if nxt is None:
            raise AigerError(f"latch {latch!r} has no next-state function")
        roots.append(nxt)
    output_items = list(circuit.outputs.items())
    bad_items = list(circuit.bad.items())
    roots.extend(expr for _, expr in output_items)
    roots.extend(expr for _, expr in bad_items)

    aig = AIG()
    leaf_lit: Dict[str, int] = {}
    for wire in circuit.input_names:
        leaf_lit[wire] = aig.add_input(wire)
    latch_literal: Dict[str, int] = {}
    for latch in circuit.latch_names:
        lit = aig.add_latch(latch, init=circuit._init_values[latch])
        leaf_lit[latch] = lit
        latch_literal[latch] = lit

    cache: Dict[int, int] = {}

    def build(node: ex.Expr) -> int:
        for sub in node.iter_dag():
            if sub.uid in cache:
                continue
            if sub.is_const:
                cache[sub.uid] = 1 if sub.value else 0
            elif sub.is_var:
                assert sub.name is not None
                if sub.name not in leaf_lit:
                    raise AigerError(f"free wire {sub.name!r} in expression")
                cache[sub.uid] = leaf_lit[sub.name]
            elif sub.op == "not":
                cache[sub.uid] = cache[sub.args[0].uid] ^ 1
            elif sub.op == "and":
                acc = 1
                for child in sub.args:
                    acc = aig.mk_and(acc, cache[child.uid])
                cache[sub.uid] = acc
            elif sub.op == "or":
                acc = 0
                for child in sub.args:
                    acc = aig.mk_or(acc, cache[child.uid])
                cache[sub.uid] = acc
            elif sub.op == "xor":
                a, b = (cache[c.uid] for c in sub.args)
                cache[sub.uid] = aig.mk_xor(a, b)
            elif sub.op == "iff":
                a, b = (cache[c.uid] for c in sub.args)
                cache[sub.uid] = aig.mk_xor(a, b) ^ 1
            elif sub.op == "ite":
                c, t, e = (cache[x.uid] for x in sub.args)
                cache[sub.uid] = aig.mk_ite(c, t, e)
            else:
                raise AigerError(f"unknown operator {sub.op!r}")
        return cache[node.uid]

    root_lits = [build(r) for r in roots]
    n_latch = len(circuit.latch_names)
    latch_out_lits = root_lits[:n_latch]
    output_lits = root_lits[n_latch:n_latch + len(output_items)]
    bad_lits = root_lits[n_latch + len(output_items):]
    input_lits = [leaf_lit[w] for w in circuit.input_names]
    return (aig, latch_literal, latch_out_lits, output_items, output_lits,
            bad_items, bad_lits, input_lits)


def write_aiger(circuit: Circuit) -> str:
    """Serialize a Circuit to ASCII AIGER (aag, with bad lines if any).

    Latch updates, outputs and bad expressions are rebuilt into a single
    shared AIG; inputs and latches keep their declaration order.
    """
    (aig, latch_literal, latch_out_lits, output_items, output_lits,
     bad_items, bad_lits, input_lits) = _circuit_to_aig(circuit)

    lines = [f"aag {aig.num_vars} {len(circuit.input_names)} "
             f"{len(circuit.latch_names)} "
             f"{len(output_items)} {aig.num_ands}"
             + (f" {len(bad_items)}" if bad_items else "")]
    for lit in input_lits:
        lines.append(str(lit))
    for latch, next_lit in zip(circuit.latch_names, latch_out_lits):
        init = circuit._init_values[latch]
        lit = latch_literal[latch]
        if init is False:
            lines.append(f"{lit} {next_lit}")
        elif init is True:
            lines.append(f"{lit} {next_lit} 1")
        else:
            lines.append(f"{lit} {next_lit} {lit}")
    for lit in output_lits:
        lines.append(str(lit))
    for lit in bad_lits:
        lines.append(str(lit))
    for lhs, a, b in aig.iter_ands():
        lines.append(f"{lhs} {b} {a}" if a < b else f"{lhs} {a} {b}")
    for idx, wire in enumerate(circuit.input_names):
        lines.append(f"i{idx} {wire}")
    for idx, latch in enumerate(circuit.latch_names):
        lines.append(f"l{idx} {latch}")
    for idx, (label, _) in enumerate(output_items):
        lines.append(f"o{idx} {label}")
    for idx, (label, _) in enumerate(bad_items):
        lines.append(f"b{idx} {label}")
    return "\n".join(lines) + "\n"


def _encode_leb128(value: int) -> bytes:
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def write_aiger_binary(circuit: Circuit) -> bytes:
    """Serialize a Circuit to binary AIGER (``aig``).

    The shared AIG already numbers variables inputs-first, latches
    second, ANDs last and topologically — exactly the layout the binary
    format mandates — so gates emit as consecutive delta pairs.
    """
    (aig, latch_literal, latch_out_lits, output_items, output_lits,
     bad_items, bad_lits, _input_lits) = _circuit_to_aig(circuit)

    n_in = len(circuit.input_names)
    n_latch = len(circuit.latch_names)
    header = (f"aig {aig.num_vars} {n_in} {n_latch} "
              f"{len(output_items)} {aig.num_ands}"
              + (f" {len(bad_items)}" if bad_items else ""))
    chunks: List[bytes] = [header.encode("ascii"), b"\n"]
    for latch, next_lit in zip(circuit.latch_names, latch_out_lits):
        init = circuit._init_values[latch]
        lit = latch_literal[latch]
        if init is False:
            line = f"{next_lit}"
        elif init is True:
            line = f"{next_lit} 1"
        else:
            line = f"{next_lit} {lit}"
        chunks.append(line.encode("ascii") + b"\n")
    for lit in output_lits:
        chunks.append(f"{lit}\n".encode("ascii"))
    for lit in bad_lits:
        chunks.append(f"{lit}\n".encode("ascii"))
    for lhs, a, b in aig.iter_ands():
        rhs0, rhs1 = (a, b) if a >= b else (b, a)
        chunks.append(_encode_leb128(lhs - rhs0))
        chunks.append(_encode_leb128(rhs0 - rhs1))
    for idx, wire in enumerate(circuit.input_names):
        chunks.append(f"i{idx} {wire}\n".encode("ascii"))
    for idx, latch in enumerate(circuit.latch_names):
        chunks.append(f"l{idx} {latch}\n".encode("ascii"))
    for idx, (label, _) in enumerate(output_items):
        chunks.append(f"o{idx} {label}\n".encode("ascii"))
    for idx, (label, _) in enumerate(bad_items):
        chunks.append(f"b{idx} {label}\n".encode("ascii"))
    return b"".join(chunks)
