"""AIGER ASCII (``aag``) reading and writing.

Supports the AIGER 1.0 header ``aag M I L O A`` and the 1.9 extension
``aag M I L O A B`` (bad-state properties), plus latch reset values and
the symbol table (``i0/l0/o0/b0`` lines).  Binary ``aig`` files are out
of scope — the synthetic suite exchanges ASCII only.

Reading produces a :class:`repro.system.circuit.Circuit` whose latch
update functions are the AIG cones converted back to expression DAGs.
"""

from __future__ import annotations

import io
from typing import Dict, List, TextIO

from ..logic import expr as ex
from ..logic.aig import AIG, aig_from_expr, aig_to_expr
from .circuit import Circuit

__all__ = ["parse_aiger", "write_aiger", "AigerError"]


class AigerError(ValueError):
    """Raised on malformed AIGER input."""


def parse_aiger(source: str | TextIO, name: str = "aiger") -> Circuit:
    """Parse an ASCII AIGER file into a Circuit."""
    stream = io.StringIO(source) if isinstance(source, str) else source
    header = stream.readline().split()
    if len(header) not in (6, 7) or header[0] != "aag":
        raise AigerError(f"bad header: {' '.join(header)}")
    try:
        max_var, n_in, n_latch, n_out, n_and = (int(x) for x in header[1:6])
        n_bad = int(header[6]) if len(header) == 7 else 0
    except ValueError as exc:
        raise AigerError("non-numeric header field") from exc

    def read_ints(count: int, what: str) -> List[List[int]]:
        rows = []
        for _ in range(count):
            line = stream.readline()
            if not line:
                raise AigerError(f"unexpected EOF in {what}")
            rows.append([int(t) for t in line.split()])
        return rows

    input_rows = read_ints(n_in, "inputs")
    latch_rows = read_ints(n_latch, "latches")
    output_rows = read_ints(n_out, "outputs")
    bad_rows = read_ints(n_bad, "bad")
    and_rows = read_ints(n_and, "ands")

    # Symbol table + comments.
    symbols: Dict[str, str] = {}
    for line in stream:
        line = line.strip()
        if line == "c":
            break
        if not line:
            continue
        key, _, label = line.partition(" ")
        if label:
            symbols[key] = label

    aig = AIG()
    lit_names: Dict[int, str] = {}
    input_lits: List[int] = []
    for idx, row in enumerate(input_rows):
        lit = row[0]
        if lit % 2 or lit == 0:
            raise AigerError(f"invalid input literal {lit}")
        wire = symbols.get(f"i{idx}", f"in{idx}")
        input_lits.append(lit)
        lit_names[lit] = wire
    latch_lits: List[int] = []
    latch_next: List[int] = []
    latch_init: List[bool | None] = []
    for idx, row in enumerate(latch_rows):
        lit = row[0]
        if lit % 2 or lit == 0:
            raise AigerError(f"invalid latch literal {lit}")
        nxt = row[1]
        reset: bool | None = False
        if len(row) >= 3:
            reset = {0: False, 1: True}.get(row[2])
            if reset is None and row[2] != lit:
                raise AigerError(f"invalid reset value {row[2]}")
        wire = symbols.get(f"l{idx}", f"latch{idx}")
        latch_lits.append(lit)
        latch_next.append(nxt)
        latch_init.append(reset)
        lit_names[lit] = wire

    # Rebuild the AIG's internal tables so literal numbering matches.
    aig._num_vars = max_var
    for lhs_row in and_rows:
        if len(lhs_row) != 3:
            raise AigerError(f"bad and line: {lhs_row}")
        lhs, a, b = lhs_row
        if lhs % 2 or lhs == 0:
            raise AigerError(f"invalid and literal {lhs}")
        if a >= lhs or b >= lhs:
            # The expression rebuilder relies on topological numbering,
            # which the AIGER format mandates anyway.
            raise AigerError(f"and gate {lhs} uses a later literal")
        lo, hi = (a, b) if a <= b else (b, a)
        aig._and_defs[lhs // 2] = (lo, hi)
        aig._strash[(lo, hi)] = lhs

    circuit = Circuit(name)
    leaf_names = dict(lit_names)
    for lit in input_lits:
        circuit.add_input(leaf_names[lit])
    for idx, lit in enumerate(latch_lits):
        circuit.add_latch(leaf_names[lit], init=latch_init[idx])
    for idx, lit in enumerate(latch_lits):
        circuit.set_next(leaf_names[lit],
                         aig_to_expr(aig, latch_next[idx], leaf_names))
    for idx, row in enumerate(output_rows):
        label = symbols.get(f"o{idx}", f"out{idx}")
        circuit.add_output(label, aig_to_expr(aig, row[0], leaf_names))
    for idx, row in enumerate(bad_rows):
        label = symbols.get(f"b{idx}", f"bad{idx}")
        circuit.add_bad(label, aig_to_expr(aig, row[0], leaf_names))
    return circuit


def write_aiger(circuit: Circuit) -> str:
    """Serialize a Circuit to ASCII AIGER (aag, with bad lines if any).

    Latch updates, outputs and bad expressions are rebuilt into a single
    shared AIG; inputs and latches keep their declaration order.
    """
    roots: List[ex.Expr] = []
    for latch in circuit.latch_names:
        nxt = circuit._next_exprs[latch]
        if nxt is None:
            raise AigerError(f"latch {latch!r} has no next-state function")
        roots.append(nxt)
    output_items = list(circuit.outputs.items())
    bad_items = list(circuit.bad.items())
    roots.extend(expr for _, expr in output_items)
    roots.extend(expr for _, expr in bad_items)

    # Build the AIG with inputs forced into declaration order: inputs
    # first, then latches (AIGER requires this variable layout).
    aig = AIG()
    leaf_lit: Dict[str, int] = {}
    for wire in circuit.input_names:
        leaf_lit[wire] = aig.add_input(wire)
    latch_literal: Dict[str, int] = {}
    for latch in circuit.latch_names:
        lit = aig.add_latch(latch, init=circuit._init_values[latch])
        leaf_lit[latch] = lit
        latch_literal[latch] = lit

    cache: Dict[int, int] = {}

    def build(node: ex.Expr) -> int:
        for sub in node.iter_dag():
            if sub.uid in cache:
                continue
            if sub.is_const:
                cache[sub.uid] = 1 if sub.value else 0
            elif sub.is_var:
                assert sub.name is not None
                if sub.name not in leaf_lit:
                    raise AigerError(f"free wire {sub.name!r} in expression")
                cache[sub.uid] = leaf_lit[sub.name]
            elif sub.op == "not":
                cache[sub.uid] = cache[sub.args[0].uid] ^ 1
            elif sub.op == "and":
                acc = 1
                for child in sub.args:
                    acc = aig.mk_and(acc, cache[child.uid])
                cache[sub.uid] = acc
            elif sub.op == "or":
                acc = 0
                for child in sub.args:
                    acc = aig.mk_or(acc, cache[child.uid])
                cache[sub.uid] = acc
            elif sub.op == "xor":
                a, b = (cache[c.uid] for c in sub.args)
                cache[sub.uid] = aig.mk_xor(a, b)
            elif sub.op == "iff":
                a, b = (cache[c.uid] for c in sub.args)
                cache[sub.uid] = aig.mk_xor(a, b) ^ 1
            elif sub.op == "ite":
                c, t, e = (cache[x.uid] for x in sub.args)
                cache[sub.uid] = aig.mk_ite(c, t, e)
            else:
                raise AigerError(f"unknown operator {sub.op!r}")
        return cache[node.uid]

    root_lits = [build(r) for r in roots]
    n_latch = len(circuit.latch_names)
    latch_out_lits = root_lits[:n_latch]
    output_lits = root_lits[n_latch:n_latch + len(output_items)]
    bad_lits = root_lits[n_latch + len(output_items):]

    lines = [f"aag {aig.num_vars} {len(circuit.input_names)} {n_latch} "
             f"{len(output_items)} {aig.num_ands}"
             + (f" {len(bad_items)}" if bad_items else "")]
    for wire in circuit.input_names:
        lines.append(str(leaf_lit[wire]))
    for latch, next_lit in zip(circuit.latch_names, latch_out_lits):
        init = circuit._init_values[latch]
        lit = latch_literal[latch]
        if init is False:
            lines.append(f"{lit} {next_lit}")
        elif init is True:
            lines.append(f"{lit} {next_lit} 1")
        else:
            lines.append(f"{lit} {next_lit} {lit}")
    for lit in output_lits:
        lines.append(str(lit))
    for lit in bad_lits:
        lines.append(str(lit))
    for lhs, a, b in aig.iter_ands():
        lines.append(f"{lhs} {b} {a}" if a < b else f"{lhs} {a} {b}")
    for idx, wire in enumerate(circuit.input_names):
        lines.append(f"i{idx} {wire}")
    for idx, latch in enumerate(circuit.latch_names):
        lines.append(f"l{idx} {latch}")
    for idx, (label, _) in enumerate(output_items):
        lines.append(f"o{idx} {label}")
    for idx, (label, _) in enumerate(bad_items):
        lines.append(f"b{idx} {label}")
    return "\n".join(lines) + "\n"
