"""Sequential-circuit netlists (latches + combinational logic).

:class:`Circuit` is the RTL-flavoured front end of the library: the 13
benchmark designs (:mod:`repro.models`) are built with it, and the
``.bench`` / AIGER readers produce it.  A circuit compiles to the
:class:`repro.system.model.TransitionSystem` the BMC engines consume.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from ..logic import expr as ex
from ..logic.expr import Expr
from .model import TransitionSystem, primed

if TYPE_CHECKING:  # pragma: no cover - import cycle at runtime only
    from ..spec.property import Property

__all__ = ["Circuit"]


class Circuit:
    """A synchronous sequential circuit.

    * **inputs** — primary inputs (free Boolean wires each cycle);
    * **latches** — state elements with a reset value (True/False, or
      None for an unconstrained initial value) and a next-state
      expression over inputs and latch outputs;
    * **outputs** — named combinational functions (observability only);
    * **bad** — named safety targets: the model checker asks whether a
      state satisfying a bad expression is reachable;
    * **properties** — named :class:`repro.spec.property.Property`
      specifications.  Every ``add_bad`` contributes its ``Reachable``
      form automatically; richer bounded-LTL properties attach via
      :meth:`add_property` (the SMV front end maps ``SPEC`` /
      ``INVARSPEC`` here).

    Example
    -------
    >>> c = Circuit("toggler")
    >>> en = c.add_input("en")
    >>> q = c.add_latch("q", init=False)
    >>> c.set_next("q", q ^ en)
    >>> c.add_bad("stuck", q & ~q)   # trivially unreachable
    >>> ts = c.to_transition_system()
    """

    def __init__(self, name: str = "circuit") -> None:
        self.name = name
        self.input_names: List[str] = []
        self.latch_names: List[str] = []
        self._init_values: Dict[str, Optional[bool]] = {}
        self._next_exprs: Dict[str, Optional[Expr]] = {}
        self.outputs: Dict[str, Expr] = {}
        self.bad: Dict[str, Expr] = {}
        self.properties: Dict[str, "Property"] = {}
        self.constraints: List[Expr] = []          # invariants assumed on TR

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_input(self, name: str) -> Expr:
        """Declare a primary input; returns its wire expression."""
        self._check_fresh(name)
        self.input_names.append(name)
        return ex.var(name)

    def add_latch(self, name: str, init: Optional[bool] = False) -> Expr:
        """Declare a latch; returns its output wire expression.

        ``init`` None means the initial value is unconstrained.
        """
        self._check_fresh(name)
        self.latch_names.append(name)
        self._init_values[name] = init
        self._next_exprs[name] = None
        return ex.var(name)

    def set_next(self, latch_name: str, next_expr: Expr) -> None:
        """Define the next-state function of a latch."""
        if latch_name not in self._next_exprs:
            raise KeyError(f"unknown latch {latch_name!r}")
        self._next_exprs[latch_name] = next_expr

    def add_output(self, name: str, expression: Expr) -> None:
        """Declare a named combinational output (observability only)."""
        self.outputs[name] = expression

    def add_bad(self, name: str, expression: Expr) -> None:
        """Declare a safety target (a set of bad states to reach).

        The target is also registered as the named property
        ``Reachable(expression)``, so circuit-level bads flow straight
        into multi-property sessions.
        """
        # Imported lazily: repro.spec imports the system layer.
        from ..spec.property import Reachable
        self.bad[name] = expression
        self.properties[name] = Reachable(expression)

    def add_property(self, name: str, prop: "Property | Expr") -> None:
        """Declare a named specification.

        ``prop`` must be a :class:`repro.spec.property.Property` or a
        raw :class:`~repro.logic.expr.Expr` state predicate (wrapped
        as ``Reachable``); anything else is rejected here, with the
        offending type named, instead of surfacing later as a checker
        failure.
        """
        from ..spec.checker import normalize_properties
        from ..spec.property import Property
        if not isinstance(prop, (Property, Expr)):
            raise TypeError(
                f"add_property({name!r}) expects a repro.spec Property "
                f"or an Expr state predicate, got "
                f"{type(prop).__name__}")
        self.properties[name] = normalize_properties({name: prop})[name]

    def add_constraint(self, expression: Expr) -> None:
        """Conjoin an invariant constraint into the transition relation.

        The constraint may mention current-state variables and inputs; it
        restricts which transitions exist (like AIGER invariant
        constraints applied at the source state).
        """
        self.constraints.append(expression)

    def _check_fresh(self, name: str) -> None:
        if name in self.input_names or name in self._init_values:
            raise ValueError(f"wire {name!r} already declared")

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def init_expr(self) -> Expr:
        """Characteristic function of the initial states."""
        parts: List[Expr] = []
        for name in self.latch_names:
            init = self._init_values[name]
            if init is None:
                continue
            wire = ex.var(name)
            parts.append(wire if init else ex.mk_not(wire))
        return ex.conjoin(parts)

    def trans_expr(self) -> Expr:
        """TR(Z, X, Z'): conjunction of latch updates and constraints."""
        parts: List[Expr] = []
        for name in self.latch_names:
            next_expr = self._next_exprs[name]
            if next_expr is None:
                raise ValueError(f"latch {name!r} has no next-state function")
            parts.append(ex.mk_iff(ex.var(primed(name)), next_expr))
        parts.extend(self.constraints)
        return ex.conjoin(parts)

    def to_transition_system(self) -> TransitionSystem:
        """Compile to the symbolic transition system."""
        return TransitionSystem(
            state_vars=list(self.latch_names),
            init=self.init_expr(),
            trans=self.trans_expr(),
            input_vars=list(self.input_names),
            name=self.name,
        )

    # ------------------------------------------------------------------
    # Simulation (golden reference for tests)
    # ------------------------------------------------------------------
    def simulate(self, input_sequence: Sequence[Dict[str, bool]],
                 initial: Optional[Dict[str, bool]] = None
                 ) -> List[Dict[str, bool]]:
        """Cycle-accurate simulation; returns the state after each step.

        ``initial`` overrides/completes latch reset values (required for
        latches with unconstrained init).
        """
        state: Dict[str, bool] = {}
        for name in self.latch_names:
            if initial is not None and name in initial:
                state[name] = bool(initial[name])
            else:
                init = self._init_values[name]
                if init is None:
                    raise ValueError(
                        f"latch {name!r} has unconstrained init; supply it")
                state[name] = init
        states = [dict(state)]
        for step_inputs in input_sequence:
            env = dict(state)
            for name in self.input_names:
                env[name] = bool(step_inputs[name])
            new_state = {}
            for name in self.latch_names:
                next_expr = self._next_exprs[name]
                assert next_expr is not None
                new_state[name] = next_expr.evaluate(env)
            state = new_state
            states.append(dict(state))
        return states

    def output_values(self, state: Dict[str, bool],
                      inputs: Dict[str, bool]) -> Dict[str, bool]:
        """Evaluate all declared outputs in a given state."""
        env = dict(state)
        env.update(inputs)
        return {name: expr.evaluate(env)
                for name, expr in self.outputs.items()}

    def stats(self) -> Dict[str, int]:
        """Size counters: inputs, latches and compiled DAG nodes."""
        gates = ex.conjoin([self.trans_expr(), self.init_expr()]).size()
        return {
            "inputs": len(self.input_names),
            "latches": len(self.latch_names),
            "dag_nodes": gates,
        }

    def __repr__(self) -> str:  # pragma: no cover
        return (f"Circuit({self.name!r}, inputs={len(self.input_names)}, "
                f"latches={len(self.latch_names)})")
