"""Symbolic transition systems M = (S, I, TR).

A :class:`TransitionSystem` describes a finite-state machine over Boolean
state variables, exactly the object the paper's reachability formulae
quantify over:

* ``state_vars`` — the state encoding bits (the Z/U/V vectors);
* ``input_vars`` — primary inputs (nondeterminism inside TR);
* ``init`` — characteristic function I of the initial states, an
  :class:`repro.logic.expr.Expr` over ``state_vars``;
* ``trans`` — the transition relation TR(Z, X, Z'), an expression over
  current-state variables, inputs, and *primed* next-state variables.

Priming is by naming convention: the next-state copy of variable ``v``
is ``v'`` (see :func:`primed`).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from ..logic import expr as ex
from ..logic.expr import Expr

__all__ = ["TransitionSystem", "primed", "unprimed", "is_primed",
           "compose_systems"]

_PRIME = "'"


def primed(name: str) -> str:
    """Next-state copy of a variable name."""
    return name + _PRIME


def unprimed(name: str) -> str:
    """Strip one prime from a primed name."""
    if not name.endswith(_PRIME):
        raise ValueError(f"{name!r} is not primed")
    return name[:-1]


def is_primed(name: str) -> bool:
    """Whether ``name`` is the primed (next-state) copy of a variable."""
    return name.endswith(_PRIME)


class TransitionSystem:
    """A finite-state system with symbolic init and transition relation.

    Example: a 2-bit counter.

    >>> b0, b1 = ex.var("b0"), ex.var("b1")
    >>> ts = TransitionSystem(
    ...     state_vars=["b0", "b1"],
    ...     init=~b0 & ~b1,
    ...     trans=(ex.var("b0'").iff(~b0)
    ...            & ex.var("b1'").iff(b1 ^ b0)))
    >>> ts.num_state_bits
    2
    """

    def __init__(self, state_vars: Sequence[str], init: Expr, trans: Expr,
                 input_vars: Sequence[str] = (), name: str = "system") -> None:
        self.state_vars = list(state_vars)
        self.input_vars = list(input_vars)
        self.init = init
        self.trans = trans
        self.name = name
        self._validate()

    # ------------------------------------------------------------------
    def _validate(self) -> None:
        if len(set(self.state_vars)) != len(self.state_vars):
            raise ValueError("duplicate state variables")
        if len(set(self.input_vars)) != len(self.input_vars):
            raise ValueError("duplicate input variables")
        overlap = set(self.state_vars) & set(self.input_vars)
        if overlap:
            raise ValueError(f"variables both state and input: {overlap}")
        state = set(self.state_vars)
        allowed_init = state
        stray = self.init.support() - allowed_init
        if stray:
            raise ValueError(f"init depends on non-state variables: {stray}")
        allowed_trans = (state | set(self.input_vars)
                         | {primed(v) for v in self.state_vars})
        stray = self.trans.support() - allowed_trans
        if stray:
            raise ValueError(f"trans depends on unknown variables: {stray}")

    # ------------------------------------------------------------------
    @property
    def num_state_bits(self) -> int:
        """Number of state variables (the width of the state vector)."""
        return len(self.state_vars)

    @property
    def next_vars(self) -> List[str]:
        """Primed copies of the state variables, in declaration order."""
        return [primed(v) for v in self.state_vars]

    def state_exprs(self) -> List[Expr]:
        """The state variables as expression nodes."""
        return [ex.var(v) for v in self.state_vars]

    def trans_size(self) -> int:
        """DAG size of TR — the paper's |TR| in the growth analyses."""
        return self.trans.size()

    # ------------------------------------------------------------------
    # Renaming helpers used by the BMC encoders
    # ------------------------------------------------------------------
    def rename_state_expr(self, root: Expr, target: Sequence[str]) -> Expr:
        """Rename ``state_vars`` to ``target`` names inside ``root``."""
        if len(target) != len(self.state_vars):
            raise ValueError("target vector length mismatch")
        mapping = {old: ex.var(new)
                   for old, new in zip(self.state_vars, target)}
        return ex.substitute(root, mapping)

    def trans_between(self, current: Sequence[str], nxt: Sequence[str],
                      input_suffix: str = "") -> Expr:
        """TR instantiated over explicit vectors: TR(current, inputs, nxt).

        ``input_suffix`` disambiguates input copies across timeframes.
        """
        if len(current) != len(self.state_vars) or \
                len(nxt) != len(self.state_vars):
            raise ValueError("state vector length mismatch")
        mapping: Dict[str, Expr] = {}
        for old, new in zip(self.state_vars, current):
            mapping[old] = ex.var(new)
        for old, new in zip(self.next_vars, nxt):
            mapping[old] = ex.var(new)
        for inp in self.input_vars:
            mapping[inp] = ex.var(inp + input_suffix)
        return ex.substitute(self.trans, mapping)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def with_self_loops(self) -> "TransitionSystem":
        """Add a stutter step to every state: TR' = TR ∨ (Z' = Z).

        This is the paper's §2 trick that turns "reachable in exactly k
        steps" into "reachable in at most k steps" (needed to use the
        iterative-squaring formula (3) at non-power-of-two bounds).
        """
        stutter = ex.conjoin(
            ex.mk_iff(ex.var(primed(v)), ex.var(v))
            for v in self.state_vars)
        return TransitionSystem(self.state_vars,
                                self.init,
                                ex.mk_or(self.trans, stutter),
                                self.input_vars,
                                name=f"{self.name}+stutter")

    def reversed(self) -> "TransitionSystem":
        """Swap the roles of current and next state (backward TR).

        Note: ``init`` is carried over unchanged; callers doing backward
        reachability supply their own target as the new init.
        """
        mapping: Dict[str, Expr] = {}
        for v in self.state_vars:
            mapping[v] = ex.var(primed(v))
            mapping[primed(v)] = ex.var(v)
        return TransitionSystem(self.state_vars, self.init,
                                ex.substitute(self.trans, mapping),
                                self.input_vars,
                                name=f"{self.name}.reversed")

    # ------------------------------------------------------------------
    # Concrete-state evaluation (used by the explicit oracle & traces)
    # ------------------------------------------------------------------
    def state_dict(self, bits: Sequence[bool]) -> Dict[str, bool]:
        """Assignment mapping for a concrete state given as a bit tuple."""
        if len(bits) != len(self.state_vars):
            raise ValueError("state width mismatch")
        return dict(zip(self.state_vars, bits))

    def holds_init(self, bits: Sequence[bool]) -> bool:
        """Whether the concrete state ``bits`` satisfies ``init``."""
        return self.init.evaluate(self.state_dict(bits))

    def holds_trans(self, current: Sequence[bool], inputs: Mapping[str, bool],
                    nxt: Sequence[bool]) -> bool:
        """Whether TR admits the step ``current`` → ``nxt`` under
        ``inputs`` (all states given as concrete bit vectors)."""
        env = self.state_dict(current)
        env.update({primed(v): b for v, b in zip(self.state_vars, nxt)})
        for name in self.input_vars:
            env[name] = bool(inputs[name])
        return self.trans.evaluate(env)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"TransitionSystem({self.name!r}, bits={self.num_state_bits},"
                f" inputs={len(self.input_vars)}, |TR|={self.trans.size()})")


def compose_systems(*systems: TransitionSystem,
                    prefixes: Sequence[str] | None = None
                    ) -> TransitionSystem:
    """Side-by-side parallel composition of independent systems.

    The components run in lockstep but share no variables: component i
    has every state variable and input renamed with ``prefixes[i]``
    (default: ``""`` for the first component, ``"u<i>."`` for the
    rest, so predicates written against the first component keep
    working verbatim).  The composite's init/TR are the conjunctions
    of the renamed component init/TRs.

    This is the "many blocks, one design" shape real model-checking
    inputs have — and the workload where per-property cone-of-influence
    reduction (:mod:`repro.reduce`) shines: a property about one block
    solves without paying for any other block's latches.

    >>> from repro.logic import expr as ex
    >>> a = TransitionSystem(["x"], ~ex.var("x"),
    ...                      ex.var("x'").iff(~ex.var("x")))
    >>> b = TransitionSystem(["x"], ~ex.var("x"),
    ...                      ex.var("x'").iff(ex.var("x")))
    >>> both = compose_systems(a, b)
    >>> both.state_vars
    ['x', 'u1.x']
    """
    if not systems:
        raise ValueError("compose_systems needs at least one system")
    if prefixes is None:
        prefixes = [""] + [f"u{i}." for i in range(1, len(systems))]
    prefixes = list(prefixes)
    if len(prefixes) != len(systems):
        raise ValueError(f"need one prefix per system "
                         f"({len(systems)}), got {len(prefixes)}")
    state_vars: List[str] = []
    input_vars: List[str] = []
    init_parts: List[Expr] = []
    trans_parts: List[Expr] = []
    for system, prefix in zip(systems, prefixes):
        mapping: Dict[str, Expr] = {}
        for v in system.state_vars:
            mapping[v] = ex.var(prefix + v)
            mapping[primed(v)] = ex.var(primed(prefix + v))
        for v in system.input_vars:
            mapping[v] = ex.var(prefix + v)
        state_vars.extend(prefix + v for v in system.state_vars)
        input_vars.extend(prefix + v for v in system.input_vars)
        init_parts.append(ex.substitute(system.init, mapping))
        trans_parts.append(ex.substitute(system.trans, mapping))
    if len(set(state_vars)) != len(state_vars) or \
            len(set(input_vars)) != len(input_vars):
        raise ValueError("prefixes do not make the component "
                         "variables disjoint")
    return TransitionSystem(
        state_vars, ex.conjoin(init_parts), ex.conjoin(trans_parts),
        input_vars,
        name="+".join(s.name for s in systems))
