"""Transition systems, circuits, traces, parsers, explicit oracle."""

from .aiger_io import AigerError, parse_aiger, write_aiger
from .bench_parser import BenchError, parse_bench
from .circuit import Circuit
from .model import TransitionSystem, is_primed, primed, unprimed
from .oracle import ExplicitOracle
from .random_model import random_circuit, random_predicate, random_system
from .smv import SmvError, parse_smv
from .trace import Trace, TraceError

__all__ = [
    "TransitionSystem",
    "primed",
    "unprimed",
    "is_primed",
    "Circuit",
    "Trace",
    "TraceError",
    "ExplicitOracle",
    "parse_bench",
    "BenchError",
    "parse_aiger",
    "write_aiger",
    "AigerError",
    "random_circuit",
    "random_system",
    "random_predicate",
    "parse_smv",
    "SmvError",
]
