"""Counterexample traces and their validation.

Every BMC backend in this library returns, on SAT, a :class:`Trace` —
the witness path Z0 → Z1 → ... → Zk.  ``validate`` replays the trace
against the transition system, which is how the test-suite proves that
the four different decision procedures (formulae (1)–(3) and jSAT) all
find *real* paths.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..logic.expr import Expr
from .model import TransitionSystem, primed

__all__ = ["Trace", "TraceError"]


class TraceError(ValueError):
    """Raised when a trace does not replay against its system."""


class Trace:
    """A finite path through a transition system.

    Attributes
    ----------
    states:
        ``states[i]`` maps every state variable name to its value at
        step i.  ``len(states) == k + 1`` for a k-step trace.
    inputs:
        ``inputs[i]`` gives the primary-input values driving the step
        from state i to state i+1 (``len(inputs) == k``).  May be empty
        per-step dicts for systems without inputs.
    """

    def __init__(self, states: Sequence[Dict[str, bool]],
                 inputs: Optional[Sequence[Dict[str, bool]]] = None) -> None:
        self.states: List[Dict[str, bool]] = [dict(s) for s in states]
        if inputs is None:
            inputs = [{} for _ in range(max(0, len(self.states) - 1))]
        self.inputs: List[Dict[str, bool]] = [dict(i) for i in inputs]
        if len(self.inputs) != max(0, len(self.states) - 1):
            raise ValueError("need exactly one input valuation per step")

    @property
    def length(self) -> int:
        """Number of steps (k), not states."""
        return len(self.states) - 1

    def state_bits(self, index: int, order: Sequence[str]) -> List[bool]:
        """State at a step as a bit vector in the given variable order."""
        return [self.states[index][v] for v in order]

    # ------------------------------------------------------------------
    def validate(self, system: TransitionSystem,
                 final: Expr | None = None) -> None:
        """Replay the trace; raises :class:`TraceError` on any violation.

        Checks: (a) state 0 satisfies init, (b) every consecutive pair
        satisfies TR under the recorded inputs, (c) the last state
        satisfies ``final`` if given.
        """
        if not self.states:
            raise TraceError("empty trace")
        for i, state in enumerate(self.states):
            missing = set(system.state_vars) - set(state)
            if missing:
                raise TraceError(f"state {i} missing variables {missing}")
        if not system.init.evaluate(self.states[0]):
            raise TraceError("state 0 does not satisfy init")
        for i in range(self.length):
            env = dict(self.states[i])
            env.update({primed(v): self.states[i + 1][v]
                        for v in system.state_vars})
            for name in system.input_vars:
                if name not in self.inputs[i]:
                    raise TraceError(f"step {i} missing input {name!r}")
                env[name] = self.inputs[i][name]
            if not system.trans.evaluate(env):
                raise TraceError(f"transition {i} -> {i + 1} violates TR")
        if final is not None and not final.evaluate(self.states[-1]):
            raise TraceError("last state does not satisfy the target")

    def is_valid(self, system: TransitionSystem,
                 final: Expr | None = None) -> bool:
        """Boolean version of :meth:`validate`."""
        try:
            self.validate(system, final)
        except TraceError:
            return False
        return True

    # ------------------------------------------------------------------
    def shorten_to(self, target: Expr) -> "Trace":
        """Cut the trace at its first state satisfying ``target``.

        Any prefix of a valid trace is valid, so this turns a within-k
        witness into the shortest certificate it contains; a trace
        never reaching ``target`` is returned unchanged.
        """
        for i, state in enumerate(self.states):
            if target.evaluate(state):
                return Trace(self.states[:i + 1], self.inputs[:i])
        return self

    # ------------------------------------------------------------------
    def format(self, variables: Sequence[str] | None = None) -> str:
        """Pretty waveform-style rendering (one row per variable)."""
        if not self.states:
            return "(empty trace)"
        if variables is None:
            variables = sorted(self.states[0])
        width = max(len(v) for v in variables) if variables else 0
        lines = [f"trace of length {self.length}:"]
        for v in variables:
            row = "".join("1" if s.get(v) else "0" for s in self.states)
            lines.append(f"  {v:<{width}} {row}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Trace(length={self.length})"
