"""Explicit-state reachability oracle.

Enumerates the concrete state graph of a (small) transition system and
answers exact-k / within-k reachability queries by BFS.  This is the
ground truth against which all four symbolic methods are tested; it is
deliberately brute-force and only usable up to ~20 state+input bits.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..logic.expr import Expr
from .model import TransitionSystem, primed

__all__ = ["ExplicitOracle"]

State = Tuple[bool, ...]


class ExplicitOracle:
    """Explicit enumeration of a transition system's state graph."""

    def __init__(self, system: TransitionSystem, max_bits: int = 22) -> None:
        total_bits = system.num_state_bits + len(system.input_vars)
        if system.num_state_bits * 2 + len(system.input_vars) > max_bits:
            raise ValueError(
                f"system too large for the explicit oracle "
                f"({total_bits} bits)")
        self.system = system
        self._succ: Dict[State, Set[State]] = {}
        self._initial: List[State] = []
        self._build()

    # ------------------------------------------------------------------
    def _build(self) -> None:
        system = self.system
        n = system.num_state_bits
        state_vars = system.state_vars
        next_vars = [primed(v) for v in state_vars]
        input_vars = system.input_vars

        all_states = [tuple(bits)
                      for bits in itertools.product((False, True), repeat=n)]
        for s in all_states:
            if system.init.evaluate(dict(zip(state_vars, s))):
                self._initial.append(s)

        all_inputs = [dict(zip(input_vars, bits))
                      for bits in itertools.product((False, True),
                                                    repeat=len(input_vars))]
        for s in all_states:
            successors: Set[State] = set()
            base_env = dict(zip(state_vars, s))
            for inp in all_inputs:
                env = dict(base_env)
                env.update(inp)
                for t in all_states:
                    env.update(zip(next_vars, t))
                    if system.trans.evaluate(env):
                        successors.add(t)
            self._succ[s] = successors

    # ------------------------------------------------------------------
    @property
    def initial_states(self) -> List[State]:
        return list(self._initial)

    def successors(self, state: State) -> Set[State]:
        return set(self._succ[state])

    def states_satisfying(self, predicate: Expr) -> Set[State]:
        state_vars = self.system.state_vars
        return {s for s in self._succ
                if predicate.evaluate(dict(zip(state_vars, s)))}

    # ------------------------------------------------------------------
    def layers(self, max_depth: int) -> List[Set[State]]:
        """``layers[i]`` = states reachable in exactly i steps."""
        current: Set[State] = set(self._initial)
        out = [set(current)]
        for _ in range(max_depth):
            nxt: Set[State] = set()
            for s in current:
                nxt |= self._succ[s]
            out.append(nxt)
            current = nxt
        return out

    def reachable_in_exactly(self, predicate: Expr, k: int) -> bool:
        """Is a state satisfying ``predicate`` reachable in exactly k steps?"""
        targets = self.states_satisfying(predicate)
        if not targets:
            return False
        return bool(self.layers(k)[k] & targets)

    def reachable_within(self, predicate: Expr, k: int) -> bool:
        """Is a target reachable in at most k steps?"""
        targets = self.states_satisfying(predicate)
        if not targets:
            return False
        layer = set(self._initial)
        seen: Set[State] = set(layer)
        if layer & targets:
            return True
        for _ in range(k):
            nxt: Set[State] = set()
            for s in layer:
                nxt |= self._succ[s]
            if nxt & targets:
                return True
            layer = nxt - seen
            seen |= nxt
            if not layer:
                # Fixed point: in *within* semantics nothing new can come.
                return False
        return False

    def shortest_distance(self, predicate: Expr,
                          max_depth: int = 1 << 16) -> Optional[int]:
        """BFS distance from init to the predicate (None if unreachable)."""
        targets = self.states_satisfying(predicate)
        if not targets:
            return None
        layer = set(self._initial)
        seen: Set[State] = set(layer)
        depth = 0
        while layer and depth <= max_depth:
            if layer & targets:
                return depth
            nxt: Set[State] = set()
            for s in layer:
                nxt |= self._succ[s]
            layer = nxt - seen
            seen |= nxt
            depth += 1
        return None

    def diameter_bound(self) -> int:
        """Number of BFS layers until fixpoint (longest shortest path)."""
        layer = set(self._initial)
        seen: Set[State] = set(layer)
        depth = 0
        while True:
            nxt: Set[State] = set()
            for s in layer:
                nxt |= self._succ[s]
            layer = nxt - seen
            if not layer:
                return depth
            seen |= nxt
            depth += 1
