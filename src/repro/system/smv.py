"""A parser for a Boolean subset of the SMV modelling language.

Supports the single-module Boolean core used by NuSMV-era model
checkers — the natural textual front end for this library::

    MODULE main
    VAR
      x : boolean;
      y : boolean;
    IVAR
      press : boolean;          -- primary input
    ASSIGN
      init(x) := FALSE;
      next(x) := x xor press;
      next(y) := x & !y;        -- init(y) omitted: unconstrained
    DEFINE
      both := x & y;
    SPEC AG !both

Expression operators (loosest to tightest): ``<->``, ``->``, ``|``,
``xor``, ``&``, ``!``; constants ``TRUE``/``FALSE``; parentheses;
``--`` comments.

Specifications::

    SPEC AG !both                  -- anonymous: property "spec0"
    SPEC no_both := AG !both       -- labelled
    INVARSPEC !both                -- anonymous: property "invar0"
    INVARSPEC safe := x -> !y      -- labelled

``SPEC AG p`` and ``INVARSPEC p`` are equivalent in this Boolean
subset: each contributes (a) a named bad-state target ``!p`` on the
produced :class:`repro.system.circuit.Circuit` and (b) the named
:class:`repro.spec.property.Invariant` in ``circuit.properties``, so
multi-property sessions check every spec of the module over one shared
unrolling.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from ..logic import expr as ex
from ..logic.expr import Expr
from .circuit import Circuit

__all__ = ["parse_smv", "SmvError"]


class SmvError(ValueError):
    """Raised on malformed SMV input."""


_TOKEN = re.compile(r"""
    (?P<skip>\s+|--[^\n]*)
  | (?P<op><->|->|:=|[!&|();:?]|\bxor\b)
  | (?P<name>[A-Za-z_][A-Za-z0-9_.\-]*)
""", re.VERBOSE)

_KEYWORDS = {"MODULE", "VAR", "IVAR", "ASSIGN", "DEFINE", "SPEC",
             "INVARSPEC", "AG", "init", "next", "boolean", "TRUE",
             "FALSE", "xor"}

_SECTIONS = ("VAR", "IVAR", "ASSIGN", "DEFINE", "SPEC", "INVARSPEC")


def _tokenize(text: str) -> List[str]:
    out: List[str] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN.match(text, pos)
        if not m:
            raise SmvError(f"cannot tokenize near {text[pos:pos + 20]!r}")
        pos = m.end()
        if m.lastgroup != "skip":
            out.append(m.group())
    return out


class _ExprParser:
    """Recursive-descent parser over a token window."""

    def __init__(self, tokens: List[str], defines: Dict[str, Expr]) -> None:
        self.tokens = tokens
        self.pos = 0
        self.defines = defines

    def peek(self) -> Optional[str]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self, expected: str | None = None) -> str:
        tok = self.peek()
        if tok is None:
            raise SmvError("unexpected end of expression")
        if expected is not None and tok != expected:
            raise SmvError(f"expected {expected!r}, got {tok!r}")
        self.pos += 1
        return tok

    def parse(self) -> Expr:
        out = self._iff()
        if self.peek() is not None:
            raise SmvError(f"trailing tokens: {self.tokens[self.pos:]}")
        return out

    def _iff(self) -> Expr:
        left = self._implies()
        while self.peek() == "<->":
            self.take()
            left = ex.mk_iff(left, self._implies())
        return left

    def _implies(self) -> Expr:
        left = self._or()
        if self.peek() == "->":
            self.take()
            return ex.mk_implies(left, self._implies())   # right-assoc
        return left

    def _or(self) -> Expr:
        left = self._xor()
        while self.peek() == "|":
            self.take()
            left = ex.mk_or(left, self._xor())
        return left

    def _xor(self) -> Expr:
        left = self._and()
        while self.peek() == "xor":
            self.take()
            left = ex.mk_xor(left, self._and())
        return left

    def _and(self) -> Expr:
        left = self._unary()
        while self.peek() == "&":
            self.take()
            left = ex.mk_and(left, self._unary())
        return left

    def _unary(self) -> Expr:
        tok = self.peek()
        if tok == "!":
            self.take()
            return ex.mk_not(self._unary())
        if tok == "(":
            self.take()
            inner = self._iff()
            self.take(")")
            return inner
        if tok == "TRUE":
            self.take()
            return ex.TRUE
        if tok == "FALSE":
            self.take()
            return ex.FALSE
        if tok is None or not re.match(r"[A-Za-z_]", tok):
            raise SmvError(f"unexpected token {tok!r}")
        self.take()
        if tok in self.defines:
            return self.defines[tok]
        return ex.var(tok)


def parse_smv(text: str, name: str = "smv") -> Circuit:
    """Parse the SMV subset into a :class:`Circuit` (specs become bads)."""
    tokens = _tokenize(text)
    pos = 0

    def peek() -> Optional[str]:
        return tokens[pos] if pos < len(tokens) else None

    def take(expected: str | None = None) -> str:
        nonlocal pos
        tok = peek()
        if tok is None:
            raise SmvError("unexpected end of input")
        if expected is not None and tok != expected:
            raise SmvError(f"expected {expected!r}, got {tok!r}")
        pos += 1
        return tok

    def expr_until(stops: Tuple[str, ...]) -> List[str]:
        nonlocal pos
        out: List[str] = []
        depth = 0
        while pos < len(tokens):
            tok = tokens[pos]
            if depth == 0 and tok in stops:
                break
            if tok == "(":
                depth += 1
            elif tok == ")":
                depth -= 1
            out.append(tok)
            pos += 1
        return out

    take("MODULE")
    module_name = take()
    circuit = Circuit(f"{name}.{module_name}")
    state_vars: List[str] = []
    init_exprs: Dict[str, List[str]] = {}
    next_exprs: Dict[str, List[str]] = {}
    define_order: List[Tuple[str, List[str]]] = []
    # (kind, optional label, body tokens) per SPEC/INVARSPEC entry.
    spec_entries: List[Tuple[str, Optional[str], List[str]]] = []

    def spec_label() -> Optional[str]:
        # An optional "name :=" prefix before the spec body.
        if pos + 1 < len(tokens) and tokens[pos + 1] == ":=" \
                and re.match(r"[A-Za-z_]", tokens[pos]) \
                and tokens[pos] not in _KEYWORDS:
            label = take()
            take(":=")
            return label
        return None

    section = None
    while (tok := peek()) is not None:
        if tok in _SECTIONS:
            section = take()
            if section in ("SPEC", "INVARSPEC"):
                label = spec_label()
                if section == "SPEC":
                    take("AG")
                spec_entries.append(
                    (section, label, expr_until(("MODULE",) + _SECTIONS)))
            continue
        if section in ("VAR", "IVAR"):
            var_name = take()
            take(":")
            take("boolean")
            take(";")
            if section == "VAR":
                state_vars.append(var_name)
                circuit.add_latch(var_name, init=None)
            else:
                circuit.add_input(var_name)
        elif section == "ASSIGN":
            kind = take()
            if kind not in ("init", "next"):
                raise SmvError(f"expected init/next, got {kind!r}")
            take("(")
            var_name = take()
            take(")")
            take(":=")
            body = expr_until((";",))
            take(";")
            (init_exprs if kind == "init" else next_exprs)[var_name] = body
        elif section == "DEFINE":
            def_name = take()
            take(":=")
            body = expr_until((";",))
            take(";")
            define_order.append((def_name, body))
        else:
            raise SmvError(f"unexpected token {tok!r} outside any section")

    defines: Dict[str, Expr] = {}
    for def_name, body in define_order:
        defines[def_name] = _ExprParser(body, defines).parse()

    for var_name in state_vars:
        if var_name in init_exprs:
            value = _ExprParser(init_exprs[var_name], defines).parse()
            if not value.is_const:
                raise SmvError(
                    f"init({var_name}) must be a constant in this subset")
            circuit._init_values[var_name] = bool(value.value)
        if var_name not in next_exprs:
            raise SmvError(f"next({var_name}) is missing")
        circuit.set_next(var_name,
                         _ExprParser(next_exprs[var_name], defines).parse())

    # Imported lazily: repro.spec imports the system layer.
    from ..spec.property import Invariant

    counters = {"SPEC": 0, "INVARSPEC": 0}
    for kind, label, body in spec_entries:
        if label is None:
            prefix = "spec" if kind == "SPEC" else "invar"
            label = f"{prefix}{counters[kind]}"
            counters[kind] += 1
        if label in circuit.bad:
            raise SmvError(f"duplicate spec label {label!r}")
        predicate = _ExprParser(body, defines).parse()
        circuit.add_bad(label, ex.mk_not(predicate))
        # The spec's own reading is the invariant, not bad-state
        # reachability — override the Reachable form add_bad registered.
        circuit.add_property(label, Invariant(predicate))
    for def_name, _ in define_order:
        circuit.add_output(def_name, defines[def_name])
    return circuit
