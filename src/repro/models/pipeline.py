"""In-order pipeline valid/stall tracker.

``depth`` stages carry valid bits; instructions enter from a ``fetch``
input, a ``stall`` input freezes the whole pipe, and a ``flush`` input
kills every in-flight instruction (branch mispredict).  Properties:

* the pipe fills completely — exactly ``depth`` fetch cycles;
* the "retired while flushing" flag — unreachable (retirement is gated
  on not flushing, the interlock this family checks).
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..logic import expr as ex
from ..logic.expr import Expr
from ..system.circuit import Circuit
from ..system.model import TransitionSystem

__all__ = ["make", "make_circuit", "make_flush_check"]


def make_circuit(depth: int) -> Circuit:
    if depth < 2:
        raise ValueError("pipeline needs at least 2 stages")
    circuit = Circuit(f"pipe{depth}")
    fetch = circuit.add_input("fetch")
    stall = circuit.add_input("stall")
    flush = circuit.add_input("flush")
    valid = [circuit.add_latch(f"v{i}", init=False) for i in range(depth)]
    retired = circuit.add_latch("retired_in_flush", init=False)

    advance = ex.mk_and(ex.mk_not(stall), ex.mk_not(flush))
    for i in range(depth):
        upstream = fetch if i == 0 else valid[i - 1]
        circuit.set_next(
            f"v{i}",
            ex.mk_ite(flush, ex.FALSE,
                      ex.mk_ite(advance, upstream, valid[i])))
    # Retirement happens when the last stage is valid and the pipe
    # advances; the bad flag would require retiring during a flush,
    # which `advance` rules out.
    retire = ex.mk_and(valid[depth - 1], advance)
    circuit.set_next("retired_in_flush",
                     ex.mk_or(retired, ex.mk_and(retire, flush)))
    circuit.add_output("retire", retire)
    circuit.add_bad("retire-during-flush", retired)
    return circuit


def make(depth: int) -> Tuple[TransitionSystem, Expr, Optional[int]]:
    """Pipeline instance: every stage holds a valid instruction."""
    circuit = make_circuit(depth)
    system = circuit.to_transition_system()
    final = ex.conjoin(ex.var(f"v{i}") for i in range(depth))
    return system, final, depth


def make_flush_check(depth: int
                     ) -> Tuple[TransitionSystem, Expr, Optional[int]]:
    """Unreachable-target instance: retirement observed during a flush."""
    circuit = make_circuit(depth)
    system = circuit.to_transition_system()
    return system, circuit.bad["retire-during-flush"], None
