"""Two-road traffic-light controller.

The controller cycles NS-green → NS-yellow → EW-green → EW-yellow,
holding each green phase for ``green_cycles`` ticks via a timer
register.  Light outputs are *registered* (decoded from the phase on
the previous cycle), as in a real pad-ring design.  Properties:

* both roads green simultaneously — unreachable;
* EW green — reachable at a depth computable from the schedule.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..logic import expr as ex
from ..logic.expr import Expr
from ..system.circuit import Circuit
from ..system.model import TransitionSystem
from ._common import value_equals

__all__ = ["make", "make_circuit", "make_safety_check", "ew_green_depth"]


def _timer_bits(green_cycles: int) -> int:
    return max(1, green_cycles.bit_length())


def make_circuit(green_cycles: int = 2) -> Circuit:
    """Phase FSM (2 bits) + green-hold timer + registered lights."""
    if green_cycles < 1:
        raise ValueError("green_cycles must be positive")
    circuit = Circuit(f"traffic{green_cycles}")
    ph0 = circuit.add_latch("ph0", init=False)
    ph1 = circuit.add_latch("ph1", init=False)
    tw = _timer_bits(green_cycles)
    timer = [circuit.add_latch(f"tm{i}", init=False) for i in range(tw)]

    in_green = ex.mk_not(ph0)                  # phases 0 (NS) and 2 (EW)
    timer_names = [f"tm{i}" for i in range(tw)]
    timer_done = value_equals(timer_names, green_cycles - 1)

    # Timer counts during green phases, resets elsewhere.
    carry = ex.TRUE
    for i in range(tw):
        counting = ex.mk_and(in_green, ex.mk_not(timer_done))
        circuit.set_next(f"tm{i}",
                         ex.mk_and(counting, ex.mk_xor(timer[i], carry)))
        carry = ex.mk_and(carry, timer[i])

    advance = ex.mk_or(ex.mk_and(in_green, timer_done), ph0)
    # Phase increments mod 4 when advancing.
    circuit.set_next("ph0", ex.mk_xor(ph0, advance))
    circuit.set_next("ph1", ex.mk_xor(ph1, ex.mk_and(ph0, advance)))

    # Registered light outputs decoded from the *next* phase value.
    nxt_ph0 = ex.mk_xor(ph0, advance)
    nxt_ph1 = ex.mk_xor(ph1, ex.mk_and(ph0, advance))
    ns_green = circuit.add_latch("ns_green", init=True)
    ew_green = circuit.add_latch("ew_green", init=False)
    circuit.set_next("ns_green",
                     ex.mk_and(ex.mk_not(nxt_ph0), ex.mk_not(nxt_ph1)))
    circuit.set_next("ew_green",
                     ex.mk_and(ex.mk_not(nxt_ph0), nxt_ph1))
    circuit.add_bad("both-green", ex.mk_and(ns_green, ew_green))
    return circuit


def ew_green_depth(green_cycles: int) -> int:
    """Steps until ew_green first registers 1.

    NS green holds for ``green_cycles`` ticks (timer 0..green_cycles-1),
    then one yellow tick, then the EW-green phase is entered; the
    registered light shows it the same step the phase flips.
    """
    return green_cycles + 1


def make(green_cycles: int = 2
         ) -> Tuple[TransitionSystem, Expr, Optional[int]]:
    """Traffic instance: the EW road eventually gets a green light."""
    circuit = make_circuit(green_cycles)
    system = circuit.to_transition_system()
    return system, ex.var("ew_green"), ew_green_depth(green_cycles)


def make_safety_check(green_cycles: int = 2
                      ) -> Tuple[TransitionSystem, Expr, Optional[int]]:
    """Unreachable-target instance: both roads green."""
    circuit = make_circuit(green_cycles)
    system = circuit.to_transition_system()
    return system, circuit.bad["both-green"], None
