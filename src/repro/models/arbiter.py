"""Round-robin bus arbiter with registered grants.

``n`` clients assert request lines; a one-hot priority token rotates
every cycle and the arbiter registers at most one grant per cycle
(grant_i := req_i ∧ token_i).  Properties:

* mutual exclusion — two simultaneous grants — is **unreachable**;
* client ``n-1`` eventually granted — reachable in exactly ``n`` steps
  (token needs n-1 rotations to reach the client, plus one cycle for
  the grant register).
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..logic import expr as ex
from ..logic.expr import Expr
from ..system.circuit import Circuit
from ..system.model import TransitionSystem

__all__ = ["make", "make_circuit", "make_mutex_check"]


def make_circuit(n: int) -> Circuit:
    if n < 2:
        raise ValueError("arbiter needs at least 2 clients")
    circuit = Circuit(f"arbiter{n}")
    requests = [circuit.add_input(f"req{i}") for i in range(n)]
    token = [circuit.add_latch(f"tok{i}", init=(i == 0)) for i in range(n)]
    grants = [circuit.add_latch(f"gnt{i}", init=False) for i in range(n)]
    for i in range(n):
        circuit.set_next(f"tok{i}", token[(i - 1) % n])
        circuit.set_next(f"gnt{i}", ex.mk_and(requests[i], token[i]))
    circuit.add_bad("double-grant", ex.disjoin(
        ex.mk_and(grants[i], grants[j])
        for i in range(n) for j in range(i + 1, n)))
    return circuit


def make(n: int, client: Optional[int] = None
         ) -> Tuple[TransitionSystem, Expr, Optional[int]]:
    """Arbiter instance: client (default last) obtains a grant."""
    if client is None:
        client = n - 1
    if not 0 <= client < n:
        raise ValueError(f"client {client} out of range")
    circuit = make_circuit(n)
    system = circuit.to_transition_system()
    final = ex.var(f"gnt{client}")
    return system, final, client + 1


def make_mutex_check(n: int) -> Tuple[TransitionSystem, Expr, Optional[int]]:
    """Unreachable-target instance: two clients granted at once."""
    circuit = make_circuit(n)
    system = circuit.to_transition_system()
    return system, circuit.bad["double-grant"], None
