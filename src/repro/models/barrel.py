"""Barrel rotator with conditional inversion — a dense, XOR-heavy walk.

The register rotates by one position each cycle; a ``twist`` input
additionally inverts the bit rotated into position 0.  From the
all-zero initial state the reachable set and shortest distances have no
arithmetic structure, so expected depths are computed by an explicit
BFS over the (small) concrete state space at instance-build time.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional, Tuple

from ..logic import expr as ex
from ..logic.expr import Expr
from ..system.circuit import Circuit
from ..system.model import TransitionSystem
from ._common import value_equals

__all__ = ["make", "make_circuit", "bfs_distance"]


def make_circuit(width: int) -> Circuit:
    if width < 2:
        raise ValueError("width must be at least 2")
    circuit = Circuit(f"barrel{width}")
    twist = circuit.add_input("twist")
    bits = [circuit.add_latch(f"b{i}", init=False) for i in range(width)]
    # Rotate left: b0 <- b_{w-1} (xor twist), b_i <- b_{i-1}.
    circuit.set_next("b0", ex.mk_xor(bits[width - 1], twist))
    for i in range(1, width):
        circuit.set_next(f"b{i}", bits[i - 1])
    return circuit


def _step(state: int, width: int, twist: bool) -> int:
    msb = (state >> (width - 1)) & 1
    rotated = ((state << 1) | (msb ^ (1 if twist else 0))) & ((1 << width) - 1)
    return rotated


def bfs_distance(width: int, target: int) -> Optional[int]:
    """Shortest number of steps from 0 to ``target`` (explicit BFS)."""
    seen: Dict[int, int] = {0: 0}
    queue = deque([0])
    while queue:
        state = queue.popleft()
        if state == target:
            return seen[state]
        for twist in (False, True):
            nxt = _step(state, width, twist)
            if nxt not in seen:
                seen[nxt] = seen[state] + 1
                queue.append(nxt)
    return None


def make(width: int, target: Optional[int] = None
         ) -> Tuple[TransitionSystem, Expr, Optional[int]]:
    """Barrel instance: reach the given register value (default 0b10..01).

    The default target alternates bits, forcing the twist input to fire
    on specific cycles.
    """
    if target is None:
        target = 0
        for i in range(0, width, 2):
            target |= 1 << i
    if not 0 <= target < (1 << width):
        raise ValueError(f"target {target} out of range")
    circuit = make_circuit(width)
    system = circuit.to_transition_system()
    final = value_equals([f"b{i}" for i in range(width)], target)
    return system, final, bfs_distance(width, target)
