"""Gray-code counter — single-bit-change sequencing logic.

The register steps through the standard reflected Gray sequence; the
target asks for a particular code word.  Reaching the j-th word of the
sequence takes exactly j steps, so expected depths are computed from
the Gray index of the target.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..logic import expr as ex
from ..logic.expr import Expr
from ..system.circuit import Circuit
from ..system.model import TransitionSystem
from ._common import value_equals

__all__ = ["make", "make_circuit", "gray_index"]


def gray_code(index: int) -> int:
    return index ^ (index >> 1)


def gray_index(code: int) -> int:
    """Inverse of :func:`gray_code`."""
    index = 0
    while code:
        index ^= code
        code >>= 1
    return index


def make_circuit(width: int) -> Circuit:
    """Gray counter implemented as binary counter + output transcoder.

    The state register *is* the Gray word; the next-state logic decodes
    to binary, increments, and re-encodes — a realistic mixed datapath.
    """
    if width < 1:
        raise ValueError("width must be positive")
    circuit = Circuit(f"gray{width}")
    g = [circuit.add_latch(f"g{i}", init=False) for i in range(width)]

    # Decode Gray -> binary: b_i = xor of g_i..g_{width-1}.
    binary = []
    acc = ex.FALSE
    for i in range(width - 1, -1, -1):
        acc = ex.mk_xor(acc, g[i]) if not acc.is_const else g[i]
        binary.append(acc)
    binary.reverse()

    # Increment the binary value.
    incremented = []
    carry = ex.TRUE
    for i in range(width):
        incremented.append(ex.mk_xor(binary[i], carry))
        carry = ex.mk_and(carry, binary[i])

    # Re-encode binary -> Gray: g_i = b_i xor b_{i+1}.
    for i in range(width):
        upper = incremented[i + 1] if i + 1 < width else ex.FALSE
        circuit.set_next(f"g{i}", ex.mk_xor(incremented[i], upper))
    return circuit


def make(width: int, target: Optional[int] = None
         ) -> Tuple[TransitionSystem, Expr, Optional[int]]:
    """Gray-counter instance: reach the given Gray code word."""
    if target is None:
        target = gray_code((1 << width) - 1)
    if not 0 <= target < (1 << width):
        raise ValueError(f"target {target} out of range for width {width}")
    circuit = make_circuit(width)
    system = circuit.to_transition_system()
    final = value_equals([f"g{i}" for i in range(width)], target)
    return system, final, gray_index(target)
