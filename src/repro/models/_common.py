"""Shared helpers for the benchmark model families.

Every family module exposes::

    make(...) -> (TransitionSystem, final_expr, expected_depth)

where ``expected_depth`` is the length of the shortest path from init to
the target (None when the target is unreachable).  The suite builder
(:mod:`repro.models.suite`) turns these into the 234-instance analogue
of the paper's Intel test base.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..logic import expr as ex
from ..logic.expr import Expr

__all__ = ["bits_of", "value_equals", "vector_vars", "onehot", "ModelSpec"]


def bits_of(value: int, width: int) -> List[bool]:
    """Little-endian bit decomposition of an integer."""
    if value < 0 or value >= (1 << width):
        raise ValueError(f"{value} does not fit in {width} bits")
    return [bool((value >> i) & 1) for i in range(width)]


def vector_vars(prefix: str, width: int) -> List[Expr]:
    """The expression variables ``prefix0 .. prefix<width-1>``."""
    return [ex.var(f"{prefix}{i}") for i in range(width)]


def value_equals(names: Sequence[str], value: int) -> Expr:
    """Predicate: the bit vector (little-endian) equals ``value``."""
    parts: List[Expr] = []
    for i, name in enumerate(names):
        bit = ex.var(name)
        parts.append(bit if (value >> i) & 1 else ex.mk_not(bit))
    return ex.conjoin(parts)


def onehot(variables: Sequence[Expr]) -> Expr:
    """Exactly one of the variables is true."""
    any_one = ex.disjoin(variables)
    at_most = ex.conjoin(
        ex.mk_not(ex.mk_and(variables[i], variables[j]))
        for i in range(len(variables))
        for j in range(i + 1, len(variables)))
    return ex.mk_and(any_one, at_most)


class ModelSpec:
    """Description of one instance for the suite: system + query + truth."""

    def __init__(self, name: str, family: str, system, final: Expr,
                 depth: Optional[int]) -> None:
        self.name = name
        self.family = family
        self.system = system
        self.final = final
        self.depth = depth          # shortest distance; None = unreachable

    def __repr__(self) -> str:  # pragma: no cover
        return f"ModelSpec({self.name!r}, depth={self.depth})"
