"""Fibonacci LFSR — dense XOR feedback, pseudo-random deep targets.

A maximal-length linear feedback shift register visits 2^n - 1 states
before repeating; asking for the state reached after j steps produces
targets at any desired depth with *no* structural hint for the solver —
the family that punishes breadth-first-flavoured heuristics.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..logic import expr as ex
from ..logic.expr import Expr
from ..system.circuit import Circuit
from ..system.model import TransitionSystem
from ._common import value_equals

__all__ = ["make", "make_circuit", "simulate_steps", "TAPS"]

# Maximal-length tap positions (1-based from the LSB, Fibonacci form).
TAPS: Dict[int, Tuple[int, ...]] = {
    2: (2, 1),
    3: (3, 2),
    4: (4, 3),
    5: (5, 3),
    6: (6, 5),
    7: (7, 6),
    8: (8, 6, 5, 4),
    9: (9, 5),
    10: (10, 7),
    11: (11, 9),
    12: (12, 11, 10, 4),
    14: (14, 13, 12, 2),
    16: (16, 15, 13, 4),
}


def _feedback(state: int, width: int) -> int:
    # Right-shift Fibonacci form: tap t reads bit (width - t), so the
    # output bit (tap == width) is always part of the feedback.
    taps = TAPS[width]
    bit = 0
    for t in taps:
        bit ^= (state >> (width - t)) & 1
    return bit


def simulate_steps(width: int, steps: int, seed: int = 1) -> int:
    """State value after ``steps`` shifts from ``seed``."""
    state = seed
    for _ in range(steps):
        state = ((state >> 1) | (_feedback(state, width) << (width - 1)))
        state &= (1 << width) - 1
    return state


def make_circuit(width: int) -> Circuit:
    if width not in TAPS:
        raise ValueError(f"no tap table for width {width}; "
                         f"available: {sorted(TAPS)}")
    circuit = Circuit(f"lfsr{width}")
    bits = [circuit.add_latch(f"r{i}", init=(i == 0)) for i in range(width)]
    feedback: Expr = ex.FALSE
    for t in TAPS[width]:
        tapped = bits[width - t]
        feedback = ex.mk_xor(feedback, tapped) \
            if not feedback.is_const else tapped
    for i in range(width - 1):
        circuit.set_next(f"r{i}", bits[i + 1])
    circuit.set_next(f"r{width - 1}", feedback)
    return circuit


def make(width: int, depth: int = 5
         ) -> Tuple[TransitionSystem, Expr, Optional[int]]:
    """LFSR instance targeting the state exactly ``depth`` shifts away.

    The LFSR is deterministic and (for the tabulated maximal-length
    taps, seed 1) does not revisit states within its 2^n - 1 period, so
    the shortest distance equals ``depth`` for depth < period.
    """
    period = (1 << width) - 1
    if not 0 <= depth < period:
        raise ValueError(f"depth must be in [0, {period})")
    circuit = make_circuit(width)
    system = circuit.to_transition_system()
    target_value = simulate_steps(width, depth, seed=1)
    final = value_equals([f"r{i}" for i in range(width)], target_value)
    return system, final, depth
