"""The 13 benchmark design families and the 234-instance suite."""

from . import (arbiter, barrel, cache_msi, counter, elevator, fifo, gray,
               lfsr, mixer, mutex, pipeline, shift_register, traffic,
               vending)
from .suite import (FAMILIES, Instance, build_property_suite, build_suite,
                    default_property_bundle, suite_summary)

__all__ = [
    "counter",
    "gray",
    "shift_register",
    "lfsr",
    "mixer",
    "arbiter",
    "traffic",
    "fifo",
    "elevator",
    "mutex",
    "cache_msi",
    "pipeline",
    "barrel",
    "vending",
    "Instance",
    "build_suite",
    "build_property_suite",
    "default_property_bundle",
    "suite_summary",
    "FAMILIES",
]
