"""Vending machine controller: coin accumulation and dispensing.

Balance is counted in nickels (units of 5).  Inputs insert a nickel or
a dime per cycle (dime wins if both); when the balance reaches the
price the machine dispenses and resets.  Properties:

* the dispense state — shortest witness inserts dimes:
  ``ceil(price_units / 2)`` steps plus one dispense cycle;
* balance strictly exceeding ``price + 1`` units — unreachable (the
  acceptor blocks coins at or above the price; one unit of overshoot is
  possible when a dime lands on price-1).
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..logic import expr as ex
from ..logic.expr import Expr
from ..system.circuit import Circuit
from ..system.model import TransitionSystem
from ._common import value_equals

__all__ = ["make", "make_circuit", "make_overpay_check", "dispense_depth"]


def make_circuit(price_units: int) -> Circuit:
    """Vending controller; ``price_units`` is the price in nickels."""
    if price_units < 1:
        raise ValueError("price must be positive")
    # One headroom bit beyond price+1 keeps the overpay comparator a
    # real predicate (never constant-FALSE by mere register width).
    width = (price_units + 2).bit_length()
    circuit = Circuit(f"vending{price_units}")
    nickel = circuit.add_input("nickel")
    dime = circuit.add_input("dime")
    bal = [circuit.add_latch(f"bal{i}", init=False) for i in range(width)]
    dispensing = circuit.add_latch("dispense", init=False)
    bal_names = [f"bal{i}" for i in range(width)]

    reached = ex.disjoin(value_equals(bal_names, v)
                         for v in range(price_units, 1 << width))
    accept = ex.mk_and(ex.mk_not(reached), ex.mk_not(dispensing))
    add_two = ex.mk_and(accept, dime)
    add_one = ex.mk_and(accept, nickel, ex.mk_not(dime))

    # bal' = 0 when dispensing, else bal + (2 | 1 | 0).
    carry: Expr = add_one
    for i in range(width):
        if i == 1:
            # dime adds directly into bit 1.
            summed = ex.mk_xor(ex.mk_xor(bal[i], carry), add_two)
            new_carry = ex.mk_or(ex.mk_and(bal[i], carry),
                                 ex.mk_and(bal[i], add_two),
                                 ex.mk_and(carry, add_two))
        else:
            summed = ex.mk_xor(bal[i], carry)
            new_carry = ex.mk_and(bal[i], carry)
        circuit.set_next(f"bal{i}",
                         ex.mk_and(ex.mk_not(dispensing), summed))
        carry = new_carry

    circuit.set_next("dispense", ex.mk_and(reached, ex.mk_not(dispensing)))
    circuit.add_bad("overpay", ex.disjoin(
        value_equals(bal_names, v)
        for v in range(price_units + 2, 1 << width)))
    return circuit


def dispense_depth(price_units: int) -> int:
    """Shortest steps to the dispense state (all dimes, then register)."""
    return (price_units + 1) // 2 + 1


def make(price_units: int
         ) -> Tuple[TransitionSystem, Expr, Optional[int]]:
    """Vending instance: reach the dispense state."""
    circuit = make_circuit(price_units)
    system = circuit.to_transition_system()
    return system, ex.var("dispense"), dispense_depth(price_units)


def make_overpay_check(price_units: int
                       ) -> Tuple[TransitionSystem, Expr, Optional[int]]:
    """Unreachable-target instance: balance exceeds price + 1."""
    circuit = make_circuit(price_units)
    system = circuit.to_transition_system()
    return system, circuit.bad["overpay"], None
