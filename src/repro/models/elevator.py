"""Elevator controller: position register, door interlock, move requests.

The cab position is a ``width``-bit floor counter; ``up``/``down``
inputs move the cab one floor per cycle, but only while the door is
closed; a ``door`` input toggles the door when the cab is stationary.
Properties:

* reach the top floor — exactly ``2^width - 1`` steps (hold ``up``);
* the interlock violation "door open while moving" is **unreachable**
  (moving is registered and gated on the door being closed).
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..logic import expr as ex
from ..logic.expr import Expr
from ..system.circuit import Circuit
from ..system.model import TransitionSystem
from ._common import value_equals

__all__ = ["make", "make_circuit", "make_interlock_check"]


def make_circuit(width: int) -> Circuit:
    if width < 1:
        raise ValueError("width must be positive")
    circuit = Circuit(f"elevator{width}")
    up = circuit.add_input("up")
    down = circuit.add_input("down")
    door_req = circuit.add_input("door_req")

    pos = [circuit.add_latch(f"p{i}", init=False) for i in range(width)]
    door_open = circuit.add_latch("door_open", init=False)
    moving = circuit.add_latch("moving", init=False)

    pos_names = [f"p{i}" for i in range(width)]
    at_top = value_equals(pos_names, (1 << width) - 1)
    at_bottom = value_equals(pos_names, 0)

    closed = ex.mk_not(door_open)
    go_up = ex.mk_and(up, closed, ex.mk_not(at_top))
    go_down = ex.mk_and(down, ex.mk_not(up), closed, ex.mk_not(at_bottom))

    carry: Expr = go_up
    borrow: Expr = go_down
    for i in range(width):
        stepped = ex.mk_xor(ex.mk_xor(pos[i], carry), borrow)
        circuit.set_next(f"p{i}", stepped)
        carry, borrow = (ex.mk_and(pos[i], carry),
                         ex.mk_and(ex.mk_not(pos[i]), borrow))

    is_moving = ex.mk_or(go_up, go_down)
    circuit.set_next("moving", is_moving)
    # Door toggles on request only when the cab is not about to move.
    circuit.set_next("door_open",
                     ex.mk_ite(ex.mk_and(door_req, ex.mk_not(is_moving)),
                               ex.mk_not(door_open), door_open))
    circuit.add_bad("door-while-moving", ex.mk_and(door_open, moving))
    return circuit


def make(width: int) -> Tuple[TransitionSystem, Expr, Optional[int]]:
    """Elevator instance: the cab reaches the top floor."""
    circuit = make_circuit(width)
    system = circuit.to_transition_system()
    final = value_equals([f"p{i}" for i in range(width)], (1 << width) - 1)
    return system, final, (1 << width) - 1


def make_interlock_check(width: int
                         ) -> Tuple[TransitionSystem, Expr, Optional[int]]:
    """Unreachable-target instance: door open while the cab moves."""
    circuit = make_circuit(width)
    system = circuit.to_transition_system()
    return system, circuit.bad["door-while-moving"], None
