"""Mixing network (toy scrambler round) — a *large* transition relation.

Each cycle applies a fixed, densely wired mixing round to the state:
every next-state bit XORs a rotating selection of state bits and ANDs
of bit pairs, with ``rounds`` layers composed combinationally.  The
design exists to model the paper's observation that "the transition
relation ... is usually the biggest formula in the specification of
the model": |TR| here is Θ(width · rounds) DAG nodes with a large
constant, dwarfing the n-per-step cost of the QBF selectors — the
regime where formula (2)'s space advantage is most visible
(experiment E2).

The round function is a bijection-free scramble (not crypto!); expected
depths are computed by concrete simulation of the deterministic round.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..logic import expr as ex
from ..logic.expr import Expr
from ..system.circuit import Circuit
from ..system.model import TransitionSystem
from ._common import value_equals

__all__ = ["make", "make_circuit", "simulate_rounds"]


def _mix_layer(bits: List[Expr], layer: int) -> List[Expr]:
    n = len(bits)
    out: List[Expr] = []
    for i in range(n):
        a = bits[i]
        b = bits[(i + 1 + layer) % n]
        c = bits[(i + 3 + 2 * layer) % n]
        d = bits[(i + 5 + layer) % n]
        out.append(ex.mk_xor(ex.mk_xor(a, ex.mk_and(b, c)), d))
    return out


def _mix_layer_concrete(bits: List[bool], layer: int) -> List[bool]:
    n = len(bits)
    return [bits[i] != ((bits[(i + 1 + layer) % n]
                         and bits[(i + 3 + 2 * layer) % n])
                        != bits[(i + 5 + layer) % n])
            for i in range(n)]


def simulate_rounds(width: int, rounds: int, steps: int,
                    seed: int = 1) -> int:
    """Concrete state value after ``steps`` cycles."""
    bits = [bool((seed >> i) & 1) for i in range(width)]
    for _ in range(steps):
        for layer in range(rounds):
            bits = _mix_layer_concrete(bits, layer)
    return sum(1 << i for i, b in enumerate(bits) if b)


def make_circuit(width: int, rounds: int = 3,
                 input_bits: int = 0) -> Circuit:
    """Build the mixer; ``input_bits`` > 0 XORs that many primary
    inputs into the low next-state bits, making the walk
    nondeterministic (the unrolled formula then cannot collapse under
    constant propagation — used by the memory-cliff benchmark)."""
    if width < 6:
        raise ValueError("mixer needs width >= 6")
    if not 0 <= input_bits <= width:
        raise ValueError("input_bits out of range")
    circuit = Circuit(f"mixer{width}x{rounds}")
    inputs = [circuit.add_input(f"in{i}") for i in range(input_bits)]
    bits: List[Expr] = [circuit.add_latch(f"x{i}", init=(i == 0))
                        for i in range(width)]
    mixed = bits
    for layer in range(rounds):
        mixed = _mix_layer(mixed, layer)
    for i in range(width):
        nxt = mixed[i]
        if i < input_bits:
            nxt = ex.mk_xor(nxt, inputs[i])
        circuit.set_next(f"x{i}", nxt)
    return circuit


def make(width: int, rounds: int = 3, depth: int = 4
         ) -> Tuple[TransitionSystem, Expr, Optional[int]]:
    """Mixer instance: reach the state exactly ``depth`` cycles away.

    The mixer is deterministic; the target is the simulated state after
    ``depth`` cycles.  The shortest distance equals ``depth`` provided
    the orbit has no earlier repetition of that state — asserted by the
    simulation loop below.
    """
    circuit = make_circuit(width, rounds)
    system = circuit.to_transition_system()
    target_value = simulate_rounds(width, rounds, depth)
    # Confirm the orbit does not hit the target earlier.
    shortest = depth
    for j in range(depth):
        if simulate_rounds(width, rounds, j) == target_value:
            shortest = j
            break
    final = value_equals([f"x{i}" for i in range(width)], target_value)
    return system, final, shortest
