"""Two-agent MSI cache-coherence protocol for one cache line.

Each cache holds the line in state M (modified), S (shared) or I
(invalid), encoded in two bits (``m``, ``s``; invalid = 00).  A bus
arbiter input picks which cache's request is serviced each cycle;
requests are ``rd`` (load) and ``wr`` (store, wins over rd).  Snooping
is exact: a store invalidates the other cache, a load downgrades an M
owner to S.  Properties:

* coherence violation (two M copies, or M beside S) — unreachable;
* cache 0 reaches M — depth 1; both caches S — depth 2.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..logic import expr as ex
from ..logic.expr import Expr
from ..system.circuit import Circuit
from ..system.model import TransitionSystem

__all__ = ["make", "make_circuit", "make_coherence_check"]


def make_circuit() -> Circuit:
    circuit = Circuit("msi2")
    grant = circuit.add_input("grant")        # which cache owns the bus
    rd = [circuit.add_input(f"rd{i}") for i in range(2)]
    wr = [circuit.add_input(f"wr{i}") for i in range(2)]
    m = [circuit.add_latch(f"m{i}", init=False) for i in range(2)]
    s = [circuit.add_latch(f"s{i}", init=False) for i in range(2)]

    for i in range(2):
        j = 1 - i
        mine = ex.mk_iff(grant, ex.const(i == 1))   # bus granted to me
        do_wr = ex.mk_and(mine, wr[i])
        do_rd = ex.mk_and(mine, rd[i], ex.mk_not(wr[i]))
        other_wr = ex.mk_and(ex.mk_not(mine), wr[j])
        other_rd = ex.mk_and(ex.mk_not(mine), rd[j], ex.mk_not(wr[j]))

        # M: set by my store; cleared by any remote traffic.
        circuit.set_next(f"m{i}",
                         ex.mk_ite(do_wr, ex.TRUE,
                                   ex.mk_ite(ex.mk_or(other_wr, other_rd),
                                             ex.FALSE, m[i])))
        # S: set by my load or by a remote load downgrading my M;
        # cleared by stores (mine upgrades to M, theirs invalidates).
        downgraded = ex.mk_and(other_rd, m[i])
        circuit.set_next(f"s{i}",
                         ex.mk_ite(do_wr, ex.FALSE,
                                   ex.mk_ite(do_rd, ex.TRUE,
                                             ex.mk_ite(other_wr, ex.FALSE,
                                                       ex.mk_ite(downgraded,
                                                                 ex.TRUE,
                                                                 s[i])))))

    coherent_violation = ex.mk_or(
        ex.mk_and(m[0], m[1]),
        ex.mk_and(m[0], s[1]),
        ex.mk_and(m[1], s[0]))
    circuit.add_bad("incoherent", coherent_violation)
    return circuit


def make(target: str = "m0") -> Tuple[TransitionSystem, Expr, Optional[int]]:
    """MSI instance.

    Targets: ``"m0"`` (cache 0 modified, depth 1), ``"both-s"`` (both
    caches shared, depth 2).
    """
    circuit = make_circuit()
    system = circuit.to_transition_system()
    if target == "m0":
        final = ex.mk_and(ex.var("m0"), ex.mk_not(ex.var("s0")))
        depth: Optional[int] = 1
    elif target == "both-s":
        final = ex.mk_and(ex.var("s0"), ex.var("s1"))
        depth = 2
    else:
        raise ValueError(f"unknown target {target!r}")
    return system, final, depth


def make_coherence_check() -> Tuple[TransitionSystem, Expr, Optional[int]]:
    """Unreachable-target instance: M beside M or M beside S."""
    circuit = make_circuit()
    system = circuit.to_transition_system()
    return system, circuit.bad["incoherent"], None
