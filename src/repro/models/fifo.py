"""Synchronous FIFO queue controller (occupancy tracking).

Push/pop handshakes update an occupancy counter; ``full``/``empty``
flags guard the pointers.  Properties:

* the queue becomes full — needs exactly ``capacity`` pushes;
* occupancy overflow (count > capacity) — unreachable thanks to the
  ``full`` guard (the classic off-by-one bug this design family is used
  to catch in practice).
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..logic import expr as ex
from ..logic.expr import Expr
from ..system.circuit import Circuit
from ..system.model import TransitionSystem
from ._common import value_equals

__all__ = ["make", "make_circuit", "make_overflow_check"]


def make_circuit(capacity: int) -> Circuit:
    """Occupancy-counter FIFO controller for the given capacity."""
    if capacity < 1:
        raise ValueError("capacity must be positive")
    width = capacity.bit_length()          # count in 0..capacity
    circuit = Circuit(f"fifo{capacity}")
    push = circuit.add_input("push")
    pop = circuit.add_input("pop")
    count = [circuit.add_latch(f"q{i}", init=False) for i in range(width)]
    count_names = [f"q{i}" for i in range(width)]

    full = value_equals(count_names, capacity)
    empty = value_equals(count_names, 0)
    do_push = ex.mk_and(push, ex.mk_not(full))
    do_pop = ex.mk_and(pop, ex.mk_not(empty))
    inc = ex.mk_and(do_push, ex.mk_not(do_pop))
    dec = ex.mk_and(do_pop, ex.mk_not(do_push))

    # count' = count + inc - dec  (inc/dec mutually exclusive).
    carry: Expr = inc
    borrow: Expr = dec
    for i in range(width):
        added = ex.mk_xor(count[i], carry)
        circuit.set_next(f"q{i}", ex.mk_xor(added, borrow))
        new_carry = ex.mk_and(count[i], carry)
        new_borrow = ex.mk_and(ex.mk_not(count[i]), borrow)
        carry, borrow = new_carry, new_borrow

    circuit.add_output("full", full)
    circuit.add_output("empty", empty)
    circuit.add_bad("overflow",
                    _greater_than(count_names, capacity))
    return circuit


def _greater_than(names, bound: int) -> Expr:
    """count > bound over a little-endian bit vector."""
    terms = []
    width = len(names)
    for value in range(bound + 1, 1 << width):
        terms.append(value_equals(names, value))
    return ex.disjoin(terms)


def make(capacity: int) -> Tuple[TransitionSystem, Expr, Optional[int]]:
    """FIFO instance: reach the full state (depth = capacity pushes)."""
    circuit = make_circuit(capacity)
    system = circuit.to_transition_system()
    width = capacity.bit_length()
    final = value_equals([f"q{i}" for i in range(width)], capacity)
    return system, final, capacity


def make_overflow_check(capacity: int
                        ) -> Tuple[TransitionSystem, Expr, Optional[int]]:
    """Unreachable-target instance: occupancy exceeds capacity."""
    circuit = make_circuit(capacity)
    system = circuit.to_transition_system()
    final = circuit.bad["overflow"]
    depth = None if capacity.bit_length() >= 1 and \
        (1 << capacity.bit_length()) - 1 > capacity else None
    # When capacity + 1 == 2^width the overflow predicate is empty
    # (FALSE); either way the target is unreachable.
    return system, final, depth
