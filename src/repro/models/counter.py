"""Binary up-counter — the canonical deep-counterexample design.

An n-bit counter with an enable input counts up each enabled cycle; the
target asks whether a given count value is reachable.  The shortest
witness has exactly ``target`` steps (with enable held high), which
makes this family ideal for calibrating bound/depth behaviour: reaching
value v needs k = v steps, no fewer.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..logic import expr as ex
from ..logic.expr import Expr
from ..system.circuit import Circuit
from ..system.model import TransitionSystem
from ._common import value_equals

__all__ = ["make", "make_circuit"]


def make_circuit(width: int, with_enable: bool = True) -> Circuit:
    """Build the counter circuit (little-endian bits ``c0..c<width-1>``)."""
    if width < 1:
        raise ValueError("width must be positive")
    circuit = Circuit(f"counter{width}")
    enable = circuit.add_input("en") if with_enable else ex.TRUE
    bits = [circuit.add_latch(f"c{i}", init=False) for i in range(width)]
    carry = enable
    for i in range(width):
        circuit.set_next(f"c{i}", bits[i] ^ carry)
        carry = ex.mk_and(carry, bits[i])
    circuit.add_output("value_msb", bits[-1])
    return circuit


def make(width: int, target: Optional[int] = None,
         with_enable: bool = True
         ) -> Tuple[TransitionSystem, Expr, Optional[int]]:
    """Counter instance: reach the ``target`` count (default: all ones).

    Returns ``(system, final, shortest_depth)``; the shortest depth is
    the target value itself (the counter must increment that many
    times).
    """
    if target is None:
        target = (1 << width) - 1
    if not 0 <= target < (1 << width):
        raise ValueError(f"target {target} out of range for width {width}")
    circuit = make_circuit(width, with_enable)
    system = circuit.to_transition_system()
    final = value_equals([f"c{i}" for i in range(width)], target)
    return system, final, target
