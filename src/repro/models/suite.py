"""The 234-instance evaluation suite — our analogue of the paper's
"thirteen proprietary Intel® model checking test cases".

The paper derives 234 formula-(2) instances of varying bound from 13
designs.  We mirror the construction: 13 synthetic design families
(:mod:`repro.models`), each contributing one or more parameterizations,
and for every design a ladder of bounds around its interesting depth —
yielding exactly 234 (design, bound) instances with known ground truth.

Instances carry:

* ``system`` / ``final`` — the reachability query;
* ``k`` — the bound of this instance;
* ``expected`` — True (reachable in exactly k steps), False, or None
  when the ground truth was not precomputed (never the case for the
  instances generated here);
* ``family`` / ``name`` — provenance for per-family reporting (E4);
* ``properties`` — the instance's named specifications
  (:mod:`repro.spec`); by default the single ``Reachable(final)``
  target.  :func:`build_property_suite` yields one *multi-property*
  instance per family, bundling the target with invariant and
  bounded-LTL obligations over the same system — the workload the
  shared-unrolling session exists for.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..logic import expr as ex
from ..logic.expr import Expr
from ..spec.property import (Atom, Finally, Invariant, Next, Property,
                             Reachable, Until)
from ..system.model import TransitionSystem
from . import (arbiter, barrel, cache_msi, counter, elevator, fifo, gray,
               lfsr, mutex, pipeline, shift_register, traffic, vending)

__all__ = ["Instance", "build_suite", "build_property_suite",
           "default_property_bundle", "FAMILIES", "suite_summary"]


class Instance:
    """One (design, bound) BMC instance with ground truth."""

    def __init__(self, name: str, family: str, system: TransitionSystem,
                 final: Expr, k: int, expected: Optional[bool],
                 properties: Optional[Mapping[str, Property]] = None
                 ) -> None:
        self.name = name
        self.family = family
        self.system = system
        self.final = final
        self.k = k
        self.expected = expected        # exact-k reachability ground truth
        if properties is None:
            properties = {"target": Reachable(final)}
        self.properties: Dict[str, Property] = dict(properties)

    def __repr__(self) -> str:  # pragma: no cover
        truth = {True: "SAT", False: "UNSAT", None: "?"}[self.expected]
        return f"Instance({self.name!r}, k={self.k}, {truth})"


def default_property_bundle(final: Expr,
                            probe: Optional[Expr] = None
                            ) -> Dict[str, Property]:
    """The standard multi-property bundle around one target predicate.

    Five properties exercising every Property kind over one system:
    the existential target, its safety dual, and universal
    F / X / U obligations (checked as bounded-LTL claims, lasso
    counterexamples included).

    ``probe`` (optional) is a *local* state predicate — typically a
    single latch, the narrow-cone assertions real BMC workloads carry
    alongside their end-to-end targets — and adds three obligations
    over it (reach / safety / eventuality).  Probe properties observe
    a small cone of the design, which is what the model-reduction
    pipeline (:mod:`repro.reduce`) exists for: with ``reduce="auto"``
    they resolve over a reduced unrolling instead of the full one.
    """
    not_final = ex.mk_not(final)
    bundle = {
        "reach-target": Reachable(final),
        "never-target": Invariant(not_final),
        "eventually-target": Finally(Atom(final)),
        "clear-first-steps": Next(Next(Atom(not_final))),
        "clear-until-target": Until(Atom(not_final), Atom(final)),
    }
    if probe is not None:
        bundle["probe-reach"] = Reachable(probe)
        bundle["probe-safe"] = Invariant(ex.mk_not(probe))
        bundle["probe-eventually"] = Finally(Atom(probe))
    return bundle


def _narrowest_cone_latch(system: TransitionSystem) -> Optional[str]:
    """The non-constant latch with the smallest transitive support cone.

    Used to seed the probe properties of the multi-property suite with
    a genuinely local observable.  Latches the constant-propagation
    pass would fold (stuck at reset under ternary simulation) are
    skipped — a probe over one of those is three degenerate constant
    properties, not a workload.  Returns None when the system has no
    latches, its TR does not decompose per latch, or every latch is
    constant.
    """
    from ..reduce.structure import (FunctionalView, constant_latch_values,
                                    support_cone)
    view = FunctionalView.from_system(system)
    if view is None or not system.state_vars:
        return None
    values = constant_latch_values(view.updates, view.resets)
    candidates = [v for v in system.state_vars if values[v] is None]
    if not candidates:
        return None
    sizes = {latch: len(support_cone(view.updates, [latch]))
             for latch in candidates}
    return min(candidates, key=lambda v: (sizes[v],
                                          system.state_vars.index(v)))


def build_property_suite() -> List[Instance]:
    """One multi-property instance per design family.

    For each family, the deepest suite rung of the family's first
    system is reused and equipped with :func:`default_property_bundle`
    — the five target-centric properties plus three narrow-cone probe
    obligations over the family's most local latch — eight named
    properties over one shared system, the workload for
    :meth:`repro.bmc.session.BmcSession.check_properties`, the
    ``bench_multiprop`` benchmark and the ``bench_reduce`` reduction
    benchmark.
    """
    deepest: Dict[str, Instance] = {}
    first_system: Dict[str, int] = {}
    for inst in build_suite():
        system_id = first_system.setdefault(inst.family, id(inst.system))
        if id(inst.system) != system_id:
            continue
        best = deepest.get(inst.family)
        if best is None or inst.k > best.k:
            deepest[inst.family] = inst
    out = []
    for inst in deepest.values():
        probe_latch = _narrowest_cone_latch(inst.system)
        probe = ex.var(probe_latch) if probe_latch is not None else None
        out.append(Instance(f"{inst.family}-multiprop", inst.family,
                            inst.system, inst.final, inst.k, inst.expected,
                            properties=default_property_bundle(inst.final,
                                                               probe)))
    return out


# ----------------------------------------------------------------------
# Ground-truth helpers.
#
# For a deterministic *non-revisiting* prefix (counter, LFSR, ring, gray)
# reach-at-exactly-k is decidable analytically.  For the general case we
# mark "k == shortest depth" as SAT, "k < depth" as UNSAT, and only emit
# larger-k instances where exactness is known (see family notes below).
# ----------------------------------------------------------------------

def _ladder(depth: Optional[int], k_values: Sequence[int],
            exact_at: Callable[[int], Optional[bool]]) -> List[Tuple[int, Optional[bool]]]:
    return [(k, exact_at(k)) for k in k_values]


def _before_or_at(depth: int) -> Callable[[int], Optional[bool]]:
    """Truth for monotone-progress designs: SAT iff k == depth, UNSAT for
    k < depth; ladder stays at or below depth so this is total."""
    def fn(k: int) -> Optional[bool]:
        if k < depth:
            return False
        if k == depth:
            return True
        return None
    return fn


def _unreachable(k: int) -> Optional[bool]:
    return False


def _periodic(depth: int, period: int) -> Callable[[int], Optional[bool]]:
    """Truth for deterministic cyclic designs (counter, ring, LFSR, gray):
    the single run visits the target exactly at depth + j*period."""
    def fn(k: int) -> Optional[bool]:
        if k < depth:
            return False
        return (k - depth) % period == 0
    return fn


def _sticky(depth: int) -> Callable[[int], Optional[bool]]:
    """Truth for designs that can *hold* the target state once reached
    (counter with enable low, fifo holding full, elevator idling at the
    top): reachable at every k >= depth."""
    def fn(k: int) -> Optional[bool]:
        return k >= depth
    return fn


# ----------------------------------------------------------------------
# Family tables: name -> list of (instance_suffix, builder, bounds).
# Bounds are chosen so the full suite is laptop-solvable yet the
# separation between methods (E1) shows.
# ----------------------------------------------------------------------

def _counter_instances() -> List[Instance]:
    out = []
    for width, target in ((3, 5), (4, 9), (5, 19)):
        system, final, depth = counter.make(width, target)
        truth = _sticky(depth)      # enable low holds the count
        for k in (depth - 2, depth - 1, depth, depth + 1, depth + 3,
                  depth + 6):
            if k < 0:
                continue
            out.append(Instance(f"counter{width}-t{target}-k{k}", "counter",
                                system, final, k, truth(k)))
    return out


def _gray_instances() -> List[Instance]:
    out = []
    for width in (3, 4, 5):
        system, final, depth = gray.make(width)
        period = 1 << width
        truth = _periodic(depth, period)
        for k in (depth - 1, depth, depth + 1, depth + period):
            if k < 0:
                continue
            out.append(Instance(f"gray{width}-k{k}", "gray",
                                system, final, k, truth(k)))
    return out


def _ring_instances() -> List[Instance]:
    out = []
    for length in (4, 6, 8):
        system, final, depth = shift_register.make(length)
        truth = _periodic(depth, length)
        for k in (depth - 1, depth, depth + 1, depth + length):
            if k < 0:
                continue
            out.append(Instance(f"ring{length}-k{k}", "ring",
                                system, final, k, truth(k)))
    for length in (4, 6):
        system, final, _ = shift_register.make_invariant_violation(length)
        for k in (2, length):
            out.append(Instance(f"ring{length}-2tok-k{k}", "ring",
                                system, final, k, False))
    return out


def _lfsr_instances() -> List[Instance]:
    out = []
    for width, depth in ((4, 6), (5, 11), (6, 17)):
        system, final, _ = lfsr.make(width, depth)
        period = (1 << width) - 1
        truth = _periodic(depth, period)
        for k in (depth - 1, depth, depth + 1, depth + 2):
            if k < 0:
                continue
            out.append(Instance(f"lfsr{width}-d{depth}-k{k}", "lfsr",
                                system, final, k, truth(k)))
    return out


def _arbiter_instances() -> List[Instance]:
    out = []
    for n in (3, 4, 5):
        system, final, depth = arbiter.make(n)
        # Token rotates with period n; the grant can recur each lap and
        # can also be held by re-requesting — exact truth: k >= depth
        # and (grant achievable at k) = k >= depth (hold req while the
        # token is away is impossible; grant needs token alignment):
        # grant_i at step k requires token at i at step k-1, i.e.
        # (k-1) ≡ i (mod n).  Grants cannot be held.
        client = n - 1
        def truth(k: int, n=n, client=client) -> Optional[bool]:
            return k >= 1 and (k - 1) % n == client
        for k in (client, client + 1, client + 2, n + client + 1):
            if k < 1:
                continue
            out.append(Instance(f"arbiter{n}-k{k}", "arbiter",
                                system, final, k, truth(k)))
    for n in (3, 4):
        system, final, _ = arbiter.make_mutex_check(n)
        for k in (n, 2 * n):
            out.append(Instance(f"arbiter{n}-mutex-k{k}", "arbiter",
                                system, final, k, False))
    return out


def _traffic_instances() -> List[Instance]:
    out = []
    for cycles in (1, 2, 3):
        system, final, depth = traffic.make(cycles)
        period = 2 * cycles + 2      # full NS+EW schedule
        # ew_green holds for `cycles` ticks each period.
        def truth(k: int, depth=depth, cycles=cycles, period=period
                  ) -> Optional[bool]:
            if k < depth:
                return False
            return any((k - (depth + j)) % period == 0
                       for j in range(cycles))
        for k in (depth - 1, depth, depth + 1, depth + period):
            if k < 0:
                continue
            out.append(Instance(f"traffic{cycles}-k{k}", "traffic",
                                system, final, k, truth(k)))
    system, final, _ = traffic.make_safety_check(2)
    for k in (3, 8):
        out.append(Instance(f"traffic2-safe-k{k}", "traffic",
                            system, final, k, False))
    return out


def _fifo_instances() -> List[Instance]:
    out = []
    for capacity in (3, 5, 7):
        system, final, depth = fifo.make(capacity)
        truth = _sticky(depth)       # full holds while push stays high
        for k in (depth - 1, depth, depth + 1, depth + 4):
            if k < 0:
                continue
            out.append(Instance(f"fifo{capacity}-k{k}", "fifo",
                                system, final, k, truth(k)))
    for capacity in (3, 5):
        system, final, _ = fifo.make_overflow_check(capacity)
        for k in (capacity, capacity + 2):
            out.append(Instance(f"fifo{capacity}-ovf-k{k}", "fifo",
                                system, final, k, False))
    return out


def _elevator_instances() -> List[Instance]:
    out = []
    for width in (2, 3):
        system, final, depth = elevator.make(width)
        truth = _sticky(depth)       # the cab can idle at the top
        for k in (depth - 1, depth, depth + 1, depth + 3):
            if k < 0:
                continue
            out.append(Instance(f"elev{width}-k{k}", "elevator",
                                system, final, k, truth(k)))
    for width in (2, 3):
        system, final, _ = elevator.make_interlock_check(width)
        for k in (2, 2 ** width + 1):
            out.append(Instance(f"elev{width}-lock-k{k}", "elevator",
                                system, final, k, False))
    return out


def _mutex_instances() -> List[Instance]:
    out = []
    system, final, depth = mutex.make(0)
    truth = _sticky(depth)           # the process can stay critical
    for k in (1, 2, 3, 5, 8):
        out.append(Instance(f"peterson-crit0-k{k}", "mutex",
                            system, final, k, truth(k)))
    system, final, _ = mutex.make_exclusion_check()
    for k in (2, 4, 6, 9):
        out.append(Instance(f"peterson-excl-k{k}", "mutex",
                            system, final, k, False))
    return out


def _cache_instances() -> List[Instance]:
    out = []
    system, final, depth = cache_msi.make("m0")
    truth = _sticky(depth)           # M holds while no remote traffic
    for k in (1, 2, 4, 7):
        out.append(Instance(f"msi-m0-k{k}", "cache", system, final, k,
                            truth(k)))
    system, final, depth = cache_msi.make("both-s")
    truth = _sticky(depth)
    for k in (1, 2, 3, 6):
        out.append(Instance(f"msi-bothS-k{k}", "cache", system, final, k,
                            truth(k)))
    system, final, _ = cache_msi.make_coherence_check()
    for k in (3, 6):
        out.append(Instance(f"msi-coherent-k{k}", "cache", system, final,
                            k, False))
    return out


def _pipeline_instances() -> List[Instance]:
    out = []
    for depth_stages in (3, 4, 5):
        system, final, depth = pipeline.make(depth_stages)
        truth = _sticky(depth)       # keep fetching: the pipe stays full
        for k in (depth - 1, depth, depth + 1, depth + 3):
            if k < 0:
                continue
            out.append(Instance(f"pipe{depth_stages}-k{k}", "pipeline",
                                system, final, k, truth(k)))
    for depth_stages in (3, 4):
        system, final, _ = pipeline.make_flush_check(depth_stages)
        for k in (depth_stages, depth_stages + 2):
            out.append(Instance(f"pipe{depth_stages}-flush-k{k}",
                                "pipeline", system, final, k, False))
    return out


def _barrel_instances() -> List[Instance]:
    out = []
    for width in (3, 4, 5):
        system, final, depth = barrel.make(width)
        assert depth is not None
        # Reachability at k > depth is not analytically obvious; only
        # emit the well-understood rungs.
        for k, expected in ((depth - 1, False), (depth, True)):
            if k < 0:
                continue
            out.append(Instance(f"barrel{width}-k{k}", "barrel",
                                system, final, k, expected))
        # k < depth - 1 rungs are UNSAT as well:
        for k in range(max(0, depth - 3), depth - 1):
            out.append(Instance(f"barrel{width}-k{k}", "barrel",
                                system, final, k, False))
    return out


def _vending_instances() -> List[Instance]:
    out = []
    for price in (4, 6, 9):
        system, final, depth = vending.make(price)
        # Dispense lasts exactly one cycle; after reset the machine can
        # re-fill, so exact truth beyond depth needs care — emit the
        # certain rungs only.
        for k in (depth - 2, depth - 1, depth):
            if k < 0:
                continue
            out.append(Instance(f"vend{price}-k{k}", "vending",
                                system, final, k, k == depth))
    for price in (4, 6):
        system, final, _ = vending.make_overpay_check(price)
        for k in (price // 2 + 1, price + 1):
            out.append(Instance(f"vend{price}-over-k{k}", "vending",
                                system, final, k, False))
    return out


FAMILIES: Dict[str, Callable[[], List[Instance]]] = {
    "counter": _counter_instances,
    "gray": _gray_instances,
    "ring": _ring_instances,
    "lfsr": _lfsr_instances,
    "arbiter": _arbiter_instances,
    "traffic": _traffic_instances,
    "fifo": _fifo_instances,
    "elevator": _elevator_instances,
    "mutex": _mutex_instances,
    "cache": _cache_instances,
    "pipeline": _pipeline_instances,
    "barrel": _barrel_instances,
    "vending": _vending_instances,
}


def build_suite(target_size: int = 234) -> List[Instance]:
    """Build the evaluation suite (exactly ``target_size`` instances).

    The family builders produce a few more than 234 rungs; the suite is
    trimmed deterministically (round-robin across families) so every
    family stays represented, mirroring "13 test cases, 234 instances".
    """
    per_family: List[List[Instance]] = [fn() for fn in FAMILIES.values()]
    total = sum(len(lst) for lst in per_family)
    if total < target_size:
        # Widen with deeper counter/ring rungs — deterministic fill.
        extra: List[Instance] = []
        width = 6
        system, final, depth = counter.make(width, (1 << width) - 1)
        truth = _sticky(depth)
        k = 1
        while total + len(extra) < target_size:
            extra.append(Instance(f"counter{width}-fill-k{k}", "counter",
                                  system, final, k, truth(k)))
            k += 1
        per_family.append(extra)

    # Round-robin trim to the exact target size.
    suite: List[Instance] = []
    cursors = [0] * len(per_family)
    while len(suite) < target_size:
        progressed = False
        for idx, lst in enumerate(per_family):
            if len(suite) >= target_size:
                break
            if cursors[idx] < len(lst):
                suite.append(lst[cursors[idx]])
                cursors[idx] += 1
                progressed = True
        if not progressed:
            break
    return suite


def suite_summary(suite: Sequence[Instance]) -> Dict[str, Dict[str, int]]:
    """Per-family instance counts and truth distribution."""
    out: Dict[str, Dict[str, int]] = {}
    for inst in suite:
        row = out.setdefault(inst.family,
                             {"instances": 0, "sat": 0, "unsat": 0})
        row["instances"] += 1
        if inst.expected:
            row["sat"] += 1
        elif inst.expected is False:
            row["unsat"] += 1
    return out
