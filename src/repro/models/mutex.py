"""Peterson's mutual-exclusion protocol compiled to a synchronous circuit.

Two processes, each a 2-bit program counter (idle → trying → critical →
idle), the shared ``flag0``/``flag1``/``turn`` variables, and a
scheduler input that interleaves the processes (one step per cycle, as
in the standard asynchronous-to-synchronous compilation).  Properties:

* both processes critical — **unreachable** (Peterson is correct);
* process 0 reaches its critical section — shortest witness is 2
  scheduler steps (idle→trying, trying→critical).
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..logic import expr as ex
from ..logic.expr import Expr
from ..system.circuit import Circuit
from ..system.model import TransitionSystem

__all__ = ["make", "make_circuit", "make_exclusion_check"]

# PC encoding: 00 idle, 01 trying, 10 critical.


def _process(circuit: Circuit, me: int, other: int,
             scheduled: Expr) -> None:
    pc0 = ex.var(f"pc{me}_0")
    pc1 = ex.var(f"pc{me}_1")
    my_flag = ex.var(f"flag{me}")
    other_flag = ex.var(f"flag{other}")
    turn = ex.var("turn")
    want = ex.var(f"want{me}")
    done = ex.var(f"done{me}")

    idle = ex.mk_and(ex.mk_not(pc1), ex.mk_not(pc0))
    trying = ex.mk_and(ex.mk_not(pc1), pc0)
    critical = ex.mk_and(pc1, ex.mk_not(pc0))

    # Peterson's entry condition: other not interested, or it's my turn.
    may_enter = ex.mk_or(ex.mk_not(other_flag),
                         ex.mk_iff(turn, ex.const(me == 0)))
    enter_trying = ex.mk_and(scheduled, idle, want)
    enter_critical = ex.mk_and(scheduled, trying, may_enter)
    leave = ex.mk_and(scheduled, critical, done)

    # pc encoding updates: idle -> trying sets bit0; trying -> critical
    # clears bit0 and sets bit1; critical -> idle clears bit1.
    circuit.set_next(f"pc{me}_0",
                     ex.mk_ite(enter_trying, ex.TRUE,
                               ex.mk_ite(enter_critical, ex.FALSE, pc0)))
    circuit.set_next(f"pc{me}_1",
                     ex.mk_ite(enter_critical, ex.TRUE,
                               ex.mk_ite(leave, ex.FALSE, pc1)))
    circuit.set_next(f"flag{me}",
                     ex.mk_ite(enter_trying, ex.TRUE,
                               ex.mk_ite(leave, ex.FALSE, my_flag)))


def make_circuit() -> Circuit:
    """Peterson's algorithm for two processes (fixed size)."""
    circuit = Circuit("peterson")
    circuit.add_input("want0")
    circuit.add_input("want1")
    circuit.add_input("done0")
    circuit.add_input("done1")
    sched = circuit.add_input("sched")        # 0: process 0 steps; 1: p1

    for p in range(2):
        circuit.add_latch(f"pc{p}_0", init=False)
        circuit.add_latch(f"pc{p}_1", init=False)
        circuit.add_latch(f"flag{p}", init=False)
    circuit.add_latch("turn", init=False)

    p0_steps = ex.mk_not(sched)
    p1_steps = sched
    _process(circuit, 0, 1, p0_steps)
    _process(circuit, 1, 0, p1_steps)

    # turn := other  when a process moves idle -> trying.
    t0 = ex.mk_and(p0_steps,
                   ex.mk_not(ex.var("pc0_1")), ex.mk_not(ex.var("pc0_0")),
                   ex.var("want0"))
    t1 = ex.mk_and(p1_steps,
                   ex.mk_not(ex.var("pc1_1")), ex.mk_not(ex.var("pc1_0")),
                   ex.var("want1"))
    # Peterson: on entry, give priority to the *other* process
    # (turn = True means it is process 0's turn).
    circuit.set_next("turn",
                     ex.mk_ite(t0, ex.FALSE,
                               ex.mk_ite(t1, ex.TRUE, ex.var("turn"))))

    crit0 = ex.mk_and(ex.var("pc0_1"), ex.mk_not(ex.var("pc0_0")))
    crit1 = ex.mk_and(ex.var("pc1_1"), ex.mk_not(ex.var("pc1_0")))
    circuit.add_bad("both-critical", ex.mk_and(crit0, crit1))
    return circuit


def make(process: int = 0
         ) -> Tuple[TransitionSystem, Expr, Optional[int]]:
    """Mutex instance: the given process reaches its critical section."""
    if process not in (0, 1):
        raise ValueError("process must be 0 or 1")
    circuit = make_circuit()
    system = circuit.to_transition_system()
    final = ex.mk_and(ex.var(f"pc{process}_1"),
                      ex.mk_not(ex.var(f"pc{process}_0")))
    return system, final, 2


def make_exclusion_check() -> Tuple[TransitionSystem, Expr, Optional[int]]:
    """Unreachable-target instance: both processes critical at once."""
    circuit = make_circuit()
    system = circuit.to_transition_system()
    return system, circuit.bad["both-critical"], None
