"""Token ring / rotating shift register.

A one-hot token rotates through ``length`` stages, one stage per cycle.
Targets: *token at stage p* is reachable in exactly p steps (and then
every ``length`` steps after); *no token anywhere* and *two tokens* are
unreachable — the classic one-hot invariant checks.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..logic import expr as ex
from ..logic.expr import Expr
from ..system.circuit import Circuit
from ..system.model import TransitionSystem

__all__ = ["make", "make_circuit", "make_invariant_violation"]


def make_circuit(length: int) -> Circuit:
    if length < 2:
        raise ValueError("ring needs at least 2 stages")
    circuit = Circuit(f"ring{length}")
    stages = [circuit.add_latch(f"t{i}", init=(i == 0))
              for i in range(length)]
    for i in range(length):
        circuit.set_next(f"t{i}", stages[(i - 1) % length])
    return circuit


def make(length: int, position: Optional[int] = None
         ) -> Tuple[TransitionSystem, Expr, Optional[int]]:
    """Ring instance: token reaches ``position`` (default: last stage)."""
    if position is None:
        position = length - 1
    if not 0 <= position < length:
        raise ValueError(f"position {position} out of range")
    circuit = make_circuit(length)
    system = circuit.to_transition_system()
    final = ex.conjoin(
        ex.var(f"t{i}") if i == position else ex.mk_not(ex.var(f"t{i}"))
        for i in range(length))
    return system, final, position


def make_invariant_violation(length: int, kind: str = "two-tokens"
                             ) -> Tuple[TransitionSystem, Expr, Optional[int]]:
    """Unreachable-target instance (one-hot invariant violations)."""
    circuit = make_circuit(length)
    system = circuit.to_transition_system()
    if kind == "two-tokens":
        final = ex.disjoin(
            ex.mk_and(ex.var(f"t{i}"), ex.var(f"t{j}"))
            for i in range(length) for j in range(i + 1, length))
    elif kind == "no-token":
        final = ex.conjoin(ex.mk_not(ex.var(f"t{i}")) for i in range(length))
    else:
        raise ValueError(f"unknown kind {kind!r}")
    return system, final, None
