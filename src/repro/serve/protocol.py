"""Wire protocol of the ``repro serve`` daemon.

Newline-delimited JSON, version-stamped.  Clients send *requests* —
one JSON object per line, ``op`` selecting the verb — and receive
*responses* (``"ok": true/false``, echoing the request's ``id``) plus,
for jobs they submitted or subscribed to, asynchronous *events*
(``"event": "bound" | "done"``) interleaved on the same connection.

Validation is strict: an unknown op or field is rejected with a
did-you-mean suggestion rather than silently ignored, so a typo'd
``"buget"`` fails loudly instead of running unbudgeted for an hour.
All validation lives here, in pure functions over plain dicts, so the
daemon's network layer stays a thin shell and the exact same checks
run in unit tests with no socket in sight.
"""

from __future__ import annotations

import difflib
import json
from typing import Any, Callable, Dict, Optional, Tuple

__all__ = ["PROTOCOL_VERSION", "ProtocolError", "validate_request",
           "encode_line", "decode_line", "ok_response", "error_response",
           "OPS"]

PROTOCOL_VERSION = 1

MAX_LINE_BYTES = 1 << 20        # 1 MiB: no legitimate request is bigger


class ProtocolError(Exception):
    """A malformed request; the message is sent back verbatim."""


# ----------------------------------------------------------------------
# Field validators: value -> normalized value, or raise ProtocolError.
# ----------------------------------------------------------------------
def _string(name: str) -> Callable[[Any], Any]:
    def check(value: Any) -> str:
        if not isinstance(value, str) or not value:
            raise ProtocolError(f"field {name!r} must be a "
                                f"non-empty string")
        return value
    return check


def _choice(name: str, *allowed: str) -> Callable[[Any], Any]:
    def check(value: Any) -> str:
        if value not in allowed:
            raise ProtocolError(
                f"field {name!r} must be one of "
                f"{', '.join(repr(a) for a in allowed)}, got {value!r}")
        return value
    return check


def _nonneg_int(name: str) -> Callable[[Any], Any]:
    def check(value: Any) -> int:
        if isinstance(value, bool) or not isinstance(value, int) \
                or value < 0:
            raise ProtocolError(f"field {name!r} must be a "
                                f"non-negative integer, got {value!r}")
        return value
    return check


def _any_int(name: str) -> Callable[[Any], Any]:
    def check(value: Any) -> int:
        if isinstance(value, bool) or not isinstance(value, int):
            raise ProtocolError(f"field {name!r} must be an integer, "
                                f"got {value!r}")
        return value
    return check


def _pos_number(name: str) -> Callable[[Any], Any]:
    def check(value: Any) -> float:
        if isinstance(value, bool) or \
                not isinstance(value, (int, float)) or value <= 0:
            raise ProtocolError(f"field {name!r} must be a positive "
                                f"number, got {value!r}")
        return float(value)
    return check


def _bool(name: str) -> Callable[[Any], Any]:
    def check(value: Any) -> bool:
        if not isinstance(value, bool):
            raise ProtocolError(f"field {name!r} must be a boolean, "
                                f"got {value!r}")
        return value
    return check


_BUDGET_FIELDS = ("max_conflicts", "max_decisions", "max_propagations",
                  "max_seconds", "max_literals")


def _budget_dict(name: str) -> Callable[[Any], Any]:
    def check(value: Any) -> Dict[str, Any]:
        if not isinstance(value, dict):
            raise ProtocolError(f"field {name!r} must be an object "
                                f"with budget limits")
        for key, limit in value.items():
            if key not in _BUDGET_FIELDS:
                raise ProtocolError(
                    f"unknown budget limit {key!r}"
                    + _suggest(key, _BUDGET_FIELDS))
            if limit is not None and (isinstance(limit, bool)
                                      or not isinstance(limit, (int, float))
                                      or limit < 0):
                raise ProtocolError(f"budget limit {key!r} must be a "
                                    f"non-negative number or null")
        return {k: value.get(k) for k in _BUDGET_FIELDS}
    return check


def _options_dict(name: str) -> Callable[[Any], Any]:
    def check(value: Any) -> Dict[str, Any]:
        if not isinstance(value, dict) or \
                not all(isinstance(k, str) for k in value):
            raise ProtocolError(f"field {name!r} must be an object "
                                f"with string keys")
        return dict(value)
    return check


# ----------------------------------------------------------------------
# Request schemas: op -> {field: (required, validator)}.
# ----------------------------------------------------------------------
_SUBMIT_FIELDS: Dict[str, Tuple[bool, Callable[[Any], Any]]] = {
    "family": (True, _string("family")),
    "k": (True, _nonneg_int("k")),
    "kind": (False, _choice("kind", "check", "sweep")),
    "method": (False, _string("method")),
    "semantics": (False, _choice("semantics", "exact", "within")),
    "budget": (False, _budget_dict("budget")),
    "options": (False, _options_dict("options")),
    "reduce": (False, _choice("reduce", "auto", "off")),
    "priority": (False, _any_int("priority")),
    "deadline": (False, _pos_number("deadline")),
    "subscribe": (False, _bool("subscribe")),
}

_SUBMIT_DEFAULTS: Dict[str, Any] = {
    "kind": "check",
    "method": "jsat",
    "semantics": "exact",
    "budget": None,
    "options": {},
    "reduce": "auto",
    "priority": 0,
    "deadline": None,
    "subscribe": False,
}

OPS: Dict[str, Dict[str, Tuple[bool, Callable[[Any], Any]]]] = {
    "submit": _SUBMIT_FIELDS,
    "batch": {"jobs": (True, None)},        # validated recursively
    "status": {"job": (False, _string("job"))},
    "cancel": {"job": (True, _string("job"))},
    "subscribe": {"job": (True, _string("job"))},
    "stats": {},
    "ping": {},
    "shutdown": {},
}

_COMMON_FIELDS = ("op", "id", "version")


def _suggest(name: str, candidates) -> str:
    close = difflib.get_close_matches(str(name), list(candidates), n=1)
    return f" (did you mean {close[0]!r}?)" if close else ""


def _validate_fields(op: str, obj: Dict[str, Any],
                     schema: Dict[str, Tuple[bool, Callable[[Any], Any]]],
                     defaults: Optional[Dict[str, Any]] = None
                     ) -> Dict[str, Any]:
    out = dict(defaults or {})
    for name, value in obj.items():
        if name in _COMMON_FIELDS:
            continue
        if name not in schema:
            raise ProtocolError(
                f"unknown field {name!r} for op {op!r}"
                + _suggest(name, list(schema) + list(_COMMON_FIELDS)))
        _, validator = schema[name]
        out[name] = value if validator is None else validator(value)
    for name, (required, _) in schema.items():
        if required and name not in out:
            raise ProtocolError(f"op {op!r} requires field {name!r}")
    return out


def validate_submit(obj: Dict[str, Any]) -> Dict[str, Any]:
    """Validate one submit-shaped object (used by submit and batch).

    The returned spec carries ``method_pinned``: True when the client
    named a method explicitly, False when the default was filled in.
    The daemon's simulation pre-solve tier only intercepts unpinned
    submissions — a client that asked for a specific engine gets that
    engine (and its streaming behaviour), never a shortcut.
    """
    spec = _validate_fields("submit", obj, _SUBMIT_FIELDS,
                            _SUBMIT_DEFAULTS)
    spec["method_pinned"] = isinstance(obj, dict) and "method" in obj
    return spec


def validate_request(obj: Any) -> Tuple[str, Dict[str, Any]]:
    """Validate one decoded request; returns ``(op, fields)``.

    ``fields`` has every optional field filled with its default, so
    handlers never touch ``.get`` chains.  Raises
    :class:`ProtocolError` with a client-presentable message on any
    violation.
    """
    if not isinstance(obj, dict):
        raise ProtocolError("request must be a JSON object")
    version = obj.get("version", PROTOCOL_VERSION)
    if version != PROTOCOL_VERSION:
        raise ProtocolError(f"unsupported protocol version {version!r}; "
                            f"this daemon speaks {PROTOCOL_VERSION}")
    op = obj.get("op")
    if not isinstance(op, str):
        raise ProtocolError("request must carry a string 'op'")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r}" + _suggest(op, OPS))
    fields = _validate_fields(op, obj, OPS[op])
    if op == "submit":
        fields = validate_submit(obj)
    elif op == "batch":
        jobs = fields.get("jobs")
        if not isinstance(jobs, list) or not jobs:
            raise ProtocolError("op 'batch' requires a non-empty "
                                "'jobs' array")
        fields["jobs"] = [validate_submit(j) if isinstance(j, dict)
                          else _reject_batch_entry(j) for j in jobs]
    return op, fields


def _reject_batch_entry(entry: Any) -> Dict[str, Any]:
    raise ProtocolError(f"batch entries must be objects, got "
                        f"{type(entry).__name__}")


# ----------------------------------------------------------------------
# Line codec
# ----------------------------------------------------------------------
def encode_line(obj: Dict[str, Any]) -> bytes:
    """One protocol message -> one newline-terminated JSON line."""
    return (json.dumps(obj, separators=(",", ":")) + "\n").encode()


def decode_line(line: bytes) -> Any:
    """One received line -> decoded object (ProtocolError on bad JSON)."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError("request line exceeds "
                            f"{MAX_LINE_BYTES} bytes")
    try:
        return json.loads(line.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as err:
        raise ProtocolError(f"request is not valid JSON: {err}")


def ok_response(request_id: Any = None, **fields: Any) -> Dict[str, Any]:
    out: Dict[str, Any] = {"ok": True}
    if request_id is not None:
        out["id"] = request_id
    out.update(fields)
    return out


def error_response(message: str,
                   request_id: Any = None) -> Dict[str, Any]:
    out: Dict[str, Any] = {"ok": False, "error": message}
    if request_id is not None:
        out["id"] = request_id
    return out
