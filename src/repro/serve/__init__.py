"""BMC as a service: the ``repro serve`` daemon and its client.

Layers (bottom up):

* :mod:`repro.serve.protocol` — the versioned NDJSON wire schema,
  with strict did-you-mean validation;
* :mod:`repro.serve.jobs` — job records, waiter attachment, and the
  priority/fairness/deadline queue;
* :mod:`repro.serve.bridge` — the thread that owns the blocking
  :class:`~repro.portfolio.pool.WorkerPool` on behalf of the asyncio
  loop;
* :mod:`repro.serve.daemon` — :class:`ServeDaemon`, the asyncio
  server tying queue, dedup/cache and pool together;
* :mod:`repro.serve.client` — :class:`ServeClient`, the blocking
  client used by the CLI verbs, the tests and the benchmark.
"""

from .client import ServeClient, ServeError
from .daemon import ServeDaemon
from .jobs import FairQueue, Job, JobState, Waiter
from .protocol import (PROTOCOL_VERSION, ProtocolError, decode_line,
                       encode_line, error_response, ok_response,
                       validate_request)

__all__ = [
    "ServeDaemon", "ServeClient", "ServeError",
    "FairQueue", "Job", "JobState", "Waiter",
    "PROTOCOL_VERSION", "ProtocolError", "validate_request",
    "encode_line", "decode_line", "ok_response", "error_response",
]
