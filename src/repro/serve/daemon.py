"""The ``repro serve`` daemon: BMC as a long-lived service.

One process owns a warm :class:`~repro.portfolio.pool.WorkerPool`
(solver processes that survive across requests, fork-inheriting the
hash-consed expression table and built model suite) plus a result
cache, and serves verification queries over a unix socket or TCP port
speaking the NDJSON protocol of :mod:`repro.serve.protocol`.

Request lifecycle::

    submit ──▶ dedup (cache answer / coalesce onto in-flight job)
           ──▶ FairQueue (priority + per-client fairness + deadline)
           ──▶ PoolBridge ──▶ warm worker ──▶ done event (+ bound
               events streamed to subscribers while a sweep runs)

Design notes
------------
* **Reductions happen daemon-side.**  The daemon reduces each query
  (cone of influence etc.) before fingerprinting, so two submissions
  whose *reduced* queries coincide share one execution and one cache
  entry even when their full-width originals differ.  Each attached
  waiter lifts traces through its own reduction, so every client sees
  witnesses over the system it actually asked about.
* **Cancellation is cooperative and cheap.**  Cancelling a running
  job sets the worker's stop event; the solver aborts at its next
  budget checkpoint and the *same warm process* picks up the next job
  — no kill, no respawn, no cold solver.
* **A waiter is not a job.**  Cancelling or disconnecting detaches
  one client's waiters; the underlying execution is only cancelled
  when nobody is left waiting on it.
"""

from __future__ import annotations

import asyncio
import difflib
import logging
import signal
import time
from typing import Any, Dict, Optional

from ..bmc.backend import ALL_METHODS
from ..models import FAMILIES, build_suite
from ..portfolio.cache import MemoryCache, ResultCache, cell_key
from ..portfolio.ipc import budget_from_dict, make_cell_payload
from ..reduce import identity_reduction, reduce_for_target
from ..system.trace import Trace
from ..telemetry.metrics import current_metrics
from ..telemetry.trace import current_tracer
from .bridge import PoolBridge
from .jobs import FairQueue, Job, JobState, Waiter
from .protocol import (MAX_LINE_BYTES, PROTOCOL_VERSION, ProtocolError,
                       decode_line, encode_line, error_response,
                       ok_response, validate_request)

__all__ = ["ServeDaemon"]

logger = logging.getLogger(__name__)

# Outcome keys that never leave the daemon (per-run, non-JSON, or
# worker-internal).
_EPHEMERAL_KEYS = ("worker_pid", "trace_events", "metrics", "invariant")

_HOUSEKEEPING_TICK = 0.05       # deadline-eviction granularity


class _ClientState:
    """Per-connection bookkeeping."""

    __slots__ = ("client_id", "writer", "outbox", "active", "closed")

    def __init__(self, client_id: int, writer) -> None:
        self.client_id = client_id
        self.writer = writer
        self.outbox: asyncio.Queue = asyncio.Queue()
        self.active = 0             # waiters attached to live jobs
        self.closed = False


class ServeDaemon:
    """Long-lived verification service over a warm worker pool."""

    def __init__(self, socket_path: Optional[str] = None,
                 host: str = "127.0.0.1", port: Optional[int] = None,
                 jobs: Optional[int] = None,
                 cache_dir: Optional[str] = None,
                 wall_timeout: Optional[float] = None,
                 max_queued: int = 16,
                 sim_tier: bool = True) -> None:
        if (socket_path is None) == (port is None):
            raise ValueError("pick exactly one of socket_path / port")
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.jobs = jobs
        self.wall_timeout = wall_timeout
        self.max_queued = max_queued
        self.sim_tier = sim_tier
        self.cache = (ResultCache(cache_dir) if cache_dir
                      else MemoryCache())

        self._server: Optional[asyncio.AbstractServer] = None
        self._bridge: Optional[PoolBridge] = None
        self._clients: Dict[int, _ClientState] = {}
        self._jobs: Dict[str, Job] = {}
        self._by_key: Dict[str, Job] = {}       # in-flight dedup index
        self._queue = FairQueue()
        self._running: Dict[int, Job] = {}      # task_id -> job
        self._next_client = 0
        self._next_job = 0
        self._started_at = 0.0
        self._housekeeper: Optional[asyncio.Task] = None
        self._shutdown_event: Optional[asyncio.Event] = None
        self.stats: Dict[str, int] = {
            "requests": 0, "submitted": 0, "completed": 0,
            "cancelled": 0, "evicted": 0, "failed": 0,
            "coalesced": 0, "cache_answers": 0, "sim_answers": 0,
            "errors": 0,
        }
        # Memoized per-family instance and per-(family, reduce)
        # reduction: computed once, reused by every request.
        self._instances: Dict[str, Any] = {}
        self._reductions: Dict[tuple, Any] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the endpoint and start the pool bridge."""
        loop = asyncio.get_running_loop()
        self._shutdown_event = asyncio.Event()
        self._bridge = PoolBridge(loop, jobs=self.jobs,
                                  wall_timeout=self.wall_timeout,
                                  on_result=self._on_result,
                                  on_progress=self._on_progress)
        if self.socket_path is not None:
            self._server = await asyncio.start_unix_server(
                self._handle_client, path=self.socket_path,
                limit=MAX_LINE_BYTES + 2)
            self.endpoint = self.socket_path
        else:
            self._server = await asyncio.start_server(
                self._handle_client, host=self.host, port=self.port,
                limit=MAX_LINE_BYTES + 2)
            self.port = self._server.sockets[0].getsockname()[1]
            self.endpoint = f"{self.host}:{self.port}"
        self._started_at = time.monotonic()
        self._housekeeper = asyncio.ensure_future(self._housekeeping())
        logger.info("serving on %s with %d workers", self.endpoint,
                    self._bridge.jobs)

    async def serve_forever(self) -> None:
        """Start (if needed) and run until :meth:`shutdown` or signal."""
        if self._server is None:
            await self.start()
        loop = asyncio.get_running_loop()
        installed = []
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.request_shutdown)
                installed.append(signum)
            except (NotImplementedError, RuntimeError, ValueError):
                break       # non-main thread / platform without signals
        try:
            await self._shutdown_event.wait()
        finally:
            for signum in installed:
                loop.remove_signal_handler(signum)
            await self.stop()

    def request_shutdown(self) -> None:
        """Signal-safe: ask ``serve_forever`` to unwind and stop."""
        if self._shutdown_event is not None:
            self._shutdown_event.set()

    async def stop(self) -> None:
        """Tear everything down: server, clients, pool (no orphans)."""
        if self._housekeeper is not None:
            self._housekeeper.cancel()
            self._housekeeper = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for client in list(self._clients.values()):
            self._drop_client(client)
        if self._bridge is not None:
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, self._bridge.stop)
            self._bridge = None

    def run(self) -> None:
        """Blocking entry point used by the CLI."""
        asyncio.run(self.serve_forever())

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        self._next_client += 1
        client = _ClientState(self._next_client, writer)
        self._clients[client.client_id] = client
        current_metrics().gauge("serve.clients", len(self._clients))
        sender = asyncio.ensure_future(self._writer_loop(client))
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, asyncio.LimitOverrunError):
                    self._send(client, error_response(
                        "request line too long"))
                    break
                except (ConnectionError, OSError):
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                await self._handle_line(client, line)
        finally:
            self._drop_client(client)
            sender.cancel()
            try:
                writer.close()
            except Exception:       # pragma: no cover
                pass

    async def _writer_loop(self, client: _ClientState) -> None:
        writer = client.writer
        try:
            while True:
                obj = await client.outbox.get()
                if obj is None:
                    break
                writer.write(encode_line(obj))
                await writer.drain()
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass

    def _send(self, client: _ClientState, obj: Dict[str, Any]) -> None:
        if not client.closed:
            client.outbox.put_nowait(obj)

    async def _handle_line(self, client: _ClientState,
                           line: bytes) -> None:
        self.stats["requests"] += 1
        current_metrics().inc("serve.requests")
        request_id = None
        try:
            obj = decode_line(line)
            if isinstance(obj, dict):
                request_id = obj.get("id")
            op, fields = validate_request(obj)
        except ProtocolError as err:
            self.stats["errors"] += 1
            self._send(client, error_response(str(err), request_id))
            return
        with current_tracer().span(f"serve.{op}",
                                   client=client.client_id):
            handler = getattr(self, f"_op_{op}")
            try:
                await handler(client, request_id, fields)
            except ProtocolError as err:
                self.stats["errors"] += 1
                self._send(client, error_response(str(err), request_id))

    def _drop_client(self, client: _ClientState) -> None:
        """Detach a disconnected client from every job it waited on.

        Jobs left with no waiters are cancelled outright — a client
        that walks away mid-sweep frees its worker instead of wedging
        it — and a subscriber's disappearance never blocks the event
        stream of the waiters that remain.
        """
        if client.closed:
            return
        client.closed = True
        self._clients.pop(client.client_id, None)
        client.outbox.put_nowait(None)
        for job in list(self._jobs.values()):
            if job.state.terminal:
                continue
            before = len(job.waiters)
            job.waiters = [w for w in job.waiters
                           if w.client_id != client.client_id]
            if len(job.waiters) < before and not job.waiters:
                self._cancel_job(job)
        current_metrics().gauge("serve.clients", len(self._clients))

    # ------------------------------------------------------------------
    # Query preparation (memoized)
    # ------------------------------------------------------------------
    def _instance(self, family: str):
        if family not in self._instances:
            if family not in FAMILIES:
                close = difflib.get_close_matches(family, FAMILIES, n=1)
                hint = f" (did you mean {close[0]!r}?)" if close else ""
                raise ProtocolError(f"unknown family {family!r}{hint}")
            self._instances[family] = next(
                i for i in build_suite() if i.family == family)
        return self._instances[family]

    def _reduction(self, family: str, knob: str):
        key = (family, knob)
        if key not in self._reductions:
            instance = self._instance(family)
            if knob == "off":
                self._reductions[key] = identity_reduction(
                    instance.system)
            else:
                self._reductions[key] = reduce_for_target(
                    instance.system, instance.final)
        return self._reductions[key]

    def _prepare(self, spec: Dict[str, Any]):
        """spec -> (fingerprint key, cell payload, reduction)."""
        if spec["method"] not in ALL_METHODS:
            close = difflib.get_close_matches(spec["method"],
                                              ALL_METHODS, n=1)
            hint = f" (did you mean {close[0]!r}?)" if close else ""
            raise ProtocolError(
                f"unknown method {spec['method']!r}{hint}")
        instance = self._instance(spec["family"])
        reduction = self._reduction(spec["family"], spec["reduce"])
        system = reduction.system
        final = (instance.final if reduction.is_identity
                 else reduction.map_expr(instance.final))
        budget = budget_from_dict(spec["budget"])
        # The key fingerprints the *reduced* query, so equal cones
        # coalesce; reduce="off" in the key/payload because the worker
        # receives the already-reduced system.
        key = spec["kind"] + ":" + cell_key(
            system, final, spec["k"], spec["method"],
            spec["semantics"], budget, spec["options"], reduce="off")
        payload = make_cell_payload(
            system, final, spec["k"], spec["method"],
            semantics=spec["semantics"], budget=budget,
            options=spec["options"], reduce="off",
            kind=spec["kind"], stream=(spec["kind"] == "sweep"))
        return key, payload, reduction

    def _sim_presolve(self, spec: Dict[str, Any],
                      payload: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        """The daemon's pre-solve tier: answer a submission by random
        simulation before it ever reaches the queue.

        Runs on the already-reduced payload system, strictly
        wall-bounded, SAT-only.  Returns a finished outcome dict in
        the same shape a worker would produce (sweep submissions get
        the sweep outcome shape), or None — the job then queues
        normally.
        """
        if not self.sim_tier:
            return None
        if spec.get("method_pinned"):
            # The client asked for a specific engine; honour it —
            # pinned submissions keep their method's behaviour
            # (per-bound streaming, proof capability) end to end.
            return None
        from ..sat.types import SolveResult
        from ..sim import presolve
        semantics = (spec["semantics"] if spec["kind"] == "check"
                     else "within")
        out = presolve(payload["system"], payload["final"], spec["k"],
                       semantics=semantics)
        if out is None:
            return None
        assert out.trace is not None
        outcome: Dict[str, Any] = {
            "status": SolveResult.SAT.name,
            "k": out.hit_k,
            "method": "simulation",
            "seconds": out.seconds,
            "stats": dict(out.stats, sim_presolved=True,
                          sim_solver_calls=0),
            "trace": {
                "states": [dict(s) for s in out.trace.states],
                "inputs": [dict(i) for i in out.trace.inputs]},
            "proved": False,
            "invariant": None,
            "error": None,
        }
        if spec["kind"] == "sweep":
            outcome["kind"] = "sweep"
            outcome["max_k"] = spec["k"]
            outcome["per_bound"] = [{
                "k": out.hit_k, "status": SolveResult.SAT.name,
                "seconds": out.seconds,
                "cumulative_seconds": out.seconds, "proved": False}]
        return outcome

    # ------------------------------------------------------------------
    # Ops
    # ------------------------------------------------------------------
    async def _op_ping(self, client, request_id, fields) -> None:
        self._send(client, ok_response(request_id, pong=True,
                                       version=PROTOCOL_VERSION))

    async def _op_submit(self, client, request_id, fields) -> None:
        ack = self._submit_one(client, request_id, fields)
        self._send(client, ack)
        self._dispatch()

    async def _op_batch(self, client, request_id, fields) -> None:
        acks = []
        for spec in fields["jobs"]:
            try:
                ack = self._submit_one(client, request_id, spec)
                ack.pop("id", None)
            except ProtocolError as err:
                ack = {"ok": False, "error": str(err)}
            acks.append(ack)
        self._send(client, ok_response(request_id, jobs=acks))
        self._dispatch()

    def _submit_one(self, client: _ClientState, request_id,
                    spec: Dict[str, Any]) -> Dict[str, Any]:
        if client.active >= self.max_queued:
            raise ProtocolError(
                f"budget exhausted: client already has "
                f"{client.active} active jobs (max {self.max_queued}); "
                f"wait or cancel before submitting more")
        key, payload, reduction = self._prepare(spec)
        self.stats["submitted"] += 1

        cached = self.cache.get(key)
        if cached is not None:
            job = self._new_job(key, spec, payload)
            job.state = JobState.DONE
            job.result = dict(cached)
            job.finished_at = job.started_at = time.monotonic()
            self.stats["cache_answers"] += 1
            self.stats["completed"] += 1
            return ok_response(
                request_id, job=job.job_id, state="done", cached=True,
                result=self._result_view(cached, reduction))

        sim_outcome = self._sim_presolve(spec, payload)
        if sim_outcome is not None:
            job = self._new_job(key, spec, payload)
            job.state = JobState.DONE
            job.result = dict(sim_outcome)
            job.finished_at = job.started_at = time.monotonic()
            # Deliberately NOT cached: the key names the spec's solver
            # method, and a later submission pinning that method must
            # get the real engine, not a simulation result wearing its
            # key.  Re-presolving a repeat submission costs ~1 ms and
            # is deterministic.
            self.stats["sim_answers"] += 1
            self.stats["completed"] += 1
            return ok_response(
                request_id, job=job.job_id, state="done", presolved=True,
                result=self._result_view(sim_outcome, reduction))

        waiter = Waiter(client.client_id, request_id, reduction,
                        spec["subscribe"])
        inflight = self._by_key.get(key)
        if inflight is not None and not inflight.state.terminal:
            inflight.waiters.append(waiter)
            inflight.coalesced += 1
            client.active += 1
            self.stats["coalesced"] += 1
            return ok_response(request_id, job=inflight.job_id,
                               state=inflight.state.value,
                               coalesced=True)

        job = self._new_job(key, spec, payload)
        job.waiters.append(waiter)
        job.priority = spec["priority"]
        if spec["deadline"] is not None:
            job.deadline = time.monotonic() + spec["deadline"]
        self._by_key[key] = job
        self._queue.push(job, client_rank=client.active)
        client.active += 1
        current_metrics().gauge("serve.queue_depth", len(self._queue))
        return ok_response(request_id, job=job.job_id, state="queued")

    def _new_job(self, key: str, spec: Dict[str, Any],
                 payload: Dict[str, Any]) -> Job:
        self._next_job += 1
        job = Job(f"j{self._next_job}", self._next_job, key, spec,
                  payload)
        self._jobs[job.job_id] = job
        return job

    async def _op_status(self, client, request_id, fields) -> None:
        job_id = fields.get("job")
        if job_id is None:
            self._send(client, ok_response(request_id,
                                           stats=self._stats_view()))
            return
        job = self._jobs.get(job_id)
        if job is None:
            raise ProtocolError(f"unknown job {job_id!r}")
        view = job.describe()
        if job.state.terminal and job.result is not None:
            reduction = self._reduction(job.spec["family"],
                                        job.spec["reduce"])
            view["result"] = self._result_view(job.result, reduction)
        self._send(client, ok_response(request_id, **view))

    async def _op_stats(self, client, request_id, fields) -> None:
        self._send(client, ok_response(request_id,
                                       stats=self._stats_view()))

    async def _op_cancel(self, client, request_id, fields) -> None:
        job = self._jobs.get(fields["job"])
        if job is None:
            raise ProtocolError(f"unknown job {fields['job']!r}")
        if job.state.terminal:
            self._send(client, ok_response(request_id, job=job.job_id,
                                           state=job.state.value,
                                           already_finished=True))
            return
        mine = [w for w in job.waiters
                if w.client_id == client.client_id]
        others = [w for w in job.waiters
                  if w.client_id != client.client_id]
        if mine and others:
            # Detach only this client; the job keeps running for the
            # other waiters.
            job.waiters = others
            client.active -= len(mine)
            self._send(client, ok_response(request_id, job=job.job_id,
                                           state=job.state.value,
                                           detached=True))
            return
        for waiter in job.waiters:
            self._release_waiter(waiter)
            # Every remaining waiter (possibly on other connections —
            # an administrative `repro cancel`) learns the job died,
            # so nobody blocks forever on a done event.
            self._send_to(waiter.client_id,
                          {"event": "done", "job": job.job_id,
                           "state": "cancelled", "result": None})
        job.waiters = []
        state = self._cancel_job(job)
        self._send(client, ok_response(request_id, job=job.job_id,
                                       state=state))
        self._dispatch()

    def _cancel_job(self, job: Job) -> str:
        """Cancel the underlying execution (no waiters remain)."""
        if job.job_id in self._queue:
            self._queue.remove(job.job_id)
            job.state = JobState.CANCELLED
            job.finished_at = time.monotonic()
            self._by_key.pop(job.key, None)
            self.stats["cancelled"] += 1
            current_metrics().gauge("serve.queue_depth",
                                    len(self._queue))
            return "cancelled"
        if job.task_id in self._running:
            job.state = JobState.CANCELLED
            self._bridge.cancel(job.task_id)
            # The worker aborts at its next budget checkpoint; the
            # outcome lands in _on_result, which sees the CANCELLED
            # state and closes the job out.
            return "cancelling"
        return job.state.value      # pragma: no cover - race leftover

    async def _op_subscribe(self, client, request_id, fields) -> None:
        job = self._jobs.get(fields["job"])
        if job is None:
            raise ProtocolError(f"unknown job {fields['job']!r}")
        reduction = self._reduction(job.spec["family"],
                                    job.spec["reduce"])
        if job.state.terminal:
            view = {"state": job.state.value}
            if job.result is not None:
                view["result"] = self._result_view(job.result,
                                                   reduction)
            self._send(client, ok_response(request_id, job=job.job_id,
                                           **view))
            return
        job.waiters.append(Waiter(client.client_id, request_id,
                                  reduction, True))
        client.active += 1
        self._send(client, ok_response(request_id, job=job.job_id,
                                       state=job.state.value,
                                       subscribed=True))

    async def _op_shutdown(self, client, request_id, fields) -> None:
        self._send(client, ok_response(request_id, stopping=True))
        self.request_shutdown()

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _dispatch(self) -> None:
        """Feed queued jobs to free workers, best-first."""
        self._evict_expired()
        while len(self._running) < self._bridge.jobs:
            job = self._queue.pop()
            if job is None:
                break
            job.state = JobState.RUNNING
            job.started_at = time.monotonic()
            self._running[job.task_id] = job
            self._bridge.submit(job.task_id, job.payload)
        current_metrics().gauge("serve.queue_depth", len(self._queue))
        current_metrics().gauge("serve.inflight", len(self._running))

    def _evict_expired(self) -> None:
        for job in self._queue.evict_expired():
            job.state = JobState.EVICTED
            job.finished_at = time.monotonic()
            self._by_key.pop(job.key, None)
            self.stats["evicted"] += 1
            for waiter in job.waiters:
                self._release_waiter(waiter)
                self._send_to(waiter.client_id, {
                    "event": "done", "job": job.job_id,
                    "state": "evicted",
                    "error": "deadline expired before a worker "
                             "was free"})
            job.waiters = []

    async def _housekeeping(self) -> None:
        while True:
            await asyncio.sleep(_HOUSEKEEPING_TICK)
            if len(self._queue):
                self._evict_expired()
                self._dispatch()

    # ------------------------------------------------------------------
    # Results flowing back from the pool (loop thread, via bridge)
    # ------------------------------------------------------------------
    def _on_result(self, task_id: int, outcome: Dict[str, Any]) -> None:
        job = self._running.pop(task_id, None)
        if job is None:
            return                  # shutdown race: already closed out
        self._by_key.pop(job.key, None)
        job.finished_at = time.monotonic()
        cancelled = bool(outcome.get("cancelled")) \
            or job.state is JobState.CANCELLED
        failed = bool(outcome.get("error")) and not cancelled
        job.state = (JobState.CANCELLED if cancelled
                     else JobState.FAILED if failed
                     else JobState.DONE)
        sanitized = {k: v for k, v in outcome.items()
                     if k not in _EPHEMERAL_KEYS}
        job.result = sanitized
        if cancelled:
            self.stats["cancelled"] += 1
        elif failed:
            self.stats["failed"] += 1
        else:
            self.stats["completed"] += 1
            if self._cacheable(sanitized, job.spec["budget"]):
                self.cache.put(job.key, sanitized)
        current_metrics().inc(f"serve.jobs.{job.state.value}")
        for waiter in job.waiters:
            self._release_waiter(waiter)
            self._send_to(waiter.client_id, {
                "event": "done", "job": job.job_id,
                "state": job.state.value,
                "result": self._result_view(sanitized,
                                            waiter.reduction)})
        job.waiters = []
        self._dispatch()

    def _on_progress(self, task_id: int, data: Dict[str, Any]) -> None:
        job = self._running.get(task_id)
        if job is None:
            return
        for waiter in job.waiters:
            if waiter.subscribe:
                self._send_to(waiter.client_id,
                              {"event": "bound", "job": job.job_id,
                               **data})

    def _release_waiter(self, waiter: Waiter) -> None:
        client = self._clients.get(waiter.client_id)
        if client is not None:
            client.active = max(0, client.active - 1)

    def _send_to(self, client_id: int, obj: Dict[str, Any]) -> None:
        client = self._clients.get(client_id)
        if client is not None:
            self._send(client, obj)

    # ------------------------------------------------------------------
    # Result shaping
    # ------------------------------------------------------------------
    @staticmethod
    def _cacheable(outcome: Dict[str, Any],
                   budget: Optional[Dict[str, Any]]) -> bool:
        """Same policy as the batch scheduler: never cache errors,
        never cache UNKNOWN produced under a wall-clock term (it
        reflects machine load, not the query)."""
        if outcome.get("error") or outcome.get("timed_out"):
            return False
        if outcome.get("status") == "UNKNOWN" and budget is not None \
                and budget.get("max_seconds") is not None:
            return False
        return True

    @staticmethod
    def _result_view(outcome: Dict[str, Any],
                     reduction) -> Dict[str, Any]:
        """One waiter's JSON view of an outcome.

        The stored outcome lives in the *reduced* vocabulary; the
        trace is lifted through this waiter's own reduction so the
        witness ranges over the full-width system the client asked
        about.
        """
        view = {k: v for k, v in outcome.items()
                if k not in _EPHEMERAL_KEYS and k != "worker"}
        trace = outcome.get("trace")
        if trace is not None and not reduction.is_identity:
            lifted = reduction.lift(Trace(trace["states"],
                                          trace["inputs"]))
            view["trace"] = {
                "states": [dict(s) for s in lifted.states],
                "inputs": [dict(i) for i in lifted.inputs]}
        return view

    def _stats_view(self) -> Dict[str, Any]:
        return {
            "uptime_seconds": time.monotonic() - self._started_at,
            "workers": self._bridge.jobs if self._bridge else 0,
            "clients": len(self._clients),
            "queue_depth": len(self._queue),
            "inflight": len(self._running),
            "jobs": dict(self.stats),
            "cache": {"hits": self.cache.hits,
                      "misses": self.cache.misses,
                      "stores": self.cache.stores,
                      "entries": len(self.cache)},
            "pool": {"respawns": self._bridge.respawns
                     if self._bridge else 0,
                     "cancelled": self._bridge.cancelled
                     if self._bridge else 0},
            "version": PROTOCOL_VERSION,
        }
