"""Synchronous client for the ``repro serve`` daemon.

A thin blocking wrapper over one NDJSON connection — the CLI verbs
(``repro submit`` / ``status`` / ``cancel``), the tests and the
benchmark all speak through it.  Asynchronous *events* (bound
progress, job completion) interleave with request responses on the
wire; the client routes them transparently: responses resolve the
pending request, events are buffered per job until :meth:`wait`
consumes them.
"""

from __future__ import annotations

import collections
import json
import socket
from typing import Any, Callable, Dict, List, Optional

from .protocol import PROTOCOL_VERSION, ProtocolError, decode_line

__all__ = ["ServeClient", "ServeError"]


class ServeError(Exception):
    """The daemon rejected a request (``ok: false``)."""


class ServeClient:
    """One blocking connection to a serve daemon.

    Usage::

        with ServeClient(socket_path="/tmp/repro.sock") as client:
            ack = client.submit("counter", k=9, method="jsat")
            result = client.wait(ack["job"])
    """

    def __init__(self, socket_path: Optional[str] = None,
                 host: str = "127.0.0.1", port: Optional[int] = None,
                 timeout: Optional[float] = 60.0) -> None:
        if (socket_path is None) == (port is None):
            raise ValueError("pick exactly one of socket_path / port")
        if socket_path is not None:
            self._sock = socket.socket(socket.AF_UNIX,
                                       socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(socket_path)
        else:
            self._sock = socket.create_connection((host, port),
                                                  timeout=timeout)
        self._file = self._sock.makefile("rb")
        self._next_id = 0
        # Events that arrived while waiting for something else.
        self._events: Dict[str, List[Dict[str, Any]]] = \
            collections.defaultdict(list)

    # ------------------------------------------------------------------
    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Wire plumbing
    # ------------------------------------------------------------------
    def _send(self, obj: Dict[str, Any]) -> None:
        self._sock.sendall((json.dumps(obj) + "\n").encode())

    def _recv(self) -> Dict[str, Any]:
        line = self._file.readline()
        if not line:
            raise ConnectionError("daemon closed the connection")
        return decode_line(line)

    def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Send one request; block until its response arrives.

        Events received in the meantime are buffered for
        :meth:`wait` / :meth:`next_event`.
        """
        self._next_id += 1
        request_id = self._next_id
        msg = {"op": op, "id": request_id,
               "version": PROTOCOL_VERSION}
        msg.update({k: v for k, v in fields.items() if v is not None})
        self._send(msg)
        while True:
            obj = self._recv()
            if "event" in obj:
                self._events[obj.get("job", "")].append(obj)
                continue
            if obj.get("id") == request_id or "id" not in obj:
                if not obj.get("ok", False):
                    raise ServeError(obj.get("error", "request failed"))
                return obj

    # ------------------------------------------------------------------
    # Verbs
    # ------------------------------------------------------------------
    def ping(self) -> Dict[str, Any]:
        return self.request("ping")

    def submit(self, family: str, k: int, *, kind: str = "check",
               method: Optional[str] = None,
               semantics: Optional[str] = None,
               budget: Optional[Dict[str, Any]] = None,
               options: Optional[Dict[str, Any]] = None,
               reduce: Optional[str] = None,
               priority: Optional[int] = None,
               deadline: Optional[float] = None,
               subscribe: bool = False) -> Dict[str, Any]:
        """Submit one job; returns the ack (``{"job": ..., "state":
        ...}``, plus ``result`` when answered from cache)."""
        return self.request("submit", family=family, k=k, kind=kind,
                            method=method, semantics=semantics,
                            budget=budget, options=options,
                            reduce=reduce, priority=priority,
                            deadline=deadline,
                            subscribe=subscribe or None)

    def batch(self, jobs: List[Dict[str, Any]]) -> Dict[str, Any]:
        return self.request("batch", jobs=jobs)

    def status(self, job: Optional[str] = None) -> Dict[str, Any]:
        return self.request("status", job=job)

    def stats(self) -> Dict[str, Any]:
        return self.request("stats")["stats"]

    def cancel(self, job: str) -> Dict[str, Any]:
        return self.request("cancel", job=job)

    def subscribe(self, job: str) -> Dict[str, Any]:
        return self.request("subscribe", job=job)

    def shutdown(self) -> Dict[str, Any]:
        return self.request("shutdown")

    # ------------------------------------------------------------------
    # Event consumption
    # ------------------------------------------------------------------
    def next_event(self, job: str) -> Dict[str, Any]:
        """The next buffered-or-received event for ``job`` (blocking)."""
        buffered = self._events.get(job)
        if buffered:
            return buffered.pop(0)
        while True:
            obj = self._recv()
            if "event" not in obj:
                raise ProtocolError(f"unexpected response while "
                                    f"waiting for events: {obj}")
            if obj.get("job") == job:
                return obj
            self._events[obj.get("job", "")].append(obj)

    def wait(self, ack_or_job, on_bound: Optional[
            Callable[[Dict[str, Any]], None]] = None) -> Dict[str, Any]:
        """Block until a submitted job finishes; returns the done event.

        Accepts either the ack dict returned by :meth:`submit` (so
        cache-answered submissions resolve immediately) or a bare job
        id.  ``on_bound`` receives each streamed bound event of a
        subscribed sweep as it arrives.
        """
        if isinstance(ack_or_job, dict):
            if "result" in ack_or_job:      # answered from cache
                return {"event": "done", "job": ack_or_job["job"],
                        "state": "done", "cached": True,
                        "result": ack_or_job["result"]}
            job = ack_or_job["job"]
        else:
            job = ack_or_job
        while True:
            event = self.next_event(job)
            if event.get("event") == "done":
                return event
            if on_bound is not None:
                on_bound(event)

    def run(self, family: str, k: int, **kwargs: Any) -> Dict[str, Any]:
        """Submit and wait in one call; returns the done event."""
        on_bound = kwargs.pop("on_bound", None)
        if on_bound is not None:
            kwargs.setdefault("subscribe", True)
        ack = self.submit(family, k, **kwargs)
        return self.wait(ack, on_bound=on_bound)
