"""Job bookkeeping for the serve daemon: states, waiters, fair queue.

A *job* is one underlying solver execution.  Several client requests
may attach to the same job — the dedup layer coalesces submissions
whose reduced-query fingerprints match — so a job carries a list of
*waiters*, each remembering its client, its request id, its own
:class:`~repro.reduce.reduced.ReducedSystem` (traces are lifted
per-waiter: two originals can share one reduced query yet need
different lifts) and whether it wants streaming bound events.

The :class:`FairQueue` orders runnable jobs by ``(priority desc,
client rank asc, arrival)`` where a client's *rank* is how many jobs
it already had active at enqueue time — a client that floods the
daemon only competes with itself; a newcomer's first job jumps ahead
of the flood's tail.
"""

from __future__ import annotations

import enum
import heapq
import itertools
import time
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["JobState", "Waiter", "Job", "FairQueue"]


class JobState(enum.Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    CANCELLED = "cancelled"
    EVICTED = "evicted"
    FAILED = "failed"

    @property
    def terminal(self) -> bool:
        return self not in (JobState.QUEUED, JobState.RUNNING)


class Waiter:
    """One client request attached to a job."""

    __slots__ = ("client_id", "request_id", "reduction", "subscribe")

    def __init__(self, client_id: int, request_id: Any,
                 reduction, subscribe: bool) -> None:
        self.client_id = client_id
        self.request_id = request_id
        self.reduction = reduction
        self.subscribe = subscribe


class Job:
    """One underlying execution plus everyone waiting on it."""

    __slots__ = ("job_id", "task_id", "key", "spec", "payload", "state",
                 "waiters", "submitted_at", "started_at", "finished_at",
                 "deadline", "priority", "result", "coalesced")

    def __init__(self, job_id: str, task_id: int, key: str,
                 spec: Dict[str, Any], payload: Dict[str, Any]) -> None:
        self.job_id = job_id
        self.task_id = task_id
        self.key = key
        self.spec = spec
        self.payload = payload
        self.state = JobState.QUEUED
        self.waiters: List[Waiter] = []
        self.submitted_at = time.monotonic()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        # Absolute monotonic instant after which a *queued* job is
        # evicted instead of dispatched (None = wait forever).
        self.deadline: Optional[float] = None
        self.priority = 0
        self.result: Optional[Dict[str, Any]] = None
        self.coalesced = 0          # extra submissions absorbed

    def describe(self) -> Dict[str, Any]:
        """The JSON-safe status view served by the ``status`` op."""
        out = {
            "job": self.job_id,
            "state": self.state.value,
            "family": self.spec["family"],
            "kind": self.spec["kind"],
            "k": self.spec["k"],
            "method": self.spec["method"],
            "waiters": len(self.waiters),
            "coalesced": self.coalesced,
        }
        if self.started_at is not None and self.finished_at is not None:
            out["seconds"] = self.finished_at - self.started_at
        return out

    def __repr__(self) -> str:  # pragma: no cover
        return (f"Job({self.job_id}, {self.state.value}, "
                f"{self.spec['family']} k={self.spec['k']}, "
                f"waiters={len(self.waiters)})")


class FairQueue:
    """Priority queue with per-client fairness for queued jobs.

    Heap entries are ``(-priority, client_rank, seq)``: explicit
    priority dominates, then the submitting client's backlog at
    enqueue time, then arrival order.  Jobs are removed lazily
    (tombstones), so ``cancel`` is O(1) and ``pop`` amortizes the
    cleanup.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, int, Job]] = []
        self._seq = itertools.count()
        self._live: Dict[str, Job] = {}

    def push(self, job: Job, client_rank: int) -> None:
        self._live[job.job_id] = job
        heapq.heappush(self._heap,
                       (-job.priority, client_rank, next(self._seq), job))

    def remove(self, job_id: str) -> Optional[Job]:
        """Tombstone a queued job; returns it if it was queued here."""
        return self._live.pop(job_id, None)

    def pop(self) -> Optional[Job]:
        """The best runnable job, or None when the queue is empty."""
        while self._heap:
            _, _, _, job = heapq.heappop(self._heap)
            if self._live.pop(job.job_id, None) is not None:
                return job
        return None

    def evict_expired(self, now: Optional[float] = None) -> List[Job]:
        """Remove (and return) every queued job past its deadline."""
        if now is None:
            now = time.monotonic()
        expired = [job for job in self._live.values()
                   if job.deadline is not None and now > job.deadline]
        for job in expired:
            self._live.pop(job.job_id, None)
        return expired

    def next_deadline(self) -> Optional[float]:
        """The earliest queued deadline (drives the eviction timer)."""
        deadlines = [job.deadline for job in self._live.values()
                     if job.deadline is not None]
        return min(deadlines) if deadlines else None

    def __len__(self) -> int:
        return len(self._live)

    def __contains__(self, job_id: str) -> bool:
        return job_id in self._live
