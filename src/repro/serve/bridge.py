"""Thread bridge between the asyncio daemon and the WorkerPool.

:class:`~repro.portfolio.pool.WorkerPool` speaks blocking
``multiprocessing`` pipes; asyncio must never block.  The bridge gives
the pool a dedicated thread that loops submit → collect → publish,
while the event loop talks to it through thread-safe queues:

* the loop calls :meth:`submit` / :meth:`cancel`, which enqueue the
  command and wake the thread (``pool.interrupt()`` pokes the pool's
  self-pipe, so a ``collect`` blocked in ``connection.wait`` returns
  immediately — dispatch latency is a pipe write, not a poll tick);
* finished outcomes and streaming progress records are published back
  via ``loop.call_soon_threadsafe``, so daemon callbacks always run on
  the loop thread and never need locks.

The bridge owns the pool's lifecycle: :meth:`stop` drains the command
queue, shuts the pool down (reaping every worker process) and joins
the thread.
"""

from __future__ import annotations

import collections
import threading
from typing import Any, Callable, Dict, Optional

from ..portfolio.pool import Task, WorkerPool

__all__ = ["PoolBridge"]

# How long the bridge thread sleeps when completely idle before
# re-checking its command queue (interrupt/kick wake it sooner).
_IDLE_TICK = 0.25


class PoolBridge:
    """Own a WorkerPool in a worker thread; expose loop-safe verbs."""

    def __init__(self, loop, jobs: Optional[int] = None,
                 wall_timeout: Optional[float] = None,
                 on_result: Callable[[int, Dict[str, Any]], None] = None,
                 on_progress: Callable[[int, Dict[str, Any]], None] = None
                 ) -> None:
        self._loop = loop
        self._wall_timeout = wall_timeout
        self._on_result = on_result
        self._on_progress = on_progress
        self._commands: collections.deque = collections.deque()
        self._kick = threading.Event()
        self._stopping = threading.Event()
        self._pool = WorkerPool(jobs=jobs,
                                on_progress=self._publish_progress)
        self.jobs = self._pool.jobs
        self._thread = threading.Thread(target=self._run,
                                        name="repro-serve-pool",
                                        daemon=True)
        self._thread.start()

    # ------------------------------------------------------------------
    # Loop-side API (thread-safe)
    # ------------------------------------------------------------------
    def submit(self, task_id: int, payload: Dict[str, Any]) -> None:
        """Queue one cell payload for execution."""
        self._commands.append(("submit", task_id, payload))
        self._wake()

    def cancel(self, task_id: int) -> None:
        """Cooperatively cancel a task (queued or running)."""
        self._commands.append(("cancel", task_id, None))
        self._wake()

    def stop(self, grace: float = 2.0) -> None:
        """Shut the pool down and join the bridge thread (blocking)."""
        if self._stopping.is_set():
            return
        self._stopping.set()
        self._wake()
        self._thread.join(timeout=30.0)
        self._pool.shutdown(grace=grace)

    @property
    def respawns(self) -> int:
        return self._pool.respawns

    @property
    def cancelled(self) -> int:
        return self._pool.cancelled

    # ------------------------------------------------------------------
    def _wake(self) -> None:
        self._kick.set()
        self._pool.interrupt()

    # ------------------------------------------------------------------
    # Bridge-thread side
    # ------------------------------------------------------------------
    def _run(self) -> None:
        pool = self._pool
        while not self._stopping.is_set():
            while self._commands:
                verb, task_id, payload = self._commands.popleft()
                if verb == "submit":
                    pool.submit(Task(task_id, payload,
                                     wall_timeout=self._wall_timeout))
                else:
                    pool.cancel(task_id)
            if pool.outstanding:
                pool.collect(timeout=_IDLE_TICK)
            else:
                self._kick.wait(timeout=_IDLE_TICK)
            self._kick.clear()
            results = pool.take_results()
            for task_id, outcome in results.items():
                self._publish_result(task_id, outcome)

    def _publish_result(self, task_id: int,
                        outcome: Dict[str, Any]) -> None:
        if self._on_result is not None:
            try:
                self._loop.call_soon_threadsafe(self._on_result, task_id,
                                                outcome)
            except RuntimeError:        # loop already closed (shutdown)
                pass

    def _publish_progress(self, task_id: int,
                          data: Dict[str, Any]) -> None:
        # Called by pool.collect() on the bridge thread.
        if self._on_progress is not None:
            try:
                self._loop.call_soon_threadsafe(self._on_progress,
                                                task_id, data)
            except RuntimeError:        # pragma: no cover
                pass
