"""The BMC front end: one entry point over the four decision methods.

``check_reachability`` answers a single bounded query with any of:

* ``"sat-unroll"`` — formula (1) + the CDCL solver (the classical
  baseline the paper compares against);
* ``"qbf"`` — formula (2) + a general-purpose QBF solver (QDPLL by
  default, the expansion solver as an alternative back end);
* ``"qbf-squaring"`` — formula (3) + a general-purpose QBF solver;
* ``"jsat"`` — the special-purpose jSAT procedure on formula (2)'s
  semantics;
* ``"portfolio"`` — race several of the above in parallel worker
  processes and return the first validated conclusive answer
  (:mod:`repro.portfolio`).

``find_reachable`` iterates bounds (linear stepping or the squaring
schedule) until a target is reached — the "complete model checking
procedure" loop of the paper's introduction.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from ..logic.expr import Expr
from ..qbf.expansion import ExpansionSolver
from ..qbf.qdpll import QdpllSolver
from ..sat.solver import CdclSolver
from ..sat.types import Budget, SolveResult
from ..system.model import TransitionSystem
from ..system.trace import Trace
from .jsat import JsatSolver
from .qbf_encoding import encode_qbf
from .squaring import encode_squaring
from .unroll import encode_unrolled

__all__ = ["BmcResult", "check_reachability", "find_reachable", "METHODS",
           "ALL_METHODS", "PORTFOLIO"]

METHODS = ("sat-unroll", "qbf", "qbf-squaring", "jsat")

# The portfolio pseudo-method races a subset of METHODS in parallel
# worker processes; it is accepted by check_reachability but is not a
# decision procedure itself, so METHODS keeps its original meaning.
PORTFOLIO = "portfolio"
ALL_METHODS = METHODS + (PORTFOLIO,)


class BmcResult:
    """Outcome of one bounded reachability query.

    Attributes
    ----------
    status:
        SAT (target reachable at the queried bound), UNSAT, or UNKNOWN
        (budget exhausted).
    trace:
        Validated witness path for SAT answers, when the back end could
        produce one (always for sat-unroll and jsat).
    k:
        The bound queried.
    method:
        The decision method used.
    seconds:
        Wall-clock time of the query.
    stats:
        Method-specific counters (formula sizes, solver statistics).
    """

    def __init__(self, status: SolveResult, trace: Optional[Trace],
                 k: int, method: str, seconds: float,
                 stats: Dict[str, int]) -> None:
        self.status = status
        self.trace = trace
        self.k = k
        self.method = method
        self.seconds = seconds
        self.stats = stats

    def __repr__(self) -> str:  # pragma: no cover
        return (f"BmcResult({self.status.name}, k={self.k}, "
                f"method={self.method!r}, {self.seconds * 1e3:.1f} ms)")


def _next_power_of_two(k: int) -> int:
    return 1 if k <= 1 else 1 << (k - 1).bit_length()


def check_reachability(system: TransitionSystem, final: Expr, k: int,
                       method: str = "sat-unroll",
                       semantics: str = "exact",
                       budget: Budget | None = None,
                       qbf_backend: str = "qdpll",
                       **options) -> BmcResult:
    """Decide whether ``final`` is reachable at bound ``k``.

    ``semantics`` is "exact" (in exactly k steps — the paper's query) or
    "within" (in at most k steps).  For ``qbf-squaring`` the bound must
    be a power of two in exact mode; in within mode the system is given
    self-loops and the bound is rounded up, as §2 of the paper suggests.
    """
    if method not in ALL_METHODS:
        raise ValueError(
            f"unknown method {method!r}; pick from {ALL_METHODS}")
    if semantics not in ("exact", "within"):
        raise ValueError(f"unknown semantics {semantics!r}")
    start = time.perf_counter()

    if method == PORTFOLIO:
        result = _check_portfolio(system, final, k, semantics, budget,
                                  options)
    elif method == "sat-unroll":
        result = _check_unroll(system, final, k, semantics, budget, options)
    elif method == "jsat":
        result = _check_jsat(system, final, k, semantics, budget, options)
    elif method == "qbf":
        result = _check_qbf(system, final, k, semantics, budget,
                            qbf_backend, options)
    else:
        result = _check_squaring(system, final, k, semantics, budget,
                                 qbf_backend, options)
    result.seconds = time.perf_counter() - start
    return result


# ----------------------------------------------------------------------
def _check_portfolio(system: TransitionSystem, final: Expr, k: int,
                     semantics: str, budget: Budget | None,
                     options: Dict) -> BmcResult:
    # Imported lazily: repro.portfolio imports this module.
    from ..portfolio.race import DEFAULT_RACE_METHODS, race

    options = dict(options)
    methods = options.pop("portfolio_methods", DEFAULT_RACE_METHODS)
    wall_timeout = options.pop("wall_timeout", None)
    validate = options.pop("validate", True)
    outcome = race(system, final, k, methods=methods, semantics=semantics,
                   budget=budget, wall_timeout=wall_timeout,
                   validate=validate, **options)
    result = outcome.result
    result.stats["portfolio_cancel_latency_ms"] = int(
        outcome.cancel_latency * 1e3)
    return result


def _check_unroll(system: TransitionSystem, final: Expr, k: int,
                  semantics: str, budget: Budget | None,
                  options: Dict) -> BmcResult:
    encoding = encode_unrolled(
        system, final, k, semantics,
        polarity_reduction=options.get("polarity_reduction", False))
    solver = CdclSolver()
    solver.ensure_vars(encoding.cnf.num_vars)
    ok = solver.add_clauses(encoding.cnf.clauses)
    status = solver.solve(budget=budget) if ok else SolveResult.UNSAT
    trace = None
    if status is SolveResult.SAT:
        trace = encoding.extract_trace(solver.model_value)
        if semantics == "within":
            trace = _shorten_to_final(trace, final)
    stats = encoding.stats()
    stats.update({f"solver_{k2}": v
                  for k2, v in solver.stats.as_dict().items()})
    return BmcResult(status, trace, k, "sat-unroll", 0.0, stats)


def _shorten_to_final(trace: Trace, final: Expr) -> Trace:
    """Cut a within-mode trace at its first final state."""
    for i, state in enumerate(trace.states):
        if final.evaluate(state):
            return Trace(trace.states[:i + 1], trace.inputs[:i])
    return trace


def _check_jsat(system: TransitionSystem, final: Expr, k: int,
                semantics: str, budget: Budget | None,
                options: Dict) -> BmcResult:
    solver = JsatSolver(
        system, final, k, semantics,
        use_cache=options.get("use_cache", True),
        f_pruning=options.get("f_pruning", True),
        purge_interval=options.get("purge_interval", 8))
    status = solver.solve(budget=budget)
    trace = solver.trace() if status is SolveResult.SAT else None
    stats: Dict[str, int] = dict(solver.stats.as_dict())
    stats["resident_literals"] = solver.resident_literals()
    stats["base_literals"] = solver.base_db_literals
    stats["cache_entries"] = solver.cache_size()
    return BmcResult(status, trace, k, "jsat", 0.0, stats)


def _qbf_solve(pcnf, backend: str, budget: Budget | None):
    if backend == "qdpll":
        solver = QdpllSolver(pcnf)
        status = solver.solve(budget=budget)
        return status, solver.assignment(), solver.stats.as_dict()
    if backend == "expansion":
        solver = ExpansionSolver(pcnf)
        status = solver.solve(budget=budget)
        return status, {}, {"expanded_vars": solver.expanded_vars,
                            "peak_literals": solver.peak_literals}
    raise ValueError(f"unknown qbf backend {backend!r}")


def _check_qbf(system: TransitionSystem, final: Expr, k: int,
               semantics: str, budget: Budget | None,
               backend: str, options: Dict) -> BmcResult:
    query_system = system
    if semantics == "within":
        query_system = system.with_self_loops()
    if k == 0:
        # Formula (2) needs at least one step; fall back to SAT for k=0.
        return _check_unroll(system, final, 0, "exact", budget, options)
    encoding = encode_qbf(query_system, final, k)
    status, assignment, solver_stats = _qbf_solve(encoding.pcnf, backend,
                                                  budget)
    trace = None
    if status is SolveResult.SAT and assignment:
        states = encoding.extract_states(assignment)
        if semantics == "within":
            # Drop stutter steps introduced by the self-loop transform:
            # any remaining consecutive distinct pair is a real TR step.
            deduped = [states[0]]
            for state in states[1:]:
                if state != deduped[-1]:
                    deduped.append(state)
            states = deduped
        candidate = Trace(states, [{} for _ in range(len(states) - 1)])
        if semantics == "within":
            candidate = _shorten_to_final(candidate, final)
        if not system.input_vars and candidate.is_valid(system, final):
            trace = candidate
    stats = encoding.stats()
    stats.update({f"solver_{k2}": v for k2, v in solver_stats.items()})
    return BmcResult(status, trace, k, "qbf", 0.0, stats)


def _check_squaring(system: TransitionSystem, final: Expr, k: int,
                    semantics: str, budget: Budget | None,
                    backend: str, options: Dict) -> BmcResult:
    if semantics == "within":
        query_system = system.with_self_loops()
        bound = _next_power_of_two(k) if k >= 1 else 1
    else:
        query_system = system
        bound = k
    if k == 0:
        return _check_unroll(system, final, 0, "exact", budget, options)
    encoding = encode_squaring(query_system, final, bound)
    status, _, solver_stats = _qbf_solve(encoding.pcnf, backend, budget)
    stats = encoding.stats()
    stats.update({f"solver_{k2}": v for k2, v in solver_stats.items()})
    return BmcResult(status, None, k, "qbf-squaring", 0.0, stats)


# ----------------------------------------------------------------------
def find_reachable(system: TransitionSystem, final: Expr,
                   max_bound: int,
                   method: str = "sat-unroll",
                   strategy: str = "linear",
                   budget: Budget | None = None,
                   **options) -> tuple[Optional[BmcResult], List[BmcResult]]:
    """Iterative-deepening reachability up to ``max_bound``.

    ``strategy`` is "linear" (k = 0, 1, 2, ...; exact semantics per
    iteration, so the union covers every depth) or "squaring"
    (k = 1, 2, 4, ...; each iteration checks "within k" on the
    self-looped system, the paper's iterative-squaring schedule).

    Returns ``(hit, history)`` where ``hit`` is the first SAT result (or
    None) and ``history`` records every iteration — experiment E3 reads
    the iteration counts from it.
    """
    history: List[BmcResult] = []
    if strategy == "linear":
        bounds = list(range(0, max_bound + 1))
        semantics = "exact"
    elif strategy == "squaring":
        bounds = [0]
        b = 1
        while True:
            bounds.append(min(b, max_bound))
            if b >= max_bound:
                break
            b *= 2
        semantics = "within"
    else:
        raise ValueError(f"unknown strategy {strategy!r}")

    for bound in bounds:
        result = check_reachability(system, final, bound, method,
                                    semantics=semantics, budget=budget,
                                    **options)
        history.append(result)
        if result.status is SolveResult.SAT:
            return result, history
        if result.status is SolveResult.UNKNOWN:
            return None, history
    return None, history
