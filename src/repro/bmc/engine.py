"""Deprecated function front end over the backend registry.

The object-based API lives in :mod:`repro.bmc.session` (the stateful
:class:`BmcSession`) and :mod:`repro.bmc.backend` (the pluggable
:class:`Backend` protocol + registry).  This module keeps the original
function entry points — ``check_reachability``, ``sweep``,
``find_reachable`` — as thin shims that open a throwaway session per
call, so every existing script keeps running while emitting a
:class:`DeprecationWarning`.

Migration table::

    check_reachability(system, final, k, m)   -> BmcSession(system, properties={"target": final}).check(k, method=m)
    sweep(system, final, max_k, method=m)     -> BmcSession(system, properties={"target": final}).sweep(max_k, method=m)
    find_reachable(system, final, K, m, s)    -> BmcSession(system, properties={"target": final}).find_reachable(K, method=m, strategy=s)

The session form is strictly more capable: backend solver state
persists across calls (the incremental clause database, the jSAT
no-good cache), unknown options raise instead of vanishing, and an
``on_bound`` observer streams per-bound progress.

``METHODS`` / ``ALL_METHODS`` are live views over the backend registry
— a backend registered with :func:`repro.bmc.backend.register_backend`
shows up in both without any edit here.
"""

from __future__ import annotations

import warnings
from typing import List, Optional, Tuple

from ..logic.expr import Expr
from ..sat.types import Budget
from ..system.model import TransitionSystem
from .backend import ALL_METHODS, METHODS, BmcResult, backend_class
from .incremental import BoundResult, SweepResult
from .session import BmcSession

__all__ = ["BmcResult", "check_reachability", "find_reachable", "sweep",
           "SweepResult", "BoundResult", "METHODS", "ALL_METHODS",
           "PORTFOLIO"]

# The portfolio composite backend's registry name, kept for callers
# that imported the old constant.
PORTFOLIO = "portfolio"


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"{old} is deprecated; use {new} (see repro.bmc.session)",
        DeprecationWarning, stacklevel=3)


def check_reachability(system: TransitionSystem, final: Expr, k: int,
                       method: str = "sat-unroll",
                       semantics: str = "exact",
                       budget: Budget | None = None,
                       qbf_backend: str = "qdpll",
                       **options) -> BmcResult:
    """Deprecated shim for :meth:`BmcSession.check`.

    ``semantics`` is "exact" (in exactly k steps — the paper's query)
    or "within" (in at most k steps).  The legacy ``qbf_backend``
    keyword is folded into the QBF backends' typed options; all other
    options are validated by the method's options class.
    """
    _deprecated("check_reachability()", "BmcSession.check()")
    # The legacy named kwarg folds into the typed options of whichever
    # backend declares it (registry-driven — no method-name ladder).
    if "qbf_backend" in backend_class(method).options_class.option_names():
        options.setdefault("qbf_backend", qbf_backend)
    with BmcSession(system, properties={"target": final}) as session:
        return session.check(k, method=method, semantics=semantics,
                             budget=budget, **options)


def sweep(system: TransitionSystem, final: Expr, max_k: int,
          method: str = "sat-incremental",
          budget: Budget | None = None,
          **options) -> SweepResult:
    """Deprecated shim for :meth:`BmcSession.sweep`.

    Sweeps bounds k = 0..max_k and returns the shortest counterexample
    plus per-bound records; the budget is global across the sweep.
    """
    _deprecated("sweep()", "BmcSession.sweep()")
    with BmcSession(system, properties={"target": final}) as session:
        return session.sweep(max_k, method=method, budget=budget,
                             **options)


def find_reachable(system: TransitionSystem, final: Expr,
                   max_bound: int,
                   method: str = "sat-unroll",
                   strategy: str = "linear",
                   budget: Budget | None = None,
                   **options) -> Tuple[Optional[BmcResult],
                                       List[BmcResult]]:
    """Deprecated shim for :meth:`BmcSession.find_reachable`.

    Both ``method`` and ``strategy`` are validated up front against the
    backend registry before any solving starts.
    """
    _deprecated("find_reachable()", "BmcSession.find_reachable()")
    with BmcSession(system, properties={"target": final}) as session:
        return session.find_reachable(max_bound, method=method,
                                      strategy=strategy, budget=budget,
                                      **options)
