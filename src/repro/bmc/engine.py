"""The BMC front end: one entry point over the four decision methods.

``check_reachability`` answers a single bounded query with any of:

* ``"sat-unroll"`` — formula (1) + the CDCL solver (the classical
  baseline the paper compares against);
* ``"sat-incremental"`` — formula (1) solved incrementally: one solver
  shared across bounds, final-state constraints activated per bound
  through assumption groups (:mod:`repro.bmc.incremental`);
* ``"qbf"`` — formula (2) + a general-purpose QBF solver (QDPLL by
  default, the expansion solver as an alternative back end);
* ``"qbf-squaring"`` — formula (3) + a general-purpose QBF solver;
* ``"jsat"`` — the special-purpose jSAT procedure on formula (2)'s
  semantics;
* ``"portfolio"`` — race several of the above in parallel worker
  processes and return the first validated conclusive answer
  (:mod:`repro.portfolio`).

``sweep`` answers the evaluation's per-instance bound ladder k = 0..K
with any method — natively with one long-lived solver for
sat-incremental and jsat, naively (fresh query per bound) for the
rest — and returns the shortest counterexample plus per-bound records.

``find_reachable`` iterates bounds (linear stepping or the squaring
schedule) until a target is reached — the "complete model checking
procedure" loop of the paper's introduction.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from ..logic.expr import Expr
from ..qbf.expansion import ExpansionSolver
from ..qbf.qdpll import QdpllSolver
from ..sat.solver import CdclSolver
from ..sat.types import Budget, SolveResult
from ..system.model import TransitionSystem
from ..system.trace import Trace
from .incremental import (BoundResult, IncrementalBmc, SweepBudget,
                          SweepResult)
from .jsat import JsatSolver
from .qbf_encoding import encode_qbf
from .squaring import encode_squaring
from .unroll import encode_unrolled

__all__ = ["BmcResult", "check_reachability", "find_reachable", "sweep",
           "SweepResult", "BoundResult", "METHODS", "ALL_METHODS",
           "PORTFOLIO"]

METHODS = ("sat-unroll", "sat-incremental", "qbf", "qbf-squaring", "jsat")

# The portfolio pseudo-method races a subset of METHODS in parallel
# worker processes; it is accepted by check_reachability but is not a
# decision procedure itself, so METHODS keeps its original meaning.
PORTFOLIO = "portfolio"
ALL_METHODS = METHODS + (PORTFOLIO,)


class BmcResult:
    """Outcome of one bounded reachability query.

    Attributes
    ----------
    status:
        SAT (target reachable at the queried bound), UNSAT, or UNKNOWN
        (budget exhausted).
    trace:
        Validated witness path for SAT answers, when the back end could
        produce one (always for sat-unroll and jsat).
    k:
        The bound queried.
    method:
        The decision method used.
    seconds:
        Wall-clock time of the query.
    stats:
        Method-specific counters (formula sizes, solver statistics).
    """

    def __init__(self, status: SolveResult, trace: Optional[Trace],
                 k: int, method: str, seconds: float,
                 stats: Dict[str, int]) -> None:
        self.status = status
        self.trace = trace
        self.k = k
        self.method = method
        self.seconds = seconds
        self.stats = stats

    def __repr__(self) -> str:  # pragma: no cover
        return (f"BmcResult({self.status.name}, k={self.k}, "
                f"method={self.method!r}, {self.seconds * 1e3:.1f} ms)")


def _next_power_of_two(k: int) -> int:
    return 1 if k <= 1 else 1 << (k - 1).bit_length()


def _squaring_ladder(max_k: int) -> List[int]:
    """The iterative-squaring bound schedule: 0, 1, 2, 4, ..., max_k."""
    bounds = [0]
    b = 1
    while max_k > 0:
        bounds.append(min(b, max_k))
        if b >= max_k:
            break
        b *= 2
    return bounds


def check_reachability(system: TransitionSystem, final: Expr, k: int,
                       method: str = "sat-unroll",
                       semantics: str = "exact",
                       budget: Budget | None = None,
                       qbf_backend: str = "qdpll",
                       **options) -> BmcResult:
    """Decide whether ``final`` is reachable at bound ``k``.

    ``semantics`` is "exact" (in exactly k steps — the paper's query) or
    "within" (in at most k steps).  For ``qbf-squaring`` the bound must
    be a power of two in exact mode; in within mode the system is given
    self-loops and the bound is rounded up, as §2 of the paper suggests.
    """
    if method not in ALL_METHODS:
        raise ValueError(
            f"unknown method {method!r}; pick from {ALL_METHODS}")
    if semantics not in ("exact", "within"):
        raise ValueError(f"unknown semantics {semantics!r}")
    start = time.perf_counter()

    if method == PORTFOLIO:
        result = _check_portfolio(system, final, k, semantics, budget,
                                  options)
    elif method == "sat-unroll":
        result = _check_unroll(system, final, k, semantics, budget, options)
    elif method == "sat-incremental":
        result = _check_incremental(system, final, k, semantics, budget,
                                    options)
    elif method == "jsat":
        result = _check_jsat(system, final, k, semantics, budget, options)
    elif method == "qbf":
        result = _check_qbf(system, final, k, semantics, budget,
                            qbf_backend, options)
    else:
        result = _check_squaring(system, final, k, semantics, budget,
                                 qbf_backend, options)
    # Within-mode traces are cut at their first final state uniformly,
    # whatever back end produced them.
    if semantics == "within" and result.trace is not None:
        result.trace = _shorten_to_final(result.trace, final)
    result.seconds = time.perf_counter() - start
    return result


# ----------------------------------------------------------------------
def _check_portfolio(system: TransitionSystem, final: Expr, k: int,
                     semantics: str, budget: Budget | None,
                     options: Dict) -> BmcResult:
    # Imported lazily: repro.portfolio imports this module.
    from ..portfolio.race import DEFAULT_RACE_METHODS, race

    options = dict(options)
    methods = options.pop("portfolio_methods", DEFAULT_RACE_METHODS)
    wall_timeout = options.pop("wall_timeout", None)
    validate = options.pop("validate", True)
    outcome = race(system, final, k, methods=methods, semantics=semantics,
                   budget=budget, wall_timeout=wall_timeout,
                   validate=validate, **options)
    result = outcome.result
    result.stats["portfolio_cancel_latency_ms"] = int(
        outcome.cancel_latency * 1e3)
    return result


def _check_unroll(system: TransitionSystem, final: Expr, k: int,
                  semantics: str, budget: Budget | None,
                  options: Dict) -> BmcResult:
    encoding = encode_unrolled(
        system, final, k, semantics,
        polarity_reduction=options.get("polarity_reduction", False))
    solver = CdclSolver()
    solver.ensure_vars(encoding.cnf.num_vars)
    ok = solver.add_clauses(encoding.cnf.clauses)
    status = solver.solve(budget=budget) if ok else SolveResult.UNSAT
    trace = None
    if status is SolveResult.SAT:
        trace = encoding.extract_trace(solver.model_value)
    stats = encoding.stats()
    stats.update({f"solver_{k2}": v
                  for k2, v in solver.stats.as_dict().items()})
    return BmcResult(status, trace, k, "sat-unroll", 0.0, stats)


def _shorten_to_final(trace: Trace, final: Expr) -> Trace:
    """Cut a within-mode trace at its first final state."""
    for i, state in enumerate(trace.states):
        if final.evaluate(state):
            return Trace(trace.states[:i + 1], trace.inputs[:i])
    return trace


def _check_incremental(system: TransitionSystem, final: Expr, k: int,
                       semantics: str, budget: Budget | None,
                       options: Dict) -> BmcResult:
    inc = IncrementalBmc(
        system, final,
        polarity_reduction=options.get("polarity_reduction", False),
        purge_interval=options.get("purge_interval", 4))
    if semantics == "exact":
        status, trace, stats = inc.check_bound(k, budget=budget)
        return BmcResult(status, trace, k, "sat-incremental", 0.0, stats)
    # within(k) ⇔ ∃ j <= k: exact(j) — sweep upward and stop at the
    # first (hence shortest) hit; its trace needs no shortening because
    # every smaller bound was already refuted.
    swept = inc.sweep(k, budget=budget)
    last = swept.per_bound[-1] if swept.per_bound else None
    stats = dict(last.stats) if last is not None else {}
    stats["bounds_checked"] = len(swept.per_bound)
    if swept.shortest_k is not None:
        stats["shortest_k"] = swept.shortest_k
    return BmcResult(swept.status, swept.trace, k, "sat-incremental",
                     0.0, stats)


def _check_jsat(system: TransitionSystem, final: Expr, k: int,
                semantics: str, budget: Budget | None,
                options: Dict) -> BmcResult:
    solver = JsatSolver(
        system, final, k, semantics,
        use_cache=options.get("use_cache", True),
        f_pruning=options.get("f_pruning", True),
        purge_interval=options.get("purge_interval", 8))
    status = solver.solve(budget=budget)
    trace = solver.trace() if status is SolveResult.SAT else None
    stats: Dict[str, int] = dict(solver.stats.as_dict())
    stats["resident_literals"] = solver.resident_literals()
    stats["base_literals"] = solver.base_db_literals
    stats["cache_entries"] = solver.cache_size()
    return BmcResult(status, trace, k, "jsat", 0.0, stats)


def _qbf_solve(pcnf, backend: str, budget: Budget | None):
    if backend == "qdpll":
        solver = QdpllSolver(pcnf)
        status = solver.solve(budget=budget)
        return status, solver.assignment(), solver.stats.as_dict()
    if backend == "expansion":
        solver = ExpansionSolver(pcnf)
        status = solver.solve(budget=budget)
        return status, {}, {"expanded_vars": solver.expanded_vars,
                            "peak_literals": solver.peak_literals}
    raise ValueError(f"unknown qbf backend {backend!r}")


def _check_qbf(system: TransitionSystem, final: Expr, k: int,
               semantics: str, budget: Budget | None,
               backend: str, options: Dict) -> BmcResult:
    query_system = system
    if semantics == "within":
        query_system = system.with_self_loops()
    if k == 0:
        # Formula (2) needs at least one step; fall back to SAT for k=0.
        return _check_unroll(system, final, 0, "exact", budget, options)
    encoding = encode_qbf(query_system, final, k)
    status, assignment, solver_stats = _qbf_solve(encoding.pcnf, backend,
                                                  budget)
    trace = None
    if status is SolveResult.SAT and assignment:
        states = encoding.extract_states(assignment)
        if semantics == "within":
            # Drop stutter steps introduced by the self-loop transform:
            # any remaining consecutive distinct pair is a real TR step.
            deduped = [states[0]]
            for state in states[1:]:
                if state != deduped[-1]:
                    deduped.append(state)
            states = deduped
        candidate = Trace(states, [{} for _ in range(len(states) - 1)])
        if not system.input_vars and candidate.is_valid(system, final):
            trace = candidate
    stats = encoding.stats()
    stats.update({f"solver_{k2}": v for k2, v in solver_stats.items()})
    return BmcResult(status, trace, k, "qbf", 0.0, stats)


def _check_squaring(system: TransitionSystem, final: Expr, k: int,
                    semantics: str, budget: Budget | None,
                    backend: str, options: Dict) -> BmcResult:
    if semantics == "within":
        query_system = system.with_self_loops()
        bound = _next_power_of_two(k) if k >= 1 else 1
    else:
        query_system = system
        bound = k
    if k == 0:
        return _check_unroll(system, final, 0, "exact", budget, options)
    encoding = encode_squaring(query_system, final, bound)
    status, _, solver_stats = _qbf_solve(encoding.pcnf, backend, budget)
    stats = encoding.stats()
    stats.update({f"solver_{k2}": v for k2, v in solver_stats.items()})
    return BmcResult(status, None, k, "qbf-squaring", 0.0, stats)


# ----------------------------------------------------------------------
def find_reachable(system: TransitionSystem, final: Expr,
                   max_bound: int,
                   method: str = "sat-unroll",
                   strategy: str = "linear",
                   budget: Budget | None = None,
                   **options) -> tuple[Optional[BmcResult], List[BmcResult]]:
    """Iterative-deepening reachability up to ``max_bound``.

    ``strategy`` is "linear" (k = 0, 1, 2, ...; exact semantics per
    iteration, so the union covers every depth) or "squaring"
    (k = 1, 2, 4, ...; each iteration checks "within k" on the
    self-looped system, the paper's iterative-squaring schedule).

    Returns ``(hit, history)`` where ``hit`` is the first SAT result (or
    None) and ``history`` records every iteration — experiment E3 reads
    the iteration counts from it.
    """
    history: List[BmcResult] = []
    if strategy == "linear":
        bounds = list(range(0, max_bound + 1))
        semantics = "exact"
    elif strategy == "squaring":
        bounds = _squaring_ladder(max_bound)
        semantics = "within"
    else:
        raise ValueError(f"unknown strategy {strategy!r}")

    for bound in bounds:
        result = check_reachability(system, final, bound, method,
                                    semantics=semantics, budget=budget,
                                    **options)
        history.append(result)
        if result.status is SolveResult.SAT:
            return result, history
        if result.status is SolveResult.UNKNOWN:
            return None, history
    return None, history


# ----------------------------------------------------------------------
def sweep(system: TransitionSystem, final: Expr, max_k: int,
          method: str = "sat-incremental",
          budget: Budget | None = None,
          **options) -> SweepResult:
    """Sweep bounds k = 0..max_k; return the shortest counterexample.

    Every method implements the same contract — bounds in increasing
    order, stopping at the first SAT or the first UNKNOWN.
    ``sat-incremental`` and ``jsat`` sweep natively on one long-lived
    solver; ``sat-unroll``, ``qbf`` and ``portfolio`` re-encode and
    re-solve an exact-k query per bound (the baseline the incremental
    driver is benchmarked against), so for all of these the first SAT
    bound is the shortest counterexample.  ``qbf-squaring`` follows its
    natural iterative-squaring schedule (0, 1, 2, 4, ... with within-k
    semantics, non-power bounds rounded up as §2 of the paper allows),
    so its hit bound is an upper bound on the shortest depth, not the
    exact one.  The budget is global across the whole sweep.
    """
    if method not in ALL_METHODS:
        raise ValueError(
            f"unknown method {method!r}; pick from {ALL_METHODS}")
    if max_k < 0:
        raise ValueError("max_k must be non-negative")
    if method == "sat-incremental":
        inc = IncrementalBmc(
            system, final,
            polarity_reduction=options.get("polarity_reduction", False),
            purge_interval=options.get("purge_interval", 4))
        return inc.sweep(max_k, budget=budget)
    if method == "jsat":
        return _sweep_jsat(system, final, max_k, budget, options)
    if method == "qbf-squaring":
        return _sweep_squaring(system, final, max_k, budget, options)
    return _sweep_naive(system, final, max_k, method, budget, options)


def _sweep_record(per_bound: List[BoundResult], k: int,
                  status: SolveResult, trace: Optional[Trace],
                  seconds: float, sweep_start: float,
                  stats: Dict[str, int]) -> BoundResult:
    record = BoundResult(k, status, trace, seconds,
                         time.perf_counter() - sweep_start, stats)
    per_bound.append(record)
    return record


def _sweep_naive(system: TransitionSystem, final: Expr, max_k: int,
                 method: str, budget: Budget | None,
                 options: Dict) -> SweepResult:
    """Fresh exact-k query per bound — no state carries over."""
    tracker = SweepBudget(budget)
    per_bound: List[BoundResult] = []
    sweep_start = time.perf_counter()
    for k in range(max_k + 1):
        if tracker.exhausted():
            _sweep_record(per_bound, k, SolveResult.UNKNOWN, None, 0.0,
                          sweep_start, {})
            break
        result = check_reachability(system, final, k, method,
                                    semantics="exact",
                                    budget=tracker.remaining(), **options)
        tracker.charge(
            conflicts=result.stats.get("solver_conflicts",
                                       result.stats.get("sat_conflicts", 0)),
            decisions=result.stats.get("solver_decisions", 0),
            propagations=result.stats.get(
                "solver_propagations",
                result.stats.get("sat_propagations", 0)))
        _sweep_record(per_bound, k, result.status, result.trace,
                      result.seconds, sweep_start, result.stats)
        if result.status is not SolveResult.UNSAT:
            break
    return SweepResult(method, max_k, per_bound,
                       time.perf_counter() - sweep_start)


def _sweep_squaring(system: TransitionSystem, final: Expr, max_k: int,
                    budget: Budget | None, options: Dict) -> SweepResult:
    """The paper's iterative-squaring schedule: 0, 1, 2, 4, ...

    Formula (3) only speaks power-of-two bounds exactly, so each rung
    asks "within k" on the self-looped system (the encoder rounds
    non-power bounds up).  A SAT rung therefore brackets the shortest
    counterexample rather than pinning it — the trade the squaring
    schedule makes for its O(log K) iteration count.
    """
    bounds = _squaring_ladder(max_k)
    tracker = SweepBudget(budget)
    per_bound: List[BoundResult] = []
    sweep_start = time.perf_counter()
    for k in bounds:
        if tracker.exhausted():
            _sweep_record(per_bound, k, SolveResult.UNKNOWN, None, 0.0,
                          sweep_start, {})
            break
        result = check_reachability(system, final, k, "qbf-squaring",
                                    semantics="within",
                                    budget=tracker.remaining(), **options)
        tracker.charge(
            conflicts=result.stats.get("solver_conflicts", 0),
            decisions=result.stats.get("solver_decisions", 0),
            propagations=result.stats.get("solver_propagations", 0))
        _sweep_record(per_bound, k, result.status, result.trace,
                      result.seconds, sweep_start, result.stats)
        if result.status is not SolveResult.UNSAT:
            break
    return SweepResult("qbf-squaring", max_k, per_bound,
                       time.perf_counter() - sweep_start)


def _sweep_jsat(system: TransitionSystem, final: Expr, max_k: int,
                budget: Budget | None, options: Dict) -> SweepResult:
    """Native jSAT sweep: one solver, retargeted per bound.

    The clause database (a single TR copy plus guarded I and F) is
    bound-independent, and the no-good cache persists across bounds —
    states proven hopeless at some remaining distance stay hopeless.
    """
    jsolver = JsatSolver(
        system, final, 0, "exact",
        use_cache=options.get("use_cache", True),
        f_pruning=options.get("f_pruning", True),
        purge_interval=options.get("purge_interval", 8))
    tracker = SweepBudget(budget)
    per_bound: List[BoundResult] = []
    sweep_start = time.perf_counter()
    for k in range(max_k + 1):
        if tracker.exhausted():
            _sweep_record(per_bound, k, SolveResult.UNKNOWN, None, 0.0,
                          sweep_start, {})
            break
        jsolver.retarget(k)
        solver_before = jsolver.solver.stats.as_dict()
        jsat_before = jsolver.stats.as_dict()
        bound_start = time.perf_counter()
        status = jsolver.solve(budget=tracker.remaining())
        seconds = time.perf_counter() - bound_start
        solver_after = jsolver.solver.stats.as_dict()
        tracker.charge(
            conflicts=solver_after["conflicts"] - solver_before["conflicts"],
            decisions=solver_after["decisions"] - solver_before["decisions"],
            propagations=(solver_after["propagations"]
                          - solver_before["propagations"]))
        # Per-bound deltas of the cumulative jSAT counters (peaks and
        # sizes stay absolute — they are not additive across bounds).
        jsat_after = jsolver.stats.as_dict()
        stats: Dict[str, int] = {
            key: jsat_after[key] - jsat_before[key]
            for key in jsat_after if key != "peak_db_literals"}
        stats["peak_db_literals"] = jsat_after["peak_db_literals"]
        stats["solver_conflicts"] = (solver_after["conflicts"]
                                     - solver_before["conflicts"])
        stats["solver_decisions"] = (solver_after["decisions"]
                                     - solver_before["decisions"])
        stats["solver_propagations"] = (solver_after["propagations"]
                                        - solver_before["propagations"])
        stats["resident_literals"] = jsolver.resident_literals()
        stats["cache_entries"] = jsolver.cache_size()
        trace = jsolver.trace() if status is SolveResult.SAT else None
        _sweep_record(per_bound, k, status, trace, seconds, sweep_start,
                      stats)
        if status is not SolveResult.UNSAT:
            break
    return SweepResult("jsat", max_k, per_bound,
                       time.perf_counter() - sweep_start)
