"""The stateful front end: one :class:`BmcSession` per query family.

A session binds one ``(system, final)`` reachability query family and
hands out :class:`~repro.bmc.backend.Backend` instances from the
registry, keeping each instance — and therefore its long-lived solver
state — alive across ``check`` / ``sweep`` / ``find_reachable`` calls:

* the ``sat-incremental`` backend keeps its growing clause database and
  surviving learnt clauses between calls, so deepening a bound never
  re-encodes a frame twice;
* the ``jsat`` backend keeps its single TR copy and its bound-
  independent no-good cache, so states proven hopeless in one call stay
  hopeless in the next.

Typed per-backend options are validated up front (unknown kwargs raise
instead of vanishing), and an ``on_bound`` observer streams per-bound
:class:`~repro.bmc.incremental.BoundResult` records during sweeps and
iterative deepening — progress reporting without polling.

Example
-------
>>> from repro.bmc import BmcSession
>>> from repro.models import counter
>>> system, final, depth = counter.make(3, 5)
>>> with BmcSession(system, final) as session:
...     exact = session.check(depth, method="jsat")
...     swept = session.sweep(depth + 1, method="sat-incremental")
>>> exact.status.name, swept.shortest_k == depth
('SAT', True)
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Tuple

from ..logic.expr import Expr
from ..sat.types import Budget, SolveResult
from ..system.model import TransitionSystem
from ..system.trace import Trace
from .backend import (SEMANTICS, Backend, BmcResult, OnBound, create_backend,
                      validate_method)
from .backends import squaring_ladder
from .incremental import BoundResult, SweepResult

__all__ = ["BmcSession"]


def shorten_to_final(trace: Trace, final: Expr) -> Trace:
    """Cut a within-mode trace at its first final state."""
    for i, state in enumerate(trace.states):
        if final.evaluate(state):
            return Trace(trace.states[:i + 1], trace.inputs[:i])
    return trace


class BmcSession:
    """Bounded model checking over one query family, any backend.

    Parameters
    ----------
    system, final:
        The query family: is a state satisfying ``final`` reachable
        from init in exactly / at most k steps?
    method:
        Default backend name for calls that do not name one.
    on_bound:
        Session-wide per-bound observer (``on_bound(BoundResult)``)
        invoked during sweeps and iterative deepening; a per-call
        ``on_bound`` argument overrides it.

    The session is a context manager; :meth:`close` releases every
    backend's solver state.  Backend instances are cached per
    ``(method, options)``, so two calls with identical options share
    state while differing options get independent instances.
    """

    def __init__(self, system: TransitionSystem, final: Expr,
                 method: str = "sat-unroll",
                 on_bound: OnBound | None = None) -> None:
        validate_method(method)
        self.system = system
        self.final = final
        self.method = method
        self.on_bound = on_bound
        self._backends: Dict[Tuple[str, str], Backend] = {}
        self._closed = False

    # ------------------------------------------------------------------
    def __enter__(self) -> "BmcSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Release every cached backend's long-lived solver state."""
        for backend in self._backends.values():
            backend.close()
        self._backends.clear()
        self._closed = True

    def _require_open(self) -> None:
        if self._closed:
            raise RuntimeError("BmcSession is closed")

    # ------------------------------------------------------------------
    def backend(self, method: str | None = None, **options: Any) -> Backend:
        """The session's backend instance for ``method`` + ``options``.

        Validates the method name against the registry and the options
        against the backend's typed options class; the instance (and
        its solver state) is cached for the session's lifetime.
        """
        self._require_open()
        name = method or self.method
        cls = validate_method(name)
        opts = cls.options_class.from_kwargs(**options)
        key = (name, opts.cache_key())
        backend = self._backends.get(key)
        if backend is None:
            backend = create_backend(name, self.system, self.final,
                                     options=opts)
            self._backends[key] = backend
        return backend

    # ------------------------------------------------------------------
    def check(self, k: int, method: str | None = None,
              semantics: str = "exact",
              budget: Budget | None = None, **options: Any) -> BmcResult:
        """Decide whether ``final`` is reachable at bound ``k``.

        ``semantics`` is "exact" (in exactly k steps — the paper's
        query) or "within" (in at most k steps).  Within-mode traces
        are cut at their first final state uniformly, whatever back end
        produced them.
        """
        if k < 0:
            raise ValueError("bound k must be non-negative")
        if semantics not in SEMANTICS:
            raise ValueError(f"unknown semantics {semantics!r}")
        backend = self.backend(method, **options)
        if semantics not in backend.supported_semantics:
            raise ValueError(
                f"backend {backend.name!r} does not support "
                f"{semantics!r} semantics (supports "
                f"{backend.supported_semantics})")
        start = time.perf_counter()
        result = backend.check(k, semantics=semantics, budget=budget)
        if semantics == "within" and result.trace is not None:
            result.trace = shorten_to_final(result.trace, self.final)
        result.seconds = time.perf_counter() - start
        return result

    # ------------------------------------------------------------------
    def sweep(self, max_k: int, method: str | None = None,
              budget: Budget | None = None,
              on_bound: OnBound | None = None,
              **options: Any) -> SweepResult:
        """Sweep bounds k = 0..max_k; return the shortest counterexample.

        Every backend implements the same contract — bounds in
        increasing order, stopping at the first SAT or the first
        UNKNOWN — natively with one long-lived solver when
        ``native_incremental`` is set, by fresh exact-k queries
        otherwise (``qbf-squaring`` follows its log schedule, so its
        hit bound brackets the shortest depth rather than pinning it).
        The budget is global across the whole sweep.
        """
        if max_k < 0:
            raise ValueError("max_k must be non-negative")
        backend = self.backend(method, **options)
        return backend.sweep(max_k, budget=budget,
                             on_bound=on_bound or self.on_bound)

    # ------------------------------------------------------------------
    def find_reachable(self, max_bound: int, method: str | None = None,
                       strategy: str = "linear",
                       budget: Budget | None = None,
                       on_bound: OnBound | None = None, **options: Any
                       ) -> Tuple[Optional[BmcResult], List[BmcResult]]:
        """Iterative-deepening reachability up to ``max_bound``.

        ``strategy`` is "linear" (k = 0, 1, 2, ...; exact semantics per
        iteration, so the union covers every depth) or "squaring"
        (k = 1, 2, 4, ...; each iteration checks "within k" on the
        self-looped system, the paper's iterative-squaring schedule).

        Both the method and the strategy are validated up front, before
        any solving starts.  Returns ``(hit, history)`` where ``hit``
        is the first SAT result (or None) and ``history`` records every
        iteration — experiment E3 reads the iteration counts from it.
        """
        backend = self.backend(method, **options)   # validates up front
        if strategy == "linear":
            bounds: List[int] = list(range(0, max_bound + 1))
            semantics = "exact"
        elif strategy == "squaring":
            bounds = squaring_ladder(max_bound)
            semantics = "within"
        else:
            raise ValueError(f"unknown strategy {strategy!r}; "
                             f"pick 'linear' or 'squaring'")
        observer = on_bound or self.on_bound
        history: List[BmcResult] = []
        start = time.perf_counter()
        for bound in bounds:
            result = self.check(bound, method=backend.name,
                                semantics=semantics, budget=budget,
                                **options)
            history.append(result)
            if observer is not None:
                observer(BoundResult(bound, result.status, result.trace,
                                     result.seconds,
                                     time.perf_counter() - start,
                                     result.stats))
            if result.status is SolveResult.SAT:
                return result, history
            if result.status is SolveResult.UNKNOWN:
                return None, history
        return None, history

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover
        return (f"BmcSession({self.system.name!r}, "
                f"method={self.method!r}, "
                f"backends={sorted(k for k, _ in self._backends)})")
