"""The stateful front end: one :class:`BmcSession` per system under check.

A session binds one transition system plus any number of *named
properties* (:mod:`repro.spec`) and hands out two kinds of engines,
both keeping long-lived solver state alive across calls:

* **reachability backends** from the registry
  (:class:`~repro.bmc.backend.Backend`) for the paper's exact-k /
  within-k queries — ``check`` / ``sweep`` / ``find_reachable``
  operate on the session's *reachability target*, derived from its
  single property (``Reachable(p)`` targets ``p``, ``Invariant(p)``
  targets ``¬p``);
* the **multi-property checker**
  (:class:`~repro.spec.checker.PropertyChecker`) for
  ``check_properties`` / ``sweep_properties`` — every registered
  property answered over **one shared unrolling** inside one
  incremental solver, with per-property activation groups.

Typed per-backend options are validated up front (unknown kwargs raise
instead of vanishing), ``on_bound`` observers stream per-bound
progress, and SAT answers are validated in debug mode (witness replay
against the transition system).

Example
-------
>>> from repro.bmc import BmcSession
>>> from repro.spec import Invariant, Reachable
>>> from repro.models import counter
>>> system, final, depth = counter.make(3, 5)
>>> with BmcSession(system, properties={
...         "hit": Reachable(final),
...         "safe": Invariant(~final)}) as session:
...     results = session.check_properties(depth)
>>> results["hit"].verdict.name, results["safe"].verdict.name
('HOLDS', 'VIOLATED')

The pre-0.4 form ``BmcSession(system, final_expr)`` still works as a
deprecated shim for the single anonymous reachability target.
"""

from __future__ import annotations

import time
import warnings
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from ..logic.expr import Expr
from ..sat.types import Budget, SolveResult
from ..spec.checker import (OnPropertyBound, PropertyChecker,
                            PropertyResult, normalize_properties)
from ..spec.property import Property, reachability_target
from ..system.model import TransitionSystem
from ..system.trace import Trace
from ..telemetry.trace import current_tracer
from .backend import (SEMANTICS, Backend, BmcResult, OnBound, create_backend,
                      validate_method)
from .backends import squaring_ladder
from .incremental import BoundResult, SweepResult

__all__ = ["BmcSession", "shorten_to_final"]


def shorten_to_final(trace: Trace, final: Expr) -> Trace:
    """Cut a within-mode trace at its first final state (see
    :meth:`repro.system.trace.Trace.shorten_to`)."""
    return trace.shorten_to(final)


class BmcSession:
    """Bounded model checking of one system, any backend, any property.

    Parameters
    ----------
    system:
        The transition system under check.
    final:
        **Deprecated** — the anonymous reachability target of the
    pre-0.4 API; equivalent to ``properties={"target": Reachable(final)}``.
    properties:
        The session's named properties: a mapping
        ``{name: Property | Expr}`` (raw expressions are wrapped as
        ``Reachable`` targets), a single Property, or None.
    method:
        Default backend name for reachability calls that do not name
        one.
    reduce:
        Model-reduction knob: ``"off"`` (default) solves the full
        system, ``"auto"`` runs every query through the default
        :mod:`repro.reduce` pipeline (per-property cone of influence,
        constant/duplicate-latch sweeping, input pruning), and a
        :class:`repro.reduce.Pipeline` instance supplies a custom pass
        order.  Witness traces are lifted back to full-width paths
        over the original system before validation or shortening, so
        callers never observe the reduction.
    solver:
        SAT engine default for every backend and checker the session
        creates: ``"kernel"`` or ``"reference"``.  ``None`` (default)
        defers to the process default
        (:func:`repro.sat.types.resolve_engine`); a per-call
        ``solver=...`` backend option overrides it.
    on_bound:
        Session-wide per-bound observer (``on_bound(BoundResult)``)
        invoked during sweeps and iterative deepening; a per-call
        ``on_bound`` argument overrides it.

    The session is a context manager; :meth:`close` releases every
    backend's and the property checker's solver state.  Backend
    instances are cached per ``(method, options, target)``, so two
    calls with identical options share state while differing options —
    or a replaced single property — get independent instances.
    """

    def __init__(self, system: TransitionSystem,
                 final: Optional[Expr] = None, *,
                 properties: Union[Mapping[str, Union[Property, Expr]],
                                   Property, Expr, None] = None,
                 method: str = "sat-unroll",
                 reduce: object = "off",
                 prover: Optional[str] = None,
                 prover_max_k: int = 64,
                 sim_tier: bool = True,
                 solver: Optional[str] = None,
                 on_bound: OnBound | None = None) -> None:
        from ..reduce import resolve_reduce
        validate_method(method)
        if prover is not None:
            # Fail here, at construction, with the checker's own
            # message — not on the first check_properties() call.
            from .backend import backend_class
            if not backend_class(prover).proves_unbounded:
                raise ValueError(
                    f"{prover!r} is a bounded falsifier, not a prover; "
                    f"pick a backend with proves_unbounded=True "
                    f"(k-induction / interpolation / diameter)")
        if final is not None and properties is not None:
            raise TypeError("pass either final or properties, not both")
        if final is not None:
            warnings.warn(
                "BmcSession(system, final) is deprecated; pass "
                "properties={'target': final} (or a repro.spec Property) "
                "instead", DeprecationWarning, stacklevel=2)
            properties = {"target": final}
        self.system = system
        self.properties: Dict[str, Property] = \
            normalize_properties(properties)
        self.method = method
        self.reduce = reduce
        self.prover = prover
        self.prover_max_k = prover_max_k
        self.sim_tier = sim_tier
        from ..sat.types import resolve_engine
        self.solver = None if solver is None else resolve_engine(solver)
        self._pipeline = resolve_reduce(reduce)
        self.on_bound = on_bound
        self._backends: Dict[Tuple[str, str, int], Backend] = {}
        self._checker: Optional[PropertyChecker] = None
        self._target_reduction: Optional[Tuple[Expr, object]] = None
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def final(self) -> Optional[Expr]:
        """The session's reachability target, when it has exactly one
        property that reduces to plain reachability (``Reachable(p)``
        → ``p``, ``Invariant(p)`` / ``G p`` → ``¬p``); None otherwise.
        """
        if len(self.properties) != 1:
            return None
        (prop,) = self.properties.values()
        return reachability_target(prop)

    def _require_final(self, what: str) -> Expr:
        final = self.final
        if final is not None:
            return final
        if len(self.properties) != 1:
            raise ValueError(
                f"{what} answers the session's single reachability "
                f"target, but this session has "
                f"{len(self.properties)} properties "
                f"({sorted(self.properties)}); use check_properties() "
                f"/ sweep_properties(), or open a session per target")
        (name,) = self.properties
        raise ValueError(
            f"{what} answers plain reachability, but property {name!r} "
            f"({self.properties[name]}) is a general bounded-LTL "
            f"property; use check_properties() / sweep_properties()")

    def add_property(self, name: str,
                     prop: Union[Property, Expr]) -> None:
        """Register another named property on the live session."""
        self._require_open()
        prop = normalize_properties({name: prop})[name]
        self.properties[name] = prop
        if self._checker is not None:
            self._checker.add_property(name, prop)

    # ------------------------------------------------------------------
    def __enter__(self) -> "BmcSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Release every cached backend's and the property checker's
        long-lived solver state."""
        for backend in self._backends.values():
            backend.close()
        self._backends.clear()
        if self._checker is not None:
            self._checker.close()
            self._checker = None
        self._closed = True

    def _require_open(self) -> None:
        if self._closed:
            raise RuntimeError("BmcSession is closed")

    # ------------------------------------------------------------------
    def _reduction(self):
        """The :class:`~repro.reduce.ReducedSystem` for the session's
        reachability target (identity when reduction is off); cached
        per target expression."""
        from ..reduce import identity_reduction, reduce_for_target
        final = self._require_final("reduction")
        cached = self._target_reduction
        if cached is not None and cached[0] is final:
            return cached[1]
        if self._pipeline is None:
            reduction = identity_reduction(self.system)
        else:
            reduction = reduce_for_target(self.system, final,
                                          self._pipeline)
        self._target_reduction = (final, reduction)
        return reduction

    def backend(self, method: str | None = None, **options: Any) -> Backend:
        """The session's backend instance for ``method`` + ``options``.

        Validates the method name against the registry and the options
        against the backend's typed options class; the instance (and
        its solver state) is cached for the session's lifetime.  With
        reduction enabled the backend is constructed over the reduced
        system and the mapped target — its results speak the reduced
        vocabulary until :meth:`check` / :meth:`sweep` lift them.
        """
        self._require_open()
        final = self._require_final("backend()")
        name = method or self.method
        cls = validate_method(name)
        if self.solver is not None and "solver" not in options:
            options["solver"] = self.solver
        opts = cls.options_class.from_kwargs(**options)
        # The target participates in the key: replacing the session's
        # single property via add_property must not hand back a cached
        # backend still solving (a reduction of) the old target.
        key = (name, opts.cache_key(), final.uid)
        backend = self._backends.get(key)
        if backend is None:
            reduction = self._reduction()
            backend = create_backend(name, reduction.system,
                                     reduction.map_expr(final),
                                     options=opts)
            self._backends[key] = backend
        return backend

    # ------------------------------------------------------------------
    def check(self, k: int, method: str | None = None,
              semantics: str = "exact",
              budget: Budget | None = None, **options: Any) -> BmcResult:
        """Decide whether the reachability target is reachable at bound k.

        ``semantics`` is "exact" (in exactly k steps — the paper's
        query) or "within" (in at most k steps).  Within-mode traces
        are cut at their first final state uniformly, whatever back end
        produced them.  In debug mode (``__debug__``) every SAT trace
        is re-validated against the transition system before being
        returned.
        """
        if k < 0:
            raise ValueError("bound k must be non-negative")
        if semantics not in SEMANTICS:
            raise ValueError(f"unknown semantics {semantics!r}")
        final = self._require_final("check()")
        backend = self.backend(method, **options)
        if semantics not in backend.supported_semantics:
            raise ValueError(
                f"backend {backend.name!r} does not support "
                f"{semantics!r} semantics (supports "
                f"{backend.supported_semantics})")
        start = time.perf_counter()
        with current_tracer().span("session.check", method=backend.name,
                                   k=k, semantics=semantics) as sp:
            result = backend.check(k, semantics=semantics, budget=budget)
            sp.set(status=result.status.name)
            if result.proved:
                sp.set(proved=True)
        if result.trace is not None:
            result.trace = self._reduction().lift(result.trace)
        if semantics == "within" and result.trace is not None:
            result.trace = result.trace.shorten_to(final)
        if __debug__ and result.status is SolveResult.SAT \
                and result.trace is not None:
            result.trace.validate(self.system, final)
            if semantics == "exact" and result.trace.length != k:
                from ..system.trace import TraceError
                raise TraceError(
                    f"backend {backend.name!r} returned a length-"
                    f"{result.trace.length} trace for an exact-{k} "
                    f"query")
        result.seconds = time.perf_counter() - start
        return result

    # ------------------------------------------------------------------
    def sweep(self, max_k: int, method: str | None = None,
              budget: Budget | None = None,
              on_bound: OnBound | None = None,
              **options: Any) -> SweepResult:
        """Sweep bounds k = 0..max_k; return the shortest counterexample.

        Every backend implements the same contract — bounds in
        increasing order, stopping at the first SAT or the first
        UNKNOWN — natively with one long-lived solver when
        ``native_incremental`` is set, by fresh exact-k queries
        otherwise (``qbf-squaring`` follows its log schedule, so its
        hit bound brackets the shortest depth rather than pinning it).
        The budget is global across the whole sweep.
        """
        if max_k < 0:
            raise ValueError("max_k must be non-negative")
        backend = self.backend(method, **options)
        observer = on_bound or self.on_bound
        reduction = self._reduction()
        if reduction.is_identity:
            return backend.sweep(max_k, budget=budget, on_bound=observer)

        def lifting_observer(bound: BoundResult) -> None:
            # Records are lifted in place before streaming, so both
            # the observer and the returned per_bound list see
            # full-width traces over the original system.
            if bound.trace is not None:
                bound.trace = reduction.lift(bound.trace)
            if observer is not None:
                observer(bound)
        return backend.sweep(max_k, budget=budget,
                             on_bound=lifting_observer)

    # ------------------------------------------------------------------
    def find_reachable(self, max_bound: int, method: str | None = None,
                       strategy: str = "linear",
                       budget: Budget | None = None,
                       on_bound: OnBound | None = None, **options: Any
                       ) -> Tuple[Optional[BmcResult], List[BmcResult]]:
        """Iterative-deepening reachability up to ``max_bound``.

        ``strategy`` is "linear" (k = 0, 1, 2, ...; exact semantics per
        iteration, so the union covers every depth) or "squaring"
        (k = 1, 2, 4, ...; each iteration checks "within k" on the
        self-looped system, the paper's iterative-squaring schedule).

        Both the method and the strategy are validated up front, before
        any solving starts.  Returns ``(hit, history)`` where ``hit``
        is the first SAT result (or None) and ``history`` records every
        iteration — experiment E3 reads the iteration counts from it.
        The hit's witness trace is debug-validated by :meth:`check`.
        """
        backend = self.backend(method, **options)   # validates up front
        if strategy == "linear":
            bounds: List[int] = list(range(0, max_bound + 1))
            semantics = "exact"
        elif strategy == "squaring":
            bounds = squaring_ladder(max_bound)
            semantics = "within"
        else:
            raise ValueError(f"unknown strategy {strategy!r}; "
                             f"pick 'linear' or 'squaring'")
        observer = on_bound or self.on_bound
        history: List[BmcResult] = []
        start = time.perf_counter()
        for bound in bounds:
            result = self.check(bound, method=backend.name,
                                semantics=semantics, budget=budget,
                                **options)
            history.append(result)
            if observer is not None:
                observer(BoundResult(bound, result.status, result.trace,
                                     result.seconds,
                                     time.perf_counter() - start,
                                     result.stats))
            if result.status is SolveResult.SAT:
                return result, history
            if result.status is SolveResult.UNKNOWN:
                return None, history
        return None, history

    # ------------------------------------------------------------------
    # The multi-property engine: one shared unrolling for all
    # ------------------------------------------------------------------
    def checker(self) -> PropertyChecker:
        """The session's shared-unrolling property checker (created on
        first use; frames and learnt clauses persist across calls).
        Inherits the session's ``reduce`` knob, so with ``"auto"`` the
        checker groups properties by reduced cone and answers each
        group over its own (smaller) shared unrolling — and the
        session's ``prover`` pairing, so bounded UNSAT verdicts can be
        escalated to conclusive proofs per property cone."""
        self._require_open()
        if not self.properties:
            raise ValueError("this session has no properties; construct "
                             "it with properties={...} or add_property()")
        if self._checker is None:
            self._checker = PropertyChecker(self.system, self.properties,
                                            reduce=self.reduce,
                                            prover=self.prover,
                                            prover_max_k=self.prover_max_k,
                                            sim_tier=self.sim_tier,
                                            solver=self.solver)
        return self._checker

    def check_properties(self, k: int, names: List[str] | None = None,
                         budget: Budget | None = None,
                         on_result=None) -> Dict[str, PropertyResult]:
        """Check every (selected) property at bound k — one unrolling,
        one incremental solver, per-property activation groups.

        The search is bounded ("within k"): a universal property is
        VIOLATED when a counterexample path of length ≤ k exists, a
        ``Reachable`` HOLDS when a witness does.  ``budget`` is a
        shared pool across the batch; ``on_result(PropertyResult)``
        streams each property's answer as it lands.
        """
        return self.checker().check_all(k, names=names, budget=budget,
                                        on_result=on_result)

    def sweep_properties(self, max_k: int,
                         names: List[str] | None = None,
                         budget: Budget | None = None,
                         on_bound: OnPropertyBound | None = None
                         ) -> Dict[str, PropertyResult]:
        """Resolve each property at its earliest bound in 0..max_k over
        the shared unrolling.

        ``on_bound(name, BoundResult)`` streams every (property, bound)
        record; when omitted, the session-wide ``on_bound`` observer
        (if any) receives the per-bound records without the name.
        """
        observer = on_bound
        if observer is None and self.on_bound is not None:
            session_observer = self.on_bound

            def observer(_name: str, bound: BoundResult) -> None:
                session_observer(bound)
        return self.checker().sweep(max_k, names=names, budget=budget,
                                    on_bound=observer)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover
        return (f"BmcSession({self.system.name!r}, "
                f"properties={sorted(self.properties)}, "
                f"method={self.method!r}, "
                f"backends={sorted(k[0] for k in self._backends)})")
