"""The six built-in backends, ported onto the :class:`Backend` protocol.

Each decision method of the paper's comparison is one registered class:

* ``sat-unroll`` — formula (1) + the CDCL solver (the classical
  baseline; stateless, re-encodes per query);
* ``sat-incremental`` — formula (1) on one long-lived solver
  (:class:`repro.bmc.incremental.IncrementalBmc`; state persists
  across ``check``/``sweep`` calls on the same backend instance);
* ``qbf`` — formula (2) + a general-purpose QBF solver;
* ``qbf-squaring`` — formula (3); its native sweep follows the
  iterative-squaring schedule 0, 1, 2, 4, ...;
* ``jsat`` — the special-purpose jSAT procedure on formula (2)'s
  semantics (one solver per semantics, retargeted per bound; the
  no-good cache persists for the backend's lifetime);
* ``portfolio`` — a *composite* backend racing the others in parallel
  worker processes (:func:`repro.portfolio.race.race`).

Importing this module registers all of them; the registry triggers the
import lazily, so user code never needs to import it explicitly.
"""

from __future__ import annotations

import dataclasses
import difflib
from typing import Dict, List, Mapping, Optional, Sequence

from ..qbf.expansion import ExpansionSolver
from ..qbf.qdpll import QdpllSolver
from ..sat.kernel import make_solver
from ..sat.types import Budget, SolveResult
from ..system.trace import Trace
from .backend import (Backend, BackendOptions, BmcResult, OnBound,
                      SweepResult, drive_sweep, register_backend)
from .incremental import IncrementalBmc
from .jsat import JsatSolver
from .qbf_encoding import encode_qbf
from .squaring import encode_squaring
from .unroll import encode_unrolled

__all__ = ["SatUnrollBackend", "SatIncrementalBackend", "QbfBackend",
           "QbfSquaringBackend", "JsatBackend", "PortfolioBackend",
           "UnrollOptions", "IncrementalOptions", "QbfOptions",
           "SquaringOptions", "JsatOptions", "PortfolioOptions",
           "squaring_ladder", "next_power_of_two"]


def next_power_of_two(k: int) -> int:
    return 1 if k <= 1 else 1 << (k - 1).bit_length()


def squaring_ladder(max_k: int) -> List[int]:
    """The iterative-squaring bound schedule: 0, 1, 2, 4, ..., max_k."""
    bounds = [0]
    b = 1
    while max_k > 0:
        bounds.append(min(b, max_k))
        if b >= max_k:
            break
        b *= 2
    return bounds


def _check_unroll_once(system, final, k: int, semantics: str,
                       budget: Budget | None,
                       polarity_reduction: bool = False,
                       solver_engine: Optional[str] = None) -> BmcResult:
    """One formula-(1) query (also the k = 0 fallback for the QBF
    encodings, which need at least one step)."""
    encoding = encode_unrolled(system, final, k, semantics,
                               polarity_reduction=polarity_reduction)
    solver = make_solver(solver_engine)
    solver.ensure_vars(encoding.cnf.num_vars)
    ok = solver.add_clauses(encoding.cnf.clauses)
    status = solver.solve(budget=budget) if ok else SolveResult.UNSAT
    trace = None
    if status is SolveResult.SAT:
        trace = encoding.extract_trace(solver.model_value)
    stats = encoding.stats()
    stats.update({f"solver_{key}": value
                  for key, value in solver.stats.as_dict().items()})
    return BmcResult(status, trace, k, "sat-unroll", 0.0, stats)


# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class UnrollOptions(BackendOptions):
    polarity_reduction: bool = False


@register_backend("sat-unroll")
class SatUnrollBackend(Backend):
    """Formula (1): re-encode the unrolling, fresh solver per query."""

    options_class = UnrollOptions

    def check(self, k: int, semantics: str = "exact",
              budget: Budget | None = None) -> BmcResult:
        result = _check_unroll_once(
            self.system, self.final, k, semantics, budget,
            polarity_reduction=self.options.polarity_reduction,
            solver_engine=self.options.solver)
        result.method = self.name
        return result


# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class IncrementalOptions(BackendOptions):
    polarity_reduction: bool = False
    purge_interval: int = 4


@register_backend("sat-incremental")
class SatIncrementalBackend(Backend):
    """Formula (1) on one long-lived solver shared across bounds.

    The :class:`IncrementalBmc` driver is created on first use and kept
    for the backend's lifetime, so repeated ``check``/``sweep`` calls
    through one :class:`~repro.bmc.session.BmcSession` keep every
    transition frame and surviving learnt clause.
    """

    native_incremental = True
    options_class = IncrementalOptions

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._inc: Optional[IncrementalBmc] = None

    @property
    def driver(self) -> IncrementalBmc:
        if self._inc is None:
            self._inc = IncrementalBmc(
                self.system, self.final,
                polarity_reduction=self.options.polarity_reduction,
                purge_interval=self.options.purge_interval,
                solver=self.options.solver)
        return self._inc

    def check(self, k: int, semantics: str = "exact",
              budget: Budget | None = None) -> BmcResult:
        if semantics == "exact":
            status, trace, stats = self.driver.check_bound(k, budget=budget)
            return self.result(status, trace, k, stats)
        # within(k) ⇔ ∃ j <= k: exact(j) — sweep upward and stop at the
        # first (hence shortest) hit; its trace needs no shortening
        # because every smaller bound was already refuted.
        swept = self.driver.sweep(k, budget=budget)
        last = swept.per_bound[-1] if swept.per_bound else None
        stats = dict(last.stats) if last is not None else {}
        stats["bounds_checked"] = len(swept.per_bound)
        if swept.shortest_k is not None:
            stats["shortest_k"] = swept.shortest_k
        return self.result(swept.status, swept.trace, k, stats)

    def sweep(self, max_k: int, budget: Budget | None = None,
              on_bound: OnBound | None = None) -> SweepResult:
        return self.driver.sweep(max_k, budget=budget, on_bound=on_bound)

    def close(self) -> None:
        self._inc = None


# ----------------------------------------------------------------------
def _qbf_solve(pcnf, backend: str, budget: Budget | None):
    if backend == "qdpll":
        solver = QdpllSolver(pcnf)
        status = solver.solve(budget=budget)
        return status, solver.assignment(), solver.stats.as_dict()
    if backend == "expansion":
        solver = ExpansionSolver(pcnf)
        status = solver.solve(budget=budget)
        return status, {}, {"expanded_vars": solver.expanded_vars,
                            "peak_literals": solver.peak_literals}
    raise ValueError(f"unknown qbf backend {backend!r}")


@dataclasses.dataclass(frozen=True)
class QbfOptions(BackendOptions):
    qbf_backend: str = "qdpll"


@register_backend("qbf")
class QbfBackend(Backend):
    """Formula (2) + a general-purpose QBF solver (QDPLL / expansion)."""

    options_class = QbfOptions

    def check(self, k: int, semantics: str = "exact",
              budget: Budget | None = None) -> BmcResult:
        system = self.system
        query_system = system
        if semantics == "within":
            query_system = system.with_self_loops()
        if k == 0:
            # Formula (2) needs at least one step; fall back to SAT.
            result = _check_unroll_once(system, self.final, 0, "exact",
                                        budget,
                                        solver_engine=self.options.solver)
            result.method = self.name
            return result
        encoding = encode_qbf(query_system, self.final, k)
        status, assignment, solver_stats = _qbf_solve(
            encoding.pcnf, self.options.qbf_backend, budget)
        trace = None
        if status is SolveResult.SAT and assignment:
            states = encoding.extract_states(assignment)
            if semantics == "within":
                # Drop stutter steps introduced by the self-loop
                # transform: any remaining consecutive distinct pair is
                # a real TR step.
                deduped = [states[0]]
                for state in states[1:]:
                    if state != deduped[-1]:
                        deduped.append(state)
                states = deduped
            candidate = Trace(states, [{} for _ in range(len(states) - 1)])
            if not system.input_vars and candidate.is_valid(system,
                                                            self.final):
                trace = candidate
        stats = encoding.stats()
        stats.update({f"solver_{key}": value
                      for key, value in solver_stats.items()})
        return self.result(status, trace, k, stats)


# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class SquaringOptions(BackendOptions):
    qbf_backend: str = "qdpll"


@register_backend("qbf-squaring")
class QbfSquaringBackend(Backend):
    """Formula (3): iterative squaring, power-of-two bounds."""

    options_class = SquaringOptions

    def check(self, k: int, semantics: str = "exact",
              budget: Budget | None = None) -> BmcResult:
        if semantics == "within":
            query_system = self.system.with_self_loops()
            bound = next_power_of_two(k) if k >= 1 else 1
        else:
            query_system = self.system
            bound = k
        if k == 0:
            result = _check_unroll_once(self.system, self.final, 0,
                                        "exact", budget,
                                        solver_engine=self.options.solver)
            result.method = self.name
            return result
        encoding = encode_squaring(query_system, self.final, bound)
        status, _, solver_stats = _qbf_solve(
            encoding.pcnf, self.options.qbf_backend, budget)
        stats = encoding.stats()
        stats.update({f"solver_{key}": value
                      for key, value in solver_stats.items()})
        return self.result(status, None, k, stats)

    def sweep(self, max_k: int, budget: Budget | None = None,
              on_bound: OnBound | None = None) -> SweepResult:
        """The paper's iterative-squaring schedule: 0, 1, 2, 4, ...

        Formula (3) only speaks power-of-two bounds exactly, so each
        rung asks "within k" on the self-looped system (the encoder
        rounds non-power bounds up).  A SAT rung therefore brackets the
        shortest counterexample rather than pinning it — the trade the
        squaring schedule makes for its O(log K) iteration count.
        """
        def check(k: int, remaining: Budget | None):
            result = self.check(k, semantics="within", budget=remaining)
            return result.status, result.trace, result.stats
        return drive_sweep(self.name, max_k, squaring_ladder(max_k),
                           check, budget=budget, on_bound=on_bound)


# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class JsatOptions(BackendOptions):
    use_cache: bool = True
    f_pruning: bool = True
    purge_interval: int = 8


@register_backend("jsat")
class JsatBackend(Backend):
    """The paper's special-purpose jSAT procedure (formula (4)).

    One :class:`JsatSolver` per semantics is created lazily and
    retargeted per bound, so the clause database (a single TR copy plus
    guarded I and F) and the bound-independent no-good cache persist
    across every ``check`` and ``sweep`` of the backend's lifetime.
    """

    native_incremental = True
    options_class = JsatOptions

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._solvers: Dict[str, JsatSolver] = {}

    def solver(self, semantics: str) -> JsatSolver:
        solver = self._solvers.get(semantics)
        if solver is None:
            solver = JsatSolver(
                self.system, self.final, 0, semantics,
                use_cache=self.options.use_cache,
                f_pruning=self.options.f_pruning,
                purge_interval=self.options.purge_interval,
                solver=self.options.solver)
            self._solvers[semantics] = solver
        return solver

    def _bound_stats(self, solver: JsatSolver,
                     solver_before: Dict[str, int],
                     jsat_before: Dict[str, int]) -> Dict[str, int]:
        """Per-query deltas of the cumulative jSAT counters (peaks and
        sizes stay absolute — they are not additive across queries)."""
        solver_after = solver.solver.stats.as_dict()
        jsat_after = solver.stats.as_dict()
        stats: Dict[str, int] = {
            key: jsat_after[key] - jsat_before[key]
            for key in jsat_after if key != "peak_db_literals"}
        stats["peak_db_literals"] = jsat_after["peak_db_literals"]
        for key in ("conflicts", "decisions", "propagations"):
            stats[f"solver_{key}"] = (solver_after[key]
                                      - solver_before[key])
        stats["resident_literals"] = solver.resident_literals()
        stats["base_literals"] = solver.base_db_literals
        stats["cache_entries"] = solver.cache_size()
        return stats

    def check(self, k: int, semantics: str = "exact",
              budget: Budget | None = None) -> BmcResult:
        solver = self.solver(semantics)
        solver.retarget(k)
        solver_before = solver.solver.stats.as_dict()
        jsat_before = solver.stats.as_dict()
        status = solver.solve(budget=budget)
        trace = solver.trace() if status is SolveResult.SAT else None
        stats = self._bound_stats(solver, solver_before, jsat_before)
        return self.result(status, trace, k, stats)

    # The inherited Backend.sweep IS the native jSAT sweep: check()
    # retargets the one persistent solver per bound, the clause
    # database is bound-independent, and the no-good cache persists —
    # states proven hopeless at some remaining distance stay hopeless.

    def close(self) -> None:
        self._solvers.clear()


# ----------------------------------------------------------------------
# The unbounded provers register here so they precede the composite
# portfolio in registry order (importing for the registration effect;
# provers.py only depends on the protocol module, never back on this
# one).
from . import provers  # noqa: E402, F401  (registration effect)

# The bit-parallel random-simulation tier registers next (the
# ``simulation`` method) — sim/ depends only on the protocol module
# and the reduce/ structural view, never back on this one.
from ..sim import backend as _sim_backend  # noqa: E402, F401


# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class PortfolioOptions(BackendOptions):
    portfolio_methods: Optional[Sequence[str]] = None
    wall_timeout: Optional[float] = None
    validate: bool = True
    # Per-method option overrides, e.g. {"jsat": {"use_cache": False}};
    # each entry is validated by that method's own options class inside
    # the worker.
    method_options: Optional[Mapping[str, Mapping]] = None
    # Broadcast options, applied to every raced method that declares
    # them (the old function API's behaviour, e.g. use_cache=False
    # tuning jsat while sat-unroll ignores it).  A key no raced method
    # declares raises at check time.
    shared_options: Optional[Mapping[str, object]] = None
    # Pair the falsifier lanes with one unbounded prover
    # ("k-induction" / "interpolation" / "diameter"): a proved UNSAT
    # wins the race conclusively (see race()'s prover parameter).
    prover: Optional[str] = None
    prover_max_k: Optional[int] = None

    @classmethod
    def accepts_option(cls, name: str) -> bool:
        # The composite takes a broadcast key that some primitive
        # backend declares (folded into shared_options and forwarded to
        # the raced methods), so a multi-method fan-out that includes
        # portfolio keeps tuning its contenders — but a key NO
        # primitive declares is rejected up front like everywhere
        # else, not deferred to a worker-side race() error.
        if name in cls.option_names():
            return True
        from .backend import registered_backends
        return any(backend.options_class.accepts_option(name)
                   for backend in registered_backends().values()
                   if not backend.composite)

    @classmethod
    def from_kwargs(cls, **kwargs):
        # Undeclared kwargs fold into shared_options instead of being
        # rejected here: a composite backend cannot know the raced
        # methods' option vocabularies until the race is assembled, so
        # full validation happens in PortfolioBackend.check.
        declared = set(cls.option_names())
        rest = {key: value for key, value in kwargs.items()
                if key not in declared}
        if rest:
            # A near-miss of one of portfolio's own options is almost
            # certainly a typo — reject it here with the same
            # did-you-mean hint every other backend gives, instead of
            # deferring to a confusing "not accepted by any raced
            # method" error at check time.
            for key in sorted(rest):
                close = difflib.get_close_matches(
                    key, cls.option_names(), n=1)
                if close:
                    raise TypeError(
                        f"unknown option {key!r} for {cls.__name__} "
                        f"(did you mean {close[0]!r}?); to broadcast "
                        f"it to the raced methods instead, pass "
                        f"shared_options={{{key!r}: ...}}")
            kept = {key: value for key, value in kwargs.items()
                    if key in declared}
            shared = dict(kept.pop("shared_options", None) or {})
            shared.update(rest)
            return cls(shared_options=shared, **kept)
        return super().from_kwargs(**kwargs)


@register_backend("portfolio")
class PortfolioBackend(Backend):
    """Composite backend: race several methods in worker processes.

    Not a decision procedure itself — it wraps
    :func:`repro.portfolio.race.race` over the primitive backends and
    returns the first validated conclusive answer — so it is excluded
    from the ``METHODS`` view while remaining a first-class method
    everywhere method names are accepted.
    """

    composite = True
    options_class = PortfolioOptions

    def check(self, k: int, semantics: str = "exact",
              budget: Budget | None = None) -> BmcResult:
        # Imported lazily: repro.portfolio imports the bmc layer.
        from ..portfolio.race import DEFAULT_RACE_METHODS, race

        methods = self.options.portfolio_methods or DEFAULT_RACE_METHODS
        # race() fans shared_options out per method (each raced method
        # takes the keys its options class declares; keys nobody
        # declares raise) and merges method_options on top.
        outcome = race(self.system, self.final, k, methods=methods,
                       semantics=semantics, budget=budget,
                       wall_timeout=self.options.wall_timeout,
                       validate=self.options.validate,
                       method_options=self.options.method_options,
                       prover=self.options.prover,
                       prover_max_k=self.options.prover_max_k,
                       **dict(self.options.shared_options or {}))
        result = outcome.result
        result.stats["portfolio_cancel_latency_ms"] = int(
            outcome.cancel_latency * 1e3)
        return result
