"""Incremental BMC: one CDCL solver across an entire bound sweep.

Classical BMC (``method="sat-unroll"``) re-encodes the unrolling and
builds a fresh :class:`~repro.sat.solver.CdclSolver` for every bound,
throwing away the whole clause database — k shared transition frames
*and* every learnt clause — between k and k+1.  This module keeps
**one** solver alive for the whole sweep:

* each new bound adds exactly one transition frame of Tseitin clauses
  (frames 0..k-1 and the init constraint carry over verbatim);
* bound k's final-state constraint F(Z_k) is activated through an
  assumption *group literal* ``g_k``: the clause ``(-g_k, f_k)`` only
  bites while ``g_k`` is assumed, and once the bound is passed the
  group is permanently retired with ``add_clause([-g_k])`` — exactly
  the retractable-constraint idiom jSAT uses (see
  :mod:`repro.sat.solver`), after which ``purge_satisfied`` physically
  reclaims the constraint and every learnt clause derived from it;
* learnt clauses not derived from a retired final constraint are
  resolvents of the carried-over frames and therefore stay valid for
  every later bound — the incremental-SAT speedup of Biere et al.'s
  linear encodings and of incremental symbolic BMC.

Because the sweep asks exact-k queries in increasing order, the first
SAT answer is the *shortest* counterexample, and no strict prefix of
its witness reaches the target (otherwise an earlier bound would have
answered SAT).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from ..logic.cnf import CNF, VarPool
from ..logic.expr import Expr
from ..logic.tseitin import TseitinEncoder
from ..sat.solver import CdclSolver
from ..sat.types import Budget, SolveResult
from ..system.model import TransitionSystem
from ..system.trace import Trace

__all__ = ["IncrementalBmc", "BoundResult", "SweepResult", "SweepBudget"]


def _frame_name(var: str, step: int) -> str:
    return f"{var}@{step}"


class BoundResult:
    """Outcome and statistics of one bound inside a sweep.

    Attributes
    ----------
    k:
        The bound this entry answers (exact-k semantics).
    status:
        SAT / UNSAT / UNKNOWN for exactly-k reachability.
    trace:
        Witness path on SAT (length exactly k).
    seconds:
        Wall time of this bound alone.
    cumulative_seconds:
        Wall time from the start of the sweep to this bound's answer —
        the "time to shortest counterexample" when this is the hit.
    stats:
        Method counters; for the incremental driver these include
        ``clauses_reused`` (problem clauses carried over from earlier
        bounds) and ``learnts_retained`` (learnt clauses alive at query
        start).
    """

    def __init__(self, k: int, status: SolveResult, trace: Optional[Trace],
                 seconds: float, cumulative_seconds: float,
                 stats: Dict[str, int]) -> None:
        self.k = k
        self.status = status
        self.trace = trace
        self.seconds = seconds
        self.cumulative_seconds = cumulative_seconds
        self.stats = stats

    def __repr__(self) -> str:  # pragma: no cover
        return (f"BoundResult(k={self.k}, {self.status.name}, "
                f"{self.seconds * 1e3:.1f} ms)")


class SweepResult:
    """Outcome of a bound sweep k = 0..max_k (exact-k per bound).

    ``per_bound`` records every bound actually queried; the sweep stops
    at the first SAT (the shortest counterexample) or the first UNKNOWN
    (budget exhausted), so the list may be shorter than ``max_k + 1``.
    """

    def __init__(self, method: str, max_k: int,
                 per_bound: List[BoundResult], seconds: float) -> None:
        self.method = method
        self.max_k = max_k
        self.per_bound = per_bound
        self.seconds = seconds

    @property
    def hit(self) -> Optional[BoundResult]:
        """The shortest-counterexample entry, or None."""
        if self.per_bound and self.per_bound[-1].status is SolveResult.SAT:
            return self.per_bound[-1]
        return None

    @property
    def status(self) -> SolveResult:
        """SAT (cex found), UNSAT (all bounds refuted), or UNKNOWN."""
        if not self.per_bound:
            return SolveResult.UNKNOWN
        last = self.per_bound[-1]
        if last.status is SolveResult.SAT:
            return SolveResult.SAT
        if last.status is SolveResult.UNSAT and last.k == self.max_k:
            return SolveResult.UNSAT
        return SolveResult.UNKNOWN

    @property
    def shortest_k(self) -> Optional[int]:
        """Length of the shortest counterexample, or None."""
        hit = self.hit
        return hit.k if hit is not None else None

    @property
    def trace(self) -> Optional[Trace]:
        hit = self.hit
        return hit.trace if hit is not None else None

    @property
    def time_to_hit(self) -> Optional[float]:
        """Wall seconds from sweep start to the shortest cex, or None."""
        hit = self.hit
        return hit.cumulative_seconds if hit is not None else None

    def __repr__(self) -> str:  # pragma: no cover
        return (f"SweepResult({self.method!r}, {self.status.name}, "
                f"bounds={len(self.per_bound)}/{self.max_k + 1}, "
                f"{self.seconds * 1e3:.1f} ms)")


class SweepBudget:
    """A resource budget shared by every bound of one sweep.

    Wall-clock is tracked against a single deadline; the deterministic
    limits (conflicts / decisions / propagations) form a pool that each
    bound's query draws down.  ``remaining()`` hands out a per-query
    :class:`Budget` of whatever is left; callers report consumption via
    :meth:`charge`.
    """

    def __init__(self, budget: Budget | None) -> None:
        self.budget = budget
        self._deadline: Optional[float] = None
        self._conflicts_left: Optional[int] = None
        self._decisions_left: Optional[int] = None
        self._propagations_left: Optional[int] = None
        if budget is not None:
            if budget.max_seconds is not None:
                self._deadline = time.monotonic() + budget.max_seconds
            self._conflicts_left = budget.max_conflicts
            self._decisions_left = budget.max_decisions
            self._propagations_left = budget.max_propagations

    def charge(self, conflicts: int = 0, decisions: int = 0,
               propagations: int = 0) -> None:
        """Deduct one bound's consumption from the pools."""
        if self._conflicts_left is not None:
            self._conflicts_left -= conflicts
        if self._decisions_left is not None:
            self._decisions_left -= decisions
        if self._propagations_left is not None:
            self._propagations_left -= propagations

    def exhausted(self) -> bool:
        if self._deadline is not None and time.monotonic() > self._deadline:
            return True
        for left in (self._conflicts_left, self._decisions_left,
                     self._propagations_left):
            if left is not None and left <= 0:
                return True
        return False

    def remaining(self) -> Budget | None:
        """A budget covering whatever the sweep has left (None = no cap)."""
        if self.budget is None:
            return None
        seconds = None
        if self._deadline is not None:
            seconds = max(1e-3, self._deadline - time.monotonic())
        def _floor(left: Optional[int]) -> Optional[int]:
            return None if left is None else max(1, left)
        return Budget(max_conflicts=_floor(self._conflicts_left),
                      max_decisions=_floor(self._decisions_left),
                      max_propagations=_floor(self._propagations_left),
                      max_seconds=seconds,
                      max_literals=self.budget.max_literals)


class IncrementalBmc:
    """Exact-k reachability over a growing unrolling, one solver for all.

    Parameters
    ----------
    system, final:
        The reachability query family: is a state satisfying ``final``
        reachable from init in exactly k steps, for k = 0, 1, 2, ...?
    polarity_reduction:
        Use Plaisted–Greenbaum definitions for the frame encodings
        (sound here: every constraint is used positively).
    purge_interval:
        Retired final-constraint groups are physically reclaimed every
        this many retirements (1 = immediately).

    Example
    -------
    >>> from repro.models import counter
    >>> system, final, depth = counter.make(3, 5)
    >>> result = IncrementalBmc(system, final).sweep(depth + 1)
    >>> result.shortest_k == depth
    True
    """

    def __init__(self, system: TransitionSystem, final: Expr,
                 polarity_reduction: bool = False,
                 purge_interval: int = 4) -> None:
        stray = final.support() - set(system.state_vars)
        if stray:
            raise ValueError(f"final predicate uses non-state vars: {stray}")
        self.system = system
        self.final = final
        self.purge_interval = max(1, purge_interval)
        self.pool = VarPool()
        self.cnf = CNF()
        self.encoder = TseitinEncoder(self.cnf, self.pool,
                                      polarity_reduction)
        self.solver = CdclSolver()
        self._cursor = 0                       # clauses already in solver
        self._groups: Dict[int, int] = {}      # bound -> live group literal
        self._retired_since_purge = 0
        self.k = 0                             # transition frames encoded

        frame0 = [_frame_name(v, 0) for v in system.state_vars]
        self._frames: List[List[str]] = [frame0]
        self.encoder.assert_expr(
            system.rename_state_expr(system.init, frame0))
        for name in frame0:
            self.pool.named(name)
        self._flush()

    # ------------------------------------------------------------------
    # Clause streaming: encoder output -> live solver
    # ------------------------------------------------------------------
    def _flush(self) -> int:
        """Feed newly encoded variables and clauses to the solver."""
        self.solver.ensure_vars(max(self.cnf.num_vars, self.pool.num_vars))
        new = self.cnf.clauses[self._cursor:]
        self._cursor = len(self.cnf.clauses)
        self.solver.add_clauses(new)
        return len(new)

    def extend(self) -> int:
        """Add one transition frame TR(Z_k, Z_{k+1}); returns clauses added.

        Everything previously encoded — init, earlier frames, learnt
        clauses — stays in the solver untouched.
        """
        i = self.k
        nxt = [_frame_name(v, i + 1) for v in self.system.state_vars]
        self._frames.append(nxt)
        step = self.system.trans_between(self._frames[i], nxt,
                                         input_suffix=f"@{i}")
        self.encoder.assert_expr(step)
        for name in nxt:
            self.pool.named(name)
        for name in self.system.input_vars:
            self.pool.named(_frame_name(name, i))
        self.k += 1
        return self._flush()

    def _final_group(self, k: int) -> int:
        """Group literal activating F(Z_k) (allocated on first use).

        Group variables come from the shared pool so they can never
        collide with frame variables allocated by later ``extend``s.
        """
        g = self._groups.get(k)
        if g is not None:
            return g
        fin_k = self.system.rename_state_expr(self.final, self._frames[k])
        lit = self.encoder.encode(fin_k)
        self._flush()
        g = self.pool.fresh(f"fin@{k}")
        self.solver.ensure_vars(self.pool.num_vars)
        self.solver.add_clause([-g, lit])
        self._groups[k] = g
        return g

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def check_bound(self, k: int, budget: Budget | None = None
                    ) -> Tuple[SolveResult, Optional[Trace], Dict[str, int]]:
        """Decide exact-k reachability, reusing all prior work.

        Returns ``(status, trace, stats)``; the trace is the length-k
        witness on SAT.  The bound may be queried repeatedly (and out of
        order) as long as it has not been retired.
        """
        if k < 0:
            raise ValueError("bound k must be non-negative")
        solver = self.solver
        clauses_before = solver.num_clauses()
        learnts_before = solver.num_learnts()
        conflicts_before = solver.stats.conflicts
        decisions_before = solver.stats.decisions
        propagations_before = solver.stats.propagations
        while self.k < k:
            self.extend()
        g = self._final_group(k)
        status = solver.solve([g], budget=budget)
        trace = self.extract_trace(k) if status is SolveResult.SAT else None
        stats = {
            "trans_frames": self.k,
            "clauses_reused": clauses_before,
            "clauses_added": solver.num_clauses() - clauses_before,
            "learnts_retained": learnts_before,
            "learnts_now": solver.num_learnts(),
            "vars": solver.num_vars,
            "db_literals": solver.stats.db_literals,
            "peak_db_literals": solver.stats.peak_db_literals,
            "solver_conflicts": solver.stats.conflicts - conflicts_before,
            "solver_decisions": solver.stats.decisions - decisions_before,
            "solver_propagations":
                solver.stats.propagations - propagations_before,
        }
        return status, trace, stats

    def retire_bound(self, k: int) -> None:
        """Permanently disable bound k's final constraint.

        Adds the unit ``-g_k`` — every clause carrying ``-g_k`` (the
        constraint and all learnt clauses derived from it) becomes
        satisfied at level 0 and is physically reclaimed on the next
        purge, exactly as jSAT retires its blocking-clause groups.
        """
        g = self._groups.pop(k, None)
        if g is None:
            return
        self.solver.add_clause([-g])
        self._retired_since_purge += 1
        if self._retired_since_purge >= self.purge_interval:
            self.solver.purge_satisfied()
            self._retired_since_purge = 0

    def extract_trace(self, k: int) -> Trace:
        """Rebuild the witness path for bound k from the last model."""
        model_value = self.solver.model_value
        states = [
            {v: bool(model_value(self.pool.named(_frame_name(v, i))))
             for v in self.system.state_vars}
            for i in range(k + 1)]
        inputs = [
            {v: bool(model_value(self.pool.named(_frame_name(v, i))))
             for v in self.system.input_vars}
            for i in range(k)]
        return Trace(states, inputs)

    # ------------------------------------------------------------------
    def sweep(self, max_k: int, budget: Budget | None = None) -> SweepResult:
        """Sweep bounds 0..max_k; stop at the shortest counterexample.

        The budget is global across the whole sweep (one deadline, one
        conflict pool), mirroring how a fresh per-bound run would split
        the same resources.
        """
        if max_k < 0:
            raise ValueError("max_k must be non-negative")
        tracker = SweepBudget(budget)
        per_bound: List[BoundResult] = []
        sweep_start = time.perf_counter()
        for k in range(max_k + 1):
            if tracker.exhausted():
                per_bound.append(BoundResult(
                    k, SolveResult.UNKNOWN, None, 0.0,
                    time.perf_counter() - sweep_start, {}))
                break
            bound_start = time.perf_counter()
            status, trace, stats = self.check_bound(
                k, budget=tracker.remaining())
            now = time.perf_counter()
            tracker.charge(conflicts=stats["solver_conflicts"],
                           decisions=stats["solver_decisions"],
                           propagations=stats["solver_propagations"])
            per_bound.append(BoundResult(k, status, trace,
                                         now - bound_start,
                                         now - sweep_start, stats))
            if status is not SolveResult.UNSAT:
                break
            self.retire_bound(k)
        return SweepResult("sat-incremental", max_k, per_bound,
                           time.perf_counter() - sweep_start)

    # ------------------------------------------------------------------
    def resident_literals(self) -> int:
        """Current clause-database size in literals."""
        return self.solver.stats.db_literals

    def __repr__(self) -> str:  # pragma: no cover
        return (f"IncrementalBmc({self.system.name!r}, frames={self.k}, "
                f"clauses={self.solver.num_clauses()})")
