"""Incremental BMC: one CDCL solver across an entire bound sweep.

Classical BMC (``method="sat-unroll"``) re-encodes the unrolling and
builds a fresh :class:`~repro.sat.solver.CdclSolver` for every bound,
throwing away the whole clause database — k shared transition frames
*and* every learnt clause — between k and k+1.  This module keeps
**one** solver alive for the whole sweep:

* each new bound adds exactly one transition frame of Tseitin clauses
  (frames 0..k-1 and the init constraint carry over verbatim);
* bound k's final-state constraint F(Z_k) is activated through an
  assumption *group literal* ``g_k``: the clause ``(-g_k, f_k)`` only
  bites while ``g_k`` is assumed, and once the bound is passed the
  group is permanently retired with ``add_clause([-g_k])`` — exactly
  the retractable-constraint idiom jSAT uses (see
  :mod:`repro.sat.solver`), after which ``purge_satisfied`` physically
  reclaims the constraint and every learnt clause derived from it;
* learnt clauses not derived from a retired final constraint are
  resolvents of the carried-over frames and therefore stay valid for
  every later bound — the incremental-SAT speedup of Biere et al.'s
  linear encodings and of incremental symbolic BMC.

Because the sweep asks exact-k queries in increasing order, the first
SAT answer is the *shortest* counterexample, and no strict prefix of
its witness reaches the target (otherwise an earlier bound would have
answered SAT).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..logic.cnf import CNF, VarPool
from ..logic.expr import Expr
from ..logic.tseitin import TseitinEncoder
from ..sat.kernel import make_solver
from ..sat.types import Budget, SolveResult, resolve_engine
from ..system.model import TransitionSystem
from ..system.trace import Trace
from ..telemetry.trace import current_tracer
# The sweep record types and the shared ladder loop live with the
# Backend protocol; re-exported here for the callers that historically
# imported them from this module.
from .backend import (BoundResult, SweepBudget, SweepResult,  # noqa: F401
                      drive_sweep, emit_bound)

__all__ = ["IncrementalBmc", "BoundResult", "SweepResult", "SweepBudget",
           "emit_bound"]


def _frame_name(var: str, step: int) -> str:
    return f"{var}@{step}"


class IncrementalBmc:
    """Exact-k reachability over a growing unrolling, one solver for all.

    Parameters
    ----------
    system, final:
        The reachability query family: is a state satisfying ``final``
        reachable from init in exactly k steps, for k = 0, 1, 2, ...?
    polarity_reduction:
        Use Plaisted–Greenbaum definitions for the frame encodings
        (sound here: every constraint is used positively).
    purge_interval:
        Retired final-constraint groups are physically reclaimed every
        this many retirements (1 = immediately).
    solver:
        SAT engine for the long-lived solver: ``"kernel"`` or
        ``"reference"`` (None defers to the process default).

    Example
    -------
    >>> from repro.models import counter
    >>> system, final, depth = counter.make(3, 5)
    >>> result = IncrementalBmc(system, final).sweep(depth + 1)
    >>> result.shortest_k == depth
    True
    """

    def __init__(self, system: TransitionSystem, final: Expr,
                 polarity_reduction: bool = False,
                 purge_interval: int = 4,
                 solver: Optional[str] = None) -> None:
        stray = final.support() - set(system.state_vars)
        if stray:
            raise ValueError(f"final predicate uses non-state vars: {stray}")
        self.system = system
        self.final = final
        self.polarity_reduction = polarity_reduction
        self.purge_interval = max(1, purge_interval)
        self.engine = resolve_engine(solver)
        self.pool = VarPool()
        self.cnf = CNF()
        self.encoder = TseitinEncoder(self.cnf, self.pool,
                                      polarity_reduction)
        self.solver = make_solver(self.engine)
        self._cursor = 0                       # clauses already in solver
        self._groups: Dict[int, int] = {}      # bound -> live group literal
        self._retired_since_purge = 0
        self.k = 0                             # transition frames encoded
        # Auxiliary driver answering bounds below self.k (see
        # check_bound); grows ascending like any driver, so a sweep
        # after a deep check reuses one encoding instead of building a
        # throwaway per bound.
        self._low: Optional["IncrementalBmc"] = None

        frame0 = [_frame_name(v, 0) for v in system.state_vars]
        self._frames: List[List[str]] = [frame0]
        self.encoder.assert_expr(
            system.rename_state_expr(system.init, frame0))
        for name in frame0:
            self.pool.named(name)
        self._flush()

    # ------------------------------------------------------------------
    # Clause streaming: encoder output -> live solver
    # ------------------------------------------------------------------
    def _flush(self) -> int:
        """Feed newly encoded variables and clauses to the solver."""
        self.solver.ensure_vars(max(self.cnf.num_vars, self.pool.num_vars))
        new = self.cnf.clauses[self._cursor:]
        self._cursor = len(self.cnf.clauses)
        self.solver.add_clauses(new)
        return len(new)

    def extend(self) -> int:
        """Add one transition frame TR(Z_k, Z_{k+1}); returns clauses added.

        Everything previously encoded — init, earlier frames, learnt
        clauses — stays in the solver untouched.
        """
        i = self.k
        with current_tracer().span("encode.frame", frame=i + 1) as sp:
            nxt = [_frame_name(v, i + 1) for v in self.system.state_vars]
            self._frames.append(nxt)
            step = self.system.trans_between(self._frames[i], nxt,
                                             input_suffix=f"@{i}")
            self.encoder.assert_expr(step)
            for name in nxt:
                self.pool.named(name)
            for name in self.system.input_vars:
                self.pool.named(_frame_name(name, i))
            self.k += 1
            added = self._flush()
            sp.set(clauses=added)
        return added

    def _final_group(self, k: int) -> int:
        """Group literal activating F(Z_k) (allocated on first use).

        Group variables come from the shared pool so they can never
        collide with frame variables allocated by later ``extend``s.
        """
        g = self._groups.get(k)
        if g is not None:
            return g
        fin_k = self.system.rename_state_expr(self.final, self._frames[k])
        lit = self.encoder.encode(fin_k)
        self._flush()
        g = self.pool.fresh(f"fin@{k}")
        self.solver.ensure_vars(self.pool.num_vars)
        self.solver.add_clause([-g, lit])
        self._groups[k] = g
        return g

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def check_bound(self, k: int, budget: Budget | None = None
                    ) -> Tuple[SolveResult, Optional[Trace], Dict[str, int]]:
        """Decide exact-k reachability, reusing all prior work.

        Returns ``(status, trace, stats)``; the trace is the length-k
        witness on SAT.  The bound may be queried repeatedly; a bound
        *below* the frames already encoded is answered by an auxiliary
        driver (kept, and itself grown ascending, so e.g. a sweep after
        a deep check reuses one encoding), because frames k+1..self.k
        are asserted unconditionally and, for a transition relation
        that is not total, would exclude witnesses whose final state
        has no successor (spurious UNSAT).
        """
        if k < 0:
            raise ValueError("bound k must be non-negative")
        if k < self.k:
            low = self._low
            if low is None or k < low.k:
                # Replace rather than chain: a long-lived session must
                # stay bounded at two drivers.  Monotone patterns (the
                # advertised sweep-after-deep-check) reuse the one low
                # driver ascending; a strictly descending probe pays
                # one re-encode per step — the same cost as the
                # pre-session per-call baseline, never more.
                low = IncrementalBmc(
                    self.system, self.final,
                    polarity_reduction=self.polarity_reduction,
                    purge_interval=self.purge_interval,
                    solver=self.engine)
                self._low = low
            return low.check_bound(k, budget=budget)
        solver = self.solver
        clauses_before = solver.num_clauses()
        learnts_before = solver.num_learnts()
        conflicts_before = solver.stats.conflicts
        decisions_before = solver.stats.decisions
        propagations_before = solver.stats.propagations
        while self.k < k:
            self.extend()
        g = self._final_group(k)
        status = solver.solve([g], budget=budget)
        trace = self.extract_trace(k) if status is SolveResult.SAT else None
        stats = {
            "trans_frames": self.k,
            "clauses_reused": clauses_before,
            "clauses_added": solver.num_clauses() - clauses_before,
            "learnts_retained": learnts_before,
            "learnts_now": solver.num_learnts(),
            "vars": solver.num_vars,
            "db_literals": solver.stats.db_literals,
            "peak_db_literals": solver.stats.peak_db_literals,
            "solver_conflicts": solver.stats.conflicts - conflicts_before,
            "solver_decisions": solver.stats.decisions - decisions_before,
            "solver_propagations":
                solver.stats.propagations - propagations_before,
        }
        return status, trace, stats

    def retire_bound(self, k: int) -> None:
        """Permanently disable bound k's final constraint.

        Adds the unit ``-g_k`` — every clause carrying ``-g_k`` (the
        constraint and all learnt clauses derived from it) becomes
        satisfied at level 0 and is physically reclaimed on the next
        purge, exactly as jSAT retires its blocking-clause groups.
        Retirement always also reaches the auxiliary low-bound driver
        (see :meth:`check_bound`): after an interleaving like
        check_bound(3), check_bound(5), check_bound(3), BOTH drivers
        hold a group for bound 3, and retiring only one would leave the
        other's constraint clauses unreclaimable forever.
        """
        if self._low is not None:
            self._low.retire_bound(k)
        g = self._groups.pop(k, None)
        if g is None:
            return
        self.solver.add_clause([-g])
        self._retired_since_purge += 1
        if self._retired_since_purge >= self.purge_interval:
            self.solver.purge_satisfied()
            self._retired_since_purge = 0

    def extract_trace(self, k: int) -> Trace:
        """Rebuild the witness path for bound k from the last model."""
        model_value = self.solver.model_value
        states = [
            {v: bool(model_value(self.pool.named(_frame_name(v, i))))
             for v in self.system.state_vars}
            for i in range(k + 1)]
        inputs = [
            {v: bool(model_value(self.pool.named(_frame_name(v, i))))
             for v in self.system.input_vars}
            for i in range(k)]
        return Trace(states, inputs)

    # ------------------------------------------------------------------
    def sweep(self, max_k: int, budget: Budget | None = None,
              on_bound=None) -> SweepResult:
        """Sweep bounds 0..max_k; stop at the shortest counterexample.

        The budget is global across the whole sweep (one deadline, one
        conflict pool), mirroring how a fresh per-bound run would split
        the same resources.  ``on_bound`` (an ``on_bound(BoundResult)``
        callable) streams each bound's record as it lands — the
        progress hook :class:`repro.bmc.session.BmcSession` exposes.
        """
        if max_k < 0:
            raise ValueError("max_k must be non-negative")
        def check(k: int, remaining: Budget | None):
            return self.check_bound(k, budget=remaining)
        return drive_sweep("sat-incremental", max_k, range(max_k + 1),
                           check, budget=budget, on_bound=on_bound,
                           after_unsat=self.retire_bound)

    # ------------------------------------------------------------------
    def resident_literals(self) -> int:
        """Current clause-database size in literals."""
        return self.solver.stats.db_literals

    def __repr__(self) -> str:  # pragma: no cover
        return (f"IncrementalBmc({self.system.name!r}, frames={self.k}, "
                f"clauses={self.solver.num_clauses()})")
