"""Formula-size accounting — the paper's space-efficiency measurements.

For each encoding and bound k this module reports the resident formula
footprint (variables / clauses / literal occurrences, plus prefix shape
for the QBF forms).  Experiment E2 sweeps k and regenerates the growth
curves that motivate the paper:

* formula (1) grows by one TR copy per step: Θ(k · |TR|);
* formula (2) grows by one state vector + selector per step: Θ(k · n),
  with a constant 2n universals;
* formula (3) grows by Θ(n · log k) with log k alternations;
* jSAT holds one TR copy plus the k+1 decided states: Θ(|TR| + k · n).
"""

from __future__ import annotations

import contextlib
import time
from typing import Dict, Iterator, List

from ..logic.expr import Expr
from ..system.model import TransitionSystem
from .jsat import JsatSolver
from .qbf_encoding import encode_qbf
from .squaring import encode_squaring
from .unroll import encode_unrolled

__all__ = ["encoding_sizes", "growth_table", "jsat_resident_size",
           "TimeBreakdown", "measure_time"]


class TimeBreakdown:
    """Wall-clock vs CPU time of one measured region.

    A serial run has ``wall ≈ cpu``; in the parallel portfolio the two
    diverge — the scheduler's wall time shrinks while the summed worker
    CPU time stays put, and their ratio is the speedup the E1 portfolio
    bench reports.
    """

    __slots__ = ("wall_seconds", "cpu_seconds")

    def __init__(self, wall_seconds: float = 0.0,
                 cpu_seconds: float = 0.0) -> None:
        self.wall_seconds = wall_seconds
        self.cpu_seconds = cpu_seconds

    @property
    def utilization(self) -> float:
        """CPU seconds per wall second (1.0 = fully busy, serial)."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.cpu_seconds / self.wall_seconds

    def __repr__(self) -> str:  # pragma: no cover
        return (f"TimeBreakdown(wall={self.wall_seconds:.3f}s, "
                f"cpu={self.cpu_seconds:.3f}s)")


@contextlib.contextmanager
def measure_time() -> Iterator[TimeBreakdown]:
    """Context manager measuring wall and process-CPU time of a block.

    >>> with measure_time() as t:
    ...     _ = sum(range(1000))
    >>> t.wall_seconds >= 0.0 and t.cpu_seconds >= 0.0
    True
    """
    out = TimeBreakdown()
    wall0 = time.perf_counter()
    cpu0 = time.process_time()
    try:
        yield out
    finally:
        out.wall_seconds = time.perf_counter() - wall0
        out.cpu_seconds = time.process_time() - cpu0


def jsat_resident_size(system: TransitionSystem, final: Expr,
                       k: int) -> Dict[str, int]:
    """Size of jSAT's resident formula before any search.

    The clause database holds the single TR copy plus the guarded I/F
    definitions; the per-frame overhead during search is the state
    bookkeeping (n bits per frame) plus live blocking clauses.
    """
    solver = JsatSolver(system, final, k)
    return {
        "vars": solver.solver.num_vars,
        "clauses": solver.solver.num_clauses(),
        "literals": solver.base_db_literals,
        "state_bits_tracked": system.num_state_bits * (k + 1),
        "universals": 0,
        "alternations": 0,
        "trans_copies": 1,
    }


def encoding_sizes(system: TransitionSystem, final: Expr, k: int,
                   methods: List[str] | None = None
                   ) -> Dict[str, Dict[str, int]]:
    """Formula sizes of every encoding at one bound."""
    methods = methods or ["sat-unroll", "qbf", "qbf-squaring", "jsat"]
    out: Dict[str, Dict[str, int]] = {}
    for method in methods:
        if method == "sat-unroll":
            out[method] = encode_unrolled(system, final, k).stats()
        elif method == "qbf":
            if k >= 1:
                out[method] = encode_qbf(system, final, k).stats()
        elif method == "qbf-squaring":
            if k >= 1 and (k & (k - 1)) == 0:
                out[method] = encode_squaring(system, final, k).stats()
        elif method == "jsat":
            out[method] = jsat_resident_size(system, final, k)
        else:
            raise ValueError(f"unknown method {method!r}")
    return out


def growth_table(system: TransitionSystem, final: Expr,
                 bounds: List[int],
                 methods: List[str] | None = None
                 ) -> Dict[str, List[Dict[str, int]]]:
    """Sweep bounds and collect per-method size series (experiment E2)."""
    methods = methods or ["sat-unroll", "qbf", "qbf-squaring", "jsat"]
    table: Dict[str, List[Dict[str, int]]] = {m: [] for m in methods}
    for k in bounds:
        sizes = encoding_sizes(system, final, k, methods)
        for method in methods:
            if method in sizes:
                row = dict(sizes[method])
                row["k"] = k
                table[method].append(row)
    return table
