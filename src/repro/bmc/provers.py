"""The unbounded provers as first-class backends.

The bounded methods of the paper's comparison can only ever answer
"no counterexample *within k*" — every true property leaves the race
UNKNOWN-at-bound-k.  The completeness story the paper sketches (deepen
to the recurrence diameter), temporal induction, and McMillan-style
interpolation all close that gap; this module ports the three
procedures of :mod:`repro.bmc.induction`, :mod:`repro.bmc.interpolation`
and :mod:`repro.bmc.completeness` onto the :class:`Backend` protocol:

* ``k-induction`` — base(k) on a persistent :class:`IncrementalBmc`
  ladder plus an incremental step-case engine (frames, loop-free
  distinctness and good-state constraints grow monotonically; the
  bad-successor obligation is a retractable assumption group);
* ``interpolation`` — per-rung McMillan fixpoint iteration; the first
  (R = init) query's UNSAT is the bounded within-k answer, a fixpoint
  yields a proof **with an inductive invariant** attached to the
  result;
* ``diameter`` — the falsifier ladder plus the recurrence-diameter
  side-check: once no loop-free path of length k exists, the refuted
  sweep to k is an unbounded proof.

All three answer only ``within`` semantics (a prover asks "any
counterexample at all?", never "exactly k"), set ``proves_unbounded``,
and may return a :class:`BmcResult` with ``proved=True`` — the target
is unreachable at *every* depth.  Their ``sweep`` feeds
:func:`drive_sweep` a 4-tuple so the shared ladder stops at the first
proved bound.

:func:`validate_invariant` re-checks an invariant certificate with
three independent SAT calls — the race parent runs it on a prover's
winning proof exactly as it replays a falsifier's witness trace.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from ..logic import expr as ex
from ..logic.cnf import CNF, VarPool
from ..logic.expr import Expr
from ..logic.tseitin import TseitinEncoder, expr_to_cnf
from ..sat.kernel import make_solver
from ..sat.types import Budget, SolveResult
from ..system.model import TransitionSystem
from ..system.trace import Trace
from .backend import (Backend, BackendOptions, BmcResult, OnBound,
                      SweepResult, drive_sweep, register_backend)
from .incremental import IncrementalBmc
from .interpolation import _bounded_query, _implies

__all__ = ["KInductionBackend", "InterpolationBackend", "DiameterBackend",
           "KInductionOptions", "InterpolationOptions", "DiameterOptions",
           "validate_invariant"]

_COUNTER_KEYS = ("solver_conflicts", "solver_decisions",
                 "solver_propagations")


def validate_invariant(system: TransitionSystem, bad: Expr,
                       invariant: Expr) -> bool:
    """Independently check an inductive-invariant certificate.

    Three SAT calls, each of which must come back UNSAT:

    * ``init ∧ ¬inv``      — the invariant contains every initial state;
    * ``inv ∧ bad``        — the invariant excludes the bad states;
    * ``inv ∧ TR ∧ ¬inv'`` — the invariant is closed under TR.

    Together these imply ``bad`` is unreachable, independently of the
    prover that produced the invariant — the proof-side analogue of
    replaying a counterexample trace.
    """
    f0 = [f"{v}@0" for v in system.state_vars]
    f1 = [f"{v}@1" for v in system.state_vars]
    queries = (
        ex.mk_and(system.init, ex.mk_not(invariant)),
        ex.mk_and(invariant, bad),
        ex.mk_and(
            ex.mk_and(system.rename_state_expr(invariant, f0),
                      system.trans_between(f0, f1, input_suffix="@0")),
            system.rename_state_expr(ex.mk_not(invariant), f1)),
    )
    for query in queries:
        cnf, _ = expr_to_cnf(query)
        solver = make_solver()
        solver.ensure_vars(cnf.num_vars)
        if not solver.add_clauses(cnf.clauses):
            continue                        # vacuously UNSAT
        if solver.solve() is not SolveResult.UNSAT:
            return False
    return True


def _accumulate(totals: Dict[str, int], stats: Dict[str, int]) -> None:
    for key in _COUNTER_KEYS:
        totals[key] = totals.get(key, 0) + stats.get(key, 0)


class _StepEngine:
    """Incremental k-induction step case: one solver for every rung.

    Frames, TR links, pairwise distinctness and the good-state
    constraints are permanent and grow monotonically with the rung;
    the single per-rung obligation that must *flip* — bad at the last
    frame, good once the next rung subsumes it — is activated through
    a retractable assumption group, the same idiom
    :class:`IncrementalBmc` uses for its final-state constraints.
    Rungs must ascend (the ladder always does); the owning backend
    rebuilds the engine rather than ever querying downward.
    """

    def __init__(self, system: TransitionSystem, bad: Expr,
                 solver: Optional[str] = None) -> None:
        self.system = system
        self.bad = bad
        self.good = ex.mk_not(bad)
        self.pool = VarPool()
        self.cnf = CNF()
        self.encoder = TseitinEncoder(self.cnf, self.pool)
        self.solver = make_solver(solver)
        self._cursor = 0
        self._frames: List[List[str]] = [
            [f"{v}@0" for v in system.state_vars]]
        for name in self._frames[0]:
            self.pool.named(name)
        self.top = 0                   # highest frame index encoded
        self._good_upto = -1           # highest frame with good asserted
        self.served = -1               # highest rung answered
        self._flush()

    def _flush(self) -> None:
        self.solver.ensure_vars(max(self.cnf.num_vars, self.pool.num_vars))
        new = self.cnf.clauses[self._cursor:]
        self._cursor = len(self.cnf.clauses)
        self.solver.add_clauses(new)

    def _extend(self) -> None:
        """Add frame top+1: names, the TR link, and distinctness
        against every earlier frame (the loop-free side constraints
        that make temporal induction complete)."""
        i = self.top
        nxt = [f"{v}@{i + 1}" for v in self.system.state_vars]
        self.encoder.assert_expr(
            self.system.trans_between(self._frames[i], nxt,
                                      input_suffix=f"@{i}"))
        for earlier in self._frames:
            same = ex.equal_vectors([ex.var(n) for n in earlier],
                                    [ex.var(n) for n in nxt])
            self.encoder.assert_expr(ex.mk_not(same))
        self._frames.append(nxt)
        for name in nxt:
            self.pool.named(name)
        self.top += 1
        self._flush()

    def query(self, k: int, budget: Budget | None
              ) -> Tuple[SolveResult, Dict[str, int]]:
        """step(k): UNSAT iff k+1 loop-free good states never reach a
        bad successor — together with base(k) that is a proof."""
        assert k == self.served + 1, "step engine serves ascending rungs"
        while self.top < k + 1:
            self._extend()
        for i in range(self._good_upto + 1, k + 1):
            self.encoder.assert_expr(
                self.system.rename_state_expr(self.good, self._frames[i]))
        self._good_upto = k
        bad_lit = self.encoder.encode(
            self.system.rename_state_expr(self.bad, self._frames[k + 1]))
        self._flush()
        g = self.pool.fresh(f"step-bad@{k + 1}")
        self.solver.ensure_vars(self.pool.num_vars)
        self.solver.add_clause([-g, bad_lit])
        before = self.solver.stats.as_dict()
        status = (self.solver.solve([g], budget=budget)
                  if self.solver.ok else SolveResult.UNSAT)
        after = self.solver.stats.as_dict()
        # Retire the bad obligation: the next rung asserts good here.
        self.solver.add_clause([-g])
        self.served = k
        stats = {f"solver_{key}": after[key] - before[key]
                 for key in ("conflicts", "decisions", "propagations")}
        return status, stats


# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class KInductionOptions(BackendOptions):
    purge_interval: int = 4


class _ProverBackend(Backend):
    """Shared shape of the three provers: within-only semantics, a
    cached conclusive answer, and the proved-aware sweep ladder."""

    supported_semantics = ("within",)
    proves_unbounded = True

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        stray = self.final.support() - set(self.system.state_vars)
        if stray:
            raise ValueError(
                f"final predicate uses non-state vars: {stray}")
        self._proved = False
        self._invariant: Optional[Expr] = None
        self._cex: Optional[Trace] = None

    def _require_within(self, semantics: str) -> None:
        if semantics != "within":
            raise ValueError(
                f"{self.name} proves unbounded safety; it only answers "
                f"'within' semantics, not {semantics!r}")

    def _cached(self, k: int) -> Optional[BmcResult]:
        """A conclusive answer already on the instance, if applicable."""
        if self._proved:
            return self.result(SolveResult.UNSAT, None, k, {},
                               proved=True, invariant=self._invariant)
        if self._cex is not None and len(self._cex.states) - 1 <= k:
            return self.result(SolveResult.SAT, self._cex, k, {})
        return None

    def sweep(self, max_k: int, budget: Budget | None = None,
              on_bound: OnBound | None = None) -> SweepResult:
        """The prover ladder: within-k rungs, stop at the first proved
        bound (the 4-tuple protocol of :func:`drive_sweep`)."""
        def check(k: int, remaining: Budget | None):
            result = self.check(k, semantics="within", budget=remaining)
            return result.status, result.trace, result.stats, result.proved
        return drive_sweep(self.name, max_k, range(max_k + 1), check,
                           budget=budget, on_bound=on_bound)


@register_backend("k-induction")
class KInductionBackend(_ProverBackend):
    """Temporal induction (Sheeran–Singh–Stålmarck) as a backend.

    Rung k runs base(k) — one exact-k query on the persistent
    :class:`IncrementalBmc` ladder, earlier bounds having been refuted
    and retired on earlier rungs — then step(k) on the incremental
    :class:`_StepEngine`.  An UNSAT step closes an unbounded proof;
    the loop-free distinctness constraints make the pair complete for
    finite systems.
    """

    native_incremental = True
    options_class = KInductionOptions

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._base: Optional[IncrementalBmc] = None
        self._step: Optional[_StepEngine] = None
        self._refuted = -1            # every exact-i <= this is UNSAT

    @property
    def base(self) -> IncrementalBmc:
        if self._base is None:
            self._base = IncrementalBmc(
                self.system, self.final,
                purge_interval=self.options.purge_interval,
                solver=self.options.solver)
        return self._base

    @property
    def step(self) -> _StepEngine:
        if self._step is None:
            self._step = _StepEngine(self.system, self.final,
                                     solver=self.options.solver)
        return self._step

    def check(self, k: int, semantics: str = "within",
              budget: Budget | None = None) -> BmcResult:
        self._require_within(semantics)
        if budget is not None:
            budget.arm()              # one slice across all rungs
        cached = self._cached(k)
        if cached is not None:
            return cached
        totals: Dict[str, int] = {}
        rungs = 0
        for i in range(self._refuted + 1, k + 1):
            rungs += 1
            status, trace, stats = self.base.check_bound(i, budget=budget)
            _accumulate(totals, stats)
            if status is SolveResult.SAT:
                self._cex = trace
                return self.result(SolveResult.SAT, trace, k,
                                   self._stats(totals, rungs))
            if status is SolveResult.UNKNOWN:
                return self.result(SolveResult.UNKNOWN, None, k,
                                   self._stats(totals, rungs))
            self.base.retire_bound(i)
            self._refuted = i
            step_status, step_stats = self.step.query(i, budget)
            _accumulate(totals, step_stats)
            if step_status is SolveResult.UNSAT:
                self._proved = True
                return self.result(SolveResult.UNSAT, None, k,
                                   self._stats(totals, rungs), proved=True)
            # step SAT (induction too weak yet) or UNKNOWN: deepen.
        if k <= self._refuted:
            return self.result(SolveResult.UNSAT, None, k,
                               self._stats(totals, rungs))
        return self.result(SolveResult.UNKNOWN, None, k,
                           self._stats(totals, rungs))

    def _stats(self, totals: Dict[str, int], rungs: int) -> Dict[str, int]:
        totals = dict(totals)
        totals["induction_rungs"] = rungs
        if self._base is not None:
            totals["trans_frames"] = self._base.k
        return totals

    def close(self) -> None:
        self._base = None
        self._step = None


# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class InterpolationOptions(BackendOptions):
    max_iterations: int = 256


@register_backend("interpolation")
class InterpolationBackend(_ProverBackend):
    """McMillan's interpolation-based checking as a backend.

    Rung k runs the fixpoint iteration at that unrolling depth: the
    first (R = init) query's UNSAT *is* the bounded within-k answer;
    an interpolant fixpoint closes the proof and attaches the
    inductive invariant to the result; a spurious SAT on a widened R
    simply ends the rung — the sweep ladder supplies the deeper k the
    textbook algorithm would restart with.
    """

    options_class = InterpolationOptions

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._init_safe = False       # depth-0 probe already refuted

    def _probe_init(self, budget: Budget | None) -> Optional[BmcResult]:
        """Depth-0: an initial state may already be bad."""
        if self._init_safe:
            return None
        init_bad = ex.mk_and(self.system.init, self.final)
        cnf, pool = expr_to_cnf(init_bad)
        solver = make_solver(self.options.solver)
        solver.ensure_vars(cnf.num_vars)
        loaded = solver.add_clauses(cnf.clauses)
        status = solver.solve(budget=budget) if loaded else \
            SolveResult.UNSAT
        if status is SolveResult.UNKNOWN:
            return self.result(SolveResult.UNKNOWN, None, 0, {})
        if status is SolveResult.SAT:
            state = {v: bool(solver.model_value(pool.lookup(v)))
                     if pool.lookup(v) is not None else False
                     for v in self.system.state_vars}
            self._cex = Trace([state])
            return self.result(SolveResult.SAT, self._cex, 0, {})
        self._init_safe = True
        return None

    def check(self, k: int, semantics: str = "within",
              budget: Budget | None = None) -> BmcResult:
        self._require_within(semantics)
        if budget is not None:
            budget.arm()              # one slice across all iterations
        cached = self._cached(k)
        if cached is not None:
            return cached
        probe = self._probe_init(budget)
        if probe is not None:
            probe.k = k
            return probe
        if k == 0:
            return self.result(SolveResult.UNSAT, None, 0, {})
        reach = self.system.init
        is_initial = True
        iterations = 0
        bounded_unsat = False
        while iterations < self.options.max_iterations:
            iterations += 1
            status, itp, trace = _bounded_query(self.system, reach,
                                                self.final, k, budget)
            stats = {"itp_iterations": iterations}
            if status is SolveResult.UNKNOWN:
                # The bounded answer stands once the R = init query was
                # refuted; only the proof attempt ran out of budget.
                final = (SolveResult.UNSAT if bounded_unsat
                         else SolveResult.UNKNOWN)
                return self.result(final, None, k, stats)
            if status is SolveResult.SAT:
                if is_initial:
                    assert trace is not None
                    trace.validate(self.system, self.final)
                    self._cex = trace
                    return self.result(SolveResult.SAT, trace, k, stats)
                break                 # spurious — deepen via the ladder
            if is_initial:
                bounded_unsat = True
            assert itp is not None
            if _implies(itp, reach):
                self._proved = True
                self._invariant = reach
                return self.result(SolveResult.UNSAT, None, k, stats,
                                   proved=True, invariant=reach)
            reach = ex.mk_or(reach, itp)
            is_initial = False
        return self.result(SolveResult.UNSAT, None, k,
                           {"itp_iterations": iterations})


# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class DiameterOptions(BackendOptions):
    purge_interval: int = 4


@register_backend("diameter")
class DiameterBackend(_ProverBackend):
    """The paper's completeness procedure as a backend.

    Rung k refutes exact-k on the persistent :class:`IncrementalBmc`
    ladder, then asks :func:`longest_simple_path_reached` whether any
    loop-free path of length k still exists — once none does, every
    reachable state was already covered and the refuted sweep is an
    unbounded proof ("the bound should be increased iteratively up to
    the length of the longest simple path", §intro).
    """

    native_incremental = True
    options_class = DiameterOptions

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._base: Optional[IncrementalBmc] = None
        self._refuted = -1

    @property
    def base(self) -> IncrementalBmc:
        if self._base is None:
            self._base = IncrementalBmc(
                self.system, self.final,
                purge_interval=self.options.purge_interval,
                solver=self.options.solver)
        return self._base

    def check(self, k: int, semantics: str = "within",
              budget: Budget | None = None) -> BmcResult:
        self._require_within(semantics)
        # Imported lazily: completeness.py pulls in the session layer.
        from .completeness import longest_simple_path_reached
        if budget is not None:
            budget.arm()              # one slice across all rungs
        cached = self._cached(k)
        if cached is not None:
            return cached
        totals: Dict[str, int] = {}
        rungs = 0
        for i in range(self._refuted + 1, k + 1):
            rungs += 1
            status, trace, stats = self.base.check_bound(i, budget=budget)
            _accumulate(totals, stats)
            if status is SolveResult.SAT:
                self._cex = trace
                return self.result(SolveResult.SAT, trace, k,
                                   self._stats(totals, rungs))
            if status is SolveResult.UNKNOWN:
                return self.result(SolveResult.UNKNOWN, None, k,
                                   self._stats(totals, rungs))
            self.base.retire_bound(i)
            self._refuted = i
            done = longest_simple_path_reached(self.system, i, budget)
            if done:
                self._proved = True
                return self.result(SolveResult.UNSAT, None, k,
                                   self._stats(totals, rungs), proved=True)
            # done is None on budget exhaustion: the bounded ladder may
            # still finish, so keep deepening.
        if k <= self._refuted:
            return self.result(SolveResult.UNSAT, None, k,
                               self._stats(totals, rungs))
        return self.result(SolveResult.UNKNOWN, None, k,
                           self._stats(totals, rungs))

    def _stats(self, totals: Dict[str, int], rungs: int) -> Dict[str, int]:
        totals = dict(totals)
        totals["diameter_rungs"] = rungs
        if self._base is not None:
            totals["trans_frames"] = self._base.k
        return totals

    def close(self) -> None:
        self._base = None
