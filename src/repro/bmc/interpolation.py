"""Interpolation-based unbounded model checking (McMillan 2003).

The paper's introduction lists Craig interpolation as an
over-approximate image technique whose interpolants "are obtained as a
by-product of the SAT solver used to check BMC problems" — and notes it
still suffers the memory blow-up of unrolled formulae.  This module
implements the procedure on top of the proof-logging CDCL solver and
the interpolation engine of :mod:`repro.sat.interpolation`:

    R := I
    repeat:  A := R(Z0) ∧ TR(Z0, Z1)
             B := TR(Z1, .., Zk) ∧ ⋁_{1<=i<=k} bad(Zi)
             if A ∧ B is SAT:  real counterexample if R = I, else
                               restart with a larger k
             else:             P := ITP(A, B) over Z1, renamed to Z0;
                               if P ⟹ R: safety proved (fixpoint)
                               else R := R ∨ P

Every interpolant over-approximates the image of R while excluding all
states that reach ``bad`` within k-1 steps, which gives both soundness
of the fixpoint and progress of the outer loop.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..logic import expr as ex
from ..logic.cnf import CNF, VarPool
from ..logic.expr import Expr
from ..logic.tseitin import TseitinEncoder, expr_to_cnf
from ..sat.interpolation import compute_interpolant
from ..sat.kernel import make_solver
from ..sat.proof import ResolutionProof
from ..sat.types import Budget, SolveResult
from ..system.model import TransitionSystem
from ..system.trace import Trace
from .induction import _model_bit, _register_frames

__all__ = ["InterpolationResult", "prove_by_interpolation"]


class InterpolationResult:
    """Outcome: "proved", "cex" (with trace), or "unknown"."""

    def __init__(self, status: str, k: int, iterations: int,
                 trace: Optional[Trace] = None,
                 invariant: Optional[Expr] = None) -> None:
        self.status = status
        self.k = k
        self.iterations = iterations
        self.trace = trace
        self.invariant = invariant        # inductive over-approximation

    def __repr__(self) -> str:  # pragma: no cover
        return (f"InterpolationResult({self.status!r}, k={self.k}, "
                f"iterations={self.iterations})")


def _frame(system: TransitionSystem, i: int) -> List[str]:
    return [f"{v}@{i}" for v in system.state_vars]


def _implies(antecedent: Expr, consequent: Expr) -> bool:
    """Validity of antecedent -> consequent via one SAT call."""
    query = ex.mk_and(antecedent, ex.mk_not(consequent))
    cnf, _ = expr_to_cnf(query)
    solver = make_solver()
    solver.ensure_vars(cnf.num_vars)
    if not solver.add_clauses(cnf.clauses):
        return True
    return solver.solve() is SolveResult.UNSAT


def _bounded_query(system: TransitionSystem, reach: Expr, bad: Expr,
                   k: int, budget: Budget | None
                   ) -> Tuple[SolveResult, Optional[Expr], Optional[Trace]]:
    """One A/B query; returns (status, interpolant-as-state-predicate,
    counterexample candidate trace)."""
    proof = ResolutionProof()
    solver = make_solver(proof=proof)
    pool = VarPool()
    # Register every frame bit up front so a SAT model covers them all
    # (the solver assigns every known variable TR-consistently); see
    # induction._register_frames for why extraction must never call
    # ``pool.named`` after the solve.
    _register_frames(pool, system, k + 1, k)

    # --- A: R(Z0) ∧ TR(Z0, Z1), with its own Tseitin namespace.
    a_cnf = CNF()
    enc_a = TseitinEncoder(a_cnf, pool)
    enc_a.assert_expr(system.rename_state_expr(reach, _frame(system, 0)))
    enc_a.assert_expr(system.trans_between(_frame(system, 0),
                                           _frame(system, 1),
                                           input_suffix="@0"))
    solver.ensure_vars(max(a_cnf.num_vars, pool.num_vars))
    a_ids_start = len(proof)
    solver.add_clauses(a_cnf.clauses)
    a_ids = set(range(a_ids_start, len(proof)))

    # --- B: the rest of the path and the bad disjunction (fresh encoder
    # so no Tseitin auxiliaries are shared with A; the only shared
    # variables are the Z1 state bits).
    b_cnf = CNF(pool.num_vars)
    enc_b = TseitinEncoder(b_cnf, pool)
    for i in range(1, k):
        enc_b.assert_expr(system.trans_between(_frame(system, i),
                                               _frame(system, i + 1),
                                               input_suffix=f"@{i}"))
    enc_b.assert_expr(ex.disjoin(
        system.rename_state_expr(bad, _frame(system, i))
        for i in range(1, k + 1)))
    solver.ensure_vars(max(b_cnf.num_vars, pool.num_vars))
    b_ids_start = len(proof)
    ok = solver.add_clauses(b_cnf.clauses)
    b_ids = set(range(b_ids_start, len(proof)))

    status = solver.solve(budget=budget) if ok and solver.ok else \
        SolveResult.UNSAT
    if status is SolveResult.SAT:
        states = []
        for i in range(k + 1):
            states.append({v: _model_bit(solver, pool, f"{v}@{i}")
                           for v in system.state_vars})
        inputs = []
        for i in range(k):
            inputs.append({v: _model_bit(solver, pool, f"{v}@{i}")
                           for v in system.input_vars})
        trace = Trace(states, inputs)
        for i, state in enumerate(trace.states):
            if bad.evaluate(state):
                trace = Trace(trace.states[:i + 1], trace.inputs[:i])
                break
        return status, None, trace
    if status is SolveResult.UNKNOWN:
        return status, None, None

    itp = compute_interpolant(
        proof, solver.empty_clause_proof, a_ids, b_ids,
        var_name=lambda v: pool.name_of(v) or f"?{v}")
    # The interpolant ranges over the shared variables = Z1 bits;
    # rename them back to plain state variables.
    rename = {f"{v}@1": v for v in system.state_vars}
    stray = itp.support() - set(rename)
    if stray:
        raise AssertionError(
            f"interpolant escaped the shared variables: {stray}")
    itp_state = ex.rename_vars(itp, rename)
    return status, itp_state, None


def prove_by_interpolation(system: TransitionSystem, bad: Expr,
                           max_k: int = 16,
                           max_iterations: int = 256,
                           budget: Budget | None = None
                           ) -> InterpolationResult:
    """Prove ``bad`` unreachable or find a counterexample.

    Complete for finite systems given enough ``max_k``/``max_iterations``
    (each refinement strictly enlarges the over-approximation R, and a
    too-small k is detected via the spurious-SAT restart).
    """
    stray = bad.support() - set(system.state_vars)
    if stray:
        raise ValueError(f"bad predicate uses non-state vars: {stray}")
    if budget is not None:
        budget.arm()        # one wall-clock slice shared by all queries
    # Depth-0: an initial state may already be bad.
    init_bad = ex.mk_and(system.init, bad)
    cnf, pool = expr_to_cnf(init_bad)
    probe = make_solver()
    probe.ensure_vars(cnf.num_vars)
    loaded = probe.add_clauses(cnf.clauses)
    if loaded and probe.solve() is SolveResult.SAT:
        state = {v: bool(probe.model_value(pool.named(v)))
                 if pool.lookup(v) is not None else False
                 for v in system.state_vars}
        return InterpolationResult("cex", 0, 0, Trace([state]))

    total_iterations = 0
    k = 1
    while k <= max_k:
        reach = system.init
        is_initial = True
        while total_iterations < max_iterations:
            if budget is not None and budget.expired():
                return InterpolationResult("unknown", k, total_iterations)
            total_iterations += 1
            status, itp, trace = _bounded_query(system, reach, bad, k,
                                                budget)
            if status is SolveResult.UNKNOWN:
                return InterpolationResult("unknown", k, total_iterations)
            if status is SolveResult.SAT:
                if is_initial:
                    assert trace is not None
                    trace.validate(system, bad)
                    return InterpolationResult("cex", k, total_iterations,
                                               trace)
                break                      # spurious: deepen k
            assert itp is not None
            if _implies(itp, reach):
                return InterpolationResult("proved", k, total_iterations,
                                           invariant=reach)
            reach = ex.mk_or(reach, itp)
            is_initial = False
        k += 1
    return InterpolationResult("unknown", k - 1, total_iterations)
