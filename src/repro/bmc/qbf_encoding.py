"""Formula (2): the QBF formulation with a single copy of TR.

    R_k(Z0, Zk) = ∃ Z1..Zk-1 : I(Z0) ∧ F(Zk) ∧
                  ∀ U,V : ⋀_{i<k} ((U↔Zi) ∧ (V↔Zi+1) → TR(U, V))

Only **one** copy of the transition relation appears; increasing the
bound adds one fresh state vector and one selector term — the growth per
iteration is O(n) and *independent of |TR|* (the paper's key memory
argument, measured in experiment E2).

After Tseitin conversion the prefix has the shape ∃ (Z-vectors)
∀ (U, V) ∃ (inputs, auxiliaries): the auxiliary variables are functions
of Z/U/V and the primary inputs of TR must be chosen per universal
assignment, so both live in the innermost existential block.  The
number of universally quantified variables (2n) does not change from
iteration to iteration, as the paper notes.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..logic import expr as ex
from ..logic.cnf import CNF, VarPool
from ..logic.expr import Expr
from ..logic.tseitin import TseitinEncoder
from ..qbf.pcnf import PCNF
from ..system.model import TransitionSystem

__all__ = ["QbfEncoding", "encode_qbf"]


class QbfEncoding:
    """The PCNF of formula (2) plus variable bookkeeping.

    Attributes
    ----------
    pcnf:
        Prenex CNF with prefix ∃(Z0..Zk) ∀(U,V) ∃(inputs, aux).
    """

    def __init__(self, system: TransitionSystem, final: Expr, k: int) -> None:
        if k < 1:
            raise ValueError("formula (2) needs k >= 1 (use SAT for k = 0)")
        stray = final.support() - set(system.state_vars)
        if stray:
            raise ValueError(f"final predicate uses non-state vars: {stray}")
        self.system = system
        self.final = final
        self.k = k
        self.pool = VarPool()
        self.pcnf = PCNF()
        self._encode()

    # ------------------------------------------------------------------
    def _z_names(self, step: int) -> List[str]:
        return [f"{v}@{step}" for v in self.system.state_vars]

    def _u_names(self) -> List[str]:
        return [f"{v}#U" for v in self.system.state_vars]

    def _v_names(self) -> List[str]:
        return [f"{v}#V" for v in self.system.state_vars]

    def _encode(self) -> None:
        system = self.system
        k = self.k
        pool = self.pool
        matrix = CNF()
        encoder = TseitinEncoder(matrix, pool)

        # Allocate the state vectors first so the prefix blocks are tidy.
        z_vars: List[List[int]] = []
        for i in range(k + 1):
            z_vars.append([pool.named(n) for n in self._z_names(i)])
        u_vars = [pool.named(n) for n in self._u_names()]
        v_vars = [pool.named(n) for n in self._v_names()]

        # I(Z0) and F(Zk) constrain the outer existentials directly.
        encoder.assert_expr(
            system.rename_state_expr(system.init, self._z_names(0)))
        encoder.assert_expr(
            system.rename_state_expr(self.final, self._z_names(k)))

        # One shared copy of TR(U, X, V), defined by a single literal.
        trans = system.trans_between(self._u_names(), self._v_names(),
                                     input_suffix="#X")
        trans_lit = encoder.encode(trans)

        # Selector for each step i: s_i <-> (U = Zi ∧ V = Zi+1);
        # the implication s_i -> TR yields one binary clause per step.
        for i in range(k):
            selector = ex.mk_and(
                ex.equal_vectors([ex.var(n) for n in self._u_names()],
                                 [ex.var(n) for n in self._z_names(i)]),
                ex.equal_vectors([ex.var(n) for n in self._v_names()],
                                 [ex.var(n) for n in self._z_names(i + 1)]))
            selector_lit = encoder.encode(selector)
            matrix.add_clause((-selector_lit, trans_lit))

        matrix.num_vars = max(matrix.num_vars, pool.num_vars)

        prefix_z = [v for frame in z_vars for v in frame]
        universal = u_vars + v_vars
        outer = set(prefix_z) | set(universal)
        inner = [v for v in range(1, matrix.num_vars + 1) if v not in outer]
        self.pcnf = PCNF(matrix=matrix)
        if prefix_z:
            self.pcnf.add_block("e", prefix_z)
        self.pcnf.add_block("a", universal)
        if inner:
            self.pcnf.add_block("e", inner)

    # ------------------------------------------------------------------
    def state_var(self, name: str, step: int) -> int:
        """Matrix variable of state bit ``name`` at the given step."""
        return self.pool.named(f"{name}@{step}")

    def extract_states(self, assignment: Dict[int, bool]
                       ) -> List[Dict[str, bool]]:
        """Read the Z vectors out of a (winning) QBF assignment."""
        states = []
        for i in range(self.k + 1):
            states.append({
                v: bool(assignment.get(self.state_var(v, i), False))
                for v in self.system.state_vars})
        return states

    def stats(self) -> Dict[str, int]:
        out = self.pcnf.stats()
        out["trans_copies"] = 1
        return out


def encode_qbf(system: TransitionSystem, final: Expr, k: int) -> QbfEncoding:
    """Build the formula (2) encoding for the given query."""
    return QbfEncoding(system, final, k)
