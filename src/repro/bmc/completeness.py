"""Completeness: the recurrence diameter and full unbounded verification.

The paper's introduction: "To implement a complete model checking
procedure the bound should be increased iteratively up to the length of
the longest simple path in the system".  That length is the *recurrence
diameter from init*: once no loop-free path of length k exists, every
state reachable at depth >= k is also reachable earlier, so a BMC sweep
that reaches k is a full proof.

``longest_simple_path_reached(system, k)`` decides, with one SAT call
on an unrolled path with pairwise-distinct states, whether loop-free
paths of length k exist.  ``verify_unbounded`` combines it with any of
the bounded engines into the complete procedure of the paper — and
inherits each engine's space behaviour, which is the whole point:
with ``method="jsat"`` the procedure's resident formula stays at one TR
copy even as the bound climbs (only the diameter side-check unrolls).
"""

from __future__ import annotations

from typing import Optional

from ..logic import expr as ex
from ..logic.cnf import CNF, VarPool
from ..logic.expr import Expr
from ..logic.tseitin import TseitinEncoder
from ..sat.kernel import make_solver
from ..sat.types import Budget, SolveResult
from ..system.model import TransitionSystem
from .backend import BmcResult
from .session import BmcSession

__all__ = ["longest_simple_path_reached", "verify_unbounded",
           "UnboundedResult"]


class UnboundedResult:
    """Outcome of the complete procedure.

    ``status``: "safe" (target unreachable at every depth), "cex"
    (reachable; ``result.trace`` holds the witness), or "unknown"
    (budget or bound cap hit).  ``bound`` is the last bound examined.
    """

    def __init__(self, status: str, bound: int,
                 result: Optional[BmcResult] = None) -> None:
        self.status = status
        self.bound = bound
        self.result = result

    def __repr__(self) -> str:  # pragma: no cover
        return f"UnboundedResult({self.status!r}, bound={self.bound})"


def longest_simple_path_reached(system: TransitionSystem, k: int,
                                budget: Budget | None = None
                                ) -> Optional[bool]:
    """True iff NO loop-free path of length ``k`` from init exists.

    One SAT query: init + k unrolled steps + pairwise state
    distinctness.  Returns None if the budget ran out.

    ``k == 0`` degenerates to an init-satisfiability probe: a length-0
    path is just an initial state, so a system with unsatisfiable init
    has *no* simple path of length 0 and the diameter is already
    reached — ``verify_unbounded`` then concludes "safe" at bound 0.
    """
    if k < 0:
        return False
    pool = VarPool()
    cnf = CNF()
    encoder = TseitinEncoder(cnf, pool)
    frames = [[f"{v}@{i}" for v in system.state_vars]
              for i in range(k + 1)]
    encoder.assert_expr(system.rename_state_expr(system.init, frames[0]))
    for i in range(k):
        encoder.assert_expr(system.trans_between(frames[i], frames[i + 1],
                                                 input_suffix=f"@{i}"))
    for i in range(k + 1):
        for j in range(i + 1, k + 1):
            same = ex.equal_vectors([ex.var(n) for n in frames[i]],
                                    [ex.var(n) for n in frames[j]])
            encoder.assert_expr(ex.mk_not(same))
    solver = make_solver()
    solver.ensure_vars(max(cnf.num_vars, pool.num_vars))
    if not solver.add_clauses(cnf.clauses):
        return True
    status = solver.solve(budget=budget)
    if status is SolveResult.UNKNOWN:
        return None
    return status is SolveResult.UNSAT


def verify_unbounded(system: TransitionSystem, final: Expr,
                     method: str = "jsat",
                     max_bound: int = 64,
                     budget: Budget | None = None) -> UnboundedResult:
    """The paper's complete procedure: deepen exact-k BMC until either
    the target is hit or the recurrence diameter is passed.

    One :class:`BmcSession` serves every bound, so incremental methods
    (``sat-incremental``, ``jsat``) keep their solver state across the
    whole deepening loop — the session's persistence is exactly what
    this procedure wants.
    """
    if budget is not None:
        budget.arm()        # one wall-clock slice for the whole loop
    with BmcSession(system, properties={"target": final}) as session:
        for k in range(max_bound + 1):
            if budget is not None and budget.expired():
                return UnboundedResult("unknown", k, None)
            result = session.check(k, method=method, semantics="exact",
                                   budget=budget)
            if result.status is SolveResult.SAT:
                return UnboundedResult("cex", k, result)
            if result.status is SolveResult.UNKNOWN:
                return UnboundedResult("unknown", k, result)
            done = longest_simple_path_reached(system, k, budget)
            if done is None:
                return UnboundedResult("unknown", k, result)
            if done:
                return UnboundedResult("safe", k, result)
    return UnboundedResult("unknown", max_bound, None)
