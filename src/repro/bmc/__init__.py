"""Bounded model checking: the paper's encodings, jSAT, and the engine."""

from .allsat import AllSatReachability
from .completeness import (UnboundedResult, longest_simple_path_reached,
                           verify_unbounded)
from .engine import (ALL_METHODS, METHODS, PORTFOLIO, BmcResult,
                     check_reachability, find_reachable, sweep)
from .incremental import (BoundResult, IncrementalBmc, SweepBudget,
                          SweepResult)
from .induction import InductionResult, prove_by_induction
from .interpolation import InterpolationResult, prove_by_interpolation
from .jsat import JsatSolver, JsatStats
from .metrics import (TimeBreakdown, encoding_sizes, growth_table,
                      jsat_resident_size, measure_time)
from .qbf_encoding import QbfEncoding, encode_qbf
from .squaring import SquaringEncoding, encode_squaring
from .unroll import UnrolledEncoding, encode_unrolled

__all__ = [
    "check_reachability",
    "sweep",
    "SweepResult",
    "BoundResult",
    "SweepBudget",
    "IncrementalBmc",
    "verify_unbounded",
    "UnboundedResult",
    "longest_simple_path_reached",
    "AllSatReachability",
    "find_reachable",
    "prove_by_induction",
    "InductionResult",
    "prove_by_interpolation",
    "InterpolationResult",
    "BmcResult",
    "METHODS",
    "ALL_METHODS",
    "PORTFOLIO",
    "JsatSolver",
    "JsatStats",
    "TimeBreakdown",
    "measure_time",
    "encode_unrolled",
    "UnrolledEncoding",
    "encode_qbf",
    "QbfEncoding",
    "encode_squaring",
    "SquaringEncoding",
    "encoding_sizes",
    "growth_table",
    "jsat_resident_size",
]
