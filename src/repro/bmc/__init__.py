"""Bounded model checking: the paper's encodings, jSAT, and the engine.

The public API is object-based: a pluggable :class:`Backend` registry
(:mod:`repro.bmc.backend`) and the stateful :class:`BmcSession` front
end (:mod:`repro.bmc.session`).  The legacy function entry points
(``check_reachability`` / ``sweep`` / ``find_reachable``) remain as
deprecation shims in :mod:`repro.bmc.engine`.
"""

from .allsat import AllSatReachability
from .backend import (ALL_METHODS, METHODS, Backend, BackendOptions,
                      BmcResult, MethodsView, backend_class, create_backend,
                      register_backend, registered_backends,
                      unregister_backend, validate_method)
from .completeness import (UnboundedResult, longest_simple_path_reached,
                           verify_unbounded)
from .engine import (PORTFOLIO, check_reachability, find_reachable, sweep)
from .incremental import (BoundResult, IncrementalBmc, SweepBudget,
                          SweepResult)
from .induction import InductionResult, prove_by_induction
from .interpolation import InterpolationResult, prove_by_interpolation
from .jsat import JsatSolver, JsatStats
from .metrics import (TimeBreakdown, encoding_sizes, growth_table,
                      jsat_resident_size, measure_time)
from .provers import (DiameterBackend, InterpolationBackend,
                      KInductionBackend, validate_invariant)
from .qbf_encoding import QbfEncoding, encode_qbf
from .session import BmcSession
from .squaring import SquaringEncoding, encode_squaring
from .unroll import UnrolledEncoding, encode_unrolled

__all__ = [
    # Object-based API
    "BmcSession",
    "Backend",
    "BackendOptions",
    "register_backend",
    "unregister_backend",
    "registered_backends",
    "backend_class",
    "create_backend",
    "validate_method",
    "MethodsView",
    # Deprecated function shims
    "check_reachability",
    "sweep",
    "find_reachable",
    # Results and sweep machinery
    "BmcResult",
    "SweepResult",
    "BoundResult",
    "SweepBudget",
    "IncrementalBmc",
    "verify_unbounded",
    "UnboundedResult",
    "longest_simple_path_reached",
    "AllSatReachability",
    "prove_by_induction",
    "InductionResult",
    "prove_by_interpolation",
    "InterpolationResult",
    "KInductionBackend",
    "InterpolationBackend",
    "DiameterBackend",
    "validate_invariant",
    "METHODS",
    "ALL_METHODS",
    "PORTFOLIO",
    "JsatSolver",
    "JsatStats",
    "TimeBreakdown",
    "measure_time",
    "encode_unrolled",
    "UnrolledEncoding",
    "encode_qbf",
    "QbfEncoding",
    "encode_squaring",
    "SquaringEncoding",
    "encoding_sizes",
    "growth_table",
    "jsat_resident_size",
]
