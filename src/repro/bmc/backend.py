"""The pluggable backend layer: one object protocol over every method.

The paper's contribution is a *comparison of decision methods* on one
query shape — reachability of ``final`` in exactly (or at most) ``k``
steps.  This module turns that comparison into a first-class extension
point instead of a string-dispatch ladder:

* :class:`Backend` is the protocol every decision method implements:
  ``check(k)`` for a single bounded query, ``sweep(max_k)`` for the
  bound ladder k = 0..K, plus capability flags (``native_incremental``,
  ``supported_semantics``, ``composite``).
* :class:`BackendOptions` is the base of the per-backend typed options
  dataclasses.  Unknown keyword options **raise** instead of vanishing
  — a typo'd ``polarity_reducton`` is an error, not a silent no-op.
* :func:`register_backend` adds a backend class to the global registry;
  ``METHODS`` and ``ALL_METHODS`` are live ordered *views* over that
  registry, so a backend registered by user code immediately shows up
  in the engine shims, the session API, ``run_matrix`` and the CLI.

A minimal external backend::

    from repro.bmc import Backend, BmcResult, register_backend

    @register_backend("my-oracle")
    class OracleBackend(Backend):
        def check(self, k, semantics="exact", budget=None):
            status = ...                       # decide however you like
            return self.result(status, None, k)

Long-lived backend state (an incremental solver, a no-good cache) lives
on the backend *instance*; :class:`repro.bmc.session.BmcSession` keeps
one instance per (method, options) alive across calls.
"""

from __future__ import annotations

import dataclasses
import difflib
import time
from abc import ABC, abstractmethod
from typing import (Any, Callable, ClassVar, Dict, Iterator, List, Optional,
                    Sequence, Tuple, Type)

from ..logic.expr import Expr
from ..sat.types import Budget, SolveResult
from ..telemetry.metrics import current_metrics
from ..telemetry.trace import current_tracer
from ..system.model import TransitionSystem
from ..system.trace import Trace

__all__ = ["BmcResult", "Backend", "BackendOptions", "register_backend",
           "unregister_backend", "backend_class", "create_backend",
           "fan_out_options", "registered_backends", "validate_method",
           "MethodsView", "METHODS", "ALL_METHODS", "SEMANTICS",
           "BoundResult", "SweepResult", "SweepBudget", "emit_bound",
           "drive_sweep"]

SEMANTICS = ("exact", "within")


class BmcResult:
    """Outcome of one bounded reachability query.

    Attributes
    ----------
    status:
        SAT (target reachable at the queried bound), UNSAT, or UNKNOWN
        (budget exhausted).
    trace:
        Validated witness path for SAT answers, when the back end could
        produce one (always for sat-unroll and jsat).
    k:
        The bound queried.
    method:
        The decision method used.
    seconds:
        Wall-clock time of the query.
    stats:
        Method-specific counters (formula sizes, solver statistics).
    proved:
        True when an UNSAT answer is an *unbounded* proof — the target
        is unreachable at every depth, not merely within ``k``.  Only
        backends with ``proves_unbounded`` set ever produce this.
    invariant:
        The inductive invariant certifying a proof, when the method
        constructs one (interpolation); ``None`` for proofs by
        exhaustion (k-induction, diameter) and for all bounded answers.
    """

    def __init__(self, status: SolveResult, trace: Optional[Trace],
                 k: int, method: str, seconds: float,
                 stats: Dict[str, int], proved: bool = False,
                 invariant: Optional[Expr] = None) -> None:
        self.status = status
        self.trace = trace
        self.k = k
        self.method = method
        self.seconds = seconds
        self.stats = stats
        self.proved = proved
        self.invariant = invariant

    def __repr__(self) -> str:  # pragma: no cover
        tag = ", proved" if self.proved else ""
        return (f"BmcResult({self.status.name}, k={self.k}, "
                f"method={self.method!r}, {self.seconds * 1e3:.1f} ms"
                f"{tag})")


# ----------------------------------------------------------------------
# Bound sweeps: the record types and the one shared ladder loop
# ----------------------------------------------------------------------
class BoundResult:
    """Outcome and statistics of one bound inside a sweep.

    Attributes
    ----------
    k:
        The bound this entry answers (exact-k semantics).
    status:
        SAT / UNSAT / UNKNOWN for exactly-k reachability.
    trace:
        Witness path on SAT (length exactly k).
    seconds:
        Wall time of this bound alone.
    cumulative_seconds:
        Wall time from the start of the sweep to this bound's answer —
        the "time to shortest counterexample" when this is the hit.
    stats:
        Method counters; for the incremental driver these include
        ``clauses_reused`` (problem clauses carried over from earlier
        bounds) and ``learnts_retained`` (learnt clauses alive at query
        start).
    proved:
        True when this bound's UNSAT answer closed an unbounded proof
        (the prover's induction/fixpoint/diameter side-check fired), so
        the sweep may stop early with a conclusive verdict.
    """

    def __init__(self, k: int, status: SolveResult, trace: Optional[Trace],
                 seconds: float, cumulative_seconds: float,
                 stats: Dict[str, int], proved: bool = False) -> None:
        self.k = k
        self.status = status
        self.trace = trace
        self.seconds = seconds
        self.cumulative_seconds = cumulative_seconds
        self.stats = stats
        self.proved = proved

    def __repr__(self) -> str:  # pragma: no cover
        tag = ", proved" if self.proved else ""
        return (f"BoundResult(k={self.k}, {self.status.name}, "
                f"{self.seconds * 1e3:.1f} ms{tag})")


# Observer signature for per-bound progress streaming.
OnBound = Callable[[BoundResult], None]


class SweepResult:
    """Outcome of a bound sweep k = 0..max_k (exact-k per bound).

    ``per_bound`` records every bound actually queried; the sweep stops
    at the first SAT (the shortest counterexample) or the first UNKNOWN
    (budget exhausted), so the list may be shorter than ``max_k + 1``.
    """

    def __init__(self, method: str, max_k: int,
                 per_bound: List[BoundResult], seconds: float) -> None:
        self.method = method
        self.max_k = max_k
        self.per_bound = per_bound
        self.seconds = seconds

    @property
    def hit(self) -> Optional[BoundResult]:
        """The shortest-counterexample entry, or None."""
        if self.per_bound and self.per_bound[-1].status is SolveResult.SAT:
            return self.per_bound[-1]
        return None

    @property
    def status(self) -> SolveResult:
        """SAT (cex found), UNSAT (all bounds refuted, or an unbounded
        proof closed early), or UNKNOWN."""
        if not self.per_bound:
            return SolveResult.UNKNOWN
        last = self.per_bound[-1]
        if last.status is SolveResult.SAT:
            return SolveResult.SAT
        if last.status is SolveResult.UNSAT and (last.proved
                                                 or last.k == self.max_k):
            return SolveResult.UNSAT
        return SolveResult.UNKNOWN

    @property
    def proved(self) -> bool:
        """True when the sweep ended with an unbounded proof."""
        return bool(self.per_bound) and self.per_bound[-1].proved

    @property
    def shortest_k(self) -> Optional[int]:
        """Length of the shortest counterexample, or None."""
        hit = self.hit
        return hit.k if hit is not None else None

    @property
    def trace(self) -> Optional[Trace]:
        hit = self.hit
        return hit.trace if hit is not None else None

    @property
    def time_to_hit(self) -> Optional[float]:
        """Wall seconds from sweep start to the shortest cex, or None."""
        hit = self.hit
        return hit.cumulative_seconds if hit is not None else None

    def __repr__(self) -> str:  # pragma: no cover
        return (f"SweepResult({self.method!r}, {self.status.name}, "
                f"bounds={len(self.per_bound)}/{self.max_k + 1}, "
                f"{self.seconds * 1e3:.1f} ms)")


class SweepBudget:
    """A resource budget shared by every bound of one sweep.

    Wall-clock is tracked against a single deadline; the deterministic
    limits (conflicts / decisions / propagations) form a pool that each
    bound's query draws down.  ``remaining()`` hands out a per-query
    :class:`Budget` of whatever is left; callers report consumption via
    :meth:`charge`.
    """

    def __init__(self, budget: Budget | None) -> None:
        self.budget = budget
        self._deadline: Optional[float] = None
        self._conflicts_left: Optional[int] = None
        self._decisions_left: Optional[int] = None
        self._propagations_left: Optional[int] = None
        if budget is not None:
            if budget.max_seconds is not None:
                self._deadline = time.monotonic() + budget.max_seconds
            self._conflicts_left = budget.max_conflicts
            self._decisions_left = budget.max_decisions
            self._propagations_left = budget.max_propagations

    def charge(self, conflicts: int = 0, decisions: int = 0,
               propagations: int = 0) -> None:
        """Deduct one bound's consumption from the pools."""
        if self._conflicts_left is not None:
            self._conflicts_left -= conflicts
        if self._decisions_left is not None:
            self._decisions_left -= decisions
        if self._propagations_left is not None:
            self._propagations_left -= propagations

    def exhausted(self) -> bool:
        if self._deadline is not None and time.monotonic() > self._deadline:
            return True
        for left in (self._conflicts_left, self._decisions_left,
                     self._propagations_left):
            if left is not None and left <= 0:
                return True
        return False

    def remaining(self) -> Budget | None:
        """A budget covering whatever the sweep has left (None = no cap)."""
        if self.budget is None:
            return None
        seconds = None
        if self._deadline is not None:
            seconds = max(1e-3, self._deadline - time.monotonic())
        def _floor(left: Optional[int]) -> Optional[int]:
            return None if left is None else max(1, left)
        return Budget(max_conflicts=_floor(self._conflicts_left),
                      max_decisions=_floor(self._decisions_left),
                      max_propagations=_floor(self._propagations_left),
                      max_seconds=seconds,
                      max_literals=self.budget.max_literals)


def emit_bound(per_bound: List[BoundResult], on_bound, k: int,
               status: SolveResult, trace: Optional[Trace],
               seconds: float, sweep_start: float,
               stats: Dict[str, int], proved: bool = False) -> BoundResult:
    """Record one sweep bound and notify the observer.

    The single bookkeeping point every sweep implementation shares:
    builds the :class:`BoundResult` (cumulative time measured against
    ``sweep_start``), appends it, and streams it to ``on_bound`` when
    one is installed.
    """
    record = BoundResult(k, status, trace, seconds,
                         time.perf_counter() - sweep_start, stats,
                         proved=proved)
    per_bound.append(record)
    if on_bound is not None:
        on_bound(record)
    return record


def drive_sweep(method: str, max_k: int, bounds,
                check: Callable[[int, Budget | None],
                                Tuple[SolveResult, Optional[Trace],
                                      Dict[str, int]]],
                budget: Budget | None = None,
                on_bound=None,
                after_unsat: Callable[[int], None] | None = None
                ) -> SweepResult:
    """Run one bound ladder under a shared :class:`SweepBudget` — the
    loop every sweep implementation shares.

    ``check(k, remaining)`` answers one bound and returns
    ``(status, trace, stats)`` — or ``(status, trace, stats, proved)``
    from a prover backend whose bound-k refutation may close an
    unbounded proof; ``bounds`` is the ladder (ascending integers for
    the linear sweep, the squaring schedule for formula (3));
    ``after_unsat(k)`` runs after each refuted bound (the incremental
    driver retires the bound's final-constraint group there).  The
    ladder stops at the first non-UNSAT answer or the first proved
    bound; an exhausted budget records an UNKNOWN for the bound it
    would have run next.
    """
    tracer = current_tracer()
    registry = current_metrics()
    tracker = SweepBudget(budget)
    per_bound: List[BoundResult] = []
    sweep_start = time.perf_counter()
    for k in bounds:
        if tracker.exhausted():
            emit_bound(per_bound, on_bound, k, SolveResult.UNKNOWN,
                       None, 0.0, sweep_start, {})
            break
        bound_start = time.perf_counter()
        with tracer.span("bmc.bound", method=method, k=k) as sp:
            answer = check(k, tracker.remaining())
            status, trace, stats = answer[:3]
            proved = bool(answer[3]) if len(answer) > 3 else False
            sp.set(status=status.name)
            if proved:
                sp.set(proved=True)
        registry.inc("bmc.bounds_checked")
        tracker.charge(
            conflicts=stats.get("solver_conflicts",
                                stats.get("sat_conflicts", 0)),
            decisions=stats.get("solver_decisions", 0),
            propagations=stats.get("solver_propagations",
                                   stats.get("sat_propagations", 0)))
        emit_bound(per_bound, on_bound, k, status, trace,
                   time.perf_counter() - bound_start, sweep_start, stats,
                   proved=proved)
        if status is not SolveResult.UNSAT or proved:
            break
        if after_unsat is not None:
            after_unsat(k)
    return SweepResult(method, max_k, per_bound,
                       time.perf_counter() - sweep_start)


# ----------------------------------------------------------------------
# Typed options
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class BackendOptions:
    """Base of every backend's typed options dataclass.

    Construction goes through :meth:`from_kwargs`, which rejects
    unknown keys with the list of valid ones (and a did-you-mean hint),
    so a misspelled option can never be silently dropped.

    Every backend inherits the ``solver`` option: which SAT engine its
    CDCL instances run on — ``"kernel"`` (the array-based core),
    ``"reference"`` (the pure-Python solver), or None to defer to the
    process default (env ``REPRO_SAT_KERNEL``).  Because it is a
    dataclass field, the choice flows through portfolio IPC payloads
    (``as_dict``) and backend/cache keys (``cache_key``) with no extra
    plumbing.
    """

    solver: Optional[str] = None

    def __post_init__(self) -> None:
        if self.solver is not None:
            from ..sat.types import resolve_engine
            resolve_engine(self.solver)      # validate eagerly

    @classmethod
    def option_names(cls) -> Tuple[str, ...]:
        return tuple(f.name for f in dataclasses.fields(cls))

    @classmethod
    def from_kwargs(cls, **kwargs: Any) -> "BackendOptions":
        valid = cls.option_names()
        unknown = sorted(set(kwargs) - set(valid))
        if unknown:
            hints = []
            for name in unknown:
                close = difflib.get_close_matches(name, valid, n=1)
                if close:
                    hints.append(f"{name!r} (did you mean {close[0]!r}?)")
                else:
                    hints.append(repr(name))
            raise TypeError(
                f"unknown option(s) {', '.join(hints)} for {cls.__name__}; "
                f"valid options: {list(valid) or 'none'}")
        return cls(**kwargs)

    @classmethod
    def accepts_option(cls, name: str) -> bool:
        """Whether a broadcast option named ``name`` is meaningful to
        this backend — the multi-method fan-out asks this to decide
        which methods receive a shared key (see
        :func:`fan_out_options`).  Composite backends may accept keys
        they forward to their delegates."""
        return name in cls.option_names()

    def cache_key(self) -> str:
        """Stable fingerprint used to key backend instances and caches."""
        items = sorted(dataclasses.asdict(self).items())
        return repr(items)

    def as_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


# ----------------------------------------------------------------------
# The protocol
# ----------------------------------------------------------------------
class Backend(ABC):
    """One decision method bound to one reachability query family.

    A backend instance owns ``system`` and ``final`` plus whatever
    long-lived solver state the method keeps between calls (the
    incremental clause database, the jSAT no-good cache).  Class-level
    capabilities:

    ``name``
        Registry name (set by :func:`register_backend`).
    ``composite``
        True for meta-backends that delegate to other backends (the
        portfolio racer); these are excluded from the ``METHODS`` view
        of primitive decision procedures.
    ``native_incremental``
        True when :meth:`sweep` reuses one long-lived solver across
        bounds instead of re-encoding per bound.
    ``supported_semantics``
        Which of "exact" / "within" the backend answers.
    ``proves_unbounded``
        True for backends whose UNSAT answers can close an *unbounded*
        proof (k-induction, interpolation, recurrence diameter): a
        result with ``proved`` set means the target is unreachable at
        every depth, not merely within the queried bound.
    ``options_class``
        The typed options dataclass validated at construction.
    """

    name: ClassVar[str] = "?"
    composite: ClassVar[bool] = False
    native_incremental: ClassVar[bool] = False
    supported_semantics: ClassVar[Tuple[str, ...]] = SEMANTICS
    proves_unbounded: ClassVar[bool] = False
    options_class: ClassVar[Type[BackendOptions]] = BackendOptions

    def __init__(self, system: TransitionSystem, final: Expr,
                 options: BackendOptions | None = None, **kwargs: Any
                 ) -> None:
        if options is not None and kwargs:
            raise TypeError("pass either an options instance or kwargs, "
                            "not both")
        if options is None:
            options = self.options_class.from_kwargs(**kwargs)
        elif not isinstance(options, self.options_class):
            raise TypeError(
                f"{type(self).__name__} expects {self.options_class.__name__}"
                f" options, got {type(options).__name__}")
        self.system = system
        self.final = final
        self.options = options

    # ------------------------------------------------------------------
    @abstractmethod
    def check(self, k: int, semantics: str = "exact",
              budget: Budget | None = None) -> BmcResult:
        """Decide whether ``final`` is reachable at bound ``k``."""

    def sweep(self, max_k: int, budget: Budget | None = None,
              on_bound: OnBound | None = None) -> SweepResult:
        """Sweep bounds k = 0..max_k; stop at the first SAT or UNKNOWN.

        The default implementation asks an exact-k :meth:`check` per
        bound through the shared :func:`drive_sweep` loop — for a
        stateless backend that is the re-encode-per-bound baseline
        every native incremental sweep is benchmarked against; for a
        backend whose ``check`` reuses a long-lived solver (jsat) the
        same loop is natively incremental.  Backends on a different
        ladder (the squaring schedule) override this.
        """
        def check(k: int, remaining: Budget | None):
            result = self.check(k, semantics="exact", budget=remaining)
            return result.status, result.trace, result.stats
        return drive_sweep(self.name, max_k, range(max_k + 1), check,
                           budget=budget, on_bound=on_bound)

    def close(self) -> None:
        """Release long-lived solver state (default: nothing to do)."""

    # ------------------------------------------------------------------
    def result(self, status: SolveResult, trace: Optional[Trace], k: int,
               stats: Dict[str, int] | None = None, *,
               proved: bool = False,
               invariant: Optional[Expr] = None) -> BmcResult:
        """Convenience constructor stamping this backend's name."""
        return BmcResult(status, trace, k, self.name, 0.0, stats or {},
                         proved=proved, invariant=invariant)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"{type(self).__name__}({self.system.name!r}, "
                f"{self.options!r})")


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, Type[Backend]] = {}
_BUILTINS_LOADED = False


def _ensure_builtins() -> None:
    """Import the built-in backends exactly once (registration side
    effect).  Deferred so backend.py itself has no heavy imports."""
    global _BUILTINS_LOADED
    if not _BUILTINS_LOADED:
        # Set before the import (register_backend re-enters here while
        # backends.py executes), but reset on failure — otherwise one
        # failed import would leave every later caller a silently empty
        # registry that masks the real error.
        _BUILTINS_LOADED = True
        try:
            from . import backends  # noqa: F401  (registration effect)
        except BaseException:
            _BUILTINS_LOADED = False
            raise


def register_backend(name: str, *, replace: bool = False
                     ) -> Callable[[Type[Backend]], Type[Backend]]:
    """Class decorator adding a :class:`Backend` to the registry.

    ``name`` becomes the method string accepted everywhere a built-in
    method name is (sessions, ``run_matrix``, the CLI, races).  Pass
    ``replace=True`` to shadow an existing registration.
    """
    def decorator(cls: Type[Backend]) -> Type[Backend]:
        if not (isinstance(cls, type) and issubclass(cls, Backend)):
            raise TypeError(f"{cls!r} is not a Backend subclass")
        _ensure_builtins()
        if name in _REGISTRY and not replace:
            raise ValueError(f"backend {name!r} is already registered "
                             f"(pass replace=True to shadow it)")
        registered = cls
        prior = getattr(cls, "name", "?")
        if prior != name and _REGISTRY.get(prior) is cls:
            # Same class registered under a second name: alias through
            # a trivial subclass so the first registration keeps its
            # own name on results, sweep labels and cache keys.
            registered = type(cls.__name__, (cls,), {})
        registered.name = name
        _REGISTRY[name] = registered
        return cls
    return decorator


def unregister_backend(name: str) -> None:
    """Remove a registration (primarily for tests)."""
    _ensure_builtins()
    _REGISTRY.pop(name, None)


def registered_backends() -> Dict[str, Type[Backend]]:
    """Snapshot of the registry in registration order."""
    _ensure_builtins()
    return dict(_REGISTRY)


def backend_class(name: str) -> Type[Backend]:
    """Look up a backend class; unknown names raise a helpful error."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown method {name!r}; pick from {tuple(_REGISTRY)}"
        ) from None


def validate_method(name: str) -> Type[Backend]:
    """Alias of :func:`backend_class` reading as an up-front check."""
    return backend_class(name)


def create_backend(name: str, system: TransitionSystem, final: Expr,
                   **options: Any) -> Backend:
    """Instantiate a registered backend with validated options."""
    cls = backend_class(name)
    return cls(system, final, **options)


def fan_out_options(methods: Sequence[str],
                    options: Dict[str, Any],
                    method_options: Dict[str, Dict[str, Any]] | None = None
                    ) -> Dict[str, Dict[str, Any]]:
    """Distribute broadcast options over several methods.

    Each method receives the broadcast keys its typed options class
    accepts (the strict-validation analogue of the old "each method
    reads what it knows" behaviour, used by the portfolio race and by
    ``run_matrix``); a key *no* listed method accepts raises instead of
    being silently dropped.  ``method_options`` maps a method name to
    options for that method alone, merged on top of the broadcast keys
    and validated here, up front — a typo'd override must raise before
    any solving or forking starts.
    """
    method_options = method_options or {}
    stray = sorted(set(method_options) - set(methods))
    if stray:
        raise ValueError(f"method_options given for method(s) {stray} "
                         f"not among the methods being run "
                         f"({tuple(methods)})")
    classes = {method: backend_class(method) for method in methods}
    for key in options:
        if not any(cls.options_class.accepts_option(key)
                   for cls in classes.values()):
            raise TypeError(f"option {key!r} is not accepted by any of "
                            f"the methods {tuple(methods)}")
    out: Dict[str, Dict[str, Any]] = {}
    for method, cls in classes.items():
        opts = {key: value for key, value in options.items()
                if cls.options_class.accepts_option(key)}
        opts.update(method_options.get(method, {}))
        cls.options_class.from_kwargs(**opts)
        out[method] = opts
    return out


# ----------------------------------------------------------------------
# Live method views
# ----------------------------------------------------------------------
class MethodsView(Sequence):
    """An ordered, tuple-like live view of registered backend names.

    Supports everything the old ``METHODS`` tuple was used for —
    iteration, ``in``, indexing, ``len``, concatenation, comparison —
    but reflects the registry at access time, so custom backends show
    up without anyone editing core modules.
    """

    __slots__ = ("_include_composite",)

    def __init__(self, include_composite: bool) -> None:
        self._include_composite = include_composite

    def _names(self) -> Tuple[str, ...]:
        _ensure_builtins()
        return tuple(name for name, cls in _REGISTRY.items()
                     if self._include_composite or not cls.composite)

    def __iter__(self) -> Iterator[str]:
        return iter(self._names())

    def __len__(self) -> int:
        return len(self._names())

    def __getitem__(self, index):
        return self._names()[index]

    def __contains__(self, name: object) -> bool:
        return name in self._names()

    def __add__(self, other: Sequence[str]) -> Tuple[str, ...]:
        return self._names() + tuple(other)

    def __radd__(self, other: Sequence[str]) -> Tuple[str, ...]:
        return tuple(other) + self._names()

    def __eq__(self, other: object) -> bool:
        if isinstance(other, MethodsView):
            return self._names() == other._names()
        if isinstance(other, (tuple, list)):
            return self._names() == tuple(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._names())

    def __repr__(self) -> str:
        return repr(self._names())


#: Primitive decision procedures (excludes composite backends).
METHODS = MethodsView(include_composite=False)

#: Every registered backend, composites included.
ALL_METHODS = MethodsView(include_composite=True)
