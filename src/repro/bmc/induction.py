"""k-induction — the paper-intro's "induction based methods".

Temporal induction (Sheeran, Singh & Stålmarck): a safety property
``P = ¬bad`` holds in all reachable states if

* **base(k)**: no path of length ≤ k from init reaches ``bad``;
* **step(k)**: every *loop-free* path of k+1 consecutive P-states ends
  in a P-state (checked as the UNSAT-ness of a path with k P-states
  followed by a bad one, with pairwise-distinct states).

Increasing k makes the step obligation strictly weaker, so iterating
k = 0, 1, 2, ... yields a complete procedure for finite systems — at
the cost of the same unrolled-formula growth the paper attacks, which
is why this module reuses the formula (1) machinery and shows up in
the memory experiment E6 as a consumer.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..logic import expr as ex
from ..logic.cnf import CNF, VarPool
from ..logic.expr import Expr
from ..logic.tseitin import TseitinEncoder
from ..sat.kernel import make_solver
from ..sat.types import Budget, SolveResult
from ..system.model import TransitionSystem
from ..system.trace import Trace

__all__ = ["InductionResult", "prove_by_induction"]


class InductionResult:
    """Outcome of a k-induction run.

    ``status``: "proved", "cex" (counterexample found, see ``trace``),
    or "unknown" (bound/budget exhausted).  ``k`` is the bound at which
    the run concluded.
    """

    def __init__(self, status: str, k: int,
                 trace: Optional[Trace] = None) -> None:
        self.status = status
        self.k = k
        self.trace = trace

    def __repr__(self) -> str:  # pragma: no cover
        return f"InductionResult({self.status!r}, k={self.k})"


def _frame(names: List[str], i: int) -> List[str]:
    return [f"{v}@{i}" for v in names]


def _register_frames(pool: VarPool, system: TransitionSystem,
                     n_states: int, n_inputs: int) -> None:
    """Register every frame variable in the pool *before* solving.

    The CDCL solver only reports SAT once every variable it knows about
    is assigned, so registering the frame bits up front guarantees the
    model covers them all with TR-consistent values.  Without this, a
    variable the encoder simplified away (e.g. an input no frame
    constrains) would be allocated fresh by ``pool.named`` *after* the
    solve and read back as ``None`` — silently coerced to ``False``.
    """
    for i in range(n_states):
        for v in system.state_vars:
            pool.named(f"{v}@{i}")
    for i in range(n_inputs):
        for v in system.input_vars:
            pool.named(f"{v}@{i}")


def _model_bit(solver, pool: VarPool, name: str) -> bool:
    """Read one named bit from the model via ``pool.lookup``.

    Never allocates: a name absent from the pool (impossible after
    :func:`_register_frames`, kept for robustness) defaults to False.
    """
    var = pool.lookup(name)
    if var is None:
        return False
    value = solver.model_value(var)
    return bool(value) if value is not None else False


def _encode_path(system: TransitionSystem, k: int, encoder: TseitinEncoder,
                 constrain_init: bool) -> None:
    frames = [_frame(system.state_vars, i) for i in range(k + 1)]
    if constrain_init:
        encoder.assert_expr(
            system.rename_state_expr(system.init, frames[0]))
    for i in range(k):
        encoder.assert_expr(
            system.trans_between(frames[i], frames[i + 1],
                                 input_suffix=f"@{i}"))


def _base_case(system: TransitionSystem, bad: Expr, k: int,
               budget: Budget | None) -> Tuple[SolveResult, Optional[Trace]]:
    """SAT iff some path of length <= k from init hits bad."""
    pool = VarPool()
    cnf = CNF()
    encoder = TseitinEncoder(cnf, pool)
    _encode_path(system, k, encoder, constrain_init=True)
    encoder.assert_expr(ex.disjoin(
        system.rename_state_expr(bad, _frame(system.state_vars, i))
        for i in range(k + 1)))
    _register_frames(pool, system, k + 1, k)
    solver = make_solver()
    solver.ensure_vars(max(cnf.num_vars, pool.num_vars))
    if not solver.add_clauses(cnf.clauses):
        return SolveResult.UNSAT, None
    status = solver.solve(budget=budget)
    if status is not SolveResult.SAT:
        return status, None
    states = []
    for i in range(k + 1):
        states.append({v: _model_bit(solver, pool, f"{v}@{i}")
                       for v in system.state_vars})
    inputs = []
    for i in range(k):
        inputs.append({v: _model_bit(solver, pool, f"{v}@{i}")
                       for v in system.input_vars})
    trace = Trace(states, inputs)
    # Cut at the first bad state.
    for i, state in enumerate(trace.states):
        if bad.evaluate(state):
            trace = Trace(trace.states[:i + 1], trace.inputs[:i])
            break
    return SolveResult.SAT, trace


def _step_case(system: TransitionSystem, bad: Expr, k: int,
               budget: Budget | None) -> SolveResult:
    """UNSAT iff k consecutive good states always yield a good successor.

    Loop-free ("simple path") side constraints make the method complete.
    """
    pool = VarPool()
    cnf = CNF()
    encoder = TseitinEncoder(cnf, pool)
    _encode_path(system, k + 1, encoder, constrain_init=False)
    good = ex.mk_not(bad)
    for i in range(k + 1):
        encoder.assert_expr(
            system.rename_state_expr(good, _frame(system.state_vars, i)))
    encoder.assert_expr(
        system.rename_state_expr(bad, _frame(system.state_vars, k + 1)))
    # Pairwise distinctness of the k+2 states.
    for i in range(k + 2):
        for j in range(i + 1, k + 2):
            same = ex.equal_vectors(
                [ex.var(n) for n in _frame(system.state_vars, i)],
                [ex.var(n) for n in _frame(system.state_vars, j)])
            encoder.assert_expr(ex.mk_not(same))
    solver = make_solver()
    solver.ensure_vars(max(cnf.num_vars, pool.num_vars))
    if not solver.add_clauses(cnf.clauses):
        return SolveResult.UNSAT
    return solver.solve(budget=budget)


def prove_by_induction(system: TransitionSystem, bad: Expr,
                       max_k: int = 32,
                       budget: Budget | None = None) -> InductionResult:
    """Prove ``bad`` unreachable (or find a counterexample) by
    k-induction with loop-free strengthening.

    Returns "proved", "cex" (with a validated trace), or "unknown" when
    ``max_k`` or the budget runs out.
    """
    stray = bad.support() - set(system.state_vars)
    if stray:
        raise ValueError(f"bad predicate uses non-state vars: {stray}")
    if budget is not None:
        budget.arm()        # one wall-clock slice shared by all bounds
    for k in range(max_k + 1):
        if budget is not None and budget.expired():
            return InductionResult("unknown", k)
        base, trace = _base_case(system, bad, k, budget)
        if base is SolveResult.SAT:
            assert trace is not None
            trace.validate(system, bad)
            return InductionResult("cex", k, trace)
        if base is SolveResult.UNKNOWN:
            return InductionResult("unknown", k)
        step = _step_case(system, bad, k, budget)
        if step is SolveResult.UNSAT:
            return InductionResult("proved", k)
        if step is SolveResult.UNKNOWN:
            return InductionResult("unknown", k)
    return InductionResult("unknown", max_k)
