"""Formula (3): iterative squaring — reach k steps with log₂k alternations.

    R_k(Z0, Zk) = ∃ Z : ∀ U,V :
        [ ((U↔Z0) ∧ (V↔Z)) ∨ ((U↔Z) ∧ (V↔Zk)) ] → R_{k/2}(U, V)

with ``R_1(a, b) = TR(a, b)`` and, at the top level only, the
constraints ``I(Z0) ∧ F(Zk)``.  The transition relation again appears
**once**, but unlike formula (2) the number of universal variables and
quantifier alternations now grows with each halving level — ⌈log₂ k⌉
levels in total — which lets a complete procedure cover exponentially
long paths in linearly many iterations (experiment E3).

Only powers of two are directly expressible.  The paper's remedy is
implemented in :meth:`repro.system.model.TransitionSystem.with_self_loops`:
adding a stutter transition turns R_k into "reachable in ≤ k steps",
and every bound b can then be checked at ``2^⌈log₂ b⌉``.

Because R_{k/2} occurs exactly once inside its selector implication,
prenexing is a plain concatenation of blocks:

    ∃ Z0,Zk,M1 ∀ U1,V1 ∃ M2 ∀ U2,V2 ... ∀ UL,VL ∃ (inputs, aux)
"""

from __future__ import annotations

from typing import Dict, List

from ..logic import expr as ex
from ..logic.cnf import CNF, VarPool
from ..logic.expr import Expr
from ..logic.tseitin import TseitinEncoder
from ..qbf.pcnf import PCNF
from ..system.model import TransitionSystem

__all__ = ["SquaringEncoding", "encode_squaring"]


def _is_power_of_two(k: int) -> bool:
    return k >= 1 and (k & (k - 1)) == 0


class SquaringEncoding:
    """The PCNF of formula (3) plus variable bookkeeping."""

    def __init__(self, system: TransitionSystem, final: Expr, k: int) -> None:
        if not _is_power_of_two(k):
            raise ValueError(
                f"iterative squaring checks power-of-two bounds only, "
                f"got k={k}; add self-loops and round up for <=k semantics")
        stray = final.support() - set(system.state_vars)
        if stray:
            raise ValueError(f"final predicate uses non-state vars: {stray}")
        self.system = system
        self.final = final
        self.k = k
        self.levels = k.bit_length() - 1          # log2(k)
        self.pool = VarPool()
        self.pcnf = PCNF()
        self._encode()

    # ------------------------------------------------------------------
    def _names(self, tag: str) -> List[str]:
        return [f"{v}#{tag}" for v in self.system.state_vars]

    def _vec(self, tag: str) -> List[Expr]:
        return [ex.var(n) for n in self._names(tag)]

    def _encode(self) -> None:
        system = self.system
        pool = self.pool
        matrix = CNF()
        encoder = TseitinEncoder(matrix, pool)

        z0 = self._names("Z0")
        zk = self._names("Zk")
        z0_ids = [pool.named(n) for n in z0]
        zk_ids = [pool.named(n) for n in zk]

        encoder.assert_expr(system.rename_state_expr(system.init, z0))
        encoder.assert_expr(system.rename_state_expr(self.final, zk))

        prefix: List[tuple[str, List[int]]] = [("e", z0_ids + zk_ids)]
        selector_lits: List[int] = []

        # Walk down the halving levels; at level j the pair (a, b) holds
        # the endpoints whose R_{k/2^j} membership is being defined.
        a_names, b_names = z0, zk
        for level in range(1, self.levels + 1):
            mid = self._names(f"M{level}")
            u = self._names(f"U{level}")
            v = self._names(f"V{level}")
            mid_ids = [pool.named(n) for n in mid]
            u_ids = [pool.named(n) for n in u]
            v_ids = [pool.named(n) for n in v]
            # ∃ mid is appended to the preceding existential block.
            if prefix[-1][0] == "e":
                prefix[-1] = ("e", prefix[-1][1] + mid_ids)
            else:
                prefix.append(("e", mid_ids))
            prefix.append(("a", u_ids + v_ids))

            first_half = ex.mk_and(
                ex.equal_vectors(self._vec(f"U{level}"),
                                 [ex.var(n) for n in a_names]),
                ex.equal_vectors(self._vec(f"V{level}"),
                                 [ex.var(n) for n in mid]))
            second_half = ex.mk_and(
                ex.equal_vectors(self._vec(f"U{level}"),
                                 [ex.var(n) for n in mid]),
                ex.equal_vectors(self._vec(f"V{level}"),
                                 [ex.var(n) for n in b_names]))
            selector_lits.append(encoder.encode(ex.mk_or(first_half,
                                                         second_half)))
            a_names, b_names = u, v

        # Base case: R_1(a, b) = TR(a, X, b), one shared copy.
        trans = system.trans_between(a_names, b_names, input_suffix="#X")
        trans_lit = encoder.encode(trans)

        # The nested implications  s1 -> (s2 -> ( ... -> TR))  flatten to
        # a single clause.
        matrix.add_clause(tuple(-s for s in selector_lits) + (trans_lit,))
        matrix.num_vars = max(matrix.num_vars, pool.num_vars)

        quantified = {v for _, vs in prefix for v in vs}
        inner = [v for v in range(1, matrix.num_vars + 1)
                 if v not in quantified]
        self.pcnf = PCNF(matrix=matrix)
        for quantifier, variables in prefix:
            self.pcnf.add_block(quantifier, variables)
        if inner:
            self.pcnf.add_block("e", inner)

    # ------------------------------------------------------------------
    def state_var(self, name: str, endpoint: str) -> int:
        """Matrix variable of a state bit at endpoint 'Z0' or 'Zk'."""
        return self.pool.named(f"{name}#{endpoint}")

    def stats(self) -> Dict[str, int]:
        out = self.pcnf.stats()
        out["trans_copies"] = 1
        out["levels"] = self.levels
        return out


def encode_squaring(system: TransitionSystem, final: Expr,
                    k: int) -> SquaringEncoding:
    """Build the formula (3) encoding for the given query."""
    return SquaringEncoding(system, final, k)
