"""jSAT — the paper's special-purpose decision procedure for formula (2).

The QBF formulation (2) holds the state vectors Z0..Zk and a *single*
copy of TR(U, V); the linking terms ``(U↔Zi) ∧ (V↔Zi+1)`` say that U, V
range over every consecutive pair.  jSAT drops those linking terms and
keeps only (formula (4)):

    I(Z0) ∧ TR(U, V) ∧ F(Zk)

maintaining the association between (U, V) and the *current* pair of
neighbouring states implicitly: the algorithm walks a current/next
window over the path, deciding state Zi+1 from Zi through the one
shared TR copy — a depth-first search of the state graph from the
initial states toward the final ones.

Implementation notes
--------------------
The window is realized on top of the incremental CDCL solver
(:class:`repro.sat.solver.CdclSolver`):

* TR(U, X, V) is Tseitin-encoded **once**; I over U and F over U/V are
  encoded once each.  All of them are guarded by activation literals
  and joined to a query by *assumptions*, so the same clause database
  serves every window position.
* A window query fixes U to the concrete current state via assumptions
  and asks for a model of TR; the V bits of the model are the next
  state.
* Backtracking adds a *blocking clause* over the V bits inside a
  per-frame activation group; popping a frame retires the group with a
  unit clause and the solver physically reclaims every clause of the
  group (including learnt clauses derived from it) — the resident
  formula stays at one TR copy plus the frames' state vectors, which is
  the space bound in the paper's title.
* A *no-good cache* remembers states shown to admit no completion with
  ``r`` steps remaining; keyed by ``r`` in exact mode because a state
  that is hopeless at distance r may still reach F at a different
  distance; in "within" mode the cache is monotone (failure with r
  remaining implies failure for every r' <= r).

All three features (F-pruning of the last window, the no-good cache,
phase-seeded successor ordering) can be toggled for the ablation
experiment E7.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..logic.cnf import CNF, VarPool
from ..logic.expr import Expr
from ..logic.tseitin import TseitinEncoder
from ..sat.kernel import make_solver
from ..sat.types import Budget, BudgetExceeded, SolveResult, resolve_engine
from ..system.model import TransitionSystem
from ..system.trace import Trace

__all__ = ["JsatSolver", "JsatStats"]

State = Tuple[bool, ...]


class JsatStats:
    """Counters for the jSAT experiments (E1, E4, E6, E7)."""

    __slots__ = ("queries", "pushes", "pops", "cache_hits", "blocked",
                 "peak_db_literals", "sat_conflicts", "sat_propagations")

    def __init__(self) -> None:
        self.queries = 0
        self.pushes = 0
        self.pops = 0
        self.cache_hits = 0
        self.blocked = 0
        self.peak_db_literals = 0
        self.sat_conflicts = 0
        self.sat_propagations = 0

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


class _Frame:
    """One DFS frame: a decided state plus its retractable clause group."""

    __slots__ = ("state", "inputs", "group")

    def __init__(self, state: State, inputs: Dict[str, bool],
                 group: int) -> None:
        self.state = state
        self.inputs = inputs          # inputs that produced this state
        self.group = group            # activation var for blocking clauses


class JsatSolver:
    """Decide reachability in exactly (or at most) k steps, jSAT-style.

    Parameters
    ----------
    system, final, k:
        The reachability query: is a state satisfying ``final``
        reachable from init in exactly ``k`` steps?
    semantics:
        "exact" (the paper's query) or "within" (any depth <= k; jSAT
        then also tests F against every decided state).
    use_cache:
        Enable the no-good state cache.
    f_pruning:
        Constrain the final window query with F(V) instead of testing F
        after the fact.
    purge_interval:
        Retired clause groups are physically reclaimed every this many
        pops (1 = immediately; larger trades memory for time).
    solver:
        SAT engine for the window queries: ``"kernel"`` or
        ``"reference"`` (None defers to the process default).  Group
        retirement is engine-independent — both engines expose the
        same activation-literal surface.
    """

    def __init__(self, system: TransitionSystem, final: Expr, k: int,
                 semantics: str = "exact",
                 use_cache: bool = True,
                 f_pruning: bool = True,
                 purge_interval: int = 8,
                 solver: Optional[str] = None) -> None:
        if k < 0:
            raise ValueError("bound k must be non-negative")
        if semantics not in ("exact", "within"):
            raise ValueError(f"unknown semantics {semantics!r}")
        stray = final.support() - set(system.state_vars)
        if stray:
            raise ValueError(f"final predicate uses non-state vars: {stray}")
        self.system = system
        self.final = final
        self.k = k
        self.semantics = semantics
        self.use_cache = use_cache
        self.f_pruning = f_pruning
        self.purge_interval = max(1, purge_interval)
        self.engine = resolve_engine(solver)
        self.stats = JsatStats()
        self._trace: Optional[Trace] = None
        self._deadline: Optional[float] = None
        self._budget = Budget.unlimited()
        self._conflicts_at_start = 0
        self._props_at_start = 0
        # The no-good facts are bound-independent ("no completion from
        # this state with r steps remaining" says nothing about k), so
        # they live for the solver's lifetime and keep paying off when
        # the solver is retargeted at other bounds (native sweeps).
        self._nogood_exact: Dict[int, Set[State]] = {}
        self._nogood_within: Dict[State, int] = {}
        # Activation groups created by the current solve; any group
        # still live when solve() exits (SAT success, budget abort) is
        # retired there — the next solve never assumes old groups, so
        # an unretired group would pin its blocking clauses in the
        # database forever.
        self._live_groups: Set[int] = set()
        self._build_solver()

    # ==================================================================
    # Solver construction: ONE copy of TR, guarded I and F
    # ==================================================================
    def _u_names(self) -> List[str]:
        return [f"{v}#U" for v in self.system.state_vars]

    def _v_names(self) -> List[str]:
        return [f"{v}#V" for v in self.system.state_vars]

    def _build_solver(self) -> None:
        system = self.system
        self.pool = VarPool()
        cnf = CNF()
        encoder = TseitinEncoder(cnf, self.pool)

        self._u_vars = [self.pool.named(n) for n in self._u_names()]
        self._v_vars = [self.pool.named(n) for n in self._v_names()]
        self._x_vars = [self.pool.named(f"{n}#X") for n in system.input_vars]

        trans = system.trans_between(self._u_names(), self._v_names(),
                                     input_suffix="#X")
        trans_lit = encoder.encode(trans)
        self._trans_act = self.pool.fresh("act_trans")

        init_u = system.rename_state_expr(system.init, self._u_names())
        init_lit = encoder.encode(init_u) if not init_u.is_true else None
        self._init_act = self.pool.fresh("act_init")

        fin_v = system.rename_state_expr(self.final, self._v_names())
        fin_lit = encoder.encode(fin_v) if not fin_v.is_true else None
        self._fin_act = self.pool.fresh("act_fin_v")

        # F over U, used for the k = 0 / depth-0 query.
        fin_u = system.rename_state_expr(self.final, self._u_names())
        fin_u_lit = encoder.encode(fin_u) if not fin_u.is_true else None
        self._fin_u_act = self.pool.fresh("act_fin_u")

        cnf.num_vars = max(cnf.num_vars, self.pool.num_vars)
        self.solver = make_solver(self.engine)
        self.solver.ensure_vars(cnf.num_vars)
        self._ok = self.solver.add_clauses(cnf.clauses)
        self.solver.add_clause([-self._trans_act, trans_lit])
        if init_lit is not None:
            self.solver.add_clause([-self._init_act, init_lit])
        if fin_lit is not None:
            self.solver.add_clause([-self._fin_act, fin_lit])
        if fin_u_lit is not None:
            self.solver.add_clause([-self._fin_u_act, fin_u_lit])
        self.base_db_literals = self.solver.stats.db_literals

    # ==================================================================
    # Public API
    # ==================================================================
    def solve(self, budget: Budget | None = None) -> SolveResult:
        """Run the jSAT search.

        Returns SAT (path exists; :meth:`trace` yields it), UNSAT, or
        UNKNOWN on budget exhaustion.  Budgets are global across all
        internal window queries.
        """
        self._budget = budget or Budget.unlimited()
        if self._budget.deadline is not None:
            # An armed budget shares one deadline across calls.
            self._deadline = self._budget.deadline
        else:
            self._deadline = (time.monotonic() + self._budget.max_seconds
                              if self._budget.max_seconds is not None
                              else None)
        self._conflicts_at_start = self.solver.stats.conflicts
        self._props_at_start = self.solver.stats.propagations
        self._trace = None
        try:
            return self._search()
        except BudgetExceeded:
            return SolveResult.UNKNOWN
        finally:
            self._retire_leftover_groups()
            peak = self.solver.stats.peak_db_literals
            if peak > self.stats.peak_db_literals:
                self.stats.peak_db_literals = peak

    def trace(self) -> Optional[Trace]:
        """The witness path of the last SAT answer."""
        return self._trace

    def retarget(self, k: int) -> None:
        """Re-aim the solver at a new bound without rebuilding anything.

        The clause database (one TR copy, guarded I and F) does not
        depend on k, and the no-good cache is bound-independent, so a
        bound sweep can reuse one solver for every k.
        """
        if k < 0:
            raise ValueError("bound k must be non-negative")
        self.k = k
        self._trace = None

    # ==================================================================
    # Search
    # ==================================================================
    def _query_budget(self) -> Budget:
        b = self._budget
        seconds = None
        if self._deadline is not None:
            seconds = max(1e-3, self._deadline - time.monotonic())
        conflicts = None
        if b.max_conflicts is not None:
            used = self.solver.stats.conflicts - self._conflicts_at_start
            conflicts = max(1, b.max_conflicts - used)
        propagations = None
        if b.max_propagations is not None:
            used = self.solver.stats.propagations - self._props_at_start
            propagations = max(1, b.max_propagations - used)
        return Budget(max_seconds=seconds, max_conflicts=conflicts,
                      max_propagations=propagations,
                      max_literals=b.max_literals)

    def _out_of_budget(self) -> bool:
        b = self._budget
        if self._deadline is not None and time.monotonic() > self._deadline:
            return True
        if b.max_conflicts is not None and \
                self.solver.stats.conflicts - self._conflicts_at_start \
                >= b.max_conflicts:
            return True
        if b.max_propagations is not None and \
                self.solver.stats.propagations - self._props_at_start \
                >= b.max_propagations:
            return True
        return False

    def _run_query(self, assumptions: List[int]) -> SolveResult:
        self.stats.queries += 1
        if self._out_of_budget():
            raise BudgetExceeded("global budget")
        result = self.solver.solve(assumptions, budget=self._query_budget())
        self.stats.sat_conflicts = self.solver.stats.conflicts
        self.stats.sat_propagations = self.solver.stats.propagations
        if result is SolveResult.UNKNOWN:
            raise BudgetExceeded("query budget")
        return result

    def _state_assumptions(self, state: State) -> List[int]:
        return [v if bit else -v for v, bit in zip(self._u_vars, state)]

    def _model_state(self) -> State:
        return tuple(bool(self.solver.model_value(v)) for v in self._v_vars)

    def _model_inputs(self) -> Dict[str, bool]:
        return {name: bool(self.solver.model_value(v))
                for name, v in zip(self.system.input_vars, self._x_vars)}

    def _model_u_state(self) -> State:
        return tuple(bool(self.solver.model_value(v)) for v in self._u_vars)

    def _final_holds(self, state: State) -> bool:
        env = dict(zip(self.system.state_vars, state))
        return self.final.evaluate(env)

    # ------------------------------------------------------------------
    # No-good cache.  Exact mode: keyed by exact remaining distance.
    # Within mode: monotone — remember the largest remaining budget that
    # already failed for the state.
    # ------------------------------------------------------------------
    def _cache_lookup(self, state: State, remaining: int) -> bool:
        if not self.use_cache:
            return False
        if self.semantics == "exact":
            return state in self._nogood_exact.get(remaining, ())
        failed = self._nogood_within.get(state)
        return failed is not None and failed >= remaining

    def _cache_store(self, state: State, remaining: int) -> None:
        if not self.use_cache:
            return
        if self.semantics == "exact":
            self._nogood_exact.setdefault(remaining, set()).add(state)
        else:
            prev = self._nogood_within.get(state, -1)
            if remaining > prev:
                self._nogood_within[state] = remaining

    def cache_size(self) -> int:
        """Number of cached no-good (state, distance) facts."""
        if self.semantics == "exact":
            return sum(len(s) for s in self._nogood_exact.values())
        return len(self._nogood_within)

    # ------------------------------------------------------------------
    def _search(self) -> SolveResult:
        if not self._ok or not self.solver.ok:
            return SolveResult.UNSAT
        if self.k == 0 or self.semantics == "within":
            # Depth-0 check: an initial state already satisfying F.
            result = self._run_query([self._init_act, self._fin_u_act])
            if result is SolveResult.SAT:
                state = self._model_u_state()
                self._trace = Trace([dict(zip(self.system.state_vars,
                                              state))])
                return SolveResult.SAT
            if self.k == 0:
                return result

        root_group = self._new_group()
        frames: List[_Frame] = []
        pops_since_purge = 0

        while True:
            if not frames:
                # Decide Z0: a not-yet-blocked initial state that has at
                # least one outgoing transition (formula (5) shape).
                assumptions = [root_group, self._init_act, self._trans_act]
                if self.k == 1 and self.f_pruning and \
                        self.semantics == "exact":
                    assumptions.append(self._fin_act)
                result = self._run_query(assumptions)
                if result is SolveResult.UNSAT:
                    # Retire the root enumeration group, or its blocking
                    # clauses would pile up across re-solves (the native
                    # sweep reuses this solver at every bound).
                    self._retire_group(root_group)
                    self.solver.purge_satisfied()
                    return SolveResult.UNSAT
                state = self._model_u_state()
                if self._cache_lookup(state, self.k):
                    self.stats.cache_hits += 1
                    self._block_u(root_group, state)
                    continue
                frames.append(_Frame(state, {}, self._new_group()))
                self.stats.pushes += 1
                continue

            depth = len(frames) - 1            # frames[-1].state is Z_depth
            if depth == self.k:
                self._finish(frames)           # full path decided
                return SolveResult.SAT
            frame = frames[-1]
            assumptions = [frame.group, self._trans_act]
            assumptions += self._state_assumptions(frame.state)
            last_step = (depth + 1 == self.k)
            if last_step and self.f_pruning and self.semantics == "exact":
                assumptions.append(self._fin_act)
            result = self._run_query(assumptions)

            if result is SolveResult.SAT:
                nxt = self._model_state()
                inputs = self._model_inputs()
                if self.semantics == "within":
                    if self._final_holds(nxt):
                        frames.append(_Frame(nxt, inputs,
                                             self._new_group()))
                        self.stats.pushes += 1
                        self._finish(frames)
                        return SolveResult.SAT
                    if last_step:
                        # No steps left to extend a non-final state.
                        self._block_v(frame.group, nxt)
                        continue
                if last_step and self.semantics == "exact" and \
                        not self.f_pruning:
                    # Ablation mode: test F after deciding the state.
                    if self._final_holds(nxt):
                        frames.append(_Frame(nxt, inputs,
                                             self._new_group()))
                        self.stats.pushes += 1
                        self._finish(frames)
                        return SolveResult.SAT
                    self._block_v(frame.group, nxt)
                    continue
                remaining = self.k - (depth + 1)
                if self._cache_lookup(nxt, remaining):
                    self.stats.cache_hits += 1
                    self._block_v(frame.group, nxt)
                    continue
                frames.append(_Frame(nxt, inputs, self._new_group()))
                self.stats.pushes += 1
                continue

            # No (further) useful successor from frame.state.
            self._cache_store(frame.state, self.k - depth)
            self._retire_group(frame.group)
            frames.pop()
            self.stats.pops += 1
            pops_since_purge += 1
            if pops_since_purge >= self.purge_interval:
                self.solver.purge_satisfied()
                pops_since_purge = 0
            if frames:
                self._block_v(frames[-1].group, frame.state)
            else:
                self._block_u(root_group, frame.state)

    # ------------------------------------------------------------------
    def _finish(self, frames: Sequence[_Frame]) -> None:
        states = [dict(zip(self.system.state_vars, f.state)) for f in frames]
        inputs = [dict(f.inputs) for f in frames[1:]]
        self._trace = Trace(states, inputs)

    def _block_v(self, group: int, state: State) -> None:
        """Forbid ``state`` as the V answer inside the given group."""
        lits = [-group]
        lits.extend(-v if bit else v
                    for v, bit in zip(self._v_vars, state))
        self.solver.add_clause(lits)
        self.stats.blocked += 1

    def _block_u(self, group: int, state: State) -> None:
        """Forbid ``state`` as the U answer (root enumeration)."""
        lits = [-group]
        lits.extend(-v if bit else v
                    for v, bit in zip(self._u_vars, state))
        self.solver.add_clause(lits)
        self.stats.blocked += 1

    def _new_group(self) -> int:
        group = self.solver.new_var()
        self._live_groups.add(group)
        return group

    def _retire_group(self, group: int) -> None:
        self.solver.add_clause([-group])
        self._live_groups.discard(group)

    def _retire_leftover_groups(self) -> None:
        """Retire every group the last solve left live (SAT exits keep
        their frames' groups; a budget abort unwinds past all of them).
        Without this the groups' blocking clauses — never reclaimable,
        never assumed again — would accumulate across the solves of a
        long-lived session."""
        if not self._live_groups:
            return
        for group in sorted(self._live_groups):
            self.solver.add_clause([-group])
        self._live_groups.clear()
        self.solver.purge_satisfied()

    # ------------------------------------------------------------------
    def resident_literals(self) -> int:
        """Current clause-database size (the space-claim measurement)."""
        return self.solver.stats.db_literals
