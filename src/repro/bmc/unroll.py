"""Formula (1): classical BMC by unrolling the transition relation.

    R_k(Z0, Zk) = ∃ Z1..Zk-1 : I(Z0) ∧ F(Zk) ∧ ⋀_{i<k} TR(Zi, Zi+1)

The existentials are plain propositional variables, so the formula is
decided by a SAT solver.  The price is **k copies of TR** — the memory
growth the paper sets out to avoid; :func:`repro.bmc.metrics` measures
exactly this.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..logic import expr as ex
from ..logic.cnf import CNF, VarPool
from ..logic.expr import Expr
from ..logic.tseitin import TseitinEncoder
from ..system.model import TransitionSystem
from ..system.trace import Trace
from ..telemetry.trace import current_tracer

__all__ = ["UnrolledEncoding", "encode_unrolled"]


def _frame_name(var: str, step: int) -> str:
    return f"{var}@{step}"


class UnrolledEncoding:
    """The CNF of formula (1) plus the bookkeeping to read traces back.

    Attributes
    ----------
    cnf:
        The propositional formula.
    pool:
        Variable pool; frame variables are named ``<var>@<step>``.
    k:
        The bound.
    """

    def __init__(self, system: TransitionSystem, final: Expr, k: int,
                 semantics: str = "exact",
                 polarity_reduction: bool = False) -> None:
        if k < 0:
            raise ValueError("bound k must be non-negative")
        if semantics not in ("exact", "within"):
            raise ValueError(f"unknown semantics {semantics!r}")
        stray = final.support() - set(system.state_vars)
        if stray:
            raise ValueError(f"final predicate uses non-state vars: {stray}")
        self.system = system
        self.final = final
        self.k = k
        self.semantics = semantics
        self.pool = VarPool()
        self.cnf = CNF()
        self._encode(polarity_reduction)

    # ------------------------------------------------------------------
    def _encode(self, polarity_reduction: bool) -> None:
        with current_tracer().span("encode.unroll", k=self.k,
                                   semantics=self.semantics) as sp:
            self._encode_body(polarity_reduction)
            sp.set(clauses=len(self.cnf.clauses), vars=self.cnf.num_vars)

    def _encode_body(self, polarity_reduction: bool) -> None:
        system = self.system
        k = self.k
        encoder = TseitinEncoder(self.cnf, self.pool, polarity_reduction)

        frames = [[_frame_name(v, i) for v in system.state_vars]
                  for i in range(k + 1)]
        init_frame0 = system.rename_state_expr(system.init, frames[0])
        encoder.assert_expr(init_frame0)

        for i in range(k):
            step = system.trans_between(frames[i], frames[i + 1],
                                        input_suffix=f"@{i}")
            encoder.assert_expr(step)

        if self.semantics == "exact":
            encoder.assert_expr(
                system.rename_state_expr(self.final, frames[k]))
        else:
            encoder.assert_expr(ex.disjoin(
                system.rename_state_expr(self.final, frames[i])
                for i in range(k + 1)))

        # Register every frame variable even if logically unconstrained,
        # so trace extraction can always resolve it.
        for frame in frames:
            for name in frame:
                self.pool.named(name)
        for i in range(k):
            for name in system.input_vars:
                self.pool.named(_frame_name(name, i))
        self.cnf.num_vars = max(self.cnf.num_vars, self.pool.num_vars)

    # ------------------------------------------------------------------
    def state_var(self, name: str, step: int) -> int:
        """CNF variable of state bit ``name`` at the given step."""
        return self.pool.named(_frame_name(name, step))

    def input_var(self, name: str, step: int) -> int:
        """CNF variable of input ``name`` driving step -> step+1."""
        return self.pool.named(_frame_name(name, step))

    def extract_trace(self, model_value) -> Trace:
        """Rebuild the witness path from a satisfying assignment.

        ``model_value`` is a callable mapping a CNF variable to
        bool/None (e.g. ``CdclSolver.model_value``); unassigned
        variables default to False.
        """
        states: List[Dict[str, bool]] = []
        for i in range(self.k + 1):
            states.append({
                v: bool(model_value(self.state_var(v, i)))
                for v in self.system.state_vars})
        inputs: List[Dict[str, bool]] = []
        for i in range(self.k):
            inputs.append({
                v: bool(model_value(self.input_var(v, i)))
                for v in self.system.input_vars})
        return Trace(states, inputs)

    def stats(self) -> Dict[str, int]:
        out = self.cnf.stats()
        out["trans_copies"] = self.k
        return out


def encode_unrolled(system: TransitionSystem, final: Expr, k: int,
                    semantics: str = "exact",
                    polarity_reduction: bool = False) -> UnrolledEncoding:
    """Build the formula (1) encoding for the given query."""
    return UnrolledEncoding(system, final, k, semantics, polarity_reduction)
