"""All-solutions-SAT reachability analysis.

The paper's introduction lists "SAT-based reachability analysis based
on 'all-solutions' SAT solvers" among the symbolic techniques that
suffer memory explosion.  This module implements that baseline: each
breadth-first image is computed by enumerating the models of
``frontier(Z) ∧ TR(Z, X, Z')`` with blocking clauses on the projected
next-state minterms — one shared incremental CDCL instance, blocking
clauses standing in for the enumerated state sets (whose growth is
exactly the blow-up the intro describes; ``peak_blocking_literals``
exposes it).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..logic.cnf import CNF, VarPool
from ..logic.expr import Expr
from ..logic.tseitin import TseitinEncoder
from ..sat.kernel import make_solver
from ..sat.types import Budget, BudgetExceeded, SolveResult
from ..system.model import TransitionSystem

__all__ = ["AllSatReachability"]

State = Tuple[bool, ...]


class AllSatReachability:
    """Breadth-first reachability by SAT solution enumeration."""

    def __init__(self, system: TransitionSystem) -> None:
        self.system = system
        self.pool = VarPool()
        cnf = CNF()
        encoder = TseitinEncoder(cnf, self.pool)
        self._u = [self.pool.named(f"{v}#U") for v in system.state_vars]
        self._v = [self.pool.named(f"{v}#V") for v in system.state_vars]
        trans = system.trans_between(
            [f"{v}#U" for v in system.state_vars],
            [f"{v}#V" for v in system.state_vars], input_suffix="#X")
        self._trans_act = self.pool.fresh("act")
        trans_lit = encoder.encode(trans)
        init_u = system.rename_state_expr(system.init,
                                          [f"{v}#U" for v in
                                           system.state_vars])
        self._init_act = self.pool.fresh("act_i")
        init_lit = encoder.encode(init_u) if not init_u.is_true else None
        self.solver = make_solver()
        self.solver.ensure_vars(max(cnf.num_vars, self.pool.num_vars))
        self.solver.add_clauses(cnf.clauses)
        self.solver.add_clause([-self._trans_act, trans_lit])
        if init_lit is not None:
            self.solver.add_clause([-self._init_act, init_lit])
        self.peak_blocking_literals = 0
        self.total_blocking_literals = 0
        self._blocking_literals = 0

    # ------------------------------------------------------------------
    def _enumerate(self, assumptions: List[int], read_vars: List[int],
                   budget: Budget | None) -> Set[State]:
        """All distinct projections of models onto ``read_vars``."""
        out: Set[State] = set()
        group = self.solver.new_var()
        while True:
            result = self.solver.solve([group] + assumptions, budget=budget)
            if result is SolveResult.UNKNOWN:
                self.solver.add_clause([-group])
                raise BudgetExceeded("all-sat enumeration")
            if result is SolveResult.UNSAT:
                break
            state = tuple(bool(self.solver.model_value(v))
                          for v in read_vars)
            out.add(state)
            block = [-group]
            block.extend(-v if bit else v
                         for v, bit in zip(read_vars, state))
            self.solver.add_clause(block)
            self._blocking_literals += len(block)
            self.total_blocking_literals += len(block)
            if self._blocking_literals > self.peak_blocking_literals:
                self.peak_blocking_literals = self._blocking_literals
        self.solver.add_clause([-group])
        self.solver.purge_satisfied()
        self._blocking_literals = 0
        return out

    def initial_states(self, budget: Budget | None = None) -> Set[State]:
        """Enumerate I by All-SAT (no transition required)."""
        return self._enumerate([self._init_act], self._u, budget)

    def image(self, states: Set[State],
              budget: Budget | None = None) -> Set[State]:
        """Successors of a concrete state set, one All-SAT run per state."""
        out: Set[State] = set()
        for state in states:
            assumptions = [self._trans_act]
            assumptions += [v if bit else -v
                            for v, bit in zip(self._u, state)]
            out |= self._enumerate(assumptions, self._v, budget)
        return out

    # ------------------------------------------------------------------
    def layers(self, count: int,
               budget: Budget | None = None) -> List[Set[State]]:
        out = [self.initial_states(budget)]
        for _ in range(count):
            out.append(self.image(out[-1], budget))
        return out

    def reachable_fixpoint(self, budget: Budget | None = None
                           ) -> Tuple[Set[State], int]:
        reached = self.initial_states(budget)
        frontier = set(reached)
        iterations = 0
        while frontier:
            iterations += 1
            new = self.image(frontier, budget) - reached
            reached |= new
            frontier = new
        return reached, iterations

    def shortest_distance(self, predicate: Expr,
                          budget: Budget | None = None) -> Optional[int]:
        names = self.system.state_vars

        def hits(states: Set[State]) -> bool:
            return any(predicate.evaluate(dict(zip(names, s)))
                       for s in states)

        reached = self.initial_states(budget)
        frontier = set(reached)
        depth = 0
        while frontier:
            if hits(frontier):
                return depth
            new = self.image(frontier, budget) - reached
            reached |= new
            frontier = new
            depth += 1
        return None
