"""Command-line interface: ``repro`` / ``repro-bmc`` / ``python -m repro``.

Subcommands
-----------
``solve-cnf FILE``
    Decide a DIMACS CNF with the CDCL solver.
``solve-qbf FILE``
    Decide a QDIMACS QBF (``--backend qdpll|expansion``).
``bmc FAMILY``
    Run a bounded reachability query on a built-in design family
    (``--method``, ``-k``, ``--semantics``); prints the trace on SAT.
    ``--method portfolio`` races sat-unroll and jsat in parallel
    worker processes and reports the winner.
``sweep FAMILY``
    Sweep bounds k = 0..max-k on a built-in design (``--max-k``,
    ``--methods``): per-bound statuses, solver-reuse statistics, and
    the shortest counterexample with its time-to-cex.  The default
    method is ``sat-incremental`` — one solver across all bounds.
``check [FAMILY]``
    Check *named properties* — invariants and bounded-LTL formulas —
    over one shared unrolling.  ``--spec "G !(req0 & req1)"`` (repeat
    for several; optional ``name := formula`` labels) supplies
    properties in the spec grammar; without ``--spec`` the family's
    standard multi-property bundle (or every ``SPEC``/``INVARSPEC`` of
    an ``--smv`` module) is checked.  ``--sweep`` resolves each
    property at its earliest bound and streams progress.
``batch``
    Run a (suite × methods) matrix across a worker pool
    (``--jobs N``), optionally memoized on disk (``--cache DIR``);
    prints the solved-counts table plus per-worker attribution.
``serve`` / ``submit`` / ``status`` / ``cancel``
    BMC as a service.  ``serve --socket PATH`` (or ``--port N``) runs
    the long-lived daemon: a warm worker pool plus result cache behind
    a newline-delimited-JSON protocol with priority queueing,
    per-client fairness, cooperative cancellation and streamed sweep
    progress (see docs/SERVICE.md).  ``submit FAMILY -k N [--wait
    | --follow]`` sends one job, ``status [JOB]`` inspects a job or
    the daemon's stats, ``cancel JOB`` frees the job's worker without
    killing it.
``backends``
    List the backend registry: every registered decision method with
    its capabilities and typed options.  Custom backends registered
    via :func:`repro.bmc.register_backend` appear here — and are
    accepted by ``bmc``/``sweep``/``batch`` — without any CLI edit.
``reduce FAMILY``
    Report the model-reduction pipeline's effect on a family's
    multi-property instance: latches / inputs / TR size before→after
    per property, plus how many distinct cones the properties share.
    ``bmc`` / ``sweep`` / ``check`` / ``batch`` all accept
    ``--reduce`` (default) / ``--no-reduce`` to toggle the pipeline
    on their queries.
``experiment {e1,...,e8}``
    Regenerate one evaluation artifact (scaled budgets by default).
``suite``
    Print the built-in suite composition (the count is derived from
    the live suite, never hardcoded), or — with ``--corpus DIR`` — the
    composition of an ingested model corpus.
``import DIR``
    Ingest a directory of third-party models (ASCII/binary AIGER,
    ``.bench``, ``.smv``) into suite-compatible instances and write a
    fingerprinted manifest (``--manifest FILE``).  ``bmc`` / ``sweep``
    / ``check`` / ``batch`` / ``suite`` accept ``--corpus DIR`` to run
    on ingested models, and ``bmc`` / ``check`` / ``serve`` accept
    ``--no-sim-tier`` to disable the bit-parallel random-simulation
    pre-solve tier (``batch`` enables it with ``--sim-tier``).
"""

from __future__ import annotations

import argparse
import logging
import os
import sys
import time
from typing import List, Optional

from .bmc.backend import ALL_METHODS, METHODS, registered_backends
from .bmc.session import BmcSession
from .harness import experiments
from .logic.dimacs import parse_dimacs, parse_qdimacs
from .models import FAMILIES, build_suite, suite_summary
from .qbf.expansion import ExpansionSolver
from .qbf.pcnf import PCNF
from .qbf.qdpll import QdpllSolver
from .sat.kernel import make_solver
from .sat.types import SAT_ENGINE_ENV, SAT_ENGINES, Budget, SolveResult
from .telemetry import (MetricsRegistry, Tracer, set_metrics, set_tracer,
                        write_chrome_trace)

__all__ = ["main"]

logger = logging.getLogger(__name__)


class _StderrHandler(logging.Handler):
    """Log handler that resolves ``sys.stderr`` at emit time.

    A plain StreamHandler captures the stream once at construction,
    which breaks under test harnesses (pytest capsys) that swap
    ``sys.stderr`` per test; looking it up per record keeps in-process
    ``main()`` calls observable.
    """

    def emit(self, record: logging.LogRecord) -> None:
        print(self.format(record), file=sys.stderr)


def _setup_logging(verbosity: int) -> None:
    """Configure the ``repro`` logger tree for one CLI invocation.

    WARNING by default, INFO at ``-v``, DEBUG at ``-vv``; messages go
    to stderr so report tables on stdout stay machine-readable.
    """
    package_logger = logging.getLogger("repro")
    if not any(isinstance(h, _StderrHandler)
               for h in package_logger.handlers):
        handler = _StderrHandler()
        handler.setFormatter(logging.Formatter("%(name)s: %(message)s"))
        package_logger.addHandler(handler)
        package_logger.propagate = False
    level = (logging.WARNING if verbosity <= 0
             else logging.INFO if verbosity == 1 else logging.DEBUG)
    package_logger.setLevel(level)


def _budget_from_args(args: argparse.Namespace) -> Optional[Budget]:
    if args.timeout is None and args.conflicts is None:
        return None
    return Budget(max_seconds=args.timeout, max_conflicts=args.conflicts)


def _reduce_from_args(args: argparse.Namespace) -> str:
    """Map the --reduce/--no-reduce flag onto the session knob."""
    return "auto" if getattr(args, "reduce", False) else "off"


def _cmd_solve_cnf(args: argparse.Namespace) -> int:
    with open(args.file) as handle:
        cnf = parse_dimacs(handle)
    solver = make_solver()
    solver.ensure_vars(cnf.num_vars)
    solver.add_clauses(cnf.clauses)
    start = time.perf_counter()
    result = solver.solve(budget=_budget_from_args(args))
    elapsed = time.perf_counter() - start
    print(f"s {result.name}  ({elapsed:.3f} s, "
          f"{solver.stats.conflicts} conflicts)")
    if result is SolveResult.SAT and args.model:
        lits = [v if val else -v for v, val in sorted(solver.model().items())]
        print("v " + " ".join(map(str, lits)) + " 0")
    return 0 if result is not SolveResult.UNKNOWN else 2


def _cmd_solve_qbf(args: argparse.Namespace) -> int:
    with open(args.file) as handle:
        prefix, matrix = parse_qdimacs(handle)
    pcnf = PCNF(prefix, matrix)
    start = time.perf_counter()
    if args.backend == "qdpll":
        result = QdpllSolver(pcnf).solve(budget=_budget_from_args(args))
    else:
        result = ExpansionSolver(pcnf).solve(budget=_budget_from_args(args))
    elapsed = time.perf_counter() - start
    print(f"s {result.name}  ({elapsed:.3f} s, backend={args.backend})")
    return 0 if result is not SolveResult.UNKNOWN else 2


def _cmd_bmc(args: argparse.Namespace) -> int:
    if args.corpus is not None:
        instance, err = _corpus_lookup(args.corpus, args.family)
        if instance is None:
            print(f"bmc: {err}", file=sys.stderr)
            return 1
    else:
        instances = [i for i in build_suite() if i.family == args.family]
        if not instances:
            print(f"unknown family {args.family!r}; "
                  f"available: {', '.join(FAMILIES)}", file=sys.stderr)
            return 1
        instance = instances[0]
    k = args.k if args.k is not None else instance.k
    if args.sim_tier:
        # Pre-solve tier: easy SAT instances die here, before any
        # solver spins up (--no-sim-tier goes straight to --method).
        from .sim import presolve
        sim_out = presolve(instance.system, instance.final, k,
                           semantics=args.semantics)
        if sim_out is not None and sim_out.trace is not None:
            sim_out.trace.validate(instance.system)
            print(f"{instance.name} (k={k}, simulation pre-solve, "
                  f"{args.semantics}): SAT in {sim_out.seconds:.3f} s")
            for key, value in sorted(sim_out.stats.items()):
                print(f"  {key} = {value}")
            print(sim_out.trace.format(
                sorted(instance.system.state_vars)))
            return 0
    options = {}
    if args.method == "portfolio" and args.jobs:
        # --jobs caps the number of raced methods (one process each).
        from .portfolio.race import DEFAULT_RACE_METHODS
        options["portfolio_methods"] = DEFAULT_RACE_METHODS[:args.jobs]
    with BmcSession(instance.system,
                    properties={"target": instance.final},
                    reduce=_reduce_from_args(args),
                    sim_tier=args.sim_tier) as session:
        result = session.check(k, method=args.method,
                               semantics=args.semantics,
                               budget=_budget_from_args(args), **options)
    print(f"{instance.name} (k={k}, {args.method}, {args.semantics}): "
          f"{result.status.name} in {result.seconds:.3f} s")
    for key, value in sorted(result.stats.items()):
        print(f"  {key} = {value}")
    if result.trace is not None:
        print(result.trace.format(sorted(instance.system.state_vars)))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .harness.report import format_sweep

    if args.corpus is not None:
        instance, err = _corpus_lookup(args.corpus, args.family)
        if instance is None:
            print(f"sweep: {err}", file=sys.stderr)
            return 1
    else:
        instances = [i for i in build_suite() if i.family == args.family]
        if not instances:
            print(f"unknown family {args.family!r}; "
                  f"available: {', '.join(FAMILIES)}", file=sys.stderr)
            return 1
        instance = instances[0]
    max_k = args.max_k if args.max_k is not None else instance.k
    status = 0
    with BmcSession(instance.system,
                    properties={"target": instance.final},
                    reduce=_reduce_from_args(args)) as session:
        for method in args.methods:
            result = session.sweep(max_k, method=method,
                                   budget=_budget_from_args(args))
            print(f"== {instance.name}: sweep k=0..{max_k}, {method} ==")
            print(format_sweep(result))
            if result.trace is not None:
                print(result.trace.format(
                    sorted(instance.system.state_vars)))
            if result.status is SolveResult.UNKNOWN:
                status = 2
            print()
    return status


def _parse_cli_specs(spec_args: List[str]):
    """Parse repeated ``--spec`` values (optionally ``name := formula``)."""
    from .spec import parse_spec

    properties = {}
    for i, text in enumerate(spec_args):
        name = None
        if ":=" in text:
            name, text = (part.strip() for part in text.split(":=", 1))
        name = name or f"spec{i}"
        if name in properties:
            raise ValueError(f"duplicate spec label {name!r}")
        properties[name] = parse_spec(text)
    return properties


def _cmd_check(args: argparse.Namespace) -> int:
    from .models.suite import build_property_suite
    from .spec import SpecError, Verdict

    if args.corpus is not None and args.smv is not None:
        print("check: --corpus and --smv are mutually exclusive",
              file=sys.stderr)
        return 1
    if args.corpus is not None:
        if args.family is None:
            print("check: --corpus needs a model name (the file stem)",
                  file=sys.stderr)
            return 1
        from .workloads import CorpusError, load_circuit, scan_directory
        try:
            paths = [p for p in scan_directory(args.corpus)
                     if p.stem == args.family]
            if not paths:
                print(f"check: no corpus model {args.family!r} under "
                      f"{args.corpus}", file=sys.stderr)
                return 1
            circuit = load_circuit(paths[0])
        except CorpusError as err:
            print(f"check: {err}", file=sys.stderr)
            return 1
        system = circuit.to_transition_system()
        properties = dict(circuit.properties)
        subject, default_k = circuit.name, 10
    elif (args.family is None) == (args.smv is None):
        print("check: give exactly one of FAMILY or --smv FILE",
              file=sys.stderr)
        return 1
    elif args.smv is not None:
        from .system.smv import parse_smv
        with open(args.smv) as handle:
            circuit = parse_smv(handle.read())
        system = circuit.to_transition_system()
        properties = dict(circuit.properties)
        subject, default_k = circuit.name, 10
    else:
        instances = [i for i in build_property_suite()
                     if i.family == args.family]
        if not instances:
            print(f"unknown family {args.family!r}; "
                  f"available: {', '.join(FAMILIES)}", file=sys.stderr)
            return 1
        instance = instances[0]
        system = instance.system
        properties = dict(instance.properties)
        subject, default_k = instance.name, instance.k
    try:
        if args.spec:
            properties = _parse_cli_specs(args.spec)
        if not properties:
            print("check: no properties (the module declares no specs "
                  "and no --spec was given)", file=sys.stderr)
            return 1
        k = args.k if args.k is not None else default_k
        budget = _budget_from_args(args)
        with BmcSession(system, properties=properties,
                        reduce=_reduce_from_args(args),
                        prover=args.prover,
                        prover_max_k=args.prover_max_k,
                        sim_tier=args.sim_tier) as session:
            if args.sweep:
                # Per-bound progress streams on the logger (stderr,
                # enabled with -v) so stdout stays report-only.
                results = session.sweep_properties(
                    k, budget=budget,
                    on_bound=lambda name, b: logger.info(
                        "[%s] bound %d: %s", name, b.k, b.status.name))
            else:
                results = session.check_properties(k, budget=budget)
    except (SpecError, ValueError) as err:
        print(f"check: {err}", file=sys.stderr)
        return 1
    print(f"== {subject}: {len(results)} properties, bound {k} ==")
    verdicts = set()
    inconclusive = 0
    for name, result in results.items():
        if result.proved:
            evidence = "proved"
        elif result.conclusive:
            evidence = "certificate"
        elif result.verdict is Verdict.HOLDS:
            # A bounded HOLDS is only "no counterexample up to k" —
            # say so instead of printing an unqualified verdict.
            evidence = f"holds up to {result.k} (bounded)"
        else:
            evidence = f"bounded, k={result.k}"
        print(f"{name:24s} {result.verdict.value.upper():9s} "
              f"({evidence}, {result.seconds * 1e3:.1f} ms)  "
              f"{result.prop}")
        if result.trace is not None:
            print(result.trace.format(sorted(system.state_vars)))
        verdicts.add(result.verdict)
        if not result.conclusive:
            inconclusive += 1
    # A definite violation outranks an inconclusive property: CI
    # gating on exit 1 must never miss a real counterexample.
    if Verdict.VIOLATED in verdicts:
        return 1
    if Verdict.UNKNOWN in verdicts:
        return 2
    if args.require_proof and inconclusive:
        print(f"{inconclusive} verdict(s) are bounded only and "
              f"--require-proof is set", file=sys.stderr)
        return 2
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    from .harness.runner import default_budget, run_matrix, solved_counts
    from .harness.report import (format_solved_counts,
                                 format_worker_attribution)

    if args.corpus is not None:
        from .workloads import CorpusError, ingest
        try:
            instances = ingest(args.corpus).instances
        except CorpusError as err:
            print(f"batch: {err}", file=sys.stderr)
            return 1
        if not instances:
            print(f"batch: no ingestable models under {args.corpus}",
                  file=sys.stderr)
            return 1
    else:
        instances = build_suite()
    if args.family:
        instances = [i for i in instances if i.family in args.family]
        if not instances:
            print(f"no instances in families {args.family}; "
                  f"available: {', '.join(FAMILIES)}", file=sys.stderr)
            return 1
    if args.limit:
        instances = instances[:args.limit]
    budget = _budget_from_args(args)
    if budget is None:
        # Deterministic default (no wall-clock term): solver paths are
        # identical whether cells run serially or on an oversubscribed
        # pool, so batch output matches the serial run cell-for-cell.
        base = default_budget(args.scale)
        budget = Budget(max_conflicts=base.max_conflicts,
                        max_literals=base.max_literals)
    cache = None
    if args.cache:
        from .portfolio.cache import ResultCache
        cache = ResultCache(args.cache)
    start = time.perf_counter()
    results = run_matrix(instances, args.methods, budget=budget,
                         jobs=args.jobs, cache=cache,
                         reduce=_reduce_from_args(args),
                         prover=args.prover,
                         sim_tier=args.sim_tier)
    wall = time.perf_counter() - start
    cpu = sum(c.cpu_seconds for c in results)
    lanes = len(args.methods)
    if args.prover and args.prover not in args.methods:
        lanes += 1
    print(f"== batch: {len(instances)} instances x "
          f"{lanes} methods"
          + (f" (prover lane: {args.prover})" if args.prover else "")
          + f", jobs={args.jobs or 1} ==")
    print(format_solved_counts(solved_counts(results)))
    print()
    print(format_worker_attribution(results))
    print(f"\nwall {wall:.2f} s, worker cpu {cpu:.2f} s "
          f"(speedup proxy {cpu / wall if wall > 0 else 0.0:.2f}x)")
    if cache is not None:
        # hits + misses is the number of lookups this run; len(results)
        # would misread whenever a cell is computed then re-served.
        lookups = cache.hits + cache.misses
        rate = 100.0 * cache.hits / lookups if lookups else 0.0
        print(f"cache: {len(cache)} entries on disk; this run: "
              f"{cache.hits} hits, {cache.misses} misses "
              f"({rate:.0f}% hit rate)")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    runners = {
        "e1": lambda: experiments.run_e1(budget_scale=args.scale),
        "e2": lambda: experiments.run_e2(),
        "e3": lambda: experiments.run_e3(),
        "e4": lambda: experiments.run_e4(budget_scale=args.scale),
        "e5": lambda: experiments.run_e5(),
        "e6": lambda: experiments.run_e6(),
        "e7": lambda: experiments.run_e7(budget_scale=args.scale),
        "e8": lambda: experiments.run_e8(),
    }
    _, report = runners[args.which]()
    print(f"== experiment {args.which.upper()} ==")
    print(report)
    return 0


def _cmd_backends(args: argparse.Namespace) -> int:
    import dataclasses

    def default_repr(field: "dataclasses.Field") -> str:
        if field.default is not dataclasses.MISSING:
            return repr(field.default)
        if field.default_factory is not dataclasses.MISSING:
            return repr(field.default_factory())
        return "<required>"

    print(f"{'name':16s} {'kind':10s} {'incremental':11s} "
          f"{'semantics':14s} {'proves':7s} options")
    for name, cls in registered_backends().items():
        kind = "composite" if cls.composite else "primitive"
        incremental = "native" if cls.native_incremental else "-"
        semantics = ",".join(cls.supported_semantics)
        proves = "yes" if cls.proves_unbounded else "-"
        opts = ", ".join(
            f"{f.name}={default_repr(f)}"
            for f in dataclasses.fields(cls.options_class)) or "-"
        print(f"{name:16s} {kind:10s} {incremental:11s} "
              f"{semantics:14s} {proves:7s} {opts}")
    return 0


def _cmd_reduce(args: argparse.Namespace) -> int:
    from .harness.report import format_reduction
    from .models.suite import build_property_suite
    from .reduce import default_pipeline

    instances = [i for i in build_property_suite()
                 if i.family == args.family]
    if not instances:
        print(f"unknown family {args.family!r}; "
              f"available: {', '.join(FAMILIES)}", file=sys.stderr)
        return 1
    instance = instances[0]
    pipeline = default_pipeline()
    rows = []
    cones = set()
    for name, prop in instance.properties.items():
        reduction = pipeline.reduce(instance.system, prop)
        cones.add(reduction.cone_key())
        summary = reduction.summary()
        summary["property"] = name
        rows.append(summary)
    print(f"== {instance.name}: model reduction, "
          f"{len(instance.properties)} properties ==")
    print(format_reduction(rows))
    print(f"\n{len(cones)} distinct cone(s) across "
          f"{len(instance.properties)} properties (each cone pays for "
          f"its shared unrolling once)")
    return 0


def _cmd_suite(args: argparse.Namespace) -> int:
    if args.corpus is not None:
        from .workloads import CorpusError, ingest
        try:
            report = ingest(args.corpus)
        except CorpusError as err:
            print(f"suite: {err}", file=sys.stderr)
            return 1
        print(f"{len(report.instances)} instances from "
              f"{len(report.entries)} models under {report.root}")
        for entry in report.entries:
            stats = entry.circuit.stats()
            targets = ", ".join(i.name.split(":", 1)[1]
                                for i in entry.instances)
            print(f"  {entry.circuit.name:12s} [{entry.format:12s}] "
                  f"inputs={stats['inputs']:3d} "
                  f"latches={stats['latches']:3d}  targets: {targets}")
        for path, err in report.errors.items():
            print(f"  ! {path}: {err}", file=sys.stderr)
        return 0
    suite = build_suite()
    print(f"{len(suite)} instances across {len(FAMILIES)} families")
    for family, row in suite_summary(suite).items():
        print(f"  {family:10s} instances={row['instances']:3d} "
              f"sat={row['sat']:3d} unsat={row['unsat']:3d}")
    return 0


def _cmd_import(args: argparse.Namespace) -> int:
    from .workloads import CorpusError, ingest, write_manifest
    try:
        report = ingest(args.dir, k=args.k,
                        reduce="auto" if args.reduce else "off",
                        strict=args.strict)
    except CorpusError as err:
        print(f"import: {err}", file=sys.stderr)
        return 1
    for entry in report.entries:
        stats = entry.circuit.stats()
        print(f"{entry.path} [{entry.format}] "
              f"inputs={stats['inputs']} latches={stats['latches']} "
              f"sha256={entry.sha256[:12]}")
        for inst in entry.instances:
            red = entry.reductions.get(inst.name, {})
            note = ""
            if red.get("reduced_latches") != red.get("original_latches"):
                note = (f"  ({red['original_latches']} -> "
                        f"{red['reduced_latches']} latches)")
            print(f"  {inst.name}  k={inst.k}{note}")
    for path, err in report.errors.items():
        print(f"! {path}: {err}", file=sys.stderr)
    print(f"{len(report.instances)} instances from "
          f"{len(report.entries)} models"
          + (f", {len(report.errors)} errors" if report.errors else ""))
    if args.manifest:
        write_manifest(report, args.manifest)
        print(f"manifest written to {args.manifest}")
    return 0 if report.instances else 1


# ----------------------------------------------------------------------
# serve / submit / status / cancel — the daemon and its clients
# ----------------------------------------------------------------------
def _endpoint_error(args: argparse.Namespace) -> bool:
    if (args.socket is None) == (args.port is None):
        print("pick exactly one endpoint: --socket PATH or --port N",
              file=sys.stderr)
        return True
    return False


def _connect_from_args(args: argparse.Namespace):
    from .serve import ServeClient
    try:
        return ServeClient(socket_path=args.socket, host=args.host,
                           port=args.port)
    except (ConnectionError, FileNotFoundError, OSError) as err:
        endpoint = args.socket or f"{args.host}:{args.port}"
        print(f"cannot reach daemon at {endpoint}: {err}",
              file=sys.stderr)
        return None


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve import ServeDaemon
    if _endpoint_error(args):
        return 1
    daemon = ServeDaemon(socket_path=args.socket, host=args.host,
                         port=args.port, jobs=getattr(args, "jobs", None),
                         cache_dir=args.cache,
                         wall_timeout=args.wall_timeout,
                         max_queued=args.max_queued,
                         sim_tier=args.sim_tier)
    endpoint = args.socket or f"{args.host}:{args.port}"
    print(f"repro serve: listening on {endpoint} "
          f"(Ctrl-C or the shutdown op to stop)", file=sys.stderr)
    daemon.run()
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from .serve import ServeError
    if _endpoint_error(args):
        return 1
    client = _connect_from_args(args)
    if client is None:
        return 1
    budget = None
    if args.timeout is not None or args.conflicts is not None:
        budget = {}
        if args.timeout is not None:
            budget["max_seconds"] = args.timeout
        if args.conflicts is not None:
            budget["max_conflicts"] = args.conflicts
    follow = args.follow
    wait = args.wait or follow
    kind = "sweep" if args.sweep else "check"
    with client:
        try:
            ack = client.submit(
                args.family, k=args.k, kind=kind, method=args.method,
                semantics=args.semantics, budget=budget,
                reduce=_reduce_from_args(args), priority=args.priority,
                deadline=args.deadline, subscribe=follow)
        except ServeError as err:
            print(f"rejected: {err}", file=sys.stderr)
            return 1
        state = ack.get("state", "?")
        extra = " (cached)" if ack.get("cached") \
            else " (coalesced)" if ack.get("coalesced") else ""
        print(f"job {ack['job']}: {state}{extra}")
        if not wait and "result" not in ack:
            return 0

        def on_bound(event) -> None:
            print(f"  k={event['k']:<3d} {event['status']:8s} "
                  f"{event['seconds'] * 1e3:8.1f} ms", flush=True)
        done = client.wait(ack, on_bound=on_bound if follow else None)
    state = done["state"]
    result = done.get("result") or {}
    if state != "done":
        print(f"job {done['job']}: {state}"
              + (f" ({result.get('error')})" if result.get("error")
                 else ""))
        return 3
    method = result.get("method") or args.method or "daemon default"
    print(f"{args.family} (k={result.get('k')}, {method}): "
          f"{result.get('status')} in {result.get('seconds', 0.0):.3f} s")
    for key, value in sorted((result.get("stats") or {}).items()):
        print(f"  {key} = {value}")
    trace = result.get("trace")
    if trace is not None:
        from .system.trace import Trace
        states = sorted(trace["states"][0]) if trace["states"] else []
        print(Trace(trace["states"], trace["inputs"]).format(states))
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    from .harness.report import format_serve_stats
    from .serve import ServeError
    if _endpoint_error(args):
        return 1
    client = _connect_from_args(args)
    if client is None:
        return 1
    with client:
        try:
            if args.job is None:
                print(format_serve_stats(client.stats()))
                return 0
            view = client.status(args.job)
        except ServeError as err:
            print(f"error: {err}", file=sys.stderr)
            return 1
    print(f"job {view['job']}: {view['state']}  "
          f"({view['family']} {view['kind']} k={view['k']} "
          f"{view['method']}, waiters={view['waiters']})")
    result = view.get("result")
    if result:
        print(f"  {result.get('status')} in "
              f"{result.get('seconds', 0.0):.3f} s")
    return 0


def _cmd_cancel(args: argparse.Namespace) -> int:
    from .serve import ServeError
    if _endpoint_error(args):
        return 1
    client = _connect_from_args(args)
    if client is None:
        return 1
    with client:
        try:
            view = client.cancel(args.job)
        except ServeError as err:
            print(f"error: {err}", file=sys.stderr)
            return 1
    print(f"job {view['job']}: {view['state']}")
    return 0


def _add_endpoint_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--socket", metavar="PATH", default=None,
                        help="unix-socket endpoint of the daemon")
    parser.add_argument("--port", type=int, default=None,
                        help="TCP endpoint of the daemon")
    parser.add_argument("--host", default="127.0.0.1",
                        help="TCP host (with --port)")


def _add_jobs_flag(parser: argparse.ArgumentParser) -> None:
    # Mirror of the global --jobs so it is accepted both before and
    # after the subcommand; SUPPRESS keeps a pre-subcommand value.
    parser.add_argument("--jobs", type=int, default=argparse.SUPPRESS,
                        help="worker processes")


def _add_telemetry_flags(parser: argparse.ArgumentParser) -> None:
    # Mirrors of the global telemetry flags (same SUPPRESS idiom as
    # --jobs) so they work both before and after the subcommand.
    parser.add_argument("--trace", metavar="FILE.json",
                        default=argparse.SUPPRESS,
                        help="write a Chrome trace-event timeline "
                             "(open at https://ui.perfetto.dev)")
    parser.add_argument("--metrics", action="store_true",
                        default=argparse.SUPPRESS,
                        help="print the aggregated metrics table "
                             "after the command")
    parser.add_argument("-v", "--verbose", action="count",
                        default=argparse.SUPPRESS,
                        help="log progress to stderr "
                             "(-v INFO, -vv DEBUG)")


def _add_reduce_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--reduce", action=argparse.BooleanOptionalAction,
                        default=True,
                        help="run the model-reduction pipeline "
                             "(cone of influence, constant/duplicate "
                             "latch sweeping) before solving")


def _prover_choices() -> tuple:
    return tuple(name for name, cls in registered_backends().items()
                 if cls.proves_unbounded)


def _add_prover_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--prover", choices=_prover_choices(),
                        default=None,
                        help="pair the run with an unbounded prover; "
                             "a closed proof turns a bounded "
                             "'holds up to k' into a conclusive HOLDS")


def _add_corpus_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--corpus", metavar="DIR", default=None,
                        help="resolve the positional name against models "
                             "ingested from DIR (.aag/.aig/.bench/.smv) "
                             "instead of the built-in suite")


def _add_sim_tier_flag(parser: argparse.ArgumentParser,
                       default: bool = True) -> None:
    parser.add_argument("--sim-tier",
                        action=argparse.BooleanOptionalAction,
                        default=default,
                        help="run the bit-parallel random-simulation "
                             "pre-solve tier before any solver spins up")


def _corpus_lookup(corpus_dir: str, name: str):
    """Resolve ``name`` against a corpus directory.

    Matches a full instance name (``model:target``) or a bare model
    stem (first target wins).  Returns ``(instance, None)`` or
    ``(None, error message)``.
    """
    from .workloads import CorpusError, ingest
    try:
        report = ingest(corpus_dir)
    except CorpusError as err:
        return None, str(err)
    matches = [i for i in report.instances
               if i.name == name or i.name.split(":", 1)[0] == name]
    if not matches:
        known = sorted(i.name for i in report.instances)
        return None, (f"no corpus model {name!r} under {corpus_dir}; "
                      f"instances: {', '.join(known) or '(none)'}")
    return matches[0], None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bmc",
        description="Space-efficient bounded model checking "
                    "(DATE 2005 reproduction)")
    parser.add_argument("--timeout", type=float, default=None,
                        help="wall-clock budget in seconds")
    parser.add_argument("--conflicts", type=int, default=None,
                        help="solver conflict budget")
    parser.add_argument("--solver", choices=SAT_ENGINES, default=None,
                        help="SAT engine for every CDCL query: the "
                             "array-based kernel (default) or the "
                             "pure-Python reference; also settable "
                             f"via ${SAT_ENGINE_ENV}")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for parallel commands "
                             "(batch sharding, portfolio racing)")
    parser.add_argument("--trace", metavar="FILE.json", default=None,
                        help="write a Chrome trace-event timeline of "
                             "the run (open at https://ui.perfetto.dev)")
    parser.add_argument("--metrics", action="store_true", default=False,
                        help="print the aggregated metrics table "
                             "after the command")
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="log progress to stderr "
                             "(-v INFO, -vv DEBUG)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("solve-cnf", help="decide a DIMACS CNF")
    p.add_argument("file")
    p.add_argument("--model", action="store_true",
                   help="print the satisfying assignment")
    p.set_defaults(fn=_cmd_solve_cnf)

    p = sub.add_parser("solve-qbf", help="decide a QDIMACS QBF")
    p.add_argument("file")
    p.add_argument("--backend", choices=("qdpll", "expansion"),
                   default="qdpll")
    p.set_defaults(fn=_cmd_solve_qbf)

    p = sub.add_parser("bmc",
                       help="run BMC on a built-in or imported design")
    p.add_argument("family", help=f"one of: {', '.join(FAMILIES)} "
                                  f"(or a corpus model with --corpus)")
    p.add_argument("-k", type=int, default=None, help="bound")
    p.add_argument("--method", choices=ALL_METHODS, default="jsat")
    p.add_argument("--semantics", choices=("exact", "within"),
                   default="exact")
    _add_corpus_flag(p)
    _add_sim_tier_flag(p)
    _add_jobs_flag(p)
    _add_reduce_flag(p)
    _add_telemetry_flags(p)
    p.set_defaults(fn=_cmd_bmc)

    p = sub.add_parser("sweep",
                       help="sweep bounds 0..max-k on a built-in design "
                            "(incremental by default)")
    p.add_argument("family", help=f"one of: {', '.join(FAMILIES)}")
    p.add_argument("--max-k", type=int, default=None,
                   help="largest bound (default: the family's suite bound)")
    p.add_argument("--methods", nargs="+", choices=ALL_METHODS,
                   default=["sat-incremental"],
                   help="methods to sweep (each gets its own pass)")
    _add_corpus_flag(p)
    _add_reduce_flag(p)
    _add_telemetry_flags(p)
    p.set_defaults(fn=_cmd_sweep)

    p = sub.add_parser("check",
                       help="check named properties / LTL specs over "
                            "one shared unrolling")
    p.add_argument("family", nargs="?", default=None,
                   help=f"one of: {', '.join(FAMILIES)}")
    p.add_argument("--smv", metavar="FILE", default=None,
                   help="check an SMV module's SPEC/INVARSPEC entries")
    p.add_argument("--spec", action="append", default=None,
                   metavar="[NAME :=] FORMULA",
                   help="a property in the spec grammar (repeatable); "
                        "replaces the default property set")
    p.add_argument("-k", type=int, default=None,
                   help="bound (default: the family's suite bound, or "
                        "10 for --smv)")
    p.add_argument("--sweep", action="store_true",
                   help="resolve each property at its earliest bound "
                        "0..k, streaming per-bound progress")
    _add_prover_flag(p)
    p.add_argument("--prover-max-k", type=int, default=64,
                   help="deepest bound the paired prover may explore")
    p.add_argument("--require-proof", action="store_true",
                   help="exit 2 unless every verdict is conclusive "
                        "(an unbounded proof or a concrete "
                        "certificate); bounded HOLDS no longer passes")
    _add_corpus_flag(p)
    _add_sim_tier_flag(p)
    _add_reduce_flag(p)
    _add_telemetry_flags(p)
    p.set_defaults(fn=_cmd_check)

    p = sub.add_parser("batch",
                       help="run a (suite x methods) matrix on a "
                            "worker pool")
    p.add_argument("--methods", nargs="+", choices=METHODS,
                   default=["sat-unroll", "jsat"],
                   help="methods to run over the suite")
    p.add_argument("--family", nargs="+", default=None,
                   help=f"restrict to families (default: all); "
                        f"one or more of: {', '.join(FAMILIES)}")
    p.add_argument("--limit", type=int, default=None,
                   help="run only the first N instances")
    p.add_argument("--cache", default=None, metavar="DIR",
                   help="on-disk result cache directory")
    p.add_argument("--scale", type=float, default=0.2,
                   help="budget scale when no explicit budget is given")
    _add_corpus_flag(p)
    # Off by default: batch matrices measure solver methods; the tier
    # answering cells first would skew every per-method column.
    _add_sim_tier_flag(p, default=False)
    _add_prover_flag(p)
    _add_jobs_flag(p)
    _add_reduce_flag(p)
    _add_telemetry_flags(p)
    p.set_defaults(fn=_cmd_batch)

    p = sub.add_parser("serve",
                       help="run the long-lived verification daemon")
    _add_endpoint_flags(p)
    p.add_argument("--cache", default=None, metavar="DIR",
                   help="on-disk result cache directory (default: "
                        "in-memory, lost at daemon exit)")
    p.add_argument("--wall-timeout", type=float, default=None,
                   help="hard per-job wall-clock limit enforced by "
                        "the pool (kill + respawn)")
    p.add_argument("--max-queued", type=int, default=16,
                   help="per-client active-job budget")
    _add_sim_tier_flag(p)
    _add_jobs_flag(p)
    _add_telemetry_flags(p)
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser("submit",
                       help="submit a job to a running daemon")
    p.add_argument("family", help=f"one of: {', '.join(FAMILIES)}")
    p.add_argument("-k", type=int, required=True,
                   help="bound (max bound with --sweep)")
    p.add_argument("--method", default=None, choices=ALL_METHODS,
                   help="decision method (default: daemon default; "
                        "naming one pins it, bypassing the daemon's "
                        "simulation pre-solve tier)")
    p.add_argument("--semantics", choices=("exact", "within"),
                   default="exact")
    p.add_argument("--sweep", action="store_true",
                   help="sweep bounds 0..k instead of one check")
    p.add_argument("--priority", type=int, default=0,
                   help="queue priority (higher runs first)")
    p.add_argument("--deadline", type=float, default=None,
                   help="evict the job if still queued after this "
                        "many seconds")
    p.add_argument("--wait", action="store_true",
                   help="block until the job finishes and print "
                        "its result")
    p.add_argument("--follow", action="store_true",
                   help="stream per-bound progress (implies --wait)")
    _add_endpoint_flags(p)
    _add_reduce_flag(p)
    p.set_defaults(fn=_cmd_submit)

    p = sub.add_parser("status",
                       help="query a job, or daemon stats without "
                            "a job id")
    p.add_argument("job", nargs="?", default=None)
    _add_endpoint_flags(p)
    p.set_defaults(fn=_cmd_status)

    p = sub.add_parser("cancel", help="cancel a submitted job")
    p.add_argument("job")
    _add_endpoint_flags(p)
    p.set_defaults(fn=_cmd_cancel)

    p = sub.add_parser("experiment", help="regenerate an evaluation table")
    p.add_argument("which", choices=[f"e{i}" for i in range(1, 9)])
    p.add_argument("--scale", type=float, default=0.2,
                   help="budget scale (1.0 = full budgets)")
    p.set_defaults(fn=_cmd_experiment)

    p = sub.add_parser("backends",
                       help="list the decision-method registry")
    p.set_defaults(fn=_cmd_backends)

    p = sub.add_parser("reduce",
                       help="report the model-reduction pipeline's "
                            "effect on a family's properties")
    p.add_argument("family", help=f"one of: {', '.join(FAMILIES)}")
    p.set_defaults(fn=_cmd_reduce)

    p = sub.add_parser(
        "suite",
        help=f"describe the built-in {len(build_suite())}-instance "
             f"suite (or an ingested corpus)")
    _add_corpus_flag(p)
    p.set_defaults(fn=_cmd_suite)

    p = sub.add_parser("import",
                       help="ingest a model corpus directory "
                            "(.aag/.aig/.bench/.smv) into suite "
                            "instances and write a manifest")
    p.add_argument("dir", help="directory to scan recursively")
    p.add_argument("--k", type=int, default=10,
                   help="bound recorded for every corpus instance")
    p.add_argument("--manifest", metavar="FILE", default=None,
                   help="write the fingerprinted manifest JSON here")
    p.add_argument("--strict", action="store_true",
                   help="fail on the first unparseable file instead "
                        "of skipping it")
    _add_reduce_flag(p)
    _add_telemetry_flags(p)
    p.set_defaults(fn=_cmd_import)
    return parser


def main(argv: List[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "jobs", None) is not None and args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    _setup_logging(getattr(args, "verbose", 0))
    if getattr(args, "solver", None) is not None:
        # Process-wide default: every make_solver(None) in this run —
        # and in worker processes, which inherit the environment —
        # resolves to the chosen engine.
        os.environ[SAT_ENGINE_ENV] = args.solver

    trace_path = getattr(args, "trace", None)
    want_metrics = bool(getattr(args, "metrics", False))
    tracer = prev_tracer = None
    registry = prev_metrics = None
    if trace_path is not None:
        tracer = Tracer()
        prev_tracer = set_tracer(tracer)
    if want_metrics:
        registry = MetricsRegistry()
        prev_metrics = set_metrics(registry)
    try:
        status = args.fn(args)
    except BrokenPipeError:
        # Downstream consumer closed (e.g. `repro submit --follow |
        # head`).  Reopen stdout on devnull so the interpreter's exit
        # flush does not raise again, and exit like a killed pipe.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 141
    finally:
        if tracer is not None:
            set_tracer(prev_tracer)
        if registry is not None:
            set_metrics(prev_metrics)
    if registry is not None:
        from .harness.report import format_metrics
        print("\n== metrics ==")
        print(format_metrics(registry.snapshot()))
    if tracer is not None:
        count = write_chrome_trace(trace_path, tracer.events())
        if tracer.dropped:
            logger.warning("trace ring buffer dropped %d events",
                           tracer.dropped)
        print(f"trace: {count} events written to {trace_path}",
              file=sys.stderr)
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
