"""Compile transition systems to flat op lists for W-lane evaluation.

A :class:`CompiledNet` turns the per-latch next-state functions of a
:class:`~repro.system.model.TransitionSystem` (recovered through
:class:`~repro.reduce.structure.FunctionalView`) plus any number of
named *probe* predicates into one topologically sorted list of
register-machine ops.  Evaluation interprets every register as a
W-lane bit-vector packed into a single Python int: lane ``i`` of every
register together forms one concrete trace, so one pass over the op
list advances W independent random simulations at once.  Python's
arbitrary-precision ints make the lane count a free parameter —
anything from 64 to 4096 lanes runs through the identical code path,
with the bignum layer doing the wide AND/OR/XOR in C.

Only systems whose TR decomposes into per-latch functions can be
compiled (circuit-derived systems always do; relational TRs such as
``with_self_loops`` products do not) — :class:`SimCompileError` marks
the rest, and callers degrade to the solver tiers.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..logic.expr import Expr
from ..reduce.structure import FunctionalView
from ..system.model import TransitionSystem

__all__ = ["CompiledNet", "SimCompileError"]

# Op codes — small ints so the eval loop dispatches on an int compare.
_NOT = 0
_AND = 1
_OR = 2
_XOR = 3
_IFF = 4
_ITE = 5

# Distinguished register slots for the two constants.
_FALSE_SLOT = 0
_TRUE_SLOT = 1


class SimCompileError(ValueError):
    """The system cannot be compiled for bit-parallel simulation
    (relational TR, non-literal init, or a probe outside the state
    and input vocabulary)."""


class CompiledNet:
    """A flat op-list program computing next-state + probe values.

    Attributes
    ----------
    latches, inputs:
        Variable orders (original declaration order) — lane state is
        exchanged as lists aligned to these.
    resets:
        ``{latch: bool}``; latches absent power up unconstrained and
        the falsifier fills them with random lanes.
    num_slots:
        Register file size for :meth:`eval_frame` scratch buffers.
    """

    def __init__(self, system: TransitionSystem,
                 probes: Mapping[str, Expr],
                 view: Optional[FunctionalView] = None) -> None:
        if view is None:
            view = FunctionalView.from_system(system)
        if view is None:
            raise SimCompileError(
                f"system {system.name!r} has no functional view "
                f"(relational TR or non-literal init)")
        self.system = system
        self.latches: List[str] = list(system.state_vars)
        self.inputs: List[str] = list(system.input_vars)
        self.resets: Dict[str, bool] = dict(view.resets)

        self._ops: List[Tuple[int, ...]] = []
        self._slot_of: Dict[int, int] = {}
        self._var_slot: Dict[str, int] = {}
        self._next = 2                      # 0/1 reserved for constants

        roots: List[Expr] = [view.updates[v] for v in self.latches]
        roots.extend(view.constraints)
        roots.extend(probes.values())
        for root in roots:
            self._compile(root)

        vocabulary = set(self.latches) | set(self.inputs)
        stray = set(self._var_slot) - vocabulary
        if stray:
            raise SimCompileError(
                f"compiled roots depend on unknown variables: "
                f"{sorted(stray)}")

        self._update_slots: List[int] = [
            self._slot_of[view.updates[v].uid] for v in self.latches]
        self._constraint_slots: List[int] = [
            self._slot_of[c.uid] for c in view.constraints]
        self._probe_slots: Dict[str, int] = {
            name: self._slot_of[expr.uid]
            for name, expr in probes.items()}
        self._latch_slots: List[int] = [
            self._var_slot.get(v, -1) for v in self.latches]
        self._input_slots: List[int] = [
            self._var_slot.get(v, -1) for v in self.inputs]
        self.num_slots = self._next

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def _compile(self, root: Expr) -> None:
        slot_of = self._slot_of
        for node in root.iter_dag():
            if node.uid in slot_of:
                continue
            op = node.op
            if op == "const":
                slot_of[node.uid] = _TRUE_SLOT if node.value else _FALSE_SLOT
                continue
            if op == "var":
                slot = self._var_slot.get(node.name)
                if slot is None:
                    slot = self._alloc()
                    self._var_slot[node.name] = slot
                slot_of[node.uid] = slot
                continue
            dst = self._alloc()
            slot_of[node.uid] = dst
            kids = tuple(slot_of[a.uid] for a in node.args)
            if op == "not":
                self._ops.append((_NOT, dst, kids[0]))
            elif op == "and":
                self._ops.append((_AND, dst, kids))
            elif op == "or":
                self._ops.append((_OR, dst, kids))
            elif op == "xor":
                self._ops.append((_XOR, dst, kids[0], kids[1]))
            elif op == "iff":
                self._ops.append((_IFF, dst, kids[0], kids[1]))
            elif op == "ite":
                self._ops.append((_ITE, dst, kids[0], kids[1], kids[2]))
            else:  # pragma: no cover - constructors emit no other ops
                raise SimCompileError(f"unknown op {op!r}")

    def _alloc(self) -> int:
        slot = self._next
        self._next += 1
        return slot

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def eval_frame(self, state: List[int], frame_inputs: List[int],
                   mask: int) -> Tuple[List[int], int, Dict[str, int]]:
        """One simulation frame over W lanes.

        ``state`` / ``frame_inputs`` are lane vectors aligned to
        :attr:`latches` / :attr:`inputs`; ``mask`` is ``(1 << W) - 1``.
        Returns ``(next_state, constraint_ok, probe_values)`` where
        ``constraint_ok`` has a 1-bit in every lane whose chosen input
        satisfies all TR invariant constraints this frame (the probe
        values describe the *current* state and remain meaningful for
        every lane regardless).
        """
        slots = [0] * self.num_slots
        slots[_TRUE_SLOT] = mask
        for slot, lanes in zip(self._latch_slots, state):
            if slot >= 0:
                slots[slot] = lanes
        for slot, lanes in zip(self._input_slots, frame_inputs):
            if slot >= 0:
                slots[slot] = lanes
        for op in self._ops:
            code = op[0]
            if code == _NOT:
                slots[op[1]] = mask ^ slots[op[2]]
            elif code == _AND:
                acc = mask
                for a in op[2]:
                    acc &= slots[a]
                slots[op[1]] = acc
            elif code == _OR:
                acc = 0
                for a in op[2]:
                    acc |= slots[a]
                slots[op[1]] = acc
            elif code == _XOR:
                slots[op[1]] = slots[op[2]] ^ slots[op[3]]
            elif code == _IFF:
                slots[op[1]] = mask ^ (slots[op[2]] ^ slots[op[3]])
            else:  # _ITE
                c = slots[op[2]]
                slots[op[1]] = (c & slots[op[3]]) | ((mask ^ c) & slots[op[4]])
        nxt = [slots[s] for s in self._update_slots]
        ok = mask
        for s in self._constraint_slots:
            ok &= slots[s]
        probes = {name: slots[s] for name, s in self._probe_slots.items()}
        return nxt, ok, probes

    # ------------------------------------------------------------------
    def reset_lanes(self, mask: int,
                    fill_unconstrained) -> List[int]:
        """Initial lane state: reset-constrained latches broadcast their
        value across all lanes; unconstrained ones get lanes from
        ``fill_unconstrained()`` (one call per latch)."""
        state: List[int] = []
        for latch in self.latches:
            reset = self.resets.get(latch)
            if reset is None:
                state.append(fill_unconstrained() & mask)
            else:
                state.append(mask if reset else 0)
        return state

    def num_ops(self) -> int:
        """Program length — the per-frame work in gate evaluations."""
        return len(self._ops)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"CompiledNet({self.system.name!r}, ops={len(self._ops)}, "
                f"latches={len(self.latches)}, probes="
                f"{len(self._probe_slots)})")


def lane_bit(lanes: int, lane: int) -> bool:
    """Extract one lane's Boolean from a packed lane vector."""
    return bool((lanes >> lane) & 1)
