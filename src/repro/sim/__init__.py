"""Bit-parallel random simulation — the pre-solve falsification tier.

The paper's decision procedures are *complete* within a bound but pay
a solver's start-up cost on every query; many industrial properties
are violated by short, easy-to-stumble-on paths that plain random
simulation finds in microseconds.  This package provides that cheap
first tier:

* :mod:`repro.sim.engine` compiles a transition system's per-latch
  next-state functions (plus any probe predicates) into a flat,
  topologically sorted op list evaluated over Python ints used as
  W-lane bit-vectors — one pass steps W random traces at once;
* :mod:`repro.sim.falsify` drives the compiled net on a random walk
  (reset-state starts, random input stuffing, restart schedule),
  checks the witness predicate every frame, and on a hit extracts the
  single hitting lane as a concrete :class:`~repro.system.trace.Trace`;
* :mod:`repro.sim.backend` wraps the falsifier as the ``simulation``
  BMC backend — SAT-only (it never answers UNSAT) — and provides the
  ``presolve`` helper the portfolio race, the batch scheduler, the
  property checker and the serve daemon use as their pre-solve tier.

The bounded witness semantics honoured here are the same Biere et al.
translation used by :mod:`repro.spec.ltl`: a simulation witness for a
reachability query at bound k is a loop-free path whose last state
satisfies the target — exactly the trace shape every solver backend
returns, validated by the same :meth:`Trace.validate` replay.
"""

from .backend import SimulationBackend, SimulationOptions, presolve
from .engine import CompiledNet, SimCompileError
from .falsify import SimOutcome, falsify

__all__ = ["CompiledNet", "SimCompileError", "SimOutcome", "falsify",
           "SimulationBackend", "SimulationOptions", "presolve"]
