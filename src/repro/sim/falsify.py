"""Random-walk falsification over a compiled bit-parallel net.

:func:`falsify` answers one bounded reachability query — *is the
target predicate reachable within (or at exactly) k steps?* — by
brute randomness: start W lanes in reset states (unconstrained
latches randomised per lane), stuff fresh random inputs every frame,
step the whole pack with one pass over the compiled op list, and test
the target probe every frame.  On a hit the single hitting lane is
peeled out of the packed history as a concrete
:class:`~repro.system.trace.Trace` that replays against the original
transition relation by construction (each step *is* an evaluation of
the per-latch next-state functions, and lanes violating a TR
invariant constraint are masked out before their successors are
committed).

A restart schedule widens the pack geometrically (W, 2W, 4W, ...
capped at :data:`MAX_WIDTH`) so cheap shallow probes run first and
the expensive wide packs only spin up for properties that resist.
The walk is deterministic for a given seed — reproducibility beats
entropy in a test tier — and cooperatively cancellable: the global
:func:`~repro.sat.types.stop_requested` probe plus any armed wall
budget are consulted every frame.

This tier is one-sided: it can only ever report SAT (a validated
witness).  A miss means nothing — the solvers still have to run.
"""

from __future__ import annotations

import random
import time
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..logic.expr import Expr
from ..sat.types import Budget, stop_requested
from ..system.model import TransitionSystem
from ..system.trace import Trace
from ..telemetry.metrics import current_metrics
from ..telemetry.trace import current_tracer
from .engine import CompiledNet, SimCompileError, lane_bit

__all__ = ["SimOutcome", "falsify", "MAX_WIDTH"]

#: Hard cap on the lane count a restart schedule may widen to.
MAX_WIDTH = 4096

_TARGET = "target"


@dataclass
class SimOutcome:
    """What one falsification run did and found.

    ``trace`` is None on a miss; ``hit_k`` is the witness length on a
    hit.  ``frames`` counts simulation frames executed (restarts
    included), ``lanes`` the total lanes launched across restarts —
    the effective number of random traces explored is bounded by
    ``lanes``.
    """
    trace: Optional[Trace] = None
    hit_k: Optional[int] = None
    frames: int = 0
    lanes: int = 0
    restarts: int = 0
    ops: int = 0
    seconds: float = 0.0
    stopped: bool = False
    stats: Dict[str, int] = field(default_factory=dict)

    @property
    def hit(self) -> bool:
        return self.trace is not None


def _default_seed(system: TransitionSystem, target: Expr, k: int) -> int:
    """Stable per-query seed: same query, same walk, every process."""
    text = f"{system.name}|{sorted(target.support())}|{k}"
    return zlib.crc32(text.encode("utf-8"))


def falsify(system: TransitionSystem, target: Expr, k: int, *,
            semantics: str = "exact",
            width: int = 256,
            restarts: int = 4,
            seed: Optional[int] = None,
            budget: Optional[Budget] = None,
            stop_check: Optional[Callable[[], bool]] = None,
            net: Optional[CompiledNet] = None) -> SimOutcome:
    """Random-walk search for a k-bounded witness of ``target``.

    ``semantics`` follows the backend convention: ``"within"`` accepts
    a witness at any depth ≤ k (and returns the first, hence
    shortest-for-this-walk, one), ``"exact"`` only at depth exactly k.
    Pass a prebuilt ``net`` (compiled with a ``"target"`` probe) to
    amortise compilation across queries; otherwise one is compiled
    here — :class:`SimCompileError` propagates for systems with no
    functional view.
    """
    if semantics not in ("exact", "within"):
        raise ValueError(f"unknown semantics {semantics!r}")
    if k < 0:
        raise ValueError("k must be >= 0")
    if net is None:
        net = CompiledNet(system, {_TARGET: target})
    if seed is None:
        seed = _default_seed(system, target, k)
    if budget is not None:
        budget.arm()

    out = SimOutcome(ops=net.num_ops())
    start = time.monotonic()
    metrics = current_metrics()
    with current_tracer().span("sim.falsify", system=system.name, k=k,
                               semantics=semantics, width=width):
        try:
            _run(net, k, semantics, width, restarts, seed, budget,
                 stop_check, out)
        finally:
            out.seconds = time.monotonic() - start
            metrics.inc("sim.falsify.calls")
            metrics.inc("sim.frames", out.frames)
            metrics.inc("sim.lanes", out.lanes)
            if out.hit:
                metrics.inc("sim.hits")
            out.stats = {
                "sim_frames": out.frames,
                "sim_lanes": out.lanes,
                "sim_restarts": out.restarts,
                "sim_ops": out.ops,
            }
    return out


def _should_stop(stop_check: Optional[Callable[[], bool]],
                 budget: Optional[Budget]) -> bool:
    if stop_requested():
        return True
    if stop_check is not None and stop_check():
        return True
    return budget is not None and budget.expired()


def _run(net: CompiledNet, k: int, semantics: str, width: int,
         restarts: int, seed: int, budget: Optional[Budget],
         stop_check: Optional[Callable[[], bool]],
         out: SimOutcome) -> None:
    lanes = max(1, min(width, MAX_WIDTH))
    for attempt in range(max(1, restarts)):
        rng = random.Random((seed * 1000003 + attempt) & 0xFFFFFFFF)
        out.restarts = attempt + 1
        out.lanes += lanes
        if _walk(net, k, semantics, lanes, rng, budget, stop_check, out):
            return
        if out.stopped:
            return
        lanes = min(lanes * 2, MAX_WIDTH)


def _walk(net: CompiledNet, k: int, semantics: str, lanes: int,
          rng: random.Random, budget: Optional[Budget],
          stop_check: Optional[Callable[[], bool]],
          out: SimOutcome) -> bool:
    mask = (1 << lanes) - 1
    state = net.reset_lanes(mask, lambda: rng.getrandbits(lanes))
    alive = mask
    state_hist: List[List[int]] = [state]
    input_hist: List[List[int]] = []
    for frame in range(k + 1):
        if _should_stop(stop_check, budget):
            out.stopped = True
            return False
        frame_inputs = [rng.getrandbits(lanes) for _ in net.inputs]
        nxt, ok, probes = net.eval_frame(state, frame_inputs, mask)
        out.frames += 1
        hit = probes[_TARGET] & alive
        if hit and (semantics == "within" or frame == k):
            lane = (hit & -hit).bit_length() - 1
            out.trace = _extract(net, state_hist, input_hist, lane, frame)
            out.hit_k = frame
            return True
        if frame == k:
            break
        alive &= ok
        if not alive:
            break               # every lane wedged on a TR constraint
        state = nxt
        state_hist.append(nxt)
        input_hist.append(frame_inputs)
    return False


def _extract(net: CompiledNet, state_hist: List[List[int]],
             input_hist: List[List[int]], lane: int,
             length: int) -> Trace:
    """Peel one lane out of the packed history as a concrete trace."""
    states = [{latch: lane_bit(vec[i], lane)
               for i, latch in enumerate(net.latches)}
              for vec in state_hist[:length + 1]]
    inputs = [{name: lane_bit(vec[i], lane)
               for i, name in enumerate(net.inputs)}
              for vec in input_hist[:length]]
    return Trace(states, inputs)
