"""The ``simulation`` backend and the shared pre-solve helper.

:class:`SimulationBackend` exposes random bit-parallel simulation
through the standard :class:`~repro.bmc.backend.Backend` protocol so
it composes with everything built on the registry — ``BmcSession``,
the CLI's ``--method`` choices, the batch scheduler.  It is
*one-sided*: ``check`` answers SAT with a concrete validated witness
or UNKNOWN, never UNSAT, so it cannot prove safety and its ``sweep``
overrides the default ladder (which would stop at the very first
UNKNOWN bound) with one deep within-k walk.

:func:`presolve` is the cheap front door the portfolio race, the
batch scheduler, the property checker and the serve daemon call
before spinning up any solver: a strictly bounded falsification
attempt that either hands back a finished SAT outcome in milliseconds
or gets out of the way.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable, Optional

from ..bmc.backend import (Backend, BackendOptions, BmcResult, SweepResult,
                           emit_bound, register_backend)
from ..logic.expr import Expr
from ..sat.types import Budget, SolveResult
from ..system.model import TransitionSystem
from ..telemetry.metrics import current_metrics
from ..telemetry.trace import current_tracer
from .engine import CompiledNet, SimCompileError
from .falsify import SimOutcome, falsify

__all__ = ["SimulationOptions", "SimulationBackend", "presolve",
           "PRESOLVE_SECONDS"]

#: Wall-clock ceiling for one pre-solve attempt — the tier must stay
#: invisible next to worker spawn (~150 ms) and solver start-up costs.
PRESOLVE_SECONDS = 0.25

_TARGET = "target"


def _compile_query(system: TransitionSystem,
                   target: Expr) -> CompiledNet:
    """Compile one reachability query, rejecting non-state targets.

    Witness traces record states only, so a target reading primary
    inputs could not be validated (``final.evaluate(states[-1])``) —
    the same restriction every solver backend inherits from the
    trace format.
    """
    stray = target.support() - set(system.state_vars)
    if stray:
        raise SimCompileError(
            f"target depends on non-state variables {sorted(stray)}")
    return CompiledNet(system, {_TARGET: target})


@dataclasses.dataclass(frozen=True)
class SimulationOptions(BackendOptions):
    """Random-walk knobs.

    ``width`` is the starting lane count (doubled per restart, capped
    at 4096); ``restarts`` the schedule length; ``seed`` overrides the
    default per-query deterministic seed.
    """
    width: int = 256
    restarts: int = 4
    seed: Optional[int] = None


@register_backend("simulation")
class SimulationBackend(Backend):
    """Bit-parallel random simulation as a (SAT-only) decision tier."""

    options_class = SimulationOptions
    native_incremental = True       # one compiled net serves every bound

    def __init__(self, system: TransitionSystem, final: Expr,
                 options: BackendOptions | None = None, **kwargs) -> None:
        super().__init__(system, final, options, **kwargs)
        self._net: Optional[CompiledNet] = None
        self._net_error: Optional[str] = None
        try:
            self._net = _compile_query(system, final)
        except SimCompileError as exc:
            self._net_error = str(exc)

    # ------------------------------------------------------------------
    def _miss(self, k: int, out: Optional[SimOutcome] = None) -> BmcResult:
        stats = dict(out.stats) if out is not None else {}
        stats["sim_solver_calls"] = 0
        if self._net_error is not None:
            stats["sim_unsupported"] = 1
        return self.result(SolveResult.UNKNOWN, None, k, stats)

    def check(self, k: int, semantics: str = "exact",
              budget: Budget | None = None) -> BmcResult:
        if self._net is None:
            return self._miss(k)
        opts: SimulationOptions = self.options  # type: ignore[assignment]
        out = falsify(self.system, self.final, k, semantics=semantics,
                      width=opts.width, restarts=opts.restarts,
                      seed=opts.seed, budget=budget, net=self._net)
        if not out.hit:
            return self._miss(k, out)
        stats = dict(out.stats)
        stats["sim_solver_calls"] = 0
        assert out.trace is not None and out.hit_k is not None
        return self.result(SolveResult.SAT, out.trace, out.hit_k, stats)

    # ------------------------------------------------------------------
    def sweep(self, max_k: int, budget: Budget | None = None,
              on_bound=None) -> SweepResult:
        """One deep within-k walk instead of the exact-k ladder.

        The default ladder stops at the first non-UNSAT bound — for a
        backend that answers UNKNOWN on every miss that would end the
        sweep at k = 0.  A single within-``max_k`` walk visits every
        depth anyway, and a hit at depth j *is* the ladder's SAT entry
        at bound j (random walks give no shortest-path guarantee, but
        neither does any within-k witness before shortening).
        """
        sweep_start = time.perf_counter()
        per_bound = []
        result = self.check(max_k, semantics="within", budget=budget)
        seconds = time.perf_counter() - sweep_start
        if result.status is SolveResult.SAT:
            emit_bound(per_bound, on_bound, result.k, SolveResult.SAT,
                       result.trace, seconds, sweep_start, result.stats)
        else:
            emit_bound(per_bound, on_bound, max_k, SolveResult.UNKNOWN,
                       None, seconds, sweep_start, result.stats)
        return SweepResult(self.name, max_k, per_bound,
                           time.perf_counter() - sweep_start)


# ----------------------------------------------------------------------
# The pre-solve tier
# ----------------------------------------------------------------------
def presolve(system: TransitionSystem, final: Expr, k: int, *,
             semantics: str = "exact",
             width: int = 256,
             restarts: int = 3,
             max_seconds: float = PRESOLVE_SECONDS,
             seed: Optional[int] = None,
             stop_check: Optional[Callable[[], bool]] = None
             ) -> Optional[SimOutcome]:
    """One strictly bounded falsification attempt, or None.

    Returns a hit :class:`SimOutcome` (``trace`` set, replayable on
    ``system``) when random simulation stumbles on a witness inside
    the wall allowance, and None on a miss, an uncompilable system,
    or a non-state target — the caller then proceeds to the solver
    tiers exactly as if this function did not exist.
    """
    metrics = current_metrics()
    with current_tracer().span("sim.presolve", system=system.name, k=k,
                               semantics=semantics) as span:
        try:
            net = _compile_query(system, final)
        except SimCompileError:
            metrics.inc("sim.presolve.unsupported")
            span.set(outcome="unsupported")
            return None
        out = falsify(system, final, k, semantics=semantics, width=width,
                      restarts=restarts, seed=seed,
                      budget=Budget(max_seconds=max_seconds),
                      stop_check=stop_check, net=net)
        if out.hit:
            metrics.inc("sim.presolve.hits")
            span.set(outcome="hit", hit_k=out.hit_k)
            return out
        metrics.inc("sim.presolve.misses")
        span.set(outcome="stopped" if out.stopped else "miss")
        return None
