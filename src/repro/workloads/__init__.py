"""Industrial workload ingestion.

Routes third-party model files — AIGER (ASCII ``aag`` and binary
``aig``), ISCAS-89 ``.bench`` netlists and the SMV subset — into
suite-compatible :class:`~repro.models.suite.Instance` objects, so the
portfolio, the batch scheduler, the property checker and the serve
daemon all run on real designs exactly as they run on the built-in
families.  See :mod:`repro.workloads.corpus`.
"""

from .corpus import (CorpusEntry, CorpusError, CorpusReport,
                     SUPPORTED_EXTENSIONS, fingerprint_circuit, ingest,
                     ingest_file, load_circuit, scan_directory,
                     write_manifest)

__all__ = [
    "CorpusEntry", "CorpusError", "CorpusReport", "SUPPORTED_EXTENSIONS",
    "fingerprint_circuit", "ingest", "ingest_file", "load_circuit",
    "scan_directory", "write_manifest",
]
