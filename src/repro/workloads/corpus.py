"""Corpus ingestion: third-party model files -> suite instances.

``ingest(root)`` scans a directory for the industrial exchange formats
the parsers already understand —

* ``.aag`` — ASCII AIGER (1.0 / 1.9 with bad sections),
* ``.aig`` — binary AIGER (the HWMCC archive format),
* ``.bench`` — ISCAS-89 sequential netlists,
* ``.smv`` — the SMV subset (``SPEC``/``INVARSPEC`` become targets),

and turns every safety target into one suite-compatible
:class:`~repro.models.suite.Instance` (family ``"corpus"``, unknown
ground truth).  AIGER 1.9 ``b`` lines and SMV specs are the natural
target sources; for AIGER 1.0 and ``.bench`` files — which predate bad
sections — each *output* is taken as a bad signal, the convention the
early HWMCC circulated.

The reduction pipeline runs at load time: each target is checked
against its cone of influence, and the instance carries the reduced
system so every downstream consumer (race, batch, checker, serve)
starts from the small encoding the paper's space argument is about.

``ingest`` also produces a fingerprinted manifest (JSON-ready dict):
per file, the raw SHA-256, a *canonical* SHA-256 over the circuit's
ASCII AIGER serialization (format-independent identity), size
counters, and per-target reduction stats.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from ..models.suite import Instance
from ..reduce import reduce_for_target
from ..system.aiger_io import (AigerError, parse_aiger, parse_aiger_binary,
                               write_aiger)
from ..system.bench_parser import BenchError, parse_bench
from ..system.circuit import Circuit
from ..system.smv import SmvError, parse_smv
from ..telemetry import current_metrics, current_tracer

__all__ = ["CorpusEntry", "CorpusError", "CorpusReport",
           "SUPPORTED_EXTENSIONS", "fingerprint_circuit", "ingest",
           "ingest_file", "load_circuit", "scan_directory",
           "write_manifest"]

#: extension -> format tag recorded in the manifest.
SUPPORTED_EXTENSIONS: Dict[str, str] = {
    ".aag": "aiger-ascii",
    ".aig": "aiger-binary",
    ".bench": "bench",
    ".smv": "smv",
}

#: Default bound for corpus instances (no family ground truth to pin it).
DEFAULT_K = 10


class CorpusError(ValueError):
    """Raised when a corpus file cannot be ingested."""


@dataclass
class CorpusEntry:
    """One ingested model file and the instances cut from it."""

    path: str
    format: str
    circuit: Circuit
    sha256: str
    canonical: str
    instances: List[Instance] = field(default_factory=list)
    reductions: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def manifest_row(self) -> Dict[str, object]:
        stats = self.circuit.stats()
        return {
            "file": self.path,
            "format": self.format,
            "sha256": self.sha256,
            "canonical": self.canonical,
            "inputs": stats["inputs"],
            "latches": stats["latches"],
            "dag_nodes": stats["dag_nodes"],
            "targets": [
                {"name": inst.name, "k": inst.k,
                 **self.reductions.get(inst.name, {})}
                for inst in self.instances],
        }


@dataclass
class CorpusReport:
    """Everything ``ingest`` learned about a directory."""

    root: str
    entries: List[CorpusEntry] = field(default_factory=list)
    skipped: List[str] = field(default_factory=list)
    errors: Dict[str, str] = field(default_factory=dict)

    @property
    def instances(self) -> List[Instance]:
        return [inst for entry in self.entries for inst in entry.instances]

    def manifest(self) -> Dict[str, object]:
        return {
            "version": 1,
            "root": self.root,
            "models": [entry.manifest_row() for entry in self.entries],
            "instances": len(self.instances),
            "errors": dict(self.errors),
        }


def scan_directory(root: str | os.PathLike) -> List[Path]:
    """Supported model files under ``root``, sorted for determinism."""
    base = Path(root)
    if not base.is_dir():
        raise CorpusError(f"not a directory: {base}")
    return sorted(p for p in base.rglob("*")
                  if p.is_file() and p.suffix in SUPPORTED_EXTENSIONS)


def load_circuit(path: str | os.PathLike) -> Circuit:
    """Parse one model file into a Circuit, dispatching on extension."""
    p = Path(path)
    fmt = SUPPORTED_EXTENSIONS.get(p.suffix)
    if fmt is None:
        raise CorpusError(f"unsupported extension {p.suffix!r}: {p}")
    try:
        if fmt == "aiger-binary":
            return parse_aiger_binary(p.read_bytes(), p.stem)
        text = p.read_text()
        if fmt == "aiger-ascii":
            return parse_aiger(text, p.stem)
        if fmt == "bench":
            return parse_bench(text, p.stem)
        return parse_smv(text, p.stem)
    except (AigerError, BenchError, SmvError, ValueError) as exc:
        raise CorpusError(f"{p}: {exc}") from exc


def fingerprint_circuit(circuit: Circuit) -> str:
    """Format-independent identity: SHA-256 of the canonical ``aag``."""
    return hashlib.sha256(write_aiger(circuit).encode()).hexdigest()


def _targets(circuit: Circuit) -> Dict[str, object]:
    """Safety targets: bad sections first, outputs as the fallback."""
    if circuit.bad:
        return dict(circuit.bad)
    # AIGER 1.0 / .bench convention: outputs are the monitored signals.
    return dict(circuit.outputs)


def ingest_file(path: str | os.PathLike, *, k: int = DEFAULT_K,
                reduce: str = "auto") -> CorpusEntry:
    """Ingest one model file into per-target suite instances."""
    p = Path(path)
    raw = p.read_bytes()
    circuit = load_circuit(p)
    fmt = SUPPORTED_EXTENSIONS[p.suffix]
    entry = CorpusEntry(
        path=str(p), format=fmt, circuit=circuit,
        sha256=hashlib.sha256(raw).hexdigest(),
        canonical=fingerprint_circuit(circuit))
    system = circuit.to_transition_system()
    targets = _targets(circuit)
    if not targets:
        raise CorpusError(f"{p}: no bad sections, outputs or specs")
    for prop_name, final in targets.items():
        name = f"{p.stem}:{prop_name}"
        inst_system, inst_final = system, final
        stats = {"original_latches": len(system.state_vars)}
        if reduce != "off":
            reduction = reduce_for_target(system, final)
            stats["reduced_latches"] = len(reduction.system.state_vars)
            if not reduction.is_identity:
                inst_system = reduction.system
                inst_final = reduction.map_expr(final)
        else:
            stats["reduced_latches"] = stats["original_latches"]
        entry.reductions[name] = stats
        entry.instances.append(
            Instance(name, "corpus", inst_system, inst_final, k,
                     expected=None))
    return entry


def ingest(root: str | os.PathLike, *, k: int = DEFAULT_K,
           reduce: str = "auto",
           strict: bool = False) -> CorpusReport:
    """Scan ``root`` and ingest every supported model file.

    Unparseable files are recorded in ``report.errors`` and skipped
    unless ``strict`` is set, in which case the first failure raises —
    a real corpus always carries a few truncated or exotic files and
    one of them should not sink the batch.
    """
    root_path = Path(root)
    report = CorpusReport(root=str(root_path))
    with current_tracer().span("corpus.ingest", root=str(root_path)):
        for path in scan_directory(root_path):
            try:
                entry = ingest_file(path, k=k, reduce=reduce)
            except (CorpusError, OSError) as exc:
                if strict:
                    raise
                report.errors[str(path)] = str(exc)
                continue
            report.entries.append(entry)
    metrics = current_metrics()
    metrics.inc("corpus.files", len(report.entries))
    metrics.inc("corpus.instances", len(report.instances))
    metrics.inc("corpus.errors", len(report.errors))
    return report


def write_manifest(report: CorpusReport,
                   path: str | os.PathLike) -> None:
    """Write the fingerprinted manifest JSON next to the corpus."""
    payload = json.dumps(report.manifest(), indent=2, sort_keys=True)
    Path(path).write_text(payload + "\n")
